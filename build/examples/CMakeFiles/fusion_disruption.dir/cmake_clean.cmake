file(REMOVE_RECURSE
  "CMakeFiles/fusion_disruption.dir/fusion_disruption.cpp.o"
  "CMakeFiles/fusion_disruption.dir/fusion_disruption.cpp.o.d"
  "fusion_disruption"
  "fusion_disruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_disruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
