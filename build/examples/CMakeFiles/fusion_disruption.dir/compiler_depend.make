# Empty compiler generated dependencies file for fusion_disruption.
# This may be replaced when dependencies are built.
