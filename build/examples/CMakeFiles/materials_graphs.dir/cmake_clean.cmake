file(REMOVE_RECURSE
  "CMakeFiles/materials_graphs.dir/materials_graphs.cpp.o"
  "CMakeFiles/materials_graphs.dir/materials_graphs.cpp.o.d"
  "materials_graphs"
  "materials_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materials_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
