# Empty compiler generated dependencies file for materials_graphs.
# This may be replaced when dependencies are built.
