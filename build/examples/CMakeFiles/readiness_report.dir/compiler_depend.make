# Empty compiler generated dependencies file for readiness_report.
# This may be replaced when dependencies are built.
