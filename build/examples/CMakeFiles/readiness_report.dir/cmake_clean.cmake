file(REMOVE_RECURSE
  "CMakeFiles/readiness_report.dir/readiness_report.cpp.o"
  "CMakeFiles/readiness_report.dir/readiness_report.cpp.o.d"
  "readiness_report"
  "readiness_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readiness_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
