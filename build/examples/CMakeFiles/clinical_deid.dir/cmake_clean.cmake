file(REMOVE_RECURSE
  "CMakeFiles/clinical_deid.dir/clinical_deid.cpp.o"
  "CMakeFiles/clinical_deid.dir/clinical_deid.cpp.o.d"
  "clinical_deid"
  "clinical_deid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinical_deid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
