# Empty dependencies file for clinical_deid.
# This may be replaced when dependencies are built.
