file(REMOVE_RECURSE
  "CMakeFiles/genomic_msa.dir/genomic_msa.cpp.o"
  "CMakeFiles/genomic_msa.dir/genomic_msa.cpp.o.d"
  "genomic_msa"
  "genomic_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomic_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
