# Empty dependencies file for genomic_msa.
# This may be replaced when dependencies are built.
