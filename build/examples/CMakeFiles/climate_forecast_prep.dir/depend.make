# Empty dependencies file for climate_forecast_prep.
# This may be replaced when dependencies are built.
