file(REMOVE_RECURSE
  "CMakeFiles/climate_forecast_prep.dir/climate_forecast_prep.cpp.o"
  "CMakeFiles/climate_forecast_prep.dir/climate_forecast_prep.cpp.o.d"
  "climate_forecast_prep"
  "climate_forecast_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_forecast_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
