file(REMOVE_RECURSE
  "CMakeFiles/bench_bio_privacy.dir/bench_bio_privacy.cpp.o"
  "CMakeFiles/bench_bio_privacy.dir/bench_bio_privacy.cpp.o.d"
  "bench_bio_privacy"
  "bench_bio_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bio_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
