# Empty compiler generated dependencies file for bench_bio_privacy.
# This may be replaced when dependencies are built.
