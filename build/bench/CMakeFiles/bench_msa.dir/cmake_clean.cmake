file(REMOVE_RECURSE
  "CMakeFiles/bench_msa.dir/bench_msa.cpp.o"
  "CMakeFiles/bench_msa.dir/bench_msa.cpp.o.d"
  "bench_msa"
  "bench_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
