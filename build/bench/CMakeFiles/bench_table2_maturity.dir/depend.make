# Empty dependencies file for bench_table2_maturity.
# This may be replaced when dependencies are built.
