file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_maturity.dir/bench_table2_maturity.cpp.o"
  "CMakeFiles/bench_table2_maturity.dir/bench_table2_maturity.cpp.o.d"
  "bench_table2_maturity"
  "bench_table2_maturity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_maturity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
