# Empty compiler generated dependencies file for bench_scaling_io.
# This may be replaced when dependencies are built.
