file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_io.dir/bench_scaling_io.cpp.o"
  "CMakeFiles/bench_scaling_io.dir/bench_scaling_io.cpp.o.d"
  "bench_scaling_io"
  "bench_scaling_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
