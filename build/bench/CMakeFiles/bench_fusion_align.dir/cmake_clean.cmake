file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion_align.dir/bench_fusion_align.cpp.o"
  "CMakeFiles/bench_fusion_align.dir/bench_fusion_align.cpp.o.d"
  "bench_fusion_align"
  "bench_fusion_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
