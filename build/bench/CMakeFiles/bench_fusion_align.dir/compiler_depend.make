# Empty compiler generated dependencies file for bench_fusion_align.
# This may be replaced when dependencies are built.
