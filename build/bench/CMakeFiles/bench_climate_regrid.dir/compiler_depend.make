# Empty compiler generated dependencies file for bench_climate_regrid.
# This may be replaced when dependencies are built.
