file(REMOVE_RECURSE
  "CMakeFiles/bench_climate_regrid.dir/bench_climate_regrid.cpp.o"
  "CMakeFiles/bench_climate_regrid.dir/bench_climate_regrid.cpp.o.d"
  "bench_climate_regrid"
  "bench_climate_regrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_climate_regrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
