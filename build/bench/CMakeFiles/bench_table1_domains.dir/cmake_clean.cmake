file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_domains.dir/bench_table1_domains.cpp.o"
  "CMakeFiles/bench_table1_domains.dir/bench_table1_domains.cpp.o.d"
  "bench_table1_domains"
  "bench_table1_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
