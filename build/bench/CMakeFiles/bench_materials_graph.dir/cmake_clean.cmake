file(REMOVE_RECURSE
  "CMakeFiles/bench_materials_graph.dir/bench_materials_graph.cpp.o"
  "CMakeFiles/bench_materials_graph.dir/bench_materials_graph.cpp.o.d"
  "bench_materials_graph"
  "bench_materials_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_materials_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
