# Empty compiler generated dependencies file for bench_materials_graph.
# This may be replaced when dependencies are built.
