file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pipeline.dir/bench_fig1_pipeline.cpp.o"
  "CMakeFiles/bench_fig1_pipeline.dir/bench_fig1_pipeline.cpp.o.d"
  "bench_fig1_pipeline"
  "bench_fig1_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
