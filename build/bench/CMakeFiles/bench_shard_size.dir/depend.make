# Empty dependencies file for bench_shard_size.
# This may be replaced when dependencies are built.
