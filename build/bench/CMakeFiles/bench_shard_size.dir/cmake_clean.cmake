file(REMOVE_RECURSE
  "CMakeFiles/bench_shard_size.dir/bench_shard_size.cpp.o"
  "CMakeFiles/bench_shard_size.dir/bench_shard_size.cpp.o.d"
  "bench_shard_size"
  "bench_shard_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shard_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
