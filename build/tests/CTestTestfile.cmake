# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_ndarray[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_container_sdf[1]_include.cmake")
include("/root/repo/build/tests/test_container_formats[1]_include.cmake")
include("/root/repo/build/tests/test_shard[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_sequence[1]_include.cmake")
include("/root/repo/build/tests/test_privacy[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_augment[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_core_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_core_readiness[1]_include.cmake")
include("/root/repo/build/tests/test_core_quality[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_domains[1]_include.cmake")
include("/root/repo/build/tests/test_msa[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_dataset_tools[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
