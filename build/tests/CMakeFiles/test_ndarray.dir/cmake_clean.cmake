file(REMOVE_RECURSE
  "CMakeFiles/test_ndarray.dir/test_ndarray.cpp.o"
  "CMakeFiles/test_ndarray.dir/test_ndarray.cpp.o.d"
  "test_ndarray"
  "test_ndarray.pdb"
  "test_ndarray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
