# Empty compiler generated dependencies file for test_ndarray.
# This may be replaced when dependencies are built.
