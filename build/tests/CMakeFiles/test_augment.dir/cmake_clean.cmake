file(REMOVE_RECURSE
  "CMakeFiles/test_augment.dir/test_augment.cpp.o"
  "CMakeFiles/test_augment.dir/test_augment.cpp.o.d"
  "test_augment"
  "test_augment.pdb"
  "test_augment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
