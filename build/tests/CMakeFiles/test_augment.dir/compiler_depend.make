# Empty compiler generated dependencies file for test_augment.
# This may be replaced when dependencies are built.
