
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_timeseries.cpp" "tests/CMakeFiles/test_timeseries.dir/test_timeseries.cpp.o" "gcc" "tests/CMakeFiles/test_timeseries.dir/test_timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/domains/CMakeFiles/drai_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/drai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/drai_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/drai_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/drai_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/drai_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/drai_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/drai_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/drai_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/drai_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/drai_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/drai_container.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/drai_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drai_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/drai_ndarray.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/drai_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
