# Empty dependencies file for test_container_sdf.
# This may be replaced when dependencies are built.
