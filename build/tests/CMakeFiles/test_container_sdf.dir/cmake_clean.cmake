file(REMOVE_RECURSE
  "CMakeFiles/test_container_sdf.dir/test_container_sdf.cpp.o"
  "CMakeFiles/test_container_sdf.dir/test_container_sdf.cpp.o.d"
  "test_container_sdf"
  "test_container_sdf.pdb"
  "test_container_sdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container_sdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
