file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_tools.dir/test_dataset_tools.cpp.o"
  "CMakeFiles/test_dataset_tools.dir/test_dataset_tools.cpp.o.d"
  "test_dataset_tools"
  "test_dataset_tools.pdb"
  "test_dataset_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
