# Empty dependencies file for test_dataset_tools.
# This may be replaced when dependencies are built.
