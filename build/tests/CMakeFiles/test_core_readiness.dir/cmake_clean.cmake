file(REMOVE_RECURSE
  "CMakeFiles/test_core_readiness.dir/test_core_readiness.cpp.o"
  "CMakeFiles/test_core_readiness.dir/test_core_readiness.cpp.o.d"
  "test_core_readiness"
  "test_core_readiness.pdb"
  "test_core_readiness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_readiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
