# Empty dependencies file for test_core_readiness.
# This may be replaced when dependencies are built.
