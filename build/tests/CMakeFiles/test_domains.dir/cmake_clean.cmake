file(REMOVE_RECURSE
  "CMakeFiles/test_domains.dir/test_domains.cpp.o"
  "CMakeFiles/test_domains.dir/test_domains.cpp.o.d"
  "test_domains"
  "test_domains.pdb"
  "test_domains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
