# Empty compiler generated dependencies file for test_domains.
# This may be replaced when dependencies are built.
