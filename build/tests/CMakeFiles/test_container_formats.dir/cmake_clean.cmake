file(REMOVE_RECURSE
  "CMakeFiles/test_container_formats.dir/test_container_formats.cpp.o"
  "CMakeFiles/test_container_formats.dir/test_container_formats.cpp.o.d"
  "test_container_formats"
  "test_container_formats.pdb"
  "test_container_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
