file(REMOVE_RECURSE
  "CMakeFiles/test_core_quality.dir/test_core_quality.cpp.o"
  "CMakeFiles/test_core_quality.dir/test_core_quality.cpp.o.d"
  "test_core_quality"
  "test_core_quality.pdb"
  "test_core_quality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
