# Empty dependencies file for test_core_quality.
# This may be replaced when dependencies are built.
