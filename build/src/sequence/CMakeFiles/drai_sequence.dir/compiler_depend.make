# Empty compiler generated dependencies file for drai_sequence.
# This may be replaced when dependencies are built.
