file(REMOVE_RECURSE
  "CMakeFiles/drai_sequence.dir/msa.cpp.o"
  "CMakeFiles/drai_sequence.dir/msa.cpp.o.d"
  "CMakeFiles/drai_sequence.dir/sequence.cpp.o"
  "CMakeFiles/drai_sequence.dir/sequence.cpp.o.d"
  "libdrai_sequence.a"
  "libdrai_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
