file(REMOVE_RECURSE
  "libdrai_sequence.a"
)
