file(REMOVE_RECURSE
  "libdrai_shard.a"
)
