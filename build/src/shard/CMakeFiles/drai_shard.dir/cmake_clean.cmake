file(REMOVE_RECURSE
  "CMakeFiles/drai_shard.dir/dataset_tools.cpp.o"
  "CMakeFiles/drai_shard.dir/dataset_tools.cpp.o.d"
  "CMakeFiles/drai_shard.dir/example.cpp.o"
  "CMakeFiles/drai_shard.dir/example.cpp.o.d"
  "CMakeFiles/drai_shard.dir/manifest.cpp.o"
  "CMakeFiles/drai_shard.dir/manifest.cpp.o.d"
  "CMakeFiles/drai_shard.dir/shard_reader.cpp.o"
  "CMakeFiles/drai_shard.dir/shard_reader.cpp.o.d"
  "CMakeFiles/drai_shard.dir/shard_writer.cpp.o"
  "CMakeFiles/drai_shard.dir/shard_writer.cpp.o.d"
  "libdrai_shard.a"
  "libdrai_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
