# Empty dependencies file for drai_shard.
# This may be replaced when dependencies are built.
