file(REMOVE_RECURSE
  "libdrai_stats.a"
)
