# Empty dependencies file for drai_stats.
# This may be replaced when dependencies are built.
