
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/imbalance.cpp" "src/stats/CMakeFiles/drai_stats.dir/imbalance.cpp.o" "gcc" "src/stats/CMakeFiles/drai_stats.dir/imbalance.cpp.o.d"
  "/root/repo/src/stats/normalizer.cpp" "src/stats/CMakeFiles/drai_stats.dir/normalizer.cpp.o" "gcc" "src/stats/CMakeFiles/drai_stats.dir/normalizer.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/stats/CMakeFiles/drai_stats.dir/quantile.cpp.o" "gcc" "src/stats/CMakeFiles/drai_stats.dir/quantile.cpp.o.d"
  "/root/repo/src/stats/running.cpp" "src/stats/CMakeFiles/drai_stats.dir/running.cpp.o" "gcc" "src/stats/CMakeFiles/drai_stats.dir/running.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/drai_ndarray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
