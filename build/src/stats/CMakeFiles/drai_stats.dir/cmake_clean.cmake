file(REMOVE_RECURSE
  "CMakeFiles/drai_stats.dir/imbalance.cpp.o"
  "CMakeFiles/drai_stats.dir/imbalance.cpp.o.d"
  "CMakeFiles/drai_stats.dir/normalizer.cpp.o"
  "CMakeFiles/drai_stats.dir/normalizer.cpp.o.d"
  "CMakeFiles/drai_stats.dir/quantile.cpp.o"
  "CMakeFiles/drai_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/drai_stats.dir/running.cpp.o"
  "CMakeFiles/drai_stats.dir/running.cpp.o.d"
  "libdrai_stats.a"
  "libdrai_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
