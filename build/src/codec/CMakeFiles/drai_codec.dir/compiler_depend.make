# Empty compiler generated dependencies file for drai_codec.
# This may be replaced when dependencies are built.
