file(REMOVE_RECURSE
  "libdrai_codec.a"
)
