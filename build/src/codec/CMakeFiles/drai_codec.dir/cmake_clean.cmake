file(REMOVE_RECURSE
  "CMakeFiles/drai_codec.dir/codec.cpp.o"
  "CMakeFiles/drai_codec.dir/codec.cpp.o.d"
  "CMakeFiles/drai_codec.dir/lz.cpp.o"
  "CMakeFiles/drai_codec.dir/lz.cpp.o.d"
  "CMakeFiles/drai_codec.dir/quantize.cpp.o"
  "CMakeFiles/drai_codec.dir/quantize.cpp.o.d"
  "CMakeFiles/drai_codec.dir/xorfloat.cpp.o"
  "CMakeFiles/drai_codec.dir/xorfloat.cpp.o.d"
  "libdrai_codec.a"
  "libdrai_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
