file(REMOVE_RECURSE
  "CMakeFiles/drai_timeseries.dir/lag.cpp.o"
  "CMakeFiles/drai_timeseries.dir/lag.cpp.o.d"
  "CMakeFiles/drai_timeseries.dir/signal.cpp.o"
  "CMakeFiles/drai_timeseries.dir/signal.cpp.o.d"
  "libdrai_timeseries.a"
  "libdrai_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
