# Empty dependencies file for drai_timeseries.
# This may be replaced when dependencies are built.
