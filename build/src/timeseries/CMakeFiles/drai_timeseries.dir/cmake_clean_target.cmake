file(REMOVE_RECURSE
  "libdrai_timeseries.a"
)
