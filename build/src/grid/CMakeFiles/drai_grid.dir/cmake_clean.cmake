file(REMOVE_RECURSE
  "CMakeFiles/drai_grid.dir/latlon.cpp.o"
  "CMakeFiles/drai_grid.dir/latlon.cpp.o.d"
  "libdrai_grid.a"
  "libdrai_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
