# Empty dependencies file for drai_grid.
# This may be replaced when dependencies are built.
