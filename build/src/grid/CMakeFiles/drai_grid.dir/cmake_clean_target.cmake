file(REMOVE_RECURSE
  "libdrai_grid.a"
)
