# Empty dependencies file for drai_container.
# This may be replaced when dependencies are built.
