file(REMOVE_RECURSE
  "CMakeFiles/drai_container.dir/bplite.cpp.o"
  "CMakeFiles/drai_container.dir/bplite.cpp.o.d"
  "CMakeFiles/drai_container.dir/grib_lite.cpp.o"
  "CMakeFiles/drai_container.dir/grib_lite.cpp.o.d"
  "CMakeFiles/drai_container.dir/netcdf_lite.cpp.o"
  "CMakeFiles/drai_container.dir/netcdf_lite.cpp.o.d"
  "CMakeFiles/drai_container.dir/recio.cpp.o"
  "CMakeFiles/drai_container.dir/recio.cpp.o.d"
  "CMakeFiles/drai_container.dir/sdf.cpp.o"
  "CMakeFiles/drai_container.dir/sdf.cpp.o.d"
  "CMakeFiles/drai_container.dir/sniff.cpp.o"
  "CMakeFiles/drai_container.dir/sniff.cpp.o.d"
  "CMakeFiles/drai_container.dir/tensor_io.cpp.o"
  "CMakeFiles/drai_container.dir/tensor_io.cpp.o.d"
  "libdrai_container.a"
  "libdrai_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
