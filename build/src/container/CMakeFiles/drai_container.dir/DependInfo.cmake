
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/container/bplite.cpp" "src/container/CMakeFiles/drai_container.dir/bplite.cpp.o" "gcc" "src/container/CMakeFiles/drai_container.dir/bplite.cpp.o.d"
  "/root/repo/src/container/grib_lite.cpp" "src/container/CMakeFiles/drai_container.dir/grib_lite.cpp.o" "gcc" "src/container/CMakeFiles/drai_container.dir/grib_lite.cpp.o.d"
  "/root/repo/src/container/netcdf_lite.cpp" "src/container/CMakeFiles/drai_container.dir/netcdf_lite.cpp.o" "gcc" "src/container/CMakeFiles/drai_container.dir/netcdf_lite.cpp.o.d"
  "/root/repo/src/container/recio.cpp" "src/container/CMakeFiles/drai_container.dir/recio.cpp.o" "gcc" "src/container/CMakeFiles/drai_container.dir/recio.cpp.o.d"
  "/root/repo/src/container/sdf.cpp" "src/container/CMakeFiles/drai_container.dir/sdf.cpp.o" "gcc" "src/container/CMakeFiles/drai_container.dir/sdf.cpp.o.d"
  "/root/repo/src/container/sniff.cpp" "src/container/CMakeFiles/drai_container.dir/sniff.cpp.o" "gcc" "src/container/CMakeFiles/drai_container.dir/sniff.cpp.o.d"
  "/root/repo/src/container/tensor_io.cpp" "src/container/CMakeFiles/drai_container.dir/tensor_io.cpp.o" "gcc" "src/container/CMakeFiles/drai_container.dir/tensor_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/drai_ndarray.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/drai_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
