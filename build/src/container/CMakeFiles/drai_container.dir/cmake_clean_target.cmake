file(REMOVE_RECURSE
  "libdrai_container.a"
)
