# Empty dependencies file for drai_core.
# This may be replaced when dependencies are built.
