file(REMOVE_RECURSE
  "CMakeFiles/drai_core.dir/bundle.cpp.o"
  "CMakeFiles/drai_core.dir/bundle.cpp.o.d"
  "CMakeFiles/drai_core.dir/datasheet.cpp.o"
  "CMakeFiles/drai_core.dir/datasheet.cpp.o.d"
  "CMakeFiles/drai_core.dir/pipeline.cpp.o"
  "CMakeFiles/drai_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/drai_core.dir/provenance.cpp.o"
  "CMakeFiles/drai_core.dir/provenance.cpp.o.d"
  "CMakeFiles/drai_core.dir/quality.cpp.o"
  "CMakeFiles/drai_core.dir/quality.cpp.o.d"
  "CMakeFiles/drai_core.dir/readiness.cpp.o"
  "CMakeFiles/drai_core.dir/readiness.cpp.o.d"
  "libdrai_core.a"
  "libdrai_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
