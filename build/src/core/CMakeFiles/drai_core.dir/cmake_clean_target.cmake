file(REMOVE_RECURSE
  "libdrai_core.a"
)
