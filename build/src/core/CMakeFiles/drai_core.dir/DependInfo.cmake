
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bundle.cpp" "src/core/CMakeFiles/drai_core.dir/bundle.cpp.o" "gcc" "src/core/CMakeFiles/drai_core.dir/bundle.cpp.o.d"
  "/root/repo/src/core/datasheet.cpp" "src/core/CMakeFiles/drai_core.dir/datasheet.cpp.o" "gcc" "src/core/CMakeFiles/drai_core.dir/datasheet.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/drai_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/drai_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/provenance.cpp" "src/core/CMakeFiles/drai_core.dir/provenance.cpp.o" "gcc" "src/core/CMakeFiles/drai_core.dir/provenance.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/core/CMakeFiles/drai_core.dir/quality.cpp.o" "gcc" "src/core/CMakeFiles/drai_core.dir/quality.cpp.o.d"
  "/root/repo/src/core/readiness.cpp" "src/core/CMakeFiles/drai_core.dir/readiness.cpp.o" "gcc" "src/core/CMakeFiles/drai_core.dir/readiness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/drai_ndarray.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drai_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/drai_container.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/drai_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/drai_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/drai_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/drai_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/drai_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
