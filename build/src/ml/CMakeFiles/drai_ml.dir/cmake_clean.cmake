file(REMOVE_RECURSE
  "CMakeFiles/drai_ml.dir/metrics.cpp.o"
  "CMakeFiles/drai_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/drai_ml.dir/models.cpp.o"
  "CMakeFiles/drai_ml.dir/models.cpp.o.d"
  "CMakeFiles/drai_ml.dir/trainer.cpp.o"
  "CMakeFiles/drai_ml.dir/trainer.cpp.o.d"
  "libdrai_ml.a"
  "libdrai_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
