# Empty dependencies file for drai_ml.
# This may be replaced when dependencies are built.
