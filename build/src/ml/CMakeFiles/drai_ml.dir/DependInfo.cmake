
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/drai_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/drai_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/models.cpp" "src/ml/CMakeFiles/drai_ml.dir/models.cpp.o" "gcc" "src/ml/CMakeFiles/drai_ml.dir/models.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/ml/CMakeFiles/drai_ml.dir/trainer.cpp.o" "gcc" "src/ml/CMakeFiles/drai_ml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/drai_ndarray.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/drai_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/drai_container.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/drai_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/drai_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drai_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
