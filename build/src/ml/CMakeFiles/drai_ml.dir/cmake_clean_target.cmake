file(REMOVE_RECURSE
  "libdrai_ml.a"
)
