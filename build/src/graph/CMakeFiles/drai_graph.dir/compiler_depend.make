# Empty compiler generated dependencies file for drai_graph.
# This may be replaced when dependencies are built.
