file(REMOVE_RECURSE
  "CMakeFiles/drai_graph.dir/encode.cpp.o"
  "CMakeFiles/drai_graph.dir/encode.cpp.o.d"
  "CMakeFiles/drai_graph.dir/structure.cpp.o"
  "CMakeFiles/drai_graph.dir/structure.cpp.o.d"
  "libdrai_graph.a"
  "libdrai_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
