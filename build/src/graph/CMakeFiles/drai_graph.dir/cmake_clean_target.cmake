file(REMOVE_RECURSE
  "libdrai_graph.a"
)
