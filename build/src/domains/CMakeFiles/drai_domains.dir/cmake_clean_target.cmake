file(REMOVE_RECURSE
  "libdrai_domains.a"
)
