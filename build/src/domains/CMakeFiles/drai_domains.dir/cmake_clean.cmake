file(REMOVE_RECURSE
  "CMakeFiles/drai_domains.dir/bio.cpp.o"
  "CMakeFiles/drai_domains.dir/bio.cpp.o.d"
  "CMakeFiles/drai_domains.dir/climate.cpp.o"
  "CMakeFiles/drai_domains.dir/climate.cpp.o.d"
  "CMakeFiles/drai_domains.dir/fusion.cpp.o"
  "CMakeFiles/drai_domains.dir/fusion.cpp.o.d"
  "CMakeFiles/drai_domains.dir/materials.cpp.o"
  "CMakeFiles/drai_domains.dir/materials.cpp.o.d"
  "libdrai_domains.a"
  "libdrai_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
