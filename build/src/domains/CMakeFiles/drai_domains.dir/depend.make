# Empty dependencies file for drai_domains.
# This may be replaced when dependencies are built.
