file(REMOVE_RECURSE
  "libdrai_common.a"
)
