# Empty compiler generated dependencies file for drai_common.
# This may be replaced when dependencies are built.
