file(REMOVE_RECURSE
  "CMakeFiles/drai_common.dir/bytes.cpp.o"
  "CMakeFiles/drai_common.dir/bytes.cpp.o.d"
  "CMakeFiles/drai_common.dir/hash.cpp.o"
  "CMakeFiles/drai_common.dir/hash.cpp.o.d"
  "CMakeFiles/drai_common.dir/log.cpp.o"
  "CMakeFiles/drai_common.dir/log.cpp.o.d"
  "CMakeFiles/drai_common.dir/rng.cpp.o"
  "CMakeFiles/drai_common.dir/rng.cpp.o.d"
  "CMakeFiles/drai_common.dir/status.cpp.o"
  "CMakeFiles/drai_common.dir/status.cpp.o.d"
  "CMakeFiles/drai_common.dir/strings.cpp.o"
  "CMakeFiles/drai_common.dir/strings.cpp.o.d"
  "libdrai_common.a"
  "libdrai_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
