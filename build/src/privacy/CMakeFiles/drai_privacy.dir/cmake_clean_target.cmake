file(REMOVE_RECURSE
  "libdrai_privacy.a"
)
