file(REMOVE_RECURSE
  "CMakeFiles/drai_privacy.dir/anonymize.cpp.o"
  "CMakeFiles/drai_privacy.dir/anonymize.cpp.o.d"
  "CMakeFiles/drai_privacy.dir/audit.cpp.o"
  "CMakeFiles/drai_privacy.dir/audit.cpp.o.d"
  "CMakeFiles/drai_privacy.dir/tabular.cpp.o"
  "CMakeFiles/drai_privacy.dir/tabular.cpp.o.d"
  "libdrai_privacy.a"
  "libdrai_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
