
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/anonymize.cpp" "src/privacy/CMakeFiles/drai_privacy.dir/anonymize.cpp.o" "gcc" "src/privacy/CMakeFiles/drai_privacy.dir/anonymize.cpp.o.d"
  "/root/repo/src/privacy/audit.cpp" "src/privacy/CMakeFiles/drai_privacy.dir/audit.cpp.o" "gcc" "src/privacy/CMakeFiles/drai_privacy.dir/audit.cpp.o.d"
  "/root/repo/src/privacy/tabular.cpp" "src/privacy/CMakeFiles/drai_privacy.dir/tabular.cpp.o" "gcc" "src/privacy/CMakeFiles/drai_privacy.dir/tabular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
