# Empty compiler generated dependencies file for drai_privacy.
# This may be replaced when dependencies are built.
