file(REMOVE_RECURSE
  "libdrai_parallel.a"
)
