# Empty dependencies file for drai_parallel.
# This may be replaced when dependencies are built.
