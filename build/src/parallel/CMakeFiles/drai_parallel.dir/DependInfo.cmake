
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/communicator.cpp" "src/parallel/CMakeFiles/drai_parallel.dir/communicator.cpp.o" "gcc" "src/parallel/CMakeFiles/drai_parallel.dir/communicator.cpp.o.d"
  "/root/repo/src/parallel/distributed_stats.cpp" "src/parallel/CMakeFiles/drai_parallel.dir/distributed_stats.cpp.o" "gcc" "src/parallel/CMakeFiles/drai_parallel.dir/distributed_stats.cpp.o.d"
  "/root/repo/src/parallel/striped_store.cpp" "src/parallel/CMakeFiles/drai_parallel.dir/striped_store.cpp.o" "gcc" "src/parallel/CMakeFiles/drai_parallel.dir/striped_store.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/parallel/CMakeFiles/drai_parallel.dir/thread_pool.cpp.o" "gcc" "src/parallel/CMakeFiles/drai_parallel.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/drai_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/drai_ndarray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
