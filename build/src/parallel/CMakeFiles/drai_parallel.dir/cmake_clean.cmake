file(REMOVE_RECURSE
  "CMakeFiles/drai_parallel.dir/communicator.cpp.o"
  "CMakeFiles/drai_parallel.dir/communicator.cpp.o.d"
  "CMakeFiles/drai_parallel.dir/distributed_stats.cpp.o"
  "CMakeFiles/drai_parallel.dir/distributed_stats.cpp.o.d"
  "CMakeFiles/drai_parallel.dir/striped_store.cpp.o"
  "CMakeFiles/drai_parallel.dir/striped_store.cpp.o.d"
  "CMakeFiles/drai_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/drai_parallel.dir/thread_pool.cpp.o.d"
  "libdrai_parallel.a"
  "libdrai_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
