
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndarray/dtype.cpp" "src/ndarray/CMakeFiles/drai_ndarray.dir/dtype.cpp.o" "gcc" "src/ndarray/CMakeFiles/drai_ndarray.dir/dtype.cpp.o.d"
  "/root/repo/src/ndarray/kernels.cpp" "src/ndarray/CMakeFiles/drai_ndarray.dir/kernels.cpp.o" "gcc" "src/ndarray/CMakeFiles/drai_ndarray.dir/kernels.cpp.o.d"
  "/root/repo/src/ndarray/ndarray.cpp" "src/ndarray/CMakeFiles/drai_ndarray.dir/ndarray.cpp.o" "gcc" "src/ndarray/CMakeFiles/drai_ndarray.dir/ndarray.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
