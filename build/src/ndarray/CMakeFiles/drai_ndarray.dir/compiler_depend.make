# Empty compiler generated dependencies file for drai_ndarray.
# This may be replaced when dependencies are built.
