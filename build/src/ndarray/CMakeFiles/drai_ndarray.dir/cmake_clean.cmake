file(REMOVE_RECURSE
  "CMakeFiles/drai_ndarray.dir/dtype.cpp.o"
  "CMakeFiles/drai_ndarray.dir/dtype.cpp.o.d"
  "CMakeFiles/drai_ndarray.dir/kernels.cpp.o"
  "CMakeFiles/drai_ndarray.dir/kernels.cpp.o.d"
  "CMakeFiles/drai_ndarray.dir/ndarray.cpp.o"
  "CMakeFiles/drai_ndarray.dir/ndarray.cpp.o.d"
  "libdrai_ndarray.a"
  "libdrai_ndarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_ndarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
