file(REMOVE_RECURSE
  "libdrai_ndarray.a"
)
