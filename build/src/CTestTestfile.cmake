# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("parallel")
subdirs("ndarray")
subdirs("stats")
subdirs("codec")
subdirs("container")
subdirs("shard")
subdirs("grid")
subdirs("timeseries")
subdirs("sequence")
subdirs("privacy")
subdirs("graph")
subdirs("augment")
subdirs("ml")
subdirs("core")
subdirs("workloads")
subdirs("domains")
