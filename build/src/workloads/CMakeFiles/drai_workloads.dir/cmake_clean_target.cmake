file(REMOVE_RECURSE
  "libdrai_workloads.a"
)
