file(REMOVE_RECURSE
  "CMakeFiles/drai_workloads.dir/bio.cpp.o"
  "CMakeFiles/drai_workloads.dir/bio.cpp.o.d"
  "CMakeFiles/drai_workloads.dir/climate.cpp.o"
  "CMakeFiles/drai_workloads.dir/climate.cpp.o.d"
  "CMakeFiles/drai_workloads.dir/fusion.cpp.o"
  "CMakeFiles/drai_workloads.dir/fusion.cpp.o.d"
  "CMakeFiles/drai_workloads.dir/materials.cpp.o"
  "CMakeFiles/drai_workloads.dir/materials.cpp.o.d"
  "libdrai_workloads.a"
  "libdrai_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
