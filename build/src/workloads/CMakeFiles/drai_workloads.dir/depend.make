# Empty dependencies file for drai_workloads.
# This may be replaced when dependencies are built.
