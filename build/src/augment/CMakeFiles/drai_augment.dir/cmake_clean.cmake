file(REMOVE_RECURSE
  "CMakeFiles/drai_augment.dir/augment.cpp.o"
  "CMakeFiles/drai_augment.dir/augment.cpp.o.d"
  "libdrai_augment.a"
  "libdrai_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drai_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
