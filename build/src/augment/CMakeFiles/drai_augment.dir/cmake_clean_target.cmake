file(REMOVE_RECURSE
  "libdrai_augment.a"
)
