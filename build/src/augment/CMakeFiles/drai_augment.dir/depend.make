# Empty dependencies file for drai_augment.
# This may be replaced when dependencies are built.
