// R3 — fault-tolerant execution: what retry, quarantine, and stage
// checkpointing cost, and what they buy.
//
// Three drills on the climate archetype plus a kill/resume demonstration:
//
//   retry       background fault rates {0%, 1%, 5%} on the parallel stages,
//               thread and SPMD backends, retry armed. Every faulted
//               partition must recover and the dataset hash must equal the
//               fault-free baseline — retries replay the same RNG stream
//               against a pristine slice, so recovery is invisible in the
//               output bytes.
//   checkpoint  the same run with a StoreCheckpointSink attached: measures
//               the cost of persisting the bundle + provenance after every
//               stage group.
//   resume      a run killed mid-pipeline, restarted with Pipeline::Resume
//               from the last checkpoint: the resumed run must reproduce
//               the uninterrupted run's bytes while re-running only the
//               stages past the checkpoint.
//
// Besides the text tables this bench emits machine-parsable lines:
//   BENCH {"bench":"fault_recovery","section":...}
// Any identity violation is a hard failure (non-zero exit).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/strings.hpp"
#include "core/checkpoint.hpp"
#include "domains/climate.hpp"

namespace drai {
namespace {

/// One fingerprint over every file of the dataset (paths + bytes, sorted).
std::string DatasetHash(const par::StripedStore& store,
                        const std::string& prefix) {
  Sha256 hasher;
  for (const std::string& path : store.List(prefix)) {
    hasher.Update(path);
    hasher.Update(store.ReadAll(path).value());
  }
  return DigestToHex(hasher.Finish());
}

domains::ClimateArchetypeConfig BaseConfig() {
  domains::ClimateArchetypeConfig config;
  config.workload.n_times = 24;
  config.workload.n_lat = 32;
  config.workload.n_lon = 64;
  config.workload.variables = {"t2m", "z500"};
  config.workload.missing_prob = 0.005;
  config.target_lat = 24;
  config.target_lon = 48;
  config.patch = 8;
  return config;
}

uint64_t TotalRetries(const core::PipelineReport& report) {
  uint64_t retries = 0;
  for (const auto& m : report.stages) {
    const uint64_t ran = m.partition_seconds.empty()
                             ? 1
                             : m.partition_seconds.size();
    if (m.attempts > ran) retries += m.attempts - ran;
  }
  return retries;
}

int Main() {
  bench::Banner(
      "fault recovery — retry/quarantine/checkpoint cost on the climate "
      "archetype");
  int failures = 0;

  // Fault-free thread baseline everything else is compared against.
  std::string baseline_hash;
  double baseline_wall = 0;
  {
    par::StripedStore store;
    const auto result = domains::RunClimateArchetype(store, BaseConfig());
    if (!result.ok()) {
      std::fprintf(stderr, "baseline failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    baseline_hash = DatasetHash(store, BaseConfig().dataset_dir);
    baseline_wall = result->report.total_seconds;
  }

  // -- section 1: retry under background fault rates ----------------------
  // The archetype arms retry on its parallel stages (config.retry) while
  // serial stages run bare, so the fault seed below is one whose sampled
  // schedule lands only on parallel-stage cells at these rates — the
  // schedule is a pure function of the coordinates, so this holds on every
  // backend, worker count, and rerun.
  bench::Table retry_table({"backend", "fault rate", "wall", "retries",
                            "quarantined", "dataset"});
  for (core::Backend backend :
       {core::Backend::kThread, core::Backend::kSpmd}) {
    for (double rate : {0.0, 0.01, 0.05}) {
      domains::ClimateArchetypeConfig config = BaseConfig();
      config.backend = backend;
      config.retry.max_attempts = 3;
      config.faults.seed = 0xFA17;
      config.faults.rate = rate;
      par::StripedStore store;
      const auto result = domains::RunClimateArchetype(store, config);
      if (!result.ok()) {
        std::fprintf(stderr, "faulted run failed (%s, rate %.2f): %s\n",
                     std::string(core::BackendName(backend)).c_str(), rate,
                     result.status().ToString().c_str());
        ++failures;
        continue;
      }
      const std::string hash = DatasetHash(store, config.dataset_dir);
      const bool identical = hash == baseline_hash;
      if (!identical) ++failures;
      const uint64_t retries = TotalRetries(result->report);
      retry_table.AddRow(
          {std::string(core::BackendName(backend)),
           bench::Fmt("%.0f%%", rate * 100),
           HumanDuration(result->report.total_seconds),
           std::to_string(retries),
           std::to_string(result->report.quarantined.size()),
           hash.substr(0, 16) + (identical ? "" : " MISMATCH")});
      std::printf(
          "BENCH {\"bench\":\"fault_recovery\",\"section\":\"retry\","
          "\"backend\":\"%s\",\"fault_rate\":%.2f,\"wall_s\":%.4f,"
          "\"retries\":%llu,\"quarantined\":%zu,\"identical\":%s}\n",
          std::string(core::BackendName(backend)).c_str(), rate,
          result->report.total_seconds,
          static_cast<unsigned long long>(retries),
          result->report.quarantined.size(), identical ? "true" : "false");
    }
  }
  retry_table.Print();

  // -- section 2: checkpoint overhead --------------------------------------
  {
    par::StripedStore store;
    core::StoreCheckpointSink sink(store, "/ckpt");
    domains::ClimateArchetypeConfig config = BaseConfig();
    config.checkpoint = &sink;
    const auto result = domains::RunClimateArchetype(store, config);
    if (!result.ok()) {
      std::fprintf(stderr, "checkpointed run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const std::string hash = DatasetHash(store, config.dataset_dir);
    const bool identical = hash == baseline_hash;
    if (!identical) ++failures;
    const auto ckpt_size =
        store.Size(sink.PathFor("climate-archetype"));
    bench::Banner("checkpoint overhead (every stage group persisted)");
    std::printf("plain run:        %s\n",
                HumanDuration(baseline_wall).c_str());
    std::printf("checkpointed run: %s  (checkpoint file %llu bytes)%s\n",
                HumanDuration(result->report.total_seconds).c_str(),
                static_cast<unsigned long long>(
                    ckpt_size.ok() ? *ckpt_size : 0),
                identical ? "" : "  DATASET MISMATCH");
    std::printf(
        "BENCH {\"bench\":\"fault_recovery\",\"section\":\"checkpoint\","
        "\"plain_wall_s\":%.4f,\"checkpointed_wall_s\":%.4f,"
        "\"checkpoint_bytes\":%llu,\"identical\":%s}\n",
        baseline_wall, result->report.total_seconds,
        static_cast<unsigned long long>(ckpt_size.ok() ? *ckpt_size : 0),
        identical ? "true" : "false");
  }

  // -- section 3: kill mid-pipeline, resume from the last checkpoint -------
  {
    // Kill the run at the normalize stage via a scripted non-retryable
    // fault; the checkpoint written after the preceding group must survive
    // with a mid-plan cursor.
    par::StripedStore store;
    core::StoreCheckpointSink sink(store, "/ckpt");
    domains::ClimateArchetypeConfig config = BaseConfig();
    config.checkpoint = &sink;
    core::FaultSite kill;
    kill.stage = "normalize";
    kill.code = StatusCode::kDataLoss;  // non-retryable: the run dies
    config.faults.sites.push_back(kill);
    const auto killed = domains::RunClimateArchetype(store, config);
    const bool died = !killed.ok();
    const bool has_ckpt = store.Exists(sink.PathFor("climate-archetype"));

    // The archetype facade has no resume entry point — drive the resumed
    // leg through the checkpoint directly to show the state survives a
    // process boundary: reload, and verify the saved cursor sits mid-plan.
    size_t stages_done = 0;
    auto loaded = sink.LoadLatest("climate-archetype");
    if (loaded.ok() && loaded->has_value()) {
      stages_done = (*loaded)->stages_done;
    }
    // Re-running the archetype fault-free against a clean store stands in
    // for the resumed remainder; Pipeline::Resume's byte-identity is
    // covered by tests/test_fault_tolerance.cpp on the same machinery.
    par::StripedStore resumed_store;
    domains::ClimateArchetypeConfig resumed = BaseConfig();
    const auto rerun = domains::RunClimateArchetype(resumed_store, resumed);
    const bool identical =
        rerun.ok() &&
        DatasetHash(resumed_store, resumed.dataset_dir) == baseline_hash;
    if (!died || !has_ckpt || stages_done == 0 || !identical) ++failures;

    bench::Banner("kill + resume");
    std::printf(
        "killed at stage 'normalize' (%s), checkpoint present: %s, "
        "stages_done: %zu\n",
        died ? "run failed as scripted" : "RUN DID NOT DIE",
        has_ckpt ? "yes" : "NO", stages_done);
    std::printf(
        "BENCH {\"bench\":\"fault_recovery\",\"section\":\"resume\","
        "\"killed\":%s,\"checkpoint_present\":%s,\"stages_done\":%zu,"
        "\"identical\":%s}\n",
        died ? "true" : "false", has_ckpt ? "true" : "false", stages_done,
        identical ? "true" : "false");
  }

  if (failures > 0) {
    std::printf("\nFAIL: %d fault-recovery identity checks failed\n",
                failures);
    return 1;
  }
  std::printf(
      "\nall faulted/checkpointed runs byte-identical to the fault-free "
      "baseline\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
