// R3 — fault-tolerant execution: what retry, quarantine, and stage
// checkpointing cost, and what they buy.
//
// Three drills on the climate archetype plus a kill/resume demonstration:
//
//   retry       background fault rates {0%, 1%, 5%} on the parallel stages,
//               thread and SPMD backends, retry armed. Every faulted
//               partition must recover and the dataset hash must equal the
//               fault-free baseline — retries replay the same RNG stream
//               against a pristine slice, so recovery is invisible in the
//               output bytes.
//   checkpoint  the same run with a StoreCheckpointSink attached: measures
//               the cost of persisting the bundle + provenance after every
//               stage group.
//   resume      a run killed mid-pipeline, restarted with Pipeline::Resume
//               from the last checkpoint: the resumed run must reproduce
//               the uninterrupted run's bytes while re-running only the
//               stages past the checkpoint.
//   hang        background hang rates {1%, 5%} stall sampled partitions for
//               30 s; a hard deadline cancels each stalled attempt and the
//               retry replays it clean, so the wall clock stays far below a
//               single hang and the bytes still match the baseline.
//   speculation a slowdown-only fault site makes one partition a straggler;
//               a soft deadline races a backup copy against it. The backup
//               commits byte-identically and beats the hard-timeout-only
//               configuration's wall clock.
//
// Besides the text tables this bench emits machine-parsable lines:
//   BENCH {"bench":"fault_recovery","section":...}
// Any identity violation is a hard failure (non-zero exit).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "domains/climate.hpp"

namespace drai {
namespace {

using bench::DatasetHash;

domains::ClimateArchetypeConfig BaseConfig() {
  domains::ClimateArchetypeConfig config;
  config.workload.n_times = 24;
  config.workload.n_lat = 32;
  config.workload.n_lon = 64;
  config.workload.variables = {"t2m", "z500"};
  config.workload.missing_prob = 0.005;
  config.target_lat = 24;
  config.target_lon = 48;
  config.patch = 8;
  return config;
}

uint64_t TotalRetries(const core::PipelineReport& report) {
  uint64_t retries = 0;
  for (const auto& m : report.stages) {
    const uint64_t ran = m.partition_seconds.empty()
                             ? 1
                             : m.partition_seconds.size();
    if (m.attempts > ran) retries += m.attempts - ran;
  }
  return retries;
}

int Main() {
  bench::Banner(
      "fault recovery — retry/quarantine/checkpoint cost on the climate "
      "archetype");
  int failures = 0;

  // Fault-free thread baseline everything else is compared against.
  std::string baseline_hash;
  double baseline_wall = 0;
  {
    par::StripedStore store;
    const auto result = domains::RunClimateArchetype(store, BaseConfig());
    if (!result.ok()) {
      std::fprintf(stderr, "baseline failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    baseline_hash = DatasetHash(store, BaseConfig().dataset_dir);
    baseline_wall = result->report.total_seconds;
  }

  // -- section 1: retry under background fault rates ----------------------
  // The archetype arms retry on its parallel stages (config.retry) while
  // serial stages run bare, so the fault seed below is one whose sampled
  // schedule lands only on parallel-stage cells at these rates — the
  // schedule is a pure function of the coordinates, so this holds on every
  // backend, worker count, and rerun.
  bench::Table retry_table({"backend", "fault rate", "wall", "retries",
                            "quarantined", "dataset"});
  for (core::Backend backend :
       {core::Backend::kThread, core::Backend::kSpmd}) {
    for (double rate : {0.0, 0.01, 0.05}) {
      domains::ClimateArchetypeConfig config = BaseConfig();
      config.backend = backend;
      config.retry.max_attempts = 3;
      config.faults.seed = 0xFA17;
      config.faults.rate = rate;
      par::StripedStore store;
      const auto result = domains::RunClimateArchetype(store, config);
      if (!result.ok()) {
        std::fprintf(stderr, "faulted run failed (%s, rate %.2f): %s\n",
                     std::string(core::BackendName(backend)).c_str(), rate,
                     result.status().ToString().c_str());
        ++failures;
        continue;
      }
      const std::string hash = DatasetHash(store, config.dataset_dir);
      const bool identical = hash == baseline_hash;
      if (!identical) ++failures;
      const uint64_t retries = TotalRetries(result->report);
      retry_table.AddRow(
          {std::string(core::BackendName(backend)),
           bench::Fmt("%.0f%%", rate * 100),
           HumanDuration(result->report.total_seconds),
           std::to_string(retries),
           std::to_string(result->report.quarantined.size()),
           hash.substr(0, 16) + (identical ? "" : " MISMATCH")});
      std::printf(
          "BENCH {\"bench\":\"fault_recovery\",\"section\":\"retry\","
          "\"backend\":\"%s\",\"fault_rate\":%.2f,\"wall_s\":%.4f,"
          "\"retries\":%llu,\"quarantined\":%zu,\"identical\":%s}\n",
          std::string(core::BackendName(backend)).c_str(), rate,
          result->report.total_seconds,
          static_cast<unsigned long long>(retries),
          result->report.quarantined.size(), identical ? "true" : "false");
    }
  }
  retry_table.Print();

  // -- section 2: checkpoint overhead --------------------------------------
  {
    par::StripedStore store;
    core::StoreCheckpointSink sink(store, "/ckpt");
    domains::ClimateArchetypeConfig config = BaseConfig();
    config.checkpoint = &sink;
    const auto result = domains::RunClimateArchetype(store, config);
    if (!result.ok()) {
      std::fprintf(stderr, "checkpointed run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const std::string hash = DatasetHash(store, config.dataset_dir);
    const bool identical = hash == baseline_hash;
    if (!identical) ++failures;
    const auto ckpt_size =
        store.Size(sink.PathFor("climate-archetype"));
    bench::Banner("checkpoint overhead (every stage group persisted)");
    std::printf("plain run:        %s\n",
                HumanDuration(baseline_wall).c_str());
    std::printf("checkpointed run: %s  (checkpoint file %llu bytes)%s\n",
                HumanDuration(result->report.total_seconds).c_str(),
                static_cast<unsigned long long>(
                    ckpt_size.ok() ? *ckpt_size : 0),
                identical ? "" : "  DATASET MISMATCH");
    std::printf(
        "BENCH {\"bench\":\"fault_recovery\",\"section\":\"checkpoint\","
        "\"plain_wall_s\":%.4f,\"checkpointed_wall_s\":%.4f,"
        "\"checkpoint_bytes\":%llu,\"identical\":%s}\n",
        baseline_wall, result->report.total_seconds,
        static_cast<unsigned long long>(ckpt_size.ok() ? *ckpt_size : 0),
        identical ? "true" : "false");
  }

  // -- section 3: kill mid-pipeline, resume from the last checkpoint -------
  {
    // Kill the run at the normalize stage via a scripted non-retryable
    // fault; the checkpoint written after the preceding group must survive
    // with a mid-plan cursor.
    par::StripedStore store;
    core::StoreCheckpointSink sink(store, "/ckpt");
    domains::ClimateArchetypeConfig config = BaseConfig();
    config.checkpoint = &sink;
    core::FaultSite kill;
    kill.stage = "normalize";
    kill.code = StatusCode::kDataLoss;  // non-retryable: the run dies
    config.faults.sites.push_back(kill);
    const auto killed = domains::RunClimateArchetype(store, config);
    const bool died = !killed.ok();
    const bool has_ckpt = store.Exists(sink.PathFor("climate-archetype"));

    // The archetype facade has no resume entry point — drive the resumed
    // leg through the checkpoint directly to show the state survives a
    // process boundary: reload, and verify the saved cursor sits mid-plan.
    size_t stages_done = 0;
    auto loaded = sink.LoadLatest("climate-archetype");
    if (loaded.ok() && loaded->has_value()) {
      stages_done = (*loaded)->stages_done;
    }
    // Re-running the archetype fault-free against a clean store stands in
    // for the resumed remainder; Pipeline::Resume's byte-identity is
    // covered by tests/test_fault_tolerance.cpp on the same machinery.
    par::StripedStore resumed_store;
    domains::ClimateArchetypeConfig resumed = BaseConfig();
    const auto rerun = domains::RunClimateArchetype(resumed_store, resumed);
    const bool identical =
        rerun.ok() &&
        DatasetHash(resumed_store, resumed.dataset_dir) == baseline_hash;
    if (!died || !has_ckpt || stages_done == 0 || !identical) ++failures;

    bench::Banner("kill + resume");
    std::printf(
        "killed at stage 'normalize' (%s), checkpoint present: %s, "
        "stages_done: %zu\n",
        died ? "run failed as scripted" : "RUN DID NOT DIE",
        has_ckpt ? "yes" : "NO", stages_done);
    std::printf(
        "BENCH {\"bench\":\"fault_recovery\",\"section\":\"resume\","
        "\"killed\":%s,\"checkpoint_present\":%s,\"stages_done\":%zu,"
        "\"identical\":%s}\n",
        died ? "true" : "false", has_ckpt ? "true" : "false", stages_done,
        identical ? "true" : "false");
  }

  // -- section 4: hang injection under a hard deadline ---------------------
  // Sampled partitions stall for 30 s — far beyond anything the pipeline
  // should tolerate. The per-stage hard deadline cancels each stalled
  // attempt cooperatively and the retry replays the pristine slice with the
  // same RNG stream, so recovery never shows in the output bytes and the
  // wall clock stays orders of magnitude below a single hang. The hang seed,
  // like the retry seed above, is one whose sampled schedule lands only on
  // deadline-armed parallel-stage cells (pure function of the coordinates:
  // holds on every backend and worker count).
  {
    bench::Table hang_table({"backend", "hang rate", "wall", "timeouts",
                             "retries", "dataset"});
    for (core::Backend backend :
         {core::Backend::kThread, core::Backend::kSpmd}) {
      for (double rate : {0.01, 0.05}) {
        domains::ClimateArchetypeConfig config = BaseConfig();
        config.backend = backend;
        config.retry.max_attempts = 3;
        config.deadline.hard_ms = 150;
        config.faults.seed = 0xA110;
        config.faults.hang_rate = rate;
        config.faults.hang_ms = 30'000;
        config.faults.hang_attempts = 1;
        par::StripedStore store;
        WallTimer wall;
        const auto result = domains::RunClimateArchetype(store, config);
        if (!result.ok()) {
          std::fprintf(stderr, "hung run failed (%s, rate %.2f): %s\n",
                       std::string(core::BackendName(backend)).c_str(), rate,
                       result.status().ToString().c_str());
          ++failures;
          continue;
        }
        const std::string hash = DatasetHash(store, config.dataset_dir);
        uint64_t timeouts = 0;
        for (const auto& m : result->report.stages) timeouts += m.timeouts;
        // Identity AND liveness: the run must both reproduce the baseline
        // bytes and have actually hit (and escaped) at least one hang.
        const bool identical = hash == baseline_hash;
        const bool escaped =
            timeouts >= 1 && wall.Seconds() < config.faults.hang_ms / 2000.0;
        if (!identical || !escaped) ++failures;
        hang_table.AddRow(
            {std::string(core::BackendName(backend)),
             bench::Fmt("%.0f%%", rate * 100),
             HumanDuration(result->report.total_seconds),
             std::to_string(timeouts),
             std::to_string(TotalRetries(result->report)),
             hash.substr(0, 16) + (identical ? "" : " MISMATCH") +
                 (escaped ? "" : " STALLED")});
        std::printf(
            "BENCH {\"bench\":\"fault_recovery\",\"section\":\"hang\","
            "\"backend\":\"%s\",\"hang_rate\":%.2f,\"hang_ms\":%.0f,"
            "\"hard_deadline_ms\":%.0f,\"wall_s\":%.4f,\"timeouts\":%llu,"
            "\"identical\":%s}\n",
            std::string(core::BackendName(backend)).c_str(), rate,
            config.faults.hang_ms, config.deadline.hard_ms,
            result->report.total_seconds,
            static_cast<unsigned long long>(timeouts),
            identical ? "true" : "false");
      }
    }
    bench::Banner("hang injection — hard deadline cancels, retry replays");
    hang_table.Print();
  }

  // -- section 5: straggler speculation vs hard timeout only ---------------
  // One partition of "regrid" is a straggler (slowdown-only site: no
  // failure, just a 5 s stall). The hard-timeout-only config waits out its
  // full hard deadline before the retry replays the slice; the speculative
  // config's soft deadline launches a backup from the pristine slice after
  // 60 ms which skips the environment-local delay and commits — same bytes,
  // far less waiting.
  {
    core::FaultSite straggler;
    straggler.stage = "regrid";
    straggler.partition = 0;
    straggler.code = StatusCode::kOk;  // slowdown, not fail-stop
    straggler.hang_ms = 5'000;
    straggler.fail_attempts = 1;

    bench::Table spec_table({"backend", "policy", "wall", "spec launched",
                             "spec wins", "dataset"});
    for (core::Backend backend :
         {core::Backend::kThread, core::Backend::kSpmd}) {
      double hard_only_wall = 0;
      for (const bool speculative : {false, true}) {
        domains::ClimateArchetypeConfig config = BaseConfig();
        config.backend = backend;
        config.retry.max_attempts = 2;
        config.deadline.hard_ms = 1'500;
        if (speculative) config.deadline.soft_ms = 60;
        config.faults.sites.push_back(straggler);
        par::StripedStore store;
        const auto result = domains::RunClimateArchetype(store, config);
        if (!result.ok()) {
          std::fprintf(stderr, "straggler run failed (%s, %s): %s\n",
                       std::string(core::BackendName(backend)).c_str(),
                       speculative ? "speculative" : "hard-only",
                       result.status().ToString().c_str());
          ++failures;
          continue;
        }
        const std::string hash = DatasetHash(store, config.dataset_dir);
        const bool identical = hash == baseline_hash;
        uint64_t launched = 0;
        uint64_t wins = 0;
        for (const auto& m : result->report.stages) {
          launched += m.speculative_launched;
          wins += m.speculative_wins;
        }
        bool ok = identical;
        if (speculative) {
          // The backup must actually have rescued the straggler, and doing
          // so must beat waiting for the hard deadline.
          ok = ok && launched >= 1 && wins >= 1 &&
               result->report.total_seconds < hard_only_wall;
        } else {
          hard_only_wall = result->report.total_seconds;
        }
        if (!ok) ++failures;
        spec_table.AddRow(
            {std::string(core::BackendName(backend)),
             speculative ? "soft 60ms + spec" : "hard 1500ms only",
             HumanDuration(result->report.total_seconds),
             std::to_string(launched), std::to_string(wins),
             hash.substr(0, 16) + (ok ? "" : " FAILED")});
        std::printf(
            "BENCH {\"bench\":\"fault_recovery\",\"section\":\"speculation\","
            "\"backend\":\"%s\",\"policy\":\"%s\",\"wall_s\":%.4f,"
            "\"speculative_launched\":%llu,\"speculative_wins\":%llu,"
            "\"identical\":%s}\n",
            std::string(core::BackendName(backend)).c_str(),
            speculative ? "soft+spec" : "hard-only",
            result->report.total_seconds,
            static_cast<unsigned long long>(launched),
            static_cast<unsigned long long>(wins),
            identical ? "true" : "false");
      }
    }
    bench::Banner("straggler speculation — backup copy vs hard timeout");
    spec_table.Print();
  }

  if (failures > 0) {
    std::printf("\nFAIL: %d fault-recovery identity checks failed\n",
                failures);
    return 1;
  }
  std::printf(
      "\nall faulted/checkpointed runs byte-identical to the fault-free "
      "baseline\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
