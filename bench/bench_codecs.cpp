// A1 — codec ablation: compression ratio and encode/decode throughput for
// every codec on every modality the pipelines emit. This is the table a
// pipeline designer consults when picking SdfDatasetOptions.codec /
// ShardWriterConfig.tensor_codec. google-benchmark drives the timing;
// a ratio table prints first.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "codec/codec.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace drai::codec {
namespace {

Bytes MakeData(const std::string& kind, size_t n) {
  Rng rng(Fnv1a64(kind));
  if (kind == "smooth-f64") {
    // Dequantized-GRIB-like: drifting value snapped to a quantization grid.
    ByteWriter w;
    double v = 250.0;
    for (size_t i = 0; i < n / 8; ++i) {
      v += rng.Normal(0, 0.02);
      w.PutF64(std::round(v * 32.0) / 32.0);
    }
    return w.Take();
  }
  if (kind == "mask") {
    Bytes out;
    while (out.size() < n) {
      const size_t run = 1 + rng.UniformU64(60);
      out.insert(out.end(), std::min(run, n - out.size()),
                 static_cast<std::byte>(rng.UniformU64(2)));
    }
    return out;
  }
  if (kind == "timestamps") {
    ByteWriter w;
    int64_t t = 1700000000;
    for (size_t i = 0; i < n / 8; ++i) {
      t += static_cast<int64_t>(rng.UniformU64(20));
      w.PutI64(t);
    }
    return w.Take();
  }
  if (kind == "text") {
    static const char* kWords[] = {"ingest ", "shard ", "normalize ",
                                   "regrid ", "align ", "graph "};
    std::string s;
    while (s.size() < n) s += kWords[rng.UniformU64(6)];
    s.resize(n - n % 8);
    return ToBytes(s);
  }
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.UniformU64(256));
  return out;
}

void PrintRatioTable() {
  bench::Banner("A1 — compression ratio by codec x modality (256 KiB inputs)");
  const std::vector<std::string> kinds = {"smooth-f64", "mask", "timestamps",
                                          "text", "random"};
  std::vector<std::string> headers = {"codec"};
  for (const auto& k : kinds) headers.push_back(k);
  bench::Table table(headers);
  for (const Codec codec : kAllCodecs) {
    std::vector<std::string> row = {std::string(CodecName(codec))};
    for (const auto& kind : kinds) {
      const Bytes raw = MakeData(kind, 256 << 10);
      const auto framed = Encode(codec, raw);
      if (!framed.ok()) {
        row.push_back("n/a");
        continue;
      }
      row.push_back(bench::Fmt(
          "%.2fx", double(raw.size()) / double(framed->size())));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "shape check: each codec wins its modality — rle on masks, delta on\n"
      "timestamps, xor on quantized fields, lz on text; nothing beats 1x on\n"
      "random bytes.\n");
}

void BM_Encode(benchmark::State& state, Codec codec, const char* kind) {
  const Bytes raw = MakeData(kind, 256 << 10);
  for (auto _ : state) {
    auto framed = Encode(codec, raw);
    benchmark::DoNotOptimize(framed);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(raw.size()));
}

void BM_Decode(benchmark::State& state, Codec codec, const char* kind) {
  const Bytes raw = MakeData(kind, 256 << 10);
  const Bytes framed = Encode(codec, raw).value();
  for (auto _ : state) {
    auto back = Decode(framed);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(raw.size()));
}

BENCHMARK_CAPTURE(BM_Encode, rle_mask, Codec::kRle, "mask");
BENCHMARK_CAPTURE(BM_Decode, rle_mask, Codec::kRle, "mask");
BENCHMARK_CAPTURE(BM_Encode, delta_timestamps, Codec::kDeltaI64, "timestamps");
BENCHMARK_CAPTURE(BM_Decode, delta_timestamps, Codec::kDeltaI64, "timestamps");
BENCHMARK_CAPTURE(BM_Encode, lz_text, Codec::kLz, "text");
BENCHMARK_CAPTURE(BM_Decode, lz_text, Codec::kLz, "text");
BENCHMARK_CAPTURE(BM_Encode, xor_smooth, Codec::kXorF64, "smooth-f64");
BENCHMARK_CAPTURE(BM_Decode, xor_smooth, Codec::kXorF64, "smooth-f64");
BENCHMARK_CAPTURE(BM_Encode, lz_random_worstcase, Codec::kLz, "random");

}  // namespace
}  // namespace drai::codec

int main(int argc, char** argv) {
  drai::codec::PrintRatioTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
