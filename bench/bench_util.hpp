// Shared table-rendering helpers for the drai benchmark binaries. Every
// bench regenerates one of the paper's tables/figures (or quantifies one of
// its claims) and prints it as an aligned text table, so bench_output.txt
// reads like the paper's evaluation section.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace drai::bench {

/// Aligned text table: set headers, add string rows, Print().
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace drai::bench
