// Shared helpers for the drai benchmark binaries: table rendering, dataset
// fingerprinting, and the run-and-hash harness the byte-identity benches
// (and the differential test harness) are built on. Every bench regenerates
// one of the paper's tables/figures (or quantifies one of its claims) and
// prints it as an aligned text table, so bench_output.txt reads like the
// paper's evaluation section.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "domains/climate.hpp"
#include "parallel/striped_store.hpp"

namespace drai::bench {

/// Aligned text table: set headers, add string rows, Print().
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// One fingerprint over every file of the dataset (paths + bytes; List
/// returns paths sorted, so the digest is order-stable).
inline std::string DatasetHash(const par::StripedStore& store,
                               const std::string& prefix) {
  Sha256 hasher;
  for (const std::string& path : store.List(prefix)) {
    hasher.Update(path);
    hasher.Update(store.ReadAll(path).value());
  }
  return DigestToHex(hasher.Finish());
}

/// RunAndHash outcome: the archetype result plus the two identity
/// fingerprints every byte-identity comparison needs.
struct RunAndHashResult {
  Status status;                    ///< archetype status; rest valid iff ok
  domains::ArchetypeResult result;  ///< full archetype outcome
  std::string data_hash;            ///< DatasetHash over the written shards
  std::string provenance_hash;      ///< the run's provenance graph hash
};

/// Run the climate archetype against a fresh in-memory store and fingerprint
/// what it wrote — the one helper behind every "same bytes under different
/// execution" check (worker counts, backends, faults, overlap windows).
inline RunAndHashResult RunAndHash(
    const domains::ClimateArchetypeConfig& config) {
  par::StripedStore store;
  RunAndHashResult out;
  auto run = domains::RunClimateArchetype(store, config);
  out.status = run.status();
  if (!run.ok()) return out;
  out.result = std::move(*run);
  out.data_hash = DatasetHash(store, config.dataset_dir);
  out.provenance_hash = out.result.provenance_hash;
  return out;
}

}  // namespace drai::bench
