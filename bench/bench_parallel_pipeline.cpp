// P1 — the partition-parallel executor on the climate archetype.
//
// Runs the same (large) climate workload at 1, 2, 4, and 8 worker threads
// and checks the §4 scaling story the executor is built around: wall time
// drops with workers while the dataset stays *byte-identical* — every
// shard file and the provenance record hash must match the serial run
// exactly. Any divergence is a hard failure.
#include <thread>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/strings.hpp"
#include "domains/climate.hpp"

namespace drai {
namespace {

/// One fingerprint over every file of the dataset (paths + bytes, sorted).
std::string DatasetHash(const par::StripedStore& store,
                        const std::string& prefix) {
  Sha256 hasher;
  for (const std::string& path : store.List(prefix)) {
    hasher.Update(path);
    hasher.Update(store.ReadAll(path).value());
  }
  return DigestToHex(hasher.Finish());
}

int Main() {
  bench::Banner(
      "parallel executor — climate archetype, same bytes at every "
      "worker count");

  domains::ClimateArchetypeConfig config;
  config.workload.n_times = 48;
  config.workload.n_lat = 64;
  config.workload.n_lon = 128;
  config.workload.variables = {"t2m", "z500", "u10"};
  config.workload.missing_prob = 0.005;
  config.target_lat = 48;
  config.target_lon = 96;
  config.patch = 8;

  std::printf("workload: %zu steps x %zu vars, %zux%zu -> %zux%zu "
              "(%u hardware threads)\n\n",
              config.workload.n_times, config.workload.variables.size(),
              config.workload.n_lat, config.workload.n_lon, config.target_lat,
              config.target_lon, std::thread::hardware_concurrency());

  bench::Table table({"threads", "wall", "speedup", "dataset sha256",
                      "provenance"});
  double serial_seconds = 0;
  double best_speedup = 0;
  std::string baseline_data, baseline_prov;
  bool identical = true;

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    par::StripedStore store;
    config.threads = threads;
    const auto result = domains::RunClimateArchetype(store, config);
    if (!result.ok()) {
      std::fprintf(stderr, "archetype failed at %zu threads: %s\n", threads,
                   result.status().ToString().c_str());
      return 1;
    }
    const std::string data_hash = DatasetHash(store, config.dataset_dir);
    const std::string& prov_hash = result->provenance_hash;
    const double seconds = result->report.total_seconds;
    if (threads == 1) {
      serial_seconds = seconds;
      baseline_data = data_hash;
      baseline_prov = prov_hash;
      std::printf("serial breakdown: %s\n",
                  result->report.TimeBreakdown().c_str());
      for (const auto& st : result->report.stages) {
        std::printf("  %-14s %10s  %s x%zu\n", st.name.c_str(),
                    HumanDuration(st.seconds).c_str(),
                    std::string(core::ExecutionHintName(st.hint)).c_str(),
                    st.partitions);
      }
      std::printf("\n");
    }
    identical = identical && data_hash == baseline_data &&
                prov_hash == baseline_prov;
    const double speedup = serial_seconds / seconds;
    best_speedup = std::max(best_speedup, speedup);
    table.AddRow({std::to_string(threads), HumanDuration(seconds),
                  bench::Fmt("%.2fx", speedup), data_hash.substr(0, 16),
                  prov_hash.substr(0, 16)});
  }
  table.Print();

  if (!identical) {
    std::printf("FAIL: dataset or provenance diverged across worker counts\n");
    return 1;
  }
  std::printf("dataset + provenance byte-identical at every worker count\n");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("best speedup: %.2fx %s\n", best_speedup,
              best_speedup >= 2.0
                  ? "(>= 2x target met)"
                  : cores <= 1 ? "(single-core machine: speedup unavailable)"
                               : "(below 2x target on this machine)");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
