// P1 — the partition-parallel executor on the climate archetype.
//
// Runs the same (large) climate workload at 1, 2, 4, and 8 worker threads
// and checks the §4 scaling story the executor is built around: wall time
// drops with workers while the dataset stays *byte-identical* — every
// shard file and the provenance record hash must match the serial run
// exactly. Any divergence is a hard failure.
#include <thread>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/strings.hpp"
#include "domains/climate.hpp"

namespace drai {
namespace {

int Main() {
  bench::Banner(
      "parallel executor — climate archetype, same bytes at every "
      "worker count");

  domains::ClimateArchetypeConfig config;
  config.workload.n_times = 48;
  config.workload.n_lat = 64;
  config.workload.n_lon = 128;
  config.workload.variables = {"t2m", "z500", "u10"};
  config.workload.missing_prob = 0.005;
  config.target_lat = 48;
  config.target_lon = 96;
  config.patch = 8;

  std::printf("workload: %zu steps x %zu vars, %zux%zu -> %zux%zu "
              "(%u hardware threads)\n\n",
              config.workload.n_times, config.workload.variables.size(),
              config.workload.n_lat, config.workload.n_lon, config.target_lat,
              config.target_lon, std::thread::hardware_concurrency());

  bench::Table table({"threads", "wall", "speedup", "dataset sha256",
                      "provenance"});
  double serial_seconds = 0;
  double best_speedup = 0;
  std::string baseline_data, baseline_prov;
  bool identical = true;

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    config.threads = threads;
    const bench::RunAndHashResult run = bench::RunAndHash(config);
    if (!run.status.ok()) {
      std::fprintf(stderr, "archetype failed at %zu threads: %s\n", threads,
                   run.status.ToString().c_str());
      return 1;
    }
    const std::string& data_hash = run.data_hash;
    const std::string& prov_hash = run.provenance_hash;
    const auto* result = &run.result;
    const double seconds = result->report.total_seconds;
    if (threads == 1) {
      serial_seconds = seconds;
      baseline_data = data_hash;
      baseline_prov = prov_hash;
      std::printf("serial breakdown: %s\n",
                  result->report.TimeBreakdown().c_str());
      for (const auto& st : result->report.stages) {
        std::printf("  %-14s %10s  %s x%zu\n", st.name.c_str(),
                    HumanDuration(st.seconds).c_str(),
                    std::string(core::ExecutionHintName(st.hint)).c_str(),
                    st.partitions);
      }
      std::printf("\n");
    }
    identical = identical && data_hash == baseline_data &&
                prov_hash == baseline_prov;
    const double speedup = serial_seconds / seconds;
    best_speedup = std::max(best_speedup, speedup);
    table.AddRow({std::to_string(threads), HumanDuration(seconds),
                  bench::Fmt("%.2fx", speedup), data_hash.substr(0, 16),
                  prov_hash.substr(0, 16)});
  }
  table.Print();

  if (!identical) {
    std::printf("FAIL: dataset or provenance diverged across worker counts\n");
    return 1;
  }
  std::printf("dataset + provenance byte-identical at every worker count\n");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("best speedup: %.2fx %s\n", best_speedup,
              best_speedup >= 2.0
                  ? "(>= 2x target met)"
                  : cores <= 1 ? "(single-core machine: speedup unavailable)"
                               : "(below 2x target on this machine)");

  bench::Banner(
      "inter-stage overlap — skewed normalize streams into patch, "
      "same bytes");

  // A deterministic straggler schedule: a seeded ~1-in-8 subset of time
  // steps costs 10x in normalize. Behind a barrier, every worker waits for
  // the hot partitions before any patching starts; with the normalize ->
  // patch boundary streaming, cold partitions patch while the stragglers
  // burn. The schedule keys off time steps (never partitions), so barrier
  // and overlap runs do identical work.
  domains::ClimateArchetypeConfig skewed;
  skewed.workload.n_times = 32;
  skewed.workload.n_lat = 48;
  skewed.workload.n_lon = 96;
  skewed.workload.variables = {"t2m", "z500", "u10"};
  skewed.target_lat = 32;
  skewed.target_lon = 64;
  skewed.patch = 8;
  skewed.threads = 8;
  skewed.normalize_grain = 4;  // 8 normalize partitions -> 32 patch partitions
  skewed.skew.hot_fraction = 0.125;
  skewed.skew.multiplier = 10.0;
  skewed.skew.seed = 0x5CE3;
  skewed.skew.base_iters = 6'000'000;

  double barrier_wall = 0, overlap_wall = 0;
  std::string barrier_data, barrier_prov;
  bool overlap_identical = true;
  uint64_t windows = 0;
  double saved = 0;
  for (const bool overlap : {false, true}) {
    skewed.overlap = overlap;
    const bench::RunAndHashResult run = bench::RunAndHash(skewed);
    if (!run.status.ok()) {
      std::fprintf(stderr, "skewed archetype failed (overlap=%d): %s\n",
                   overlap, run.status.ToString().c_str());
      return 1;
    }
    if (!overlap) {
      barrier_wall = run.result.report.total_seconds;
      barrier_data = run.data_hash;
      barrier_prov = run.provenance_hash;
    } else {
      overlap_wall = run.result.report.total_seconds;
      windows = run.result.report.overlap_windows;
      saved = run.result.report.overlap_seconds_saved;
      overlap_identical = run.data_hash == barrier_data &&
                          run.provenance_hash == barrier_prov;
    }
    std::printf("  %-8s %10s  dataset %s  provenance %s\n",
                overlap ? "overlap" : "barrier",
                HumanDuration(run.result.report.total_seconds).c_str(),
                run.data_hash.substr(0, 16).c_str(),
                run.provenance_hash.substr(0, 16).c_str());
  }
  const double overlap_speedup =
      overlap_wall > 0 ? barrier_wall / overlap_wall : 0;
  std::printf("overlap windows: %llu, estimated %.2fs saved, speedup %.2fx %s\n",
              static_cast<unsigned long long>(windows), saved, overlap_speedup,
              overlap_speedup >= 1.3
                  ? "(>= 1.3x target met)"
                  : cores <= 1 ? "(single-core machine: speedup unavailable)"
                               : "(below 1.3x target on this machine)");
  std::printf(
      "BENCH {\"bench\":\"parallel_pipeline\",\"section\":\"overlap\","
      "\"barrier_wall_s\":%.4f,\"overlap_wall_s\":%.4f,\"speedup\":%.3f,"
      "\"overlap_windows\":%llu,\"overlap_seconds_saved\":%.4f,"
      "\"identical\":%s}\n",
      barrier_wall, overlap_wall, overlap_speedup,
      static_cast<unsigned long long>(windows), saved,
      overlap_identical ? "true" : "false");
  if (!overlap_identical) {
    std::printf("FAIL: overlap run diverged from the barriered run\n");
    return 1;
  }
  std::printf("overlap run byte-identical to the barriered run\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
