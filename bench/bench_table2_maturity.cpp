// T2 — regenerates Table 2: the 2-D conceptual maturity matrix (Data
// Readiness Levels x Data Processing Stages). First the requirement matrix
// itself, then five datasets staged at levels 1..5 assessed against it,
// showing the per-cell satisfaction pattern and the blocking cells.
#include "bench_util.hpp"
#include "core/readiness.hpp"

namespace drai {
namespace {

using core::DatasetState;
using core::ReadinessLevel;

DatasetState StateAtLevel(ReadinessLevel level) {
  DatasetState s;
  const auto at_least = [&](ReadinessLevel l) {
    return static_cast<int>(level) >= static_cast<int>(l);
  };
  s.acquired = at_least(ReadinessLevel::kRaw);
  s.validated_standard_format = at_least(ReadinessLevel::kCleaned);
  s.initial_alignment = at_least(ReadinessLevel::kCleaned);
  s.metadata_enriched = at_least(ReadinessLevel::kLabeled);
  s.grids_standardized = at_least(ReadinessLevel::kLabeled);
  s.basic_normalization = at_least(ReadinessLevel::kLabeled);
  s.basic_labels = at_least(ReadinessLevel::kLabeled);
  s.label_fraction = at_least(ReadinessLevel::kLabeled) ? 1.0 : 0.0;
  s.high_throughput_ingest = at_least(ReadinessLevel::kFeatureEngineered);
  s.alignment_fully_standardized =
      at_least(ReadinessLevel::kFeatureEngineered);
  s.normalization_finalized = at_least(ReadinessLevel::kFeatureEngineered);
  s.comprehensive_labels = at_least(ReadinessLevel::kFeatureEngineered);
  s.features_extracted = at_least(ReadinessLevel::kFeatureEngineered);
  s.ingest_automated = at_least(ReadinessLevel::kAiReady);
  s.alignment_automated = at_least(ReadinessLevel::kAiReady);
  s.transform_automated_audited = at_least(ReadinessLevel::kAiReady);
  s.features_validated = at_least(ReadinessLevel::kAiReady);
  s.split_and_sharded = at_least(ReadinessLevel::kAiReady);
  return s;
}

int Main() {
  bench::Banner("Table 2 — requirement matrix (levels x stages)");
  std::printf("%s\n", core::RenderMaturityMatrix().c_str());
  for (core::StageKind stage : core::kAllStageKinds) {
    std::printf("\n[%s]\n", std::string(core::StageKindName(stage)).c_str());
    for (ReadinessLevel level : core::kAllReadinessLevels) {
      const auto cell = core::MatrixCell(level, stage);
      if (cell.has_value()) {
        std::printf("  %-22s %s\n",
                    std::string(core::ReadinessLevelName(level)).c_str(),
                    std::string(*cell).c_str());
      }
    }
  }

  bench::Banner("datasets staged at each level, assessed against the matrix");
  bench::Table table({"staged state", "assessed level", "ingest", "preprocess",
                      "transform", "structure", "shard", "first blocker"});
  for (ReadinessLevel level : core::kAllReadinessLevels) {
    const DatasetState state = StateAtLevel(level);
    const core::ReadinessAssessment a = core::Assess(state);
    std::vector<std::string> row;
    row.push_back(std::string(core::ReadinessLevelName(level)));
    row.push_back(std::string(core::ReadinessLevelName(a.overall)));
    for (size_t s = 0; s < 5; ++s) {
      row.push_back(std::string(core::ReadinessLevelName(a.per_stage[s])));
    }
    row.push_back(a.blocking.empty() ? "-" : a.blocking.front());
    table.AddRow(std::move(row));
  }
  table.Print();

  bench::Banner("cell satisfaction for a level-3 dataset");
  std::printf("%s\n",
              core::RenderMaturityMatrix(StateAtLevel(ReadinessLevel::kLabeled))
                  .c_str());

  // A degraded case: all level-2 machinery ran but quality is poor.
  bench::Banner("quality gate — 'cleaned' machinery with 40% missing data");
  DatasetState dirty = StateAtLevel(ReadinessLevel::kCleaned);
  dirty.missing_fraction = 0.4;
  const auto verdict = core::Assess(dirty);
  std::printf("assessed: %s (machinery says 2, data says otherwise)\n",
              std::string(core::ReadinessLevelName(verdict.overall)).c_str());
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
