// F1 — regenerates Figure 1: the general raw -> AI-ready transformation.
//
// A generic synthetic dataset (tabular features with missing values, an
// unlabeled fraction, and class imbalance) is pushed through every step of
// the paper's figure — clean, normalize, augment, (pseudo-)label,
// feature-engineer, split, shard — as one core::Pipeline whose report
// supplies the per-step wall times, and the dataset's assessed readiness
// level is recorded after each stage, including Figure 1's feedback
// iteration.
#include <cmath>
#include <limits>

#include "augment/augment.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/pipeline.hpp"
#include "core/quality.hpp"
#include "core/readiness.hpp"
#include "ml/models.hpp"
#include "parallel/striped_store.hpp"
#include "shard/shard_reader.hpp"
#include "shard/shard_writer.hpp"
#include "stats/normalizer.hpp"

namespace drai {
namespace {

constexpr size_t kRows = 4000;
constexpr size_t kFeatures = 8;

struct Step {
  std::string records;
  std::string readiness;
  std::string note;
};

int Main() {
  bench::Banner("Figure 1 — general steps from raw to AI-ready");

  // Pipeline-shared state (the figure's working set).
  std::vector<int64_t> labels(kRows, -1);
  NDArray synth;               // SMOTE output, rows appended at shard time
  NDArray engineered;          // features + 2 derived columns
  augment::PseudoLabelResult pl;
  size_t n_synth = 0;
  par::StripedStore store;
  shard::DatasetManifest manifest;

  // Readiness is re-assessed after every stage — the table's third column.
  core::DatasetState state;
  std::vector<Step> steps;
  auto record = [&](size_t records, const std::string& note) {
    steps.push_back({std::to_string(records),
                     std::string(core::ReadinessLevelName(
                         core::Assess(state).overall)),
                     note});
  };

  core::Pipeline pipeline("fig1-generic");

  // Acquire: two latent classes, 3% missing cells, 30% unlabeled.
  pipeline.Add(
      "acquire (raw)", core::StageKind::kIngest,
      [&](core::DataBundle& bundle, core::StageContext&) -> Status {
        Rng rng(314);
        NDArray features = NDArray::Zeros({kRows, kFeatures}, DType::kF64);
        for (size_t i = 0; i < kRows; ++i) {
          const int64_t cls = rng.Bernoulli(0.85) ? 0 : 1;  // imbalanced
          for (size_t j = 0; j < kFeatures; ++j) {
            double v =
                rng.Normal(cls == 0 ? 0.0 : 2.5, 1.0) * (1.0 + double(j));
            if (rng.Bernoulli(0.03)) {
              v = std::numeric_limits<double>::quiet_NaN();
            }
            features.SetFromDouble(i * kFeatures + j, v);
          }
          if (rng.Bernoulli(0.7)) labels[i] = cls;
        }
        bundle.tensors["features"] = std::move(features);
        state.acquired = true;
        record(kRows, "3% missing, 30% unlabeled, 85/15 skew");
        return Status::Ok();
      });

  // Clean: fill missing cells with the column median.
  pipeline.Add(
      "clean", core::StageKind::kPreprocess,
      [&](core::DataBundle& bundle, core::StageContext&) -> Status {
        NDArray& features = bundle.tensors.at("features");
        size_t filled = 0;
        for (size_t j = 0; j < kFeatures; ++j) {
          std::vector<double> col;
          for (size_t i = 0; i < kRows; ++i) {
            const double v = features.GetAsDouble(i * kFeatures + j);
            if (!std::isnan(v)) col.push_back(v);
          }
          const double median = stats::ExactQuantile(col, 0.5);
          for (size_t i = 0; i < kRows; ++i) {
            if (std::isnan(features.GetAsDouble(i * kFeatures + j))) {
              features.SetFromDouble(i * kFeatures + j, median);
              ++filled;
            }
          }
        }
        state.validated_standard_format = true;
        state.initial_alignment = true;
        state.missing_fraction = 0.0;
        record(kRows, std::to_string(filled) + " cells median-filled");
        return Status::Ok();
      });

  // Normalize (z-score per feature, streaming fit).
  pipeline.Add(
      "normalize", core::StageKind::kTransform,
      [&](core::DataBundle& bundle, core::StageContext&) -> Status {
        NDArray& features = bundle.tensors.at("features");
        stats::Normalizer norm(stats::NormKind::kZScore, kFeatures);
        norm.ObserveMatrix(features);
        norm.Fit();
        norm.ApplyMatrix(features);
        state.metadata_enriched = true;
        state.grids_standardized = true;
        state.basic_normalization = true;
        record(kRows, "z-score per feature");
        return Status::Ok();
      });

  // Augment: SMOTE the minority class up.
  pipeline.Add(
      "augment", core::StageKind::kTransform,
      [&](core::DataBundle& bundle, core::StageContext& ctx) -> Status {
        const NDArray& features = bundle.tensors.at("features");
        std::vector<size_t> minority;
        for (size_t i = 0; i < kRows; ++i) {
          if (labels[i] == 1) minority.push_back(i);
        }
        n_synth = minority.size();  // double the minority
        Rng aug_rng = ctx.rng();
        DRAI_ASSIGN_OR_RETURN(
            synth,
            augment::SmoteSynthesize(features, minority, n_synth, 5, aug_rng));
        record(kRows + n_synth,
               "SMOTE +" + std::to_string(n_synth) + " minority samples");
        return Status::Ok();
      });

  // Label: pseudo-label the unlabeled 30% via kNN self-training.
  pipeline.Add(
      "label (pseudo)", core::StageKind::kTransform,
      [&](core::DataBundle& bundle, core::StageContext&) -> Status {
        const NDArray& features = bundle.tensors.at("features");
        augment::TrainFn train = [](const NDArray& x,
                                    std::span<const int64_t> y) {
          auto knn = std::make_shared<ml::KnnClassifier>(5);
          knn->Fit(x, y).status().OrDie();
          return augment::Classifier(
              [knn](std::span<const double> row) { return knn->Predict(row); });
        };
        augment::PseudoLabelOptions plo;
        plo.confidence_threshold = 0.8;
        plo.max_rounds = 3;
        DRAI_ASSIGN_OR_RETURN(pl,
                              augment::PseudoLabel(features, labels, train, plo));
        size_t labeled = 0;
        for (int64_t l : pl.labels) {
          if (l >= 0) ++labeled;
        }
        state.basic_labels = true;
        state.label_fraction = double(labeled) / kRows;
        state.comprehensive_labels = state.label_fraction >= 0.95;
        record(kRows, std::to_string(pl.total_adopted) + " adopted in " +
                          std::to_string(pl.rounds_run) + " rounds -> " +
                          bench::Fmt("%.0f%%", 100 * state.label_fraction) +
                          " labeled");
        return Status::Ok();
      });

  // Feature engineering: append two derived features (row mean/extent).
  pipeline.Add(
      "feature-engineer", core::StageKind::kStructure,
      [&](core::DataBundle& bundle, core::StageContext&) -> Status {
        const NDArray& features = bundle.tensors.at("features");
        engineered = NDArray::Zeros({kRows + n_synth, kFeatures + 2},
                                    DType::kF64);
        auto emit = [&](size_t out_row, const NDArray& src, size_t src_row) {
          double sum = 0, mn = 1e300, mx = -1e300;
          for (size_t j = 0; j < kFeatures; ++j) {
            const double v = src.GetAsDouble(src_row * kFeatures + j);
            engineered.SetFromDouble(out_row * (kFeatures + 2) + j, v);
            sum += v;
            mn = std::min(mn, v);
            mx = std::max(mx, v);
          }
          engineered.SetFromDouble(out_row * (kFeatures + 2) + kFeatures,
                                   sum / kFeatures);
          engineered.SetFromDouble(out_row * (kFeatures + 2) + kFeatures + 1,
                                   mx - mn);
        };
        for (size_t i = 0; i < kRows; ++i) emit(i, features, i);
        for (size_t s = 0; s < n_synth; ++s) emit(kRows + s, synth, s);
        state.high_throughput_ingest = true;
        state.alignment_fully_standardized = true;
        state.normalization_finalized = true;
        state.features_extracted = true;
        record(kRows + n_synth, "+2 derived features");
        return Status::Ok();
      });

  // Split + shard.
  pipeline.Add(
      "split + shard", core::StageKind::kShard,
      [&](core::DataBundle&, core::StageContext&) -> Status {
        shard::ShardWriterConfig wc;
        wc.dataset_name = "fig1-generic";
        wc.directory = "/datasets/fig1";
        shard::ShardWriter writer(store, wc);
        const size_t total = kRows + n_synth;
        for (size_t i = 0; i < total; ++i) {
          shard::Example ex;
          ex.key = "row-" + std::to_string(i);
          NDArray x = NDArray::Zeros({kFeatures + 2}, DType::kF32);
          for (size_t j = 0; j < kFeatures + 2; ++j) {
            x.SetFromDouble(j,
                            engineered.GetAsDouble(i * (kFeatures + 2) + j));
          }
          ex.features["x"] = std::move(x);
          ex.SetLabel(i < kRows ? (pl.labels[i] >= 0 ? pl.labels[i] : 0) : 1);
          DRAI_ASSIGN_OR_RETURN(shard::Split s, writer.Add(ex));
          (void)s;
        }
        DRAI_ASSIGN_OR_RETURN(manifest, writer.Finalize());
        state.ingest_automated = true;
        state.alignment_automated = true;
        state.transform_automated_audited = true;
        state.features_validated = true;
        state.split_and_sharded = true;
        record(
            manifest.TotalRecords(),
            std::to_string(manifest.shards.at(shard::Split::kTrain).size()) +
                "/" +
                std::to_string(
                    manifest.shards.count(shard::Split::kVal)
                        ? manifest.shards.at(shard::Split::kVal).size()
                        : 0) +
                "/" +
                std::to_string(
                    manifest.shards.count(shard::Split::kTest)
                        ? manifest.shards.at(shard::Split::kTest).size()
                        : 0) +
                " shards, " + HumanBytes(manifest.TotalBytes()));
        return Status::Ok();
      });

  core::DataBundle bundle;
  const core::PipelineReport report = pipeline.Run(bundle);
  if (!report.ok) {
    std::fprintf(stderr, "fig1 pipeline failed: %s\n",
                 report.error.ToString().c_str());
    return 1;
  }

  bench::Table table({"step", "records", "wall", "readiness after", "notes"});
  for (size_t i = 0; i < steps.size(); ++i) {
    table.AddRow({report.stages[i].name, steps[i].records,
                  HumanDuration(report.stages[i].seconds), steps[i].readiness,
                  steps[i].note});
  }
  table.Print();
  std::printf("curation time: %s\n", report.TimeBreakdown().c_str());

  // Figure 1's feedback arrow: train on the shards; if val R2 is poor the
  // pipeline would iterate (here we report one iteration's verdict).
  bench::Banner("Figure 1 feedback loop — model verdict on the shards");
  const auto reader = shard::ShardReader::Open(store, "/datasets/fig1").value();
  const auto train_examples = reader.ReadAll(shard::Split::kTrain).value();
  NDArray x = NDArray::Zeros(Shape{train_examples.size(), kFeatures + 2},
                             DType::kF64);
  std::vector<int64_t> y(train_examples.size());
  for (size_t i = 0; i < train_examples.size(); ++i) {
    const NDArray* f = train_examples[i].Find("x");
    for (size_t j = 0; j < kFeatures + 2; ++j) {
      x.SetFromDouble(i * (kFeatures + 2) + j, f->GetAsDouble(j));
    }
    y[i] = train_examples[i].Label().value();
  }
  ml::SoftmaxClassifier clf(2);
  ml::SgdOptions options;
  options.learning_rate = 0.3;
  options.epochs = 15;
  clf.Fit(x, y, options).value();
  const double acc = clf.Evaluate(x, y).value();
  std::printf("classifier accuracy on AI-ready shards: %.3f -> %s\n", acc,
              acc > 0.9 ? "accept dataset (loop converged)"
                        : "iterate: refine cleaning/labeling");
  return acc > 0.9 ? 0 : 1;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
