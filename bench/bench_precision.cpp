// S6 — the precision requirement (§2.2: scientific data demands 32/64-bit
// floats). A climate field is pushed through the normalize step at f64,
// f32, and f16 working precision; the bench reports the storage saved and
// the numerical error each narrowing costs — the tradeoff a pipeline
// designer must justify against the paper's precision ladder.
#include <cmath>

#include "bench_util.hpp"
#include "codec/quantize.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "ndarray/kernels.hpp"
#include "stats/normalizer.hpp"
#include "workloads/climate.hpp"

namespace drai {
namespace {

int Main() {
  bench::Banner("S6 — working-precision ladder on a normalized climate field");
  workloads::ClimateConfig config;
  config.n_times = 4;
  config.n_lat = 64;
  config.n_lon = 128;
  config.variables = {"t2m"};
  const auto fields = workloads::GenerateClimateFields(config);

  // Reference: f64 end to end.
  NDArray reference =
      NDArray::Zeros({config.n_times, config.n_lat, config.n_lon},
                     DType::kF64);
  for (size_t t = 0; t < fields.size(); ++t) {
    NDArray slot = reference.Slice(0, t, t + 1)
                       .Reshape({config.n_lat, config.n_lon});
    slot.CopyFrom(fields[t].field);
  }
  stats::Normalizer norm(stats::NormKind::kZScore, 1);
  for (size_t i = 0; i < reference.numel(); ++i) {
    norm.Observe(0, reference.GetAsDouble(i));
  }
  norm.Fit();
  NDArray normalized_ref = reference;
  norm.ApplyAll(normalized_ref);

  bench::Table table({"precision", "bytes", "vs f64", "max |err|", "RMS err",
                      "err / field range"});
  const double range = Max(reference) - Min(reference);
  for (const DType dtype : {DType::kF64, DType::kF32, DType::kF16}) {
    // Narrow the *input*, normalize in that precision, compare outputs.
    NDArray narrow_in = reference.Cast(dtype);
    NDArray narrow_norm = narrow_in.Cast(DType::kF64);
    norm.ApplyAll(narrow_norm);
    // Error measured in physical units after inverting normalization.
    NDArray physical = narrow_norm;
    for (size_t i = 0; i < physical.numel(); ++i) {
      physical.SetFromDouble(i, norm.Invert(0, physical.GetAsDouble(i)));
    }
    const double max_err = MaxAbsDiff(reference, physical);
    const double rms = RmsDiff(reference, physical);
    table.AddRow({std::string(DTypeName(dtype)),
                  HumanBytes(reference.numel() * DTypeSize(dtype)),
                  bench::Fmt("%.2fx", double(DTypeSize(DType::kF64)) /
                                          double(DTypeSize(dtype))),
                  bench::Fmt("%.3e", max_err), bench::Fmt("%.3e", rms),
                  bench::Fmt("%.2e", range > 0 ? max_err / range : 0)});
  }
  table.Print();
  std::printf(
      "shape check: f32 is ~1e-5 of range (fine for most surrogates); f16 is\n"
      "~1e-3 of range — the level the paper warns may violate physical\n"
      "constraints in stiff models.\n");

  bench::Banner("GRIB-style integer packing as the storage alternative");
  bench::Table pack_table({"packing", "bytes/value", "max |err|",
                           "err / range"});
  std::vector<double> values(reference.numel());
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = reference.GetAsDouble(i);
  }
  for (const uint8_t bits : {uint8_t{8}, uint8_t{16}}) {
    const auto pack = codec::LinearQuantize(values, bits).value();
    const auto err = codec::MeasureLinearError(values, pack);
    pack_table.AddRow({std::to_string(int(bits)) + "-bit linear",
                       bench::Fmt("%.1f", bits / 8.0),
                       bench::Fmt("%.3e", err.max_abs),
                       bench::Fmt("%.2e", err.relative_to_range)});
  }
  pack_table.Print();
  std::printf(
      "shape check: 16-bit linear packing bounds error by range/65535 —\n"
      "tighter than f16 on smooth bounded fields, which is why GRIB packs\n"
      "rather than narrows.\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
