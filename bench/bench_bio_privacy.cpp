// S4 — the bio archetype's encode + anonymize costs (§3.3): one-hot /
// tiling throughput for sequence encoding, and the privacy battery's cost
// as record counts grow (HMAC pseudonymization, date shifting,
// k-anonymity), plus the privacy/utility outcome.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "privacy/anonymize.hpp"
#include "sequence/sequence.hpp"
#include "workloads/bio.hpp"

namespace drai {
namespace {

int Main() {
  bench::Banner("S4a — sequence encoding throughput");
  {
    Rng rng(1);
    std::string seq(1 << 20, 'A');
    static const char kBases[] = "ACGT";
    for (char& c : seq) c = kBases[rng.UniformU64(4)];

    WallTimer timer;
    const auto onehot = sequence::OneHot(sequence::Alphabet::kDna, seq).value();
    const double onehot_s = timer.Seconds();
    timer.Reset();
    const auto tiles = sequence::Tile(seq, 512, 512);
    const double tile_s = timer.Seconds();
    timer.Reset();
    sequence::KmerTokenizer tok(sequence::Alphabet::kDna, 6);
    const auto tokens = tok.Tokenize(seq).value();
    const double kmer_s = timer.Seconds();

    bench::Table table({"operation", "input", "wall", "throughput"});
    table.AddRow({"one-hot (4ch f32)", "1 MiB DNA", HumanDuration(onehot_s),
                  HumanBytes(uint64_t(seq.size() / onehot_s)) + "/s"});
    table.AddRow({"tile 512/512", std::to_string(tiles.size()) + " tiles",
                  HumanDuration(tile_s),
                  HumanBytes(uint64_t(seq.size() / tile_s)) + "/s"});
    table.AddRow({"6-mer tokenize", std::to_string(tokens.size()) + " tokens",
                  HumanDuration(kmer_s),
                  HumanBytes(uint64_t(seq.size() / kmer_s)) + "/s"});
    table.Print();
    (void)onehot;
  }

  bench::Banner("S4b — privacy battery cost vs record count");
  bench::Table table({"records", "classify", "pseudonymize", "date-shift",
                      "k-anonymize(k=5)", "k achieved", "suppressed"});
  for (const size_t n : {1000ul, 5000ul, 20000ul}) {
    workloads::BioConfig config;
    config.n_subjects = n;
    config.sequence_length = 8;  // sequences irrelevant here
    auto workload = workloads::GenerateBioWorkload(config);
    privacy::Table& t = workload.clinical;

    WallTimer timer;
    std::vector<std::string> direct;
    for (size_t c = 0; c < t.columns.size(); ++c) {
      std::vector<std::string> sample;
      for (size_t r = 0; r < std::min<size_t>(t.rows.size(), 32); ++r) {
        sample.push_back(t.rows[r][c]);
      }
      if (privacy::ClassifyField(t.columns[c], sample) ==
          privacy::FieldClass::kDirectIdentifier) {
        direct.push_back(t.columns[c]);
      }
    }
    const double classify_s = timer.Seconds();

    timer.Reset();
    privacy::Pseudonymizer pseudo("bench-key-0123456789abcdef");
    for (const auto& col : direct) {
      pseudo.PseudonymizeColumn(t, col).OrDie();
    }
    const double pseudo_s = timer.Seconds();

    timer.Reset();
    privacy::DateShifter shifter("bench-key-0123456789abcdef");
    shifter.ShiftColumn(t, "subject_id", "dob").OrDie();
    shifter.ShiftColumn(t, "subject_id", "admit_date").OrDie();
    const double shift_s = timer.Seconds();

    timer.Reset();
    privacy::KAnonymityConfig kc;
    kc.k = 5;
    kc.numeric_bands["age"] = 5;
    kc.prefix_lengths["zip"] = 3;
    const auto report = privacy::EnforceKAnonymity(t, kc).value();
    const double kanon_s = timer.Seconds();

    table.AddRow({std::to_string(n), HumanDuration(classify_s),
                  HumanDuration(pseudo_s), HumanDuration(shift_s),
                  HumanDuration(kanon_s), std::to_string(report.k_achieved),
                  std::to_string(report.suppressed_rows)});
  }
  table.Print();
  std::printf(
      "shape check: the battery scales ~linearly with records; suppression\n"
      "falls as cohorts grow (bigger equivalence classes) — the reason small\n"
      "clinical cohorts are the hard privacy case.\n");

  bench::Banner("S4c — privacy/utility: l-diversity after de-identification");
  workloads::BioConfig config;
  config.n_subjects = 5000;
  config.sequence_length = 8;
  auto workload = workloads::GenerateBioWorkload(config);
  privacy::KAnonymityConfig kc;
  kc.k = 5;
  kc.numeric_bands["age"] = 5;
  kc.prefix_lengths["zip"] = 3;
  privacy::EnforceKAnonymity(workload.clinical, kc).value();
  const size_t diversity =
      privacy::MinDiversity(workload.clinical, {"age", "zip"}, "diagnosis")
          .value();
  std::printf("min l-diversity over (age, zip) classes: %zu%s\n", diversity,
              diversity >= 2 ? " (no homogeneous class leaks a diagnosis)"
                             : " (homogeneity attack possible!)");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
