// T1 — regenerates Table 1: the four domain archetypes with their workflow
// steps, modalities, and readiness challenges — except that here every
// column is *measured* from an actual pipeline run rather than asserted.
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "domains/bio.hpp"
#include "domains/climate.hpp"
#include "domains/fusion.hpp"
#include "domains/materials.hpp"

namespace drai {
namespace {

std::string StepList(const core::PipelineReport& report) {
  std::string out;
  for (const auto& stage : report.stages) {
    if (!out.empty()) out += " -> ";
    out += stage.name;
    // Mark stages the executor ran partitioned ("*" = data-parallel).
    if (stage.hint != core::ExecutionHint::kSerial) out += "*";
  }
  return out;
}

int Main() {
  bench::Banner(
      "Table 1 — representative pipelines, modalities, and readiness "
      "challenges (measured)");
  par::StripedStore store;
  bench::Table table({"domain", "workflow steps (measured)", "modality",
                      "challenge observed", "records", "readiness"});

  {
    domains::ClimateArchetypeConfig config;
    config.workload.n_times = 6;
    config.workload.n_lat = 32;
    config.workload.n_lon = 64;
    config.workload.missing_prob = 0.01;
    config.target_lat = 24;
    config.target_lon = 48;
    config.patch = 8;
    config.threads = 4;
    const auto r = domains::RunClimateArchetype(store, config).value();
    table.AddRow(
        {"climate", StepList(r.report), "spatial/temporal grids",
         "gaussian->uniform regrid; " +
             bench::Fmt("%.1f%%", 100 * 0.01) + " cells missing (bitmap)",
         std::to_string(r.manifest.TotalRecords()),
         std::string(core::ReadinessLevelName(r.readiness.overall))});
  }
  {
    domains::FusionArchetypeConfig config;
    config.workload.n_shots = 24;
    config.workload.unlabeled_fraction = 0.2;
    config.threads = 4;
    const auto r = domains::RunFusionArchetype(store, config).value();
    table.AddRow(
        {"fusion", StepList(r.report), "multi-channel time series",
         "irregular clocks aligned; sparse labels -> pseudo-labeled to " +
             bench::Fmt("%.0f%%", 100 * r.state.label_fraction),
         std::to_string(r.manifest.TotalRecords()),
         std::string(core::ReadinessLevelName(r.readiness.overall))});
  }
  {
    domains::BioArchetypeConfig config;
    config.workload.n_subjects = 150;
    config.k_anonymity = 4;
    config.threads = 4;
    const auto r = domains::RunBioArchetype(store, config).value();
    table.AddRow(
        {"bio/health", StepList(r.report), "sequences + tabular",
         "PHI pseudonymized, dates shifted, k=" +
             std::to_string(r.k_report.k_achieved) + ", audit " +
             std::to_string(r.audit.size()) + " entries; labels " +
             bench::Fmt("%.0f%%", 100 * r.state.label_fraction) +
             " (limited labels cap readiness)",
         std::to_string(r.manifest.TotalRecords()),
         std::string(core::ReadinessLevelName(r.readiness.overall))});
  }
  {
    domains::MaterialsArchetypeConfig config;
    config.workload.n_structures = 80;
    config.threads = 4;
    const auto r = domains::RunMaterialsArchetype(store, config).value();
    table.AddRow(
        {"materials", StepList(r.report), "graph structures",
         "class imbalance " + bench::Fmt("%.1f", r.imbalance_before) +
             " -> " + bench::Fmt("%.2f", r.imbalance_after) +
             " after oversampling",
         std::to_string(r.manifest.TotalRecords()),
         std::string(core::ReadinessLevelName(r.readiness.overall))});
  }
  table.Print();
  std::printf("  * = stage ran partition-parallel (4 workers; byte-identical "
              "to serial)\n");

  bench::Banner("per-domain stage-time breakdown (where curation time goes)");
  // Re-run cheaply to expose the pattern the fusion-ML workshop reported
  // (§3.2: "70% of time on data curation").
  par::StripedStore store2;
  domains::FusionArchetypeConfig fc;
  fc.workload.n_shots = 24;
  const auto fr = domains::RunFusionArchetype(store2, fc).value();
  std::printf("fusion: %s\n", fr.report.TimeBreakdown().c_str());
  domains::ClimateArchetypeConfig cc;
  cc.workload.n_times = 6;
  cc.workload.n_lat = 32;
  cc.workload.n_lon = 64;
  cc.target_lat = 24;
  cc.target_lon = 48;
  const auto cr = domains::RunClimateArchetype(store2, cc).value();
  std::printf("climate: %s\n", cr.report.TimeBreakdown().c_str());
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
