// S2 — the climate archetype's regrid step (§3.1): method x resolution
// sweep reporting wall time, interpolation error against the analytic
// field, and global-mean drift (the conservation property). Then the
// end-to-end climate pipeline stage breakdown.
#include <cmath>
#include <numbers>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "domains/climate.hpp"
#include "grid/latlon.hpp"

namespace drai {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

NDArray AnalyticField(const grid::LatLonGrid& g) {
  NDArray f = NDArray::Zeros({g.n_lat(), g.n_lon()}, DType::kF64);
  for (size_t i = 0; i < g.n_lat(); ++i) {
    for (size_t j = 0; j < g.n_lon(); ++j) {
      const double lat = g.lat(i) * kDegToRad;
      const double lon = g.lon(j) * kDegToRad;
      f.SetFromDouble(i * g.n_lon() + j,
                      280.0 + 30.0 * std::cos(lat) * std::sin(2 * lon) +
                          10.0 * std::sin(3 * lat));
    }
  }
  return f;
}

int Main() {
  bench::Banner(
      "S2 — regrid method x target resolution (source: gaussian-like "
      "96x192)");
  const grid::LatLonGrid src = grid::LatLonGrid::GaussianLike(96, 192);
  const NDArray field = AnalyticField(src);
  const double src_mean = grid::AreaWeightedMean(field, src).value();

  bench::Table table({"method", "target", "wall", "max err (|lat|<78)",
                      "global-mean drift"});
  for (const auto method :
       {grid::RegridMethod::kNearest, grid::RegridMethod::kBilinear,
        grid::RegridMethod::kConservative}) {
    for (const auto& [nlat, nlon] :
         std::vector<std::pair<size_t, size_t>>{{32, 64}, {64, 128}}) {
      const grid::LatLonGrid dst = grid::LatLonGrid::Uniform(nlat, nlon);
      WallTimer timer;
      const NDArray out = grid::Regrid(field, src, dst, method).value();
      const double seconds = timer.Seconds();
      const NDArray truth = AnalyticField(dst);
      double worst = 0;
      for (size_t i = 0; i < dst.n_lat(); ++i) {
        if (std::fabs(dst.lat(i)) > 78.0) continue;
        for (size_t j = 0; j < dst.n_lon(); ++j) {
          const size_t idx = i * dst.n_lon() + j;
          worst = std::max(worst, std::fabs(out.GetAsDouble(idx) -
                                            truth.GetAsDouble(idx)));
        }
      }
      const double drift =
          std::fabs(grid::AreaWeightedMean(out, dst).value() - src_mean);
      table.AddRow({std::string(grid::RegridMethodName(method)),
                    std::to_string(nlat) + "x" + std::to_string(nlon),
                    HumanDuration(seconds), bench::Fmt("%.4f", worst),
                    bench::Fmt("%.2e", drift)});
    }
  }
  table.Print();
  std::printf(
      "shape check: bilinear/conservative beat nearest on error; only\n"
      "conservative pins the global mean (the CMIP regridding requirement).\n");

  bench::Banner("end-to-end climate archetype — stage wall breakdown");
  par::StripedStore store;
  domains::ClimateArchetypeConfig config;
  config.workload.n_times = 8;
  config.workload.n_lat = 48;
  config.workload.n_lon = 96;
  config.target_lat = 32;
  config.target_lon = 64;
  const auto result = domains::RunClimateArchetype(store, config).value();
  bench::Table stages({"stage", "kind", "wall", "bundle after"});
  for (const auto& s : result.report.stages) {
    stages.AddRow({s.name, std::string(core::StageKindName(s.kind)),
                   HumanDuration(s.seconds),
                   HumanBytes(s.bundle_bytes_after)});
  }
  stages.Print();
  std::printf("breakdown: %s\n", result.report.TimeBreakdown().c_str());
  std::printf("dataset: %llu records, %s, readiness %s\n",
              static_cast<unsigned long long>(result.manifest.TotalRecords()),
              HumanBytes(result.manifest.TotalBytes()).c_str(),
              std::string(core::ReadinessLevelName(result.readiness.overall))
                  .c_str());
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
