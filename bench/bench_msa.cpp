// A3 — MSA cost ablation: the AlphaFold-pipeline preprocessing step §3.3
// names as the expensive one. Center-star MSA is O(N^2 * L^2) in sequence
// count and length (all-pairs NW for center selection dominates); this
// bench sweeps both axes and reports alignment quality, quantifying why
// real pipelines cache MSAs ("intermediate caching for scalable model
// training", §3.3).
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "sequence/msa.hpp"

namespace drai {
namespace {

std::vector<std::string> MakeFamily(size_t n, size_t length, uint64_t seed) {
  Rng rng(seed);
  static const char kBases[] = "ACGT";
  std::string ancestor(length, 'A');
  for (char& c : ancestor) c = kBases[rng.UniformU64(4)];
  std::vector<std::string> family = {ancestor};
  for (size_t d = 1; d < n; ++d) {
    std::string s = ancestor;
    const size_t mutations = 1 + length / 20;
    for (size_t m = 0; m < mutations; ++m) {
      s[rng.UniformU64(s.size())] = kBases[rng.UniformU64(4)];
    }
    if (rng.Bernoulli(0.5)) s.erase(rng.UniformU64(s.size()), 1);
    family.push_back(std::move(s));
  }
  return family;
}

int Main() {
  bench::Banner("A3 — center-star MSA cost vs family size x sequence length");
  bench::Table table({"sequences", "length", "wall", "mean identity",
                      "alignment cols"});
  for (const size_t n : {3ul, 6ul, 12ul}) {
    for (const size_t length : {64ul, 256ul, 512ul}) {
      const auto family = MakeFamily(n, length, 42 + n + length);
      WallTimer timer;
      const auto msa = sequence::CenterStarMsa(family).value();
      table.AddRow({std::to_string(n), std::to_string(length),
                    HumanDuration(timer.Seconds()),
                    bench::Fmt("%.3f", msa.mean_identity),
                    std::to_string(msa.aligned.front().size())});
    }
  }
  table.Print();
  std::printf(
      "shape check: wall time scales ~quadratically in both axes (all-pairs\n"
      "NW dominates) — the cost profile that makes MSA caching mandatory at\n"
      "AlphaFold scale.\n");

  bench::Banner("profile generation cost (post-MSA)");
  const auto family = MakeFamily(12, 512, 7);
  const auto msa = sequence::CenterStarMsa(family).value();
  WallTimer timer;
  const auto profile = sequence::MsaProfile(msa, sequence::Alphabet::kDna);
  std::printf("12 x 512 profile: %s (%zu columns x 4)\n",
              HumanDuration(timer.Seconds()).c_str(),
              profile.ok() ? profile->shape()[0] : 0);
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
