// S5 — the materials archetype's graph construction (§3.4): neighbor-list
// and encode cost vs structure size and cutoff, plus the effect of class
// rebalancing on the skewed crystal-system distribution.
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "domains/materials.hpp"
#include "graph/encode.hpp"
#include "stats/imbalance.hpp"
#include "workloads/materials.hpp"

namespace drai {
namespace {

int Main() {
  bench::Banner("S5a — neighbor search + encode cost vs atoms x cutoff");
  bench::Table table({"atoms", "cutoff (A)", "edges", "mean degree",
                      "neighbor list", "encode"});
  for (const size_t atoms : {4ul, 8ul, 16ul, 32ul}) {
    for (const double cutoff : {4.0, 6.0}) {
      workloads::MaterialsConfig config;
      config.n_structures = 1;
      config.min_atoms = atoms;
      config.max_atoms = atoms;
      config.seed = 42 + atoms;
      const auto structures = workloads::GenerateMaterials(config);
      const auto& s = structures.front();

      WallTimer timer;
      const auto edges = graph::BuildNeighborList(s, cutoff).value();
      const double nl_s = timer.Seconds();

      timer.Reset();
      graph::GraphEncodeOptions options;
      options.cutoff = cutoff;
      const auto g = graph::EncodeGraph(s, options).value();
      const double enc_s = timer.Seconds();

      table.AddRow({std::to_string(atoms), bench::Fmt("%.1f", cutoff),
                    std::to_string(edges.size()),
                    bench::Fmt("%.1f", graph::MeanDegree(edges, atoms)),
                    HumanDuration(nl_s), HumanDuration(enc_s)});
      (void)g;
    }
  }
  table.Print();
  std::printf(
      "shape check: edges grow ~cutoff^3 and ~atoms (then atoms^2 as cells\n"
      "fill); encode cost follows the edge count.\n");

  bench::Banner("S5b — class rebalancing effect on the OMat-like skew");
  bench::Table balance({"strategy", "records", "imbalance before",
                        "imbalance after", "balance score after"});
  for (const auto strategy : {graph::RebalanceStrategy::kOversample,
                              graph::RebalanceStrategy::kUndersample}) {
    par::StripedStore store;
    domains::MaterialsArchetypeConfig config;
    config.workload.n_structures = 150;
    config.strategy = strategy;
    const auto result = domains::RunMaterialsArchetype(store, config).value();
    balance.AddRow(
        {strategy == graph::RebalanceStrategy::kOversample ? "oversample"
                                                           : "undersample",
         std::to_string(result.manifest.TotalRecords()),
         bench::Fmt("%.2f", result.imbalance_before),
         bench::Fmt("%.2f", result.imbalance_after),
         bench::Fmt("%.3f", result.quality.BalanceScore())});
  }
  {
    par::StripedStore store;
    domains::MaterialsArchetypeConfig config;
    config.workload.n_structures = 150;
    config.rebalance = false;
    const auto result = domains::RunMaterialsArchetype(store, config).value();
    balance.AddRow({"none", std::to_string(result.manifest.TotalRecords()),
                    bench::Fmt("%.2f", result.imbalance_before),
                    bench::Fmt("%.2f", result.imbalance_after),
                    bench::Fmt("%.3f", result.quality.BalanceScore())});
  }
  balance.Print();
  std::printf(
      "shape check: oversampling flattens the ratio at the cost of records\n"
      "(duplicates); undersampling flattens it by discarding majority data.\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
