// S3 — the fusion archetype's extract/align/feature cost (§3.2): scaling
// with channel count and sample rate, plus the stage-time breakdown that
// reproduces the fusion-ML workshop's "most of the time goes to curation"
// observation for this pipeline.
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "domains/fusion.hpp"
#include "ml/trainer.hpp"
#include "shard/shard_reader.hpp"
#include "timeseries/signal.hpp"
#include "workloads/fusion.hpp"

namespace drai {
namespace {

int Main() {
  bench::Banner(
      "S3a — per-shot align+window+feature cost vs channels x sample rate");
  bench::Table table({"channels", "rate (Hz)", "samples/shot", "despike+fill",
                      "align", "window+features", "windows"});
  for (const size_t channels : {2ul, 4ul, 8ul}) {
    for (const double rate : {500.0, 2000.0}) {
      workloads::FusionConfig config;
      config.n_shots = 1;
      config.n_channels = channels;
      config.base_rate_hz = rate;
      config.dropout_prob = 0.01;
      config.spike_prob = 0.002;
      auto shots = workloads::GenerateFusionShots(config);
      auto& shot = shots.front();
      size_t samples = 0;
      for (const auto& ch : shot.channels) samples += ch.size();

      WallTimer timer;
      for (auto& ch : shot.channels) {
        timeseries::Despike(ch);
        timeseries::FillGaps(ch);
      }
      const double clean_s = timer.Seconds();

      timer.Reset();
      const auto frame =
          timeseries::AlignChannels(shot.channels, 1.0 / rate).value();
      const double align_s = timer.Seconds();

      timer.Reset();
      const auto windows =
          timeseries::SlidingWindows(frame, 64, 32).value();
      const auto features =
          timeseries::WindowFeatures(windows, 1.0 / rate).value();
      const double feature_s = timer.Seconds();

      table.AddRow({std::to_string(channels), bench::Fmt("%.0f", rate),
                    std::to_string(samples), HumanDuration(clean_s),
                    HumanDuration(align_s), HumanDuration(feature_s),
                    std::to_string(windows.shape()[0])});
    }
  }
  table.Print();
  std::printf(
      "shape check: cost grows ~linearly in channels x rate; alignment\n"
      "(resampling onto the common clock) dominates as rates rise.\n");

  bench::Banner("S3b — fusion archetype stage breakdown (the curation-time story)");
  par::StripedStore store;
  domains::FusionArchetypeConfig config;
  config.workload.n_shots = 32;
  config.workload.unlabeled_fraction = 0.15;
  const auto result = domains::RunFusionArchetype(store, config).value();
  bench::Table stages({"stage", "kind", "wall"});
  double curation = 0, total = 0;
  for (const auto& s : result.report.stages) {
    stages.AddRow({s.name, std::string(core::StageKindName(s.kind)),
                   HumanDuration(s.seconds)});
    total += s.seconds;
    if (s.kind != core::StageKind::kShard) curation += s.seconds;
  }
  stages.Print();
  std::printf(
      "curation (everything before shard): %.1f%% of pipeline time "
      "(workshop-reported: ~70%% of scientists' time)\n",
      100.0 * curation / total);
  std::printf("records: %llu, labeled fraction after pseudo-labeling: %.2f\n",
              static_cast<unsigned long long>(result.manifest.TotalRecords()),
              result.state.label_fraction);

  bench::Banner(
      "S3c — ablation: trigger-skew correction on a skewed workload");
  // Channels carry up to 15 ms of trigger skew; train the disruption
  // classifier on datasets built with and without lag correction.
  auto accuracy_with = [](double lag_correct_max) {
    par::StripedStore store;
    domains::FusionArchetypeConfig config;
    config.workload.n_shots = 40;
    config.workload.disruption_prob = 0.5;
    config.workload.trigger_skew_max = 0.015;
    config.workload.seed = 321;
    config.lag_correct_max = lag_correct_max;
    config.dataset_dir = "/datasets/fusion-ablation";
    const auto result = domains::RunFusionArchetype(store, config).value();
    const auto reader =
        shard::ShardReader::Open(store, config.dataset_dir).value();
    ml::SoftmaxClassifier clf(2);
    ml::SgdOptions sgd;
    sgd.learning_rate = 0.3;
    sgd.batch_size = 32;
    const auto report =
        ml::TrainClassifierFromShards(reader, "x", sgd, 25, clf).value();
    (void)result;
    return report.val_accuracy;
  };
  const double acc_off = accuracy_with(0.0);
  const double acc_on = accuracy_with(0.03);
  bench::Table ablation({"lag correction", "held-out accuracy"});
  ablation.AddRow({"off", bench::Fmt("%.3f", acc_off)});
  ablation.AddRow({"on (max 30 ms)", bench::Fmt("%.3f", acc_on)});
  ablation.Print();
  std::printf(
      "shape check: correcting trigger skew should not hurt, and typically\n"
      "sharpens the precursor features the classifier keys on.\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
