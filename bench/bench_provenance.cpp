// S7 — provenance overhead (§5 "Provenance and Reproducibility"): the same
// pipeline run with provenance capture on and off, plus the audit-log
// append/verify cost — quantifying what the paper's "broader integration
// into DRAI tooling" would cost a production pipeline.
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "privacy/audit.hpp"

namespace drai {
namespace {

core::Pipeline MakePipeline(bool provenance) {
  core::PipelineOptions options;
  options.capture_provenance = provenance;
  core::Pipeline p(provenance ? "with-prov" : "without-prov", options);
  // Ten busy stages shaped like a real pipeline (buffers grow and shrink).
  for (int i = 0; i < 2; ++i) {
    p.Add("ingest-" + std::to_string(i), core::StageKind::kIngest,
          [](core::DataBundle& b, core::StageContext& ctx) {
            ctx.NoteParam("files", "16");
            b.blobs["raw"] = Bytes(1 << 20);
            return Status::Ok();
          });
  }
  for (int i = 0; i < 3; ++i) {
    p.Add("preprocess-" + std::to_string(i), core::StageKind::kPreprocess,
          [](core::DataBundle& b, core::StageContext&) {
            NDArray t = NDArray::Zeros({64, 64}, DType::kF64);
            t.Fill(1.5);
            b.tensors["field"] = std::move(t);
            return Status::Ok();
          });
  }
  for (int i = 0; i < 3; ++i) {
    p.Add("transform-" + std::to_string(i), core::StageKind::kTransform,
          [](core::DataBundle& b, core::StageContext& ctx) {
            ctx.NoteParam("kind", "zscore");
            auto it = b.tensors.find("field");
            if (it != b.tensors.end()) {
              for (size_t k = 0; k < it->second.numel(); ++k) {
                it->second.SetFromDouble(k,
                                         it->second.GetAsDouble(k) * 0.5);
              }
            }
            return Status::Ok();
          });
  }
  p.Add("structure", core::StageKind::kStructure,
        [](core::DataBundle&, core::StageContext&) { return Status::Ok(); });
  p.Add("shard", core::StageKind::kShard,
        [](core::DataBundle&, core::StageContext&) { return Status::Ok(); });
  return p;
}

int Main() {
  bench::Banner("S7 — pipeline wall time with provenance capture on/off");
  constexpr int kRuns = 50;
  bench::Table table({"mode", "runs", "total wall", "per run",
                      "artifacts recorded", "record hash"});
  for (const bool provenance : {false, true}) {
    core::Pipeline p = MakePipeline(provenance);
    WallTimer timer;
    for (int r = 0; r < kRuns; ++r) {
      core::DataBundle bundle;
      const auto report = p.Run(bundle);
      if (!report.ok) return 1;
    }
    const double total = timer.Seconds();
    table.AddRow({provenance ? "provenance ON" : "provenance OFF",
                  std::to_string(kRuns), HumanDuration(total),
                  HumanDuration(total / kRuns),
                  std::to_string(p.provenance().artifacts().size()),
                  provenance ? p.provenance().RecordHash().substr(0, 12) + "..."
                             : "-"});
  }
  table.Print();
  std::printf(
      "shape check: capture cost is per-stage-constant (hash of a state\n"
      "fingerprint), so overhead shrinks as stages do real work.\n");

  bench::Banner("audit log append/verify cost");
  privacy::AuditLog log;
  WallTimer timer;
  constexpr int kEntries = 5000;
  for (int i = 0; i < kEntries; ++i) {
    log.Append("pipeline", "transform", "batch=" + std::to_string(i));
  }
  const double append_s = timer.Seconds();
  timer.Reset();
  log.Verify().OrDie();
  const double verify_s = timer.Seconds();
  std::printf(
      "%d hash-chained entries: append %.1f us/entry, full-chain verify "
      "%.1f us/entry\n",
      kEntries, 1e6 * append_s / kEntries, 1e6 * verify_s / kEntries);
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
