// P2 — backend equivalence: the climate archetype on threads vs SPMD ranks.
//
// Runs the same climate workload under both execution backends — the
// thread pool and in-process SPMD ranks — at 1, 2, 4, and 8 workers, and
// checks the contract the backend split is built around: every shard file
// and the provenance record hash must match the thread/1 baseline exactly,
// for every backend at every world size. Any divergence is a hard failure.
#include <thread>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/strings.hpp"
#include "domains/climate.hpp"

namespace drai {
namespace {

using bench::DatasetHash;

int Main() {
  bench::Banner(
      "execution backends — climate archetype, same bytes on threads "
      "and SPMD ranks");

  domains::ClimateArchetypeConfig config;
  config.workload.n_times = 32;
  config.workload.n_lat = 48;
  config.workload.n_lon = 96;
  config.workload.variables = {"t2m", "z500", "u10"};
  config.workload.missing_prob = 0.005;
  config.target_lat = 32;
  config.target_lon = 64;
  config.patch = 8;

  std::printf("workload: %zu steps x %zu vars, %zux%zu -> %zux%zu "
              "(%u hardware threads)\n\n",
              config.workload.n_times, config.workload.variables.size(),
              config.workload.n_lat, config.workload.n_lon, config.target_lat,
              config.target_lon, std::thread::hardware_concurrency());

  bench::Table table({"backend", "workers", "wall", "dataset sha256",
                      "provenance"});
  std::string baseline_data, baseline_prov;
  bool identical = true;

  for (core::Backend backend : {core::Backend::kThread, core::Backend::kSpmd}) {
    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      par::StripedStore store;
      config.backend = backend;
      config.threads = workers;
      const auto result = domains::RunClimateArchetype(store, config);
      if (!result.ok()) {
        std::fprintf(stderr, "archetype failed (%s, %zu workers): %s\n",
                     std::string(core::BackendName(backend)).c_str(), workers,
                     result.status().ToString().c_str());
        return 1;
      }
      const std::string data_hash = DatasetHash(store, config.dataset_dir);
      const std::string& prov_hash = result->provenance_hash;
      if (baseline_data.empty()) {
        baseline_data = data_hash;
        baseline_prov = prov_hash;
        std::printf("thread/1 breakdown: %s\n\n",
                    result->report.TimeBreakdown().c_str());
      }
      const bool match =
          data_hash == baseline_data && prov_hash == baseline_prov;
      identical = identical && match;
      table.AddRow({std::string(core::BackendName(backend)),
                    std::to_string(workers),
                    HumanDuration(result->report.total_seconds),
                    data_hash.substr(0, 16) + (match ? "" : " MISMATCH"),
                    prov_hash.substr(0, 16)});
    }
  }
  table.Print();

  if (!identical) {
    std::printf(
        "FAIL: dataset or provenance diverged across backends/world sizes\n");
    return 1;
  }
  std::printf(
      "dataset + provenance byte-identical across {thread, spmd} x "
      "{1, 2, 4, 8} workers\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
