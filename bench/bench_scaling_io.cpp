// S1 — quantifies the paper's scale claim (§1-2: ClimaX-class training needs
// high-throughput parallel I/O): shard-write and read throughput as a
// function of SPMD writer count and stripe count, on the striped-store
// model. Absolute numbers are the model's; the *shapes* — more stripes help
// until writers saturate OSTs, aggregation beats many small writes — are
// the ones the paper's infrastructure discussion relies on.
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "parallel/communicator.hpp"
#include "parallel/striped_store.hpp"
#include "shard/shard_reader.hpp"
#include "common/rng.hpp"
#include "parallel/distributed_stats.hpp"
#include "shard/shard_writer.hpp"

namespace drai {
namespace {

constexpr uint64_t kTotalBytes = 64ull << 20;  // fixed campaign volume

/// Fixed total volume split across ranks, each writing its own shard file;
/// returns the campaign's simulated makespan.
double WriteCampaign(int ranks, int stripes, uint64_t chunk_bytes) {
  par::StripedStoreConfig config;
  config.num_osts = 8;
  par::StripedStore store(config);
  const uint64_t per_rank = kTotalBytes / static_cast<uint64_t>(ranks);
  par::RunSpmd(ranks, [&](par::Communicator& comm) {
    const std::string path = "/out/rank-" + std::to_string(comm.rank());
    store.Create(path, stripes).OrDie();
    Bytes chunk(chunk_bytes);
    uint64_t written = 0;
    while (written < per_rank) {
      store.Write(path, written, chunk).OrDie();
      written += chunk_bytes;
    }
    comm.Barrier();
  });
  return store.stats().simulated_seconds;
}

int Main() {
  bench::Banner(
      "S1a — simulated write makespan vs rank count x stripe count "
      "(64 MiB total, 8 OSTs, 1 MiB ops)");
  bench::Table table({"ranks", "stripes=1", "stripes=2", "stripes=4",
                      "stripes=8"});
  for (const int ranks : {1, 2, 4, 8}) {
    std::vector<std::string> row{std::to_string(ranks)};
    for (const int stripes : {1, 2, 4, 8}) {
      const double sim = WriteCampaign(ranks, stripes, 1 << 20);
      row.push_back(bench::Fmt("%.3f s", sim));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "shape check: with 1 stripe, adding writers is the only way to cover\n"
      "more OSTs (files rotate); with 8 stripes even one writer saturates\n"
      "the 8 OSTs. Both axes flatten once writers x stripes >= OSTs.\n");

  bench::Banner("S1b — small-op penalty: op size sweep at 4 ranks, 4 stripes");
  bench::Table ops({"op size", "ops issued", "simulated", "effective BW"});
  for (const uint64_t op : {64ull << 10, 256ull << 10, 1ull << 20, 4ull << 20}) {
    const double sim = WriteCampaign(4, 4, op);
    const uint64_t total = kTotalBytes;
    ops.AddRow({HumanBytes(op), std::to_string(total / op),
                bench::Fmt("%.3f s", sim),
                HumanBytes(static_cast<uint64_t>(total / sim)) + "/s"});
  }
  ops.Print();
  std::printf(
      "shape check: per-op latency dominates small ops — the reason shards\n"
      "are written as few large sequential records.\n");

  bench::Banner("S1c — wall-clock shard write/read round trip (in-memory)");
  par::StripedStore store;
  shard::ShardWriterConfig wc;
  wc.directory = "/bench/io";
  wc.target_shard_bytes = 1 << 20;
  shard::ShardWriter writer(store, wc);
  WallTimer timer;
  const size_t n = 2000;
  for (size_t i = 0; i < n; ++i) {
    shard::Example ex;
    ex.key = "k" + std::to_string(i);
    ex.features["x"] = NDArray::Full({256}, double(i), DType::kF32);
    writer.Add(ex).value();
  }
  const auto manifest = writer.Finalize().value();
  const double write_s = timer.Seconds();
  timer.Reset();
  const auto reader = shard::ShardReader::Open(store, "/bench/io").value();
  size_t read_back = 0;
  for (shard::Split s : shard::kAllSplits) {
    read_back += reader.ReadAll(s).value().size();
  }
  const double read_s = timer.Seconds();
  std::printf(
      "wrote %zu examples (%s) in %s (%.0f rec/s); read %zu back in %s "
      "(%.0f rec/s)\n",
      n, HumanBytes(manifest.TotalBytes()).c_str(),
      HumanDuration(write_s).c_str(), n / write_s, read_back,
      HumanDuration(read_s).c_str(), read_back / read_s);

  bench::Banner(
      "S1d — distributed normalizer fit (MPI-model AllGather + merge)");
  // The \"scalable preprocessing\" pattern: each rank streams its slice,
  // one collective produces the global statistics on every rank.
  bench::Table dist({"ranks", "samples/rank", "fit wall", "global mean"});
  for (const int ranks : {1, 2, 4, 8}) {
    const size_t per_rank = 200000 / static_cast<size_t>(ranks);
    WallTimer dist_timer;
    double mean_out = 0;
    par::RunSpmd(ranks, [&](par::Communicator& comm) {
      Rng rng(1000 + static_cast<uint64_t>(comm.rank()));
      stats::Normalizer local(stats::NormKind::kZScore, 1);
      for (size_t i = 0; i < per_rank; ++i) {
        local.Observe(0, rng.Normal(42.0, 7.0));
      }
      const auto fitted = par::AllMergeFit(comm, std::move(local)).value();
      if (comm.rank() == 0) mean_out = fitted.Center(0);
    });
    dist.AddRow({std::to_string(ranks), std::to_string(per_rank),
                 HumanDuration(dist_timer.Seconds()),
                 bench::Fmt("%.4f", mean_out)});
  }
  dist.Print();
  std::printf(
      "shape check: the fitted mean is rank-count invariant (~42) — the\n"
      "merge is exact, so preprocessing parallelizes without changing the\n"
      "statistics the shards embed.\n");
  return read_back == n ? 0 : 1;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
