// A2 — shard-size ablation: DataLoader epoch throughput vs shard size and
// prefetch depth. Too-small shards pay per-file overhead and defeat
// sequential reads; too-large shards serialize decode behind one worker
// and coarsen the shuffle. The sweet spot in the middle is why TFRecord /
// WebDataset shards target tens-to-hundreds of MiB in production (scaled
// down here).
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "shard/shard_reader.hpp"
#include "shard/shard_writer.hpp"

namespace drai {
namespace {

constexpr size_t kExamples = 3000;
constexpr size_t kFeatureFloats = 512;  // 2 KiB per example

void BuildDataset(par::StripedStore& store, const std::string& dir,
                  uint64_t shard_bytes) {
  shard::ShardWriterConfig config;
  config.directory = dir;
  config.target_shard_bytes = shard_bytes;
  config.train_frac = 1.0;
  config.val_frac = 0.0;
  config.test_frac = 0.0;
  shard::ShardWriter writer(store, config);
  for (size_t i = 0; i < kExamples; ++i) {
    shard::Example ex;
    ex.key = "k" + std::to_string(i);
    ex.features["x"] =
        NDArray::Full({kFeatureFloats}, double(i % 97), DType::kF32);
    writer.Add(ex).value();
  }
  writer.Finalize().value();
}

int Main() {
  bench::Banner(
      "A2 — loader epoch throughput vs shard size (3000 x 2 KiB examples)");
  bench::Table table({"target shard size", "shards", "prefetch", "epoch wall",
                      "records/s", "sim read time"});
  for (const uint64_t shard_bytes :
       {16ull << 10, 128ull << 10, 1ull << 20, 8ull << 20}) {
    for (const size_t prefetch : {1ul, 4ul}) {
      par::StripedStore store;
      const std::string dir = "/ds/sweep";
      BuildDataset(store, dir, shard_bytes);
      const auto reader = shard::ShardReader::Open(store, dir).value();
      store.ResetStats();

      shard::DataLoaderOptions options;
      options.batch_size = 64;
      options.prefetch_shards = prefetch;
      shard::DataLoader loader(reader, shard::Split::kTrain, options);
      WallTimer timer;
      loader.StartEpoch(0);
      size_t records = 0;
      for (;;) {
        const auto batch = loader.Next().value();
        if (!batch.has_value()) break;
        records += batch->size();
      }
      const double wall = timer.Seconds();
      table.AddRow(
          {HumanBytes(shard_bytes),
           std::to_string(reader.NumShards(shard::Split::kTrain)),
           std::to_string(prefetch), HumanDuration(wall),
           bench::Fmt("%.0f", records / wall),
           bench::Fmt("%.3f s", store.stats().simulated_seconds)});
    }
  }
  table.Print();
  std::printf(
      "shape check: tiny shards multiply per-file costs (more files, more\n"
      "simulated ops); prefetch hides decode behind consumption once shards\n"
      "are big enough to keep a worker busy.\n");
  return 0;
}

}  // namespace
}  // namespace drai

int main() { return drai::Main(); }
