// Materials example — the §3.4 archetype feeding a GNN-style surrogate:
// random crystals are parsed, labels standardized, periodic neighbor
// graphs encoded, the skewed crystal-system classes oversampled, and the
// shards consumed by an energy-per-atom surrogate (an MLP over pooled
// graph features standing in for a message-passing GNN).
//
//   ./materials_graphs
#include <cmath>
#include <cstdio>

#include "common/strings.hpp"
#include "domains/materials.hpp"
#include "graph/encode.hpp"
#include "ml/metrics.hpp"
#include "ml/models.hpp"
#include "stats/normalizer.hpp"
#include "shard/shard_reader.hpp"

using namespace drai;

namespace {

/// Pool a graph into a fixed feature vector — the hand-built analogue of a
/// GNN readout. Pair-potential energies are sums of powers of inverse
/// distance over edges, so per-atom sums of d^-6 and d^-12 (and their
/// interactions with composition) are the physically sufficient statistics.
std::vector<double> PoolGraph(const graph::GraphSample& g) {
  std::vector<double> out;
  const size_t nf = g.node_features.shape()[1];
  double mean_z = 0;
  for (size_t j = 0; j < nf; ++j) {
    double mean = 0;
    for (size_t i = 0; i < g.NumNodes(); ++i) {
      mean += g.node_features.GetAsDouble(i * nf + j);
    }
    mean /= double(g.NumNodes());
    if (j == 0) mean_z = mean;
    out.push_back(mean);
  }
  const size_t fe = g.edge_features.shape()[1];
  double sum_inv6 = 0, sum_inv12 = 0, dist_min = 1e9;
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const double d = std::max(g.edge_features.GetAsDouble(e * fe), 0.5);
    const double inv = 1.0 / d;
    const double inv6 = inv * inv * inv * inv * inv * inv;
    sum_inv6 += inv6;
    sum_inv12 += inv6 * inv6;
    dist_min = std::min(dist_min, d);
  }
  const double n = double(g.NumNodes());
  out.push_back(sum_inv6 / n);
  out.push_back(sum_inv12 / n);
  out.push_back(mean_z * sum_inv6 / n);   // species-dependent sigma proxy
  out.push_back(mean_z * sum_inv12 / n);
  out.push_back(g.NumEdges() ? dist_min : 0);
  out.push_back(double(g.NumEdges()) / n);  // mean degree
  return out;
}

Status LoadGraphs(const shard::ShardReader& reader, shard::Split split,
                  NDArray& x, std::vector<double>& y) {
  DRAI_ASSIGN_OR_RETURN(std::vector<shard::Example> examples,
                        reader.ReadAll(split));
  if (examples.empty()) return NotFound("empty split");
  std::vector<std::vector<double>> rows;
  y.clear();
  for (const auto& ex : examples) {
    DRAI_ASSIGN_OR_RETURN(graph::GraphSample g, graph::FromExample(ex));
    rows.push_back(PoolGraph(g));
    y.push_back(g.label);
  }
  x = NDArray::Zeros({rows.size(), rows.front().size()}, DType::kF64);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows[i].size(); ++j) {
      x.SetFromDouble(i * rows[i].size() + j, rows[i][j]);
    }
  }
  return Status::Ok();
}

}  // namespace

int main() {
  par::StripedStore store;

  domains::MaterialsArchetypeConfig config;
  config.workload.n_structures = 250;
  config.workload.min_atoms = 4;
  config.workload.max_atoms = 12;
  config.encode.cutoff = 5.0;
  config.rebalance = true;

  std::printf("running materials archetype: %zu structures, cutoff %.1f A\n",
              config.workload.n_structures, config.encode.cutoff);
  const auto result = domains::RunMaterialsArchetype(store, config);
  if (!result.ok()) {
    std::fprintf(stderr, "archetype failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("readiness: %s\n",
              std::string(core::ReadinessLevelName(result->readiness.overall))
                  .c_str());
  std::printf("class imbalance: %.2f -> %.2f after oversampling\n",
              result->imbalance_before, result->imbalance_after);
  std::printf("graphs sharded: %llu (%s)\n",
              (unsigned long long)result->manifest.TotalRecords(),
              HumanBytes(result->manifest.TotalBytes()).c_str());

  // Train the energy surrogate from the shards.
  const auto reader =
      shard::ShardReader::Open(store, config.dataset_dir).value();
  NDArray x_train, x_val;
  std::vector<double> y_train, y_val;
  LoadGraphs(reader, shard::Split::kTrain, x_train, y_train).OrDie();
  const bool has_val =
      LoadGraphs(reader, shard::Split::kVal, x_val, y_val).ok();

  // Pooled features live on wildly different scales (degrees ~30, Z ~0.2):
  // z-score them with the same stats for train and eval.
  stats::Normalizer feat_norm(stats::NormKind::kZScore, x_train.shape()[1]);
  feat_norm.ObserveMatrix(x_train);
  feat_norm.Fit();
  feat_norm.ApplyMatrix(x_train);
  if (has_val) feat_norm.ApplyMatrix(x_val);

  ml::MlpRegressor surrogate(24);
  ml::SgdOptions options;
  options.learning_rate = 0.003;
  options.epochs = 200;
  options.l2 = 1e-4;
  const auto history = surrogate.Fit(x_train, y_train, options).value();
  std::printf("surrogate training: MSE %.4f -> %.4f (%zu graphs)\n",
              history.front(), history.back(), y_train.size());

  const NDArray& x_eval = has_val ? x_val : x_train;
  const std::vector<double>& y_eval = has_val ? y_val : y_train;
  std::vector<double> pred(y_eval.size());
  std::vector<double> row(x_eval.shape()[1]);
  for (size_t i = 0; i < y_eval.size(); ++i) {
    for (size_t j = 0; j < row.size(); ++j) {
      row[j] = x_eval.GetAsDouble(i * row.size() + j);
    }
    pred[i] = surrogate.Predict(row);
  }
  const double r2 = ml::R2Score(pred, y_eval);
  std::printf("%s R2 (standardized energy/atom): %.3f\n",
              has_val ? "held-out" : "train", r2);
  std::printf("(label units: z-scored DFT-like energy; the embedded "
              "normalizer in the manifest inverts to eV/atom)\n");
  return r2 > 0.3 ? 0 : 1;
}
