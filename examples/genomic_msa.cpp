// Genomics example — the AlphaFold-style MSA preprocessing step (§3.3):
// a family of sequences diverged from one ancestor is multiple-aligned
// with the center-star heuristic; the example prints the alignment, the
// consensus vs. the true ancestor, conservation hot-spots, and the
// position-specific profile that downstream models consume.
//
//   ./genomic_msa
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "sequence/msa.hpp"

using namespace drai;

int main() {
  // Evolve a family: the ancestor plus mutated/indel'd descendants.
  Rng rng(20240609);
  const std::string ancestor =
      "ATGGCGTTACGTTGCAGGCTAAGCTTGCAACGTACGTTGCAGGA";
  std::vector<std::string> family = {ancestor};
  for (int d = 0; d < 6; ++d) {
    std::string s = ancestor;
    const int mutations = 2 + static_cast<int>(rng.UniformU64(3));
    for (int m = 0; m < mutations; ++m) {
      s[rng.UniformU64(s.size())] = "ACGT"[rng.UniformU64(4)];
    }
    if (rng.Bernoulli(0.6)) s.erase(rng.UniformU64(s.size()), 1);  // deletion
    if (rng.Bernoulli(0.4)) {
      s.insert(rng.UniformU64(s.size()), 1, "ACGT"[rng.UniformU64(4)]);
    }
    family.push_back(std::move(s));
  }

  const auto msa = sequence::CenterStarMsa(family);
  if (!msa.ok()) {
    std::fprintf(stderr, "MSA failed: %s\n", msa.status().ToString().c_str());
    return 1;
  }

  std::printf("center-star MSA of %zu sequences (center = #%zu):\n\n",
              family.size(), msa->center);
  for (size_t r = 0; r < msa->aligned.size(); ++r) {
    std::printf("  seq%zu%s  %s\n", r, r == msa->center ? "*" : " ",
                msa->aligned[r].c_str());
  }
  const std::string consensus = sequence::MsaConsensus(*msa);
  std::printf("  cons   %s\n", consensus.c_str());

  // Conservation track: '*' fully conserved, '+' >= 80%, '.' otherwise.
  std::string track;
  for (double c : msa->conservation) {
    track += c >= 1.0 ? '*' : (c >= 0.8 ? '+' : '.');
  }
  std::printf("  consv  %s\n\n", track.c_str());
  std::printf("mean pairwise identity: %.3f\n", msa->mean_identity);

  const auto back = sequence::GlobalAlign(consensus, ancestor);
  std::printf("consensus vs true ancestor identity: %.3f\n", back.identity);

  // The position-specific profile a model would train on.
  const auto profile = sequence::MsaProfile(*msa, sequence::Alphabet::kDna);
  if (profile.ok()) {
    std::printf("\nprofile (first 8 columns, rows A/C/G/T):\n");
    const size_t show = std::min<size_t>(8, profile->shape()[0]);
    for (size_t b = 0; b < 4; ++b) {
      std::printf("  %c: ", "ACGT"[b]);
      for (size_t c = 0; c < show; ++c) {
        std::printf("%.2f ", profile->GetAsDouble(c * 4 + b));
      }
      std::printf("\n");
    }
  }
  return back.identity > 0.8 ? 0 : 1;
}
