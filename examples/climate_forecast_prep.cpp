// Climate example — the §3.1 archetype as a user would run it:
// GRIB-encoded multi-variable reanalysis-like fields are decoded,
// regridded (gaussian -> uniform), normalized, patched, and sharded; then
// a surrogate trains from the shards and the data card is printed.
//
//   ./climate_forecast_prep
#include <cstdio>

#include "common/strings.hpp"
#include "core/datasheet.hpp"
#include "domains/climate.hpp"
#include "ml/trainer.hpp"
#include "shard/shard_reader.hpp"
#include "stats/normalizer.hpp"

using namespace drai;

int main() {
  par::StripedStore store;

  domains::ClimateArchetypeConfig config;
  config.workload.n_times = 12;
  config.workload.n_lat = 48;
  config.workload.n_lon = 96;
  config.workload.variables = {"t2m", "z500", "u10"};
  config.workload.missing_prob = 0.005;  // satellite dropouts
  config.target_lat = 32;
  config.target_lon = 64;
  config.regrid = grid::RegridMethod::kBilinear;
  config.patch = 8;
  // Partition-parallel stages (regrid/normalize/patch) run one time step
  // per partition on 4 workers; output bytes are identical at any count.
  config.threads = 4;

  std::printf("running climate archetype: %zu steps x %zu vars on %zux%zu "
              "gaussian grid -> %zux%zu uniform, %zux%zu patches\n",
              config.workload.n_times, config.workload.variables.size(),
              config.workload.n_lat, config.workload.n_lon, config.target_lat,
              config.target_lon, config.patch, config.patch);

  const auto result = domains::RunClimateArchetype(store, config);
  if (!result.ok()) {
    std::fprintf(stderr, "archetype failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nstages:\n");
  for (const auto& stage : result->report.stages) {
    std::printf("  %-12s (%-10s) %10s  %s x%zu\n", stage.name.c_str(),
                std::string(core::StageKindName(stage.kind)).c_str(),
                HumanDuration(stage.seconds).c_str(),
                std::string(core::ExecutionHintName(stage.hint)).c_str(),
                stage.partitions);
  }
  std::printf("readiness: %s\n",
              std::string(core::ReadinessLevelName(result->readiness.overall))
                  .c_str());
  std::printf("dataset: %llu patches in %s (train/val/test %llu/%llu/%llu)\n",
              (unsigned long long)result->manifest.TotalRecords(),
              HumanBytes(result->manifest.TotalBytes()).c_str(),
              (unsigned long long)result->manifest.TotalRecords(
                  shard::Split::kTrain),
              (unsigned long long)result->manifest.TotalRecords(
                  shard::Split::kVal),
              (unsigned long long)result->manifest.TotalRecords(
                  shard::Split::kTest));

  // The normalizer travels with the dataset: recover it from the manifest
  // (what an inference service would do).
  ByteReader nr(result->manifest.normalizer_blob);
  const auto norm = stats::Normalizer::Deserialize(nr);
  if (norm.ok()) {
    std::printf("embedded normalizer: t2m mean=%.2f K std=%.2f K\n",
                norm->Center(0), norm->Scale(0));
  }

  // Train the patch-mean surrogate straight from the shards.
  const auto reader =
      shard::ShardReader::Open(store, config.dataset_dir).value();
  ml::LinearRegressor model;
  ml::TrainFromShardsOptions train_options;
  train_options.epochs = 25;
  // 3 vars x 8x8 patch = 192 features: SGD stability needs lr << 2/||x||^2.
  train_options.sgd.learning_rate = 0.004;
  const auto report =
      ml::TrainRegressorFromShards(reader, train_options, model).value();
  std::printf("surrogate: %llu samples/epoch, val MSE %.5f, val R2 %.4f\n",
              (unsigned long long)report.samples_seen / 12, report.val_mse,
              report.val_r2);

  // Data card.
  core::Datasheet sheet = core::MakeDatasheet(
      "climate-patches", result->manifest, result->quality, result->readiness,
      result->provenance_hash);
  sheet.motivation =
      "Spatiotemporal patches for training weather/climate foundation "
      "models (ClimaX/Pangu-style preprocessing).";
  sheet.collection_process =
      "Synthetic CMIP-like fields, GRIB-encoded, decoded and regridded by "
      "the drai climate archetype.";
  std::printf("\n%s\n", sheet.ToMarkdown().c_str());
  return report.val_r2 > 0.9 ? 0 : 1;
}
