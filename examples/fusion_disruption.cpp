// Fusion example — the §3.2 archetype driving a disruption predictor:
// irregular multi-channel shot diagnostics are despiked, aligned,
// windowed, feature-engineered and sharded (split by shot); a softmax
// classifier then predicts disruptions from the window features, evaluated
// on held-out shots with a confusion matrix.
//
//   ./fusion_disruption
#include <cstdio>

#include "common/strings.hpp"
#include "domains/fusion.hpp"
#include "ml/metrics.hpp"
#include "ml/models.hpp"
#include "shard/shard_reader.hpp"

using namespace drai;

namespace {

/// Materialize a split into (X, y) matrices.
Status LoadSplit(const shard::ShardReader& reader, shard::Split split,
                 NDArray& x, std::vector<int64_t>& y) {
  DRAI_ASSIGN_OR_RETURN(std::vector<shard::Example> examples,
                        reader.ReadAll(split));
  if (examples.empty()) return NotFound("empty split");
  const size_t nf = examples.front().Find("x")->numel();
  x = NDArray::Zeros({examples.size(), nf}, DType::kF64);
  y.resize(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    const NDArray* f = examples[i].Find("x");
    for (size_t j = 0; j < nf; ++j) {
      x.SetFromDouble(i * nf + j, f->GetAsDouble(j));
    }
    DRAI_ASSIGN_OR_RETURN(y[i], examples[i].Label());
  }
  return Status::Ok();
}

}  // namespace

int main() {
  par::StripedStore store;

  domains::FusionArchetypeConfig config;
  config.workload.n_shots = 60;
  config.workload.n_channels = 4;
  config.workload.disruption_prob = 0.45;
  config.workload.dropout_prob = 0.01;
  config.workload.spike_prob = 0.002;
  config.workload.unlabeled_fraction = 0.15;  // sparse labels (§3.2)
  config.workload.seed = 1337;

  std::printf("running fusion archetype: %zu shots x %zu channels, "
              "%.0f%% disruption rate, %.0f%% labels withheld\n",
              config.workload.n_shots, config.workload.n_channels,
              100 * config.workload.disruption_prob,
              100 * config.workload.unlabeled_fraction);

  const auto result = domains::RunFusionArchetype(store, config);
  if (!result.ok()) {
    std::fprintf(stderr, "archetype failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("readiness: %s; label fraction after pseudo-labeling: %.2f\n",
              std::string(core::ReadinessLevelName(result->readiness.overall))
                  .c_str(),
              result->state.label_fraction);
  std::printf("windows: %llu train / %llu val / %llu test (split by shot)\n",
              (unsigned long long)result->manifest.TotalRecords(
                  shard::Split::kTrain),
              (unsigned long long)result->manifest.TotalRecords(
                  shard::Split::kVal),
              (unsigned long long)result->manifest.TotalRecords(
                  shard::Split::kTest));

  // Train on the train split, evaluate on held-out shots (val + test).
  const auto reader =
      shard::ShardReader::Open(store, config.dataset_dir).value();
  NDArray x_train;
  std::vector<int64_t> y_train;
  LoadSplit(reader, shard::Split::kTrain, x_train, y_train).OrDie();

  ml::SoftmaxClassifier clf(2);
  ml::SgdOptions options;
  options.learning_rate = 0.3;
  options.epochs = 60;
  options.l2 = 1e-4;
  const auto history = clf.Fit(x_train, y_train, options).value();
  std::printf("training: cross-entropy %.4f -> %.4f over %zu epochs\n",
              history.front(), history.back(), history.size());

  for (const shard::Split split : {shard::Split::kVal, shard::Split::kTest}) {
    NDArray x;
    std::vector<int64_t> y;
    if (!LoadSplit(reader, split, x, y).ok()) continue;
    std::vector<int64_t> pred(y.size());
    std::vector<double> row(x.shape()[1]);
    for (size_t i = 0; i < y.size(); ++i) {
      for (size_t j = 0; j < row.size(); ++j) {
        row[j] = x.GetAsDouble(i * row.size() + j);
      }
      pred[i] = clf.Predict(row);
    }
    const auto cm = ml::ConfusionMatrix(pred, y, 2).value();
    std::printf(
        "\n%s (held-out shots): accuracy %.3f, macro-F1 %.3f\n"
        "              pred=ok  pred=disrupt\n"
        "  true=ok        %4lld        %4lld\n"
        "  true=disrupt   %4lld        %4lld\n",
        std::string(shard::SplitName(split)).c_str(),
        ml::Accuracy(pred, y), ml::MacroF1(pred, y, 2).value(),
        (long long)cm[0][0], (long long)cm[0][1], (long long)cm[1][0],
        (long long)cm[1][1]);
  }
  return 0;
}
