// Facility readiness report — what a leadership-computing data steward
// would run across projects: every domain archetype executes, and the
// report aggregates readiness levels, per-stage maturity, blocking cells,
// quality scores and dataset inventories into one view (the operational
// use the paper's §4 framework is for).
//
//   ./readiness_report
#include <cstdio>

#include "common/strings.hpp"
#include "domains/bio.hpp"
#include "domains/climate.hpp"
#include "domains/fusion.hpp"
#include "domains/materials.hpp"

using namespace drai;

namespace {

struct Row {
  std::string name;
  const domains::ArchetypeResult* result;
};

void PrintRow(const Row& row) {
  const auto& r = *row.result;
  std::printf("\n--- %s ---\n", row.name.c_str());
  std::printf("  overall readiness : %s\n",
              std::string(core::ReadinessLevelName(r.readiness.overall))
                  .c_str());
  std::printf("  per stage         : ");
  for (size_t s = 0; s < 5; ++s) {
    std::printf("%s=%d ", std::string(core::StageKindName(
                              core::kAllStageKinds[s]))
                              .c_str(),
                static_cast<int>(r.readiness.per_stage[s]));
  }
  std::printf("\n");
  if (!r.readiness.blocking.empty()) {
    std::printf("  blocking          : %s\n", r.readiness.blocking[0].c_str());
  }
  std::printf("  records           : %llu (%s)\n",
              (unsigned long long)r.manifest.TotalRecords(),
              HumanBytes(r.manifest.TotalBytes()).c_str());
  std::printf("  quality score     : %.3f (missing %.3f, labeled %.2f)\n",
              r.quality.OverallScore(), r.quality.MissingFraction(),
              r.quality.labeled_fraction);
  std::printf("  provenance        : %s...\n",
              r.provenance_hash.substr(0, 16).c_str());
  std::printf("  pipeline          : %s\n", r.report.TimeBreakdown().c_str());
  std::printf("\n%s", core::RenderMaturityMatrix(r.state).c_str());
}

}  // namespace

int main() {
  par::StripedStore store;

  std::printf("=== drai facility readiness report ===\n");

  domains::ClimateArchetypeConfig climate;
  climate.workload.n_times = 6;
  climate.workload.n_lat = 32;
  climate.workload.n_lon = 64;
  climate.target_lat = 24;
  climate.target_lon = 48;
  const auto climate_result =
      domains::RunClimateArchetype(store, climate).value();

  domains::FusionArchetypeConfig fusion;
  fusion.workload.n_shots = 20;
  fusion.workload.unlabeled_fraction = 0.15;
  fusion.lag_correct_max = 0.01;  // trigger-skew correction enabled
  const auto fusion_result = domains::RunFusionArchetype(store, fusion).value();

  domains::BioArchetypeConfig bio;
  bio.workload.n_subjects = 120;
  bio.workload.unlabeled_fraction = 0.3;  // deliberately label-starved
  const auto bio_result = domains::RunBioArchetype(store, bio).value();

  domains::MaterialsArchetypeConfig materials;
  materials.workload.n_structures = 60;
  const auto materials_result =
      domains::RunMaterialsArchetype(store, materials).value();

  const Row rows[] = {
      {"climate / CMIP-like", &climate_result},
      {"fusion / tokamak shots", &fusion_result},
      {"bio-health / clinical+genomic", &bio_result},
      {"materials / DFT crystals", &materials_result},
  };
  size_t fully_ready = 0;
  for (const Row& row : rows) {
    PrintRow(row);
    if (row.result->readiness.overall == core::ReadinessLevel::kAiReady) {
      ++fully_ready;
    }
  }

  std::printf("\n=== summary ===\n");
  std::printf("%zu/4 project datasets fully AI-ready.\n", fully_ready);
  std::printf(
      "The label-starved bio dataset illustrates the framework's point: its\n"
      "pipeline is automated end to end, yet readiness is capped until label\n"
      "coverage crosses the level-3/4 gates — readiness describes the data,\n"
      "not the tooling.\n");
  std::printf("store holds %s across %zu files (simulated I/O %.3f s).\n",
              HumanBytes(store.UsedBytes()).c_str(), store.List().size(),
              store.stats().simulated_seconds);
  return 0;
}
