// Bio/health example — the §3.3 privacy battery, step by step and visibly:
// a PHI-bearing clinical table is classified, pseudonymized, date-shifted
// and k-anonymized under a hash-chained audit log. The example prints the
// table before and after, the audit transcript, and the privacy/utility
// verdict (k achieved, l-diversity, rows suppressed).
//
//   ./clinical_deid
#include <cstdio>

#include "privacy/anonymize.hpp"
#include "privacy/audit.hpp"
#include "privacy/tabular.hpp"
#include "workloads/bio.hpp"

using namespace drai;

namespace {

void PrintTable(const privacy::Table& t, size_t max_rows) {
  for (const auto& col : t.columns) std::printf("%-22s", col.c_str());
  std::printf("\n");
  for (size_t r = 0; r < std::min(max_rows, t.rows.size()); ++r) {
    for (const auto& cell : t.rows[r]) {
      std::printf("%-22s", cell.substr(0, 20).c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows total)\n", t.rows.size());
}

}  // namespace

int main() {
  // Synthesize a clinical cohort with PHI.
  workloads::BioConfig config;
  config.n_subjects = 400;
  config.sequence_length = 16;  // sequences unused here
  auto workload = workloads::GenerateBioWorkload(config);
  privacy::Table& table = workload.clinical;

  std::printf("== raw table (PHI present) ==\n");
  PrintTable(table, 4);

  privacy::AuditLog audit;

  // 1. Classify columns by name + value shape.
  std::printf("\n== field classification ==\n");
  std::vector<std::string> direct, quasi;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    std::vector<std::string> sample;
    for (size_t r = 0; r < std::min<size_t>(table.rows.size(), 32); ++r) {
      sample.push_back(table.rows[r][c]);
    }
    const privacy::FieldClass cls =
        privacy::ClassifyField(table.columns[c], sample);
    std::printf("  %-14s -> %s\n", table.columns[c].c_str(),
                std::string(privacy::FieldClassName(cls)).c_str());
    if (cls == privacy::FieldClass::kDirectIdentifier) {
      direct.push_back(table.columns[c]);
    }
    if (cls == privacy::FieldClass::kQuasiIdentifier) {
      quasi.push_back(table.columns[c]);
    }
  }
  audit.Append("clinical_deid", "classify",
               std::to_string(direct.size()) + " direct identifiers");

  // 2. Pseudonymize every direct identifier (keyed HMAC tokens).
  privacy::Pseudonymizer pseudo("example-project-key-0123456789");
  for (const auto& col : direct) {
    pseudo.PseudonymizeColumn(table, col).OrDie();
    audit.Append("clinical_deid", "pseudonymize", "column=" + col);
  }

  // 3. Shift dates per subject (intervals preserved).
  privacy::DateShifter shifter("example-project-key-0123456789");
  for (const char* col : {"dob", "admit_date"}) {
    shifter.ShiftColumn(table, "subject_id", col).OrDie();
    audit.Append("clinical_deid", "date-shift", std::string("column=") + col);
  }

  // 4. k-anonymity over (age, zip).
  privacy::KAnonymityConfig kc;
  kc.k = 5;
  kc.numeric_bands["age"] = 5;
  kc.prefix_lengths["zip"] = 3;
  const auto report = privacy::EnforceKAnonymity(table, kc).value();
  audit.Append("clinical_deid", "k-anonymize",
               "k=" + std::to_string(report.k_achieved) + " suppressed=" +
                   std::to_string(report.suppressed_rows));

  std::printf("\n== de-identified table ==\n");
  PrintTable(table, 4);

  std::printf("\n== privacy/utility verdict ==\n");
  std::printf("  k requested/achieved: %zu / %zu\n", kc.k, report.k_achieved);
  std::printf("  generalization level: %zu, suppressed rows: %zu (%.1f%%)\n",
              report.generalization_level, report.suppressed_rows,
              100.0 * report.suppressed_rows / config.n_subjects);
  const size_t diversity =
      privacy::MinDiversity(table, {"age", "zip"}, "diagnosis").value();
  std::printf("  min l-diversity over (age, zip): %zu %s\n", diversity,
              diversity >= 2 ? "(no homogeneous class)" : "(WARNING)");

  std::printf("\n== audit transcript (hash-chained) ==\n");
  for (const auto& entry : audit.entries()) {
    std::printf("  [%llu] %-12s %-24s %s...\n",
                (unsigned long long)entry.sequence, entry.action.c_str(),
                entry.detail.substr(0, 24).c_str(),
                entry.hash_hex.substr(0, 12).c_str());
  }
  const Status chain = audit.Verify();
  std::printf("  chain verification: %s\n", chain.ToString().c_str());

  // Demonstrate tamper evidence: modify a serialized entry and re-verify.
  Bytes bytes = audit.Serialize();
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  const auto tampered = privacy::AuditLog::Parse(bytes);
  std::printf("  tampered copy parse: %s\n",
              tampered.status().ToString().c_str());
  return chain.ok() && !tampered.ok() ? 0 : 1;
}
