// Quickstart: the smallest complete drai program.
//
// Builds a five-stage readiness pipeline for a toy dataset, runs it, checks
// the dataset's Data Readiness Level against the paper's maturity matrix,
// trains a model from the resulting shards, and prints the data card.
//
//   ./quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/datasheet.hpp"
#include "core/pipeline.hpp"
#include "core/quality.hpp"
#include "core/readiness.hpp"
#include "ml/trainer.hpp"
#include "parallel/striped_store.hpp"
#include "shard/shard_reader.hpp"
#include "shard/shard_writer.hpp"
#include "stats/normalizer.hpp"

using namespace drai;

int main() {
  // A store standing in for the parallel filesystem.
  par::StripedStore store;

  // Shared pipeline state.
  auto normalizer =
      std::make_shared<stats::Normalizer>(stats::NormKind::kZScore, 3);
  auto manifest = std::make_shared<shard::DatasetManifest>();

  // The canonical five stages: ingest -> preprocess -> transform ->
  // structure -> shard. Stage order is enforced by the framework. Stages
  // default to ExecutionHint::kSerial; data-parallel stages would pass a
  // hint + ParallelSpec (see the climate example) and options.threads
  // picks the worker count.
  core::PipelineOptions options;
  options.threads = 1;  // this toy dataset is too small to parallelize
  core::Pipeline pipeline("quickstart", options);

  pipeline.Add("make-raw", core::StageKind::kIngest,
               [](core::DataBundle& bundle, core::StageContext& ctx) {
                 // "Acquire" 500 noisy samples of y = x0 + 2*x1 - x2.
                 Rng rng = ctx.rng();
                 NDArray x = NDArray::Zeros({500, 3}, DType::kF64);
                 NDArray y = NDArray::Zeros({500}, DType::kF64);
                 for (size_t i = 0; i < 500; ++i) {
                   const double a = rng.Uniform(-1, 1);
                   const double b = rng.Uniform(-1, 1);
                   const double c = rng.Uniform(-1, 1);
                   x.SetFromDouble(i * 3 + 0, 10 * a + 5);  // unscaled units
                   x.SetFromDouble(i * 3 + 1, 100 * b);     // wildly different
                   x.SetFromDouble(i * 3 + 2, 0.01 * c);    // scales
                   y.SetFromDouble(i, a + 2 * b - c + rng.Normal(0, 0.01));
                 }
                 bundle.tensors["x"] = std::move(x);
                 bundle.tensors["y"] = std::move(y);
                 return Status::Ok();
               });

  pipeline.Add("validate", core::StageKind::kPreprocess,
               [](core::DataBundle& bundle, core::StageContext&) {
                 // Nothing to align for tabular data — validate shapes.
                 if (bundle.tensors.at("x").shape()[0] !=
                     bundle.tensors.at("y").shape()[0]) {
                   return InvalidArgument("row count mismatch");
                 }
                 return Status::Ok();
               });

  pipeline.Add("normalize", core::StageKind::kTransform,
               [&](core::DataBundle& bundle, core::StageContext&) {
                 NDArray& x = bundle.tensors.at("x");
                 normalizer->ObserveMatrix(x);
                 normalizer->Fit();
                 normalizer->ApplyMatrix(x);
                 return Status::Ok();
               });

  pipeline.Add("to-examples", core::StageKind::kStructure,
               [](core::DataBundle& bundle, core::StageContext&) {
                 const NDArray& x = bundle.tensors.at("x");
                 const NDArray& y = bundle.tensors.at("y");
                 for (size_t i = 0; i < x.shape()[0]; ++i) {
                   shard::Example ex;
                   ex.key = "sample-" + std::to_string(i);
                   NDArray row = NDArray::Zeros({3}, DType::kF32);
                   for (size_t j = 0; j < 3; ++j) {
                     row.SetFromDouble(j, x.GetAsDouble(i * 3 + j));
                   }
                   ex.features["x"] = std::move(row);
                   ex.features["y"] = NDArray::FromVector<float>(
                       {1}, {static_cast<float>(y.GetAsDouble(i))});
                   bundle.examples.push_back(std::move(ex));
                 }
                 return Status::Ok();
               });

  pipeline.Add("shard", core::StageKind::kShard,
               [&](core::DataBundle& bundle, core::StageContext&) {
                 shard::ShardWriterConfig config;
                 config.dataset_name = "quickstart";
                 config.directory = "/datasets/quickstart";
                 shard::ShardWriter writer(store, config);
                 ByteWriter nb;
                 normalizer->Serialize(nb);
                 writer.SetNormalizerBlob(nb.Take());
                 for (const auto& ex : bundle.examples) {
                   DRAI_ASSIGN_OR_RETURN(shard::Split s, writer.Add(ex));
                   (void)s;
                 }
                 DRAI_ASSIGN_OR_RETURN(*manifest, writer.Finalize());
                 return Status::Ok();
               });

  // Run it.
  core::DataBundle bundle;
  const core::PipelineReport report = pipeline.Run(bundle);
  if (!report.ok) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.error.ToString().c_str());
    return 1;
  }
  std::printf("pipeline ok: %zu stages, %s total (%s)\n",
              report.stages.size(), HumanDuration(report.total_seconds).c_str(),
              report.TimeBreakdown().c_str());

  // Assess readiness against the maturity matrix.
  core::DatasetState state;
  state.acquired = state.validated_standard_format = true;
  state.initial_alignment = state.grids_standardized = true;
  state.metadata_enriched = state.basic_normalization = true;
  state.basic_labels = state.comprehensive_labels = true;
  state.label_fraction = 1.0;
  state.high_throughput_ingest = state.alignment_fully_standardized = true;
  state.normalization_finalized = state.features_extracted = true;
  state.ingest_automated = state.alignment_automated = true;
  state.transform_automated_audited = state.features_validated = true;
  state.split_and_sharded = manifest->TotalRecords() > 0;
  const core::ReadinessAssessment readiness = core::Assess(state);
  std::printf("readiness: %s\n",
              std::string(core::ReadinessLevelName(readiness.overall)).c_str());

  // Prove "ready-to-train": fit a regressor from the shards alone.
  const auto reader =
      shard::ShardReader::Open(store, "/datasets/quickstart").value();
  ml::LinearRegressor model;
  ml::TrainFromShardsOptions train_options;
  train_options.epochs = 20;
  train_options.sgd.learning_rate = 0.1;
  const auto train_report =
      ml::TrainRegressorFromShards(reader, train_options, model).value();
  std::printf("trained from shards: val MSE %.5f, val R2 %.4f\n",
              train_report.val_mse, train_report.val_r2);

  // Emit the data card.
  const core::QualityReport quality = core::AssessQuality(bundle.examples);
  core::Datasheet sheet = core::MakeDatasheet(
      "quickstart", *manifest, quality, readiness,
      pipeline.provenance().RecordHash());
  sheet.motivation = "Smallest end-to-end drai example.";
  std::printf("\n%s\n", sheet.ToMarkdown().c_str());
  return train_report.val_r2 > 0.95 ? 0 : 1;
}
