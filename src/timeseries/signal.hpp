// drai/timeseries/signal.hpp
//
// Irregular time-series handling — the fusion archetype (§3.2): diagnostic
// channels sampled at different, drifting rates must be despiked,
// gap-filled, resampled to a common clock, aligned into a channel matrix,
// windowed, and reduced to physics-ish features before sharding.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::timeseries {

/// One diagnostic channel: timestamps (seconds, strictly increasing) and
/// values. NaN values mark dropouts.
struct Signal {
  std::string name;
  std::vector<double> t;
  std::vector<double> v;

  [[nodiscard]] size_t size() const { return t.size(); }
  /// Validates invariants: equal lengths, strictly increasing timestamps.
  [[nodiscard]] Status Validate() const;
  /// Fraction of NaN samples.
  [[nodiscard]] double MissingFraction() const;
};

/// Replace samples more than `z_threshold` robust deviations from the
/// median (MAD-based z-score) with NaN. Returns the number replaced.
size_t Despike(Signal& s, double z_threshold = 6.0);

/// Linearly interpolate interior NaN runs shorter than `max_gap_samples`;
/// longer runs and edge NaNs remain missing. Returns samples filled.
size_t FillGaps(Signal& s, size_t max_gap_samples = 16);

enum class Interp { kLinear, kNearest, kPrevious };

/// Resample onto the uniform clock t0 + k*dt, k in [0, n). Samples outside
/// the signal's time span become NaN; NaN source samples are skipped by
/// interpolation when a bracketing finite pair exists.
Result<std::vector<double>> ResampleUniform(const Signal& s, double t0,
                                            double dt, size_t n,
                                            Interp interp = Interp::kLinear);

/// Channels aligned onto one clock: data is [channels, samples] f64.
struct AlignedFrame {
  double t0 = 0;
  double dt = 0;
  std::vector<std::string> channel_names;
  NDArray data;

  [[nodiscard]] size_t n_channels() const { return channel_names.size(); }
  [[nodiscard]] size_t n_samples() const {
    return data.rank() == 2 ? data.shape()[1] : 0;
  }
};

/// Align several signals onto a common uniform clock covering the
/// *intersection* of their spans, at sample interval `dt`.
/// Fails when the intersection is empty.
Result<AlignedFrame> AlignChannels(std::span<const Signal> signals, double dt,
                                   Interp interp = Interp::kLinear);

/// Cut an aligned frame into fixed windows: [n_windows, channels, window]
/// with the given stride. Windows containing NaN are dropped when
/// `drop_missing`.
Result<NDArray> SlidingWindows(const AlignedFrame& frame, size_t window,
                               size_t stride, bool drop_missing = true);

/// Per-(window, channel) summary features: mean, std, min, max, mean |dv/dt|,
/// max |dv/dt| — 6 features. Input [n_windows, channels, window] ->
/// output [n_windows, channels * 6].
Result<NDArray> WindowFeatures(const NDArray& windows, double dt);

/// Number of features WindowFeatures emits per channel.
inline constexpr size_t kFeaturesPerChannel = 6;

}  // namespace drai::timeseries
