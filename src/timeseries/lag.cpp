#include "timeseries/lag.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace drai::timeseries {

namespace {

/// Pearson correlation of the finite co-observed samples of x and y.
double Correlation(std::span<const double> x, std::span<const double> y) {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
    ++n;
  }
  if (n < 8) return std::numeric_limits<double>::quiet_NaN();
  const double nd = static_cast<double>(n);
  const double cov = sxy / nd - (sx / nd) * (sy / nd);
  const double vx = sxx / nd - (sx / nd) * (sx / nd);
  const double vy = syy / nd - (sy / nd) * (sy / nd);
  if (vx <= 0 || vy <= 0) return std::numeric_limits<double>::quiet_NaN();
  return cov / std::sqrt(vx * vy);
}

}  // namespace

Result<LagEstimate> EstimateLag(const Signal& a, const Signal& b, double dt,
                                double max_lag) {
  DRAI_RETURN_IF_ERROR(a.Validate());
  DRAI_RETURN_IF_ERROR(b.Validate());
  if (dt <= 0 || max_lag < 0) {
    return InvalidArgument("EstimateLag: dt > 0, max_lag >= 0 required");
  }
  if (a.size() == 0 || b.size() == 0) {
    return InvalidArgument("EstimateLag: empty signal");
  }
  // Evaluate on a's span widened by max_lag, so shifted b still overlaps.
  const double t0 = a.t.front();
  const double t1 = a.t.back();
  const size_t n = static_cast<size_t>((t1 - t0) / dt) + 1;
  if (n < 8) return FailedPrecondition("EstimateLag: overlap too short");
  DRAI_ASSIGN_OR_RETURN(std::vector<double> ra,
                        ResampleUniform(a, t0, dt, n));

  const int lag_steps = static_cast<int>(std::lround(max_lag / dt));
  LagEstimate best;
  best.correlation = -2.0;
  for (int k = -lag_steps; k <= lag_steps; ++k) {
    // Shifting b's clock by +lag means sampling b at (t - lag).
    const double lag = static_cast<double>(k) * dt;
    DRAI_ASSIGN_OR_RETURN(std::vector<double> rb,
                          ResampleUniform(b, t0 - lag, dt, n));
    const double c = Correlation(ra, rb);
    if (!std::isnan(c) && c > best.correlation) {
      best.correlation = c;
      best.lag_seconds = lag;
    }
  }
  if (best.correlation <= -2.0) {
    return FailedPrecondition("EstimateLag: no valid overlap at any lag");
  }
  return best;
}

Result<LagAlignedFrame> AlignChannelsWithLag(std::span<const Signal> signals,
                                             double dt, double max_lag,
                                             size_t reference_channel,
                                             Interp interp) {
  if (signals.empty()) return InvalidArgument("AlignChannelsWithLag: empty");
  if (reference_channel >= signals.size()) {
    return OutOfRange("AlignChannelsWithLag: bad reference index");
  }
  LagAlignedFrame out;
  std::vector<Signal> shifted(signals.begin(), signals.end());
  out.lags.resize(signals.size());
  for (size_t c = 0; c < signals.size(); ++c) {
    if (c == reference_channel) {
      out.lags[c] = {0.0, 1.0};
      continue;
    }
    DRAI_ASSIGN_OR_RETURN(
        out.lags[c],
        EstimateLag(signals[reference_channel], signals[c], dt, max_lag));
    // A lag of +L means channel c's events appear L late; subtract it.
    for (double& t : shifted[c].t) t += out.lags[c].lag_seconds;
  }
  DRAI_ASSIGN_OR_RETURN(out.frame, AlignChannels(shifted, dt, interp));
  return out;
}

}  // namespace drai::timeseries
