#include "timeseries/signal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace drai::timeseries {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

Status Signal::Validate() const {
  if (t.size() != v.size()) {
    return InvalidArgument("signal '" + name + "': t/v length mismatch");
  }
  for (size_t i = 1; i < t.size(); ++i) {
    if (!(t[i] > t[i - 1])) {
      return InvalidArgument("signal '" + name +
                             "': timestamps not strictly increasing");
    }
  }
  return Status::Ok();
}

double Signal::MissingFraction() const {
  if (v.empty()) return 0.0;
  size_t nan = 0;
  for (double x : v) {
    if (std::isnan(x)) ++nan;
  }
  return static_cast<double>(nan) / static_cast<double>(v.size());
}

size_t Despike(Signal& s, double z_threshold) {
  // Median and MAD over finite samples.
  std::vector<double> finite;
  finite.reserve(s.v.size());
  for (double x : s.v) {
    if (std::isfinite(x)) finite.push_back(x);
  }
  if (finite.size() < 3) return 0;
  auto median_of = [](std::vector<double>& v) {
    const size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid), v.end());
    return v[mid];
  };
  const double med = median_of(finite);
  std::vector<double> dev(finite.size());
  for (size_t i = 0; i < finite.size(); ++i) dev[i] = std::fabs(finite[i] - med);
  double mad = median_of(dev);
  if (mad <= 0) return 0;  // constant signal: nothing is a spike
  const double sigma = 1.4826 * mad;  // MAD -> stddev under normality
  size_t replaced = 0;
  for (double& x : s.v) {
    if (std::isfinite(x) && std::fabs(x - med) > z_threshold * sigma) {
      x = kNaN;
      ++replaced;
    }
  }
  return replaced;
}

size_t FillGaps(Signal& s, size_t max_gap_samples) {
  size_t filled = 0;
  const size_t n = s.v.size();
  size_t i = 0;
  while (i < n) {
    if (!std::isnan(s.v[i])) {
      ++i;
      continue;
    }
    // NaN run [i, j).
    size_t j = i;
    while (j < n && std::isnan(s.v[j])) ++j;
    const bool interior = i > 0 && j < n;
    if (interior && (j - i) <= max_gap_samples) {
      const double t0 = s.t[i - 1], v0 = s.v[i - 1];
      const double t1 = s.t[j], v1 = s.v[j];
      for (size_t k = i; k < j; ++k) {
        const double w = (s.t[k] - t0) / (t1 - t0);
        s.v[k] = v0 + w * (v1 - v0);
        ++filled;
      }
    }
    i = j;
  }
  return filled;
}

Result<std::vector<double>> ResampleUniform(const Signal& s, double t0,
                                            double dt, size_t n,
                                            Interp interp) {
  DRAI_RETURN_IF_ERROR(s.Validate());
  if (dt <= 0) return InvalidArgument("ResampleUniform: dt must be > 0");
  std::vector<double> out(n, kNaN);
  if (s.size() == 0) return out;

  size_t cursor = 0;  // first source index with t >= target (advances)
  for (size_t k = 0; k < n; ++k) {
    const double target = t0 + static_cast<double>(k) * dt;
    if (target < s.t.front() || target > s.t.back()) continue;
    while (cursor < s.size() && s.t[cursor] < target) ++cursor;
    // cursor is the first index with t >= target.
    const size_t hi = std::min(cursor, s.size() - 1);
    const size_t lo = cursor == 0 ? 0 : cursor - 1;
    switch (interp) {
      case Interp::kPrevious:
        out[k] = s.v[lo];
        break;
      case Interp::kNearest: {
        const double dlo = std::fabs(target - s.t[lo]);
        const double dhi = std::fabs(s.t[hi] - target);
        out[k] = dlo <= dhi ? s.v[lo] : s.v[hi];
        break;
      }
      case Interp::kLinear: {
        if (hi == lo) {
          out[k] = s.v[lo];
        } else {
          const double w = (target - s.t[lo]) / (s.t[hi] - s.t[lo]);
          out[k] = s.v[lo] + w * (s.v[hi] - s.v[lo]);
        }
        break;
      }
    }
  }
  return out;
}

Result<AlignedFrame> AlignChannels(std::span<const Signal> signals, double dt,
                                   Interp interp) {
  if (signals.empty()) return InvalidArgument("AlignChannels: no signals");
  if (dt <= 0) return InvalidArgument("AlignChannels: dt must be > 0");
  double t_begin = -std::numeric_limits<double>::infinity();
  double t_end = std::numeric_limits<double>::infinity();
  for (const Signal& s : signals) {
    DRAI_RETURN_IF_ERROR(s.Validate());
    if (s.size() == 0) return InvalidArgument("AlignChannels: empty signal");
    t_begin = std::max(t_begin, s.t.front());
    t_end = std::min(t_end, s.t.back());
  }
  if (!(t_end > t_begin)) {
    return FailedPrecondition("AlignChannels: channel spans do not overlap");
  }
  const size_t n = static_cast<size_t>((t_end - t_begin) / dt) + 1;

  AlignedFrame frame;
  frame.t0 = t_begin;
  frame.dt = dt;
  frame.data = NDArray::Zeros({signals.size(), n}, DType::kF64);
  double* out = frame.data.data<double>();
  for (size_t c = 0; c < signals.size(); ++c) {
    frame.channel_names.push_back(signals[c].name);
    DRAI_ASSIGN_OR_RETURN(std::vector<double> row,
                          ResampleUniform(signals[c], t_begin, dt, n, interp));
    std::copy(row.begin(), row.end(), out + c * n);
  }
  return frame;
}

Result<NDArray> SlidingWindows(const AlignedFrame& frame, size_t window,
                               size_t stride, bool drop_missing) {
  if (window == 0 || stride == 0) {
    return InvalidArgument("SlidingWindows: window and stride must be > 0");
  }
  const size_t channels = frame.n_channels();
  const size_t samples = frame.n_samples();
  if (samples < window) {
    return InvalidArgument("SlidingWindows: frame shorter than window");
  }
  const double* src = frame.data.data<double>();
  std::vector<size_t> starts;
  for (size_t s = 0; s + window <= samples; s += stride) {
    if (drop_missing) {
      bool has_nan = false;
      for (size_t c = 0; c < channels && !has_nan; ++c) {
        for (size_t k = 0; k < window; ++k) {
          if (std::isnan(src[c * samples + s + k])) {
            has_nan = true;
            break;
          }
        }
      }
      if (has_nan) continue;
    }
    starts.push_back(s);
  }
  NDArray out = NDArray::Zeros({starts.size(), channels, window}, DType::kF64);
  double* dst = out.data<double>();
  for (size_t w = 0; w < starts.size(); ++w) {
    for (size_t c = 0; c < channels; ++c) {
      std::copy(src + c * samples + starts[w],
                src + c * samples + starts[w] + window,
                dst + (w * channels + c) * window);
    }
  }
  return out;
}

Result<NDArray> WindowFeatures(const NDArray& windows, double dt) {
  if (windows.rank() != 3) {
    return InvalidArgument("WindowFeatures: expected [n, channels, window]");
  }
  if (dt <= 0) return InvalidArgument("WindowFeatures: dt must be > 0");
  const size_t n = windows.shape()[0];
  const size_t channels = windows.shape()[1];
  const size_t window = windows.shape()[2];
  if (window < 2) return InvalidArgument("WindowFeatures: window too short");
  NDArray out =
      NDArray::Zeros({n, channels * kFeaturesPerChannel}, DType::kF64);
  for (size_t w = 0; w < n; ++w) {
    for (size_t c = 0; c < channels; ++c) {
      double sum = 0, sum_sq = 0;
      double mn = std::numeric_limits<double>::infinity();
      double mx = -mn;
      double dsum = 0, dmax = 0;
      for (size_t k = 0; k < window; ++k) {
        const double x = windows.GetAsDouble((w * channels + c) * window + k);
        sum += x;
        sum_sq += x * x;
        mn = std::min(mn, x);
        mx = std::max(mx, x);
        if (k > 0) {
          const double prev =
              windows.GetAsDouble((w * channels + c) * window + k - 1);
          const double d = std::fabs(x - prev) / dt;
          dsum += d;
          dmax = std::max(dmax, d);
        }
      }
      const double mean = sum / static_cast<double>(window);
      const double var =
          std::max(0.0, sum_sq / static_cast<double>(window) - mean * mean);
      const size_t base = w * channels * kFeaturesPerChannel +
                          c * kFeaturesPerChannel;
      out.SetFromDouble(base + 0, mean);
      out.SetFromDouble(base + 1, std::sqrt(var));
      out.SetFromDouble(base + 2, mn);
      out.SetFromDouble(base + 3, mx);
      out.SetFromDouble(base + 4, dsum / static_cast<double>(window - 1));
      out.SetFromDouble(base + 5, dmax);
    }
  }
  return out;
}

}  // namespace drai::timeseries
