// drai/timeseries/lag.hpp
//
// Cross-channel lag estimation and lag-corrected alignment. Fusion
// diagnostics are not only sampled on different clocks (§3.2) — their
// clocks are *offset* (trigger skew, cable delays). Aligning without
// correcting the offset smears the precursor features disruption
// prediction depends on. EstimateLag computes the normalized
// cross-correlation of two signals over a lag window; AlignChannelsWithLag
// shifts every channel onto the reference channel's clock first.
#pragma once

#include "timeseries/signal.hpp"

namespace drai::timeseries {

struct LagEstimate {
  double lag_seconds = 0;   ///< shift to ADD to b's clock to match a
  double correlation = 0;   ///< normalized cross-correlation at that lag
};

/// Estimate the lag of `b` relative to `a` by maximizing normalized
/// cross-correlation over lags in [-max_lag, +max_lag], evaluated on a
/// common uniform clock of step `dt`. Both signals are resampled
/// internally. Fails when the overlap is too short (< 8 samples).
Result<LagEstimate> EstimateLag(const Signal& a, const Signal& b, double dt,
                                double max_lag);

/// Like AlignChannels, but first estimates each channel's lag against
/// `reference_channel` and shifts its timestamps to compensate. Returns the
/// aligned frame plus the per-channel corrections applied.
struct LagAlignedFrame {
  AlignedFrame frame;
  std::vector<LagEstimate> lags;  ///< per input channel (reference = 0 lag)
};
Result<LagAlignedFrame> AlignChannelsWithLag(std::span<const Signal> signals,
                                             double dt, double max_lag,
                                             size_t reference_channel = 0,
                                             Interp interp = Interp::kLinear);

}  // namespace drai::timeseries
