#include "workloads/materials.hpp"

#include <cmath>
#include <cstdio>

namespace drai::workloads {

namespace {
// Species pool: C, N, O, Al, Si, Fe.
constexpr int kSpecies[] = {6, 7, 8, 13, 14, 26};

double SigmaFor(int z) { return 1.2 + 0.02 * static_cast<double>(z); }
}  // namespace

double ReferenceEnergyPerAtom(const graph::Structure& s) {
  const auto edges = graph::BuildNeighborList(s, 6.0);
  if (!edges.ok()) return 0.0;
  double energy = 0;
  for (const graph::Neighbor& e : edges.value()) {
    const double sigma = 0.5 * (SigmaFor(s.atomic_numbers[e.src]) +
                                SigmaFor(s.atomic_numbers[e.dst]));
    const double x = sigma / std::max(e.distance, 0.5);
    const double x6 = x * x * x * x * x * x;
    energy += 0.5 * 4.0 * 0.2 * (x6 * x6 - x6);  // 0.5: each pair seen twice
  }
  return energy / static_cast<double>(s.NumAtoms());
}

std::vector<graph::Structure> GenerateMaterials(const MaterialsConfig& config) {
  Rng master(config.seed);
  std::vector<graph::Structure> out;
  out.reserve(config.n_structures);
  for (size_t i = 0; i < config.n_structures; ++i) {
    Rng rng = master.Split();
    graph::Structure s;
    char id[32];
    std::snprintf(id, sizeof(id), "mat-%06zu", i);
    s.id = id;
    const size_t cls = rng.Categorical(config.class_weights);
    s.space_group_class = static_cast<int>(cls);
    const double a = rng.Uniform(3.2, 5.5);
    switch (cls) {
      case 0:  // cubic
        s.lattice = {{{a, 0, 0}, {0, a, 0}, {0, 0, a}}};
        break;
      case 1: {  // tetragonal: c != a
        const double c = a * rng.Uniform(1.2, 1.8);
        s.lattice = {{{a, 0, 0}, {0, a, 0}, {0, 0, c}}};
        break;
      }
      case 2: {  // orthorhombic
        const double b = a * rng.Uniform(1.1, 1.5);
        const double c = a * rng.Uniform(1.5, 2.0);
        s.lattice = {{{a, 0, 0}, {0, b, 0}, {0, 0, c}}};
        break;
      }
      default: {  // hexagonal-ish: 120° between a and b
        const double c = a * rng.Uniform(1.4, 1.8);
        s.lattice = {{{a, 0, 0},
                      {-0.5 * a, 0.8660254037844386 * a, 0},
                      {0, 0, c}}};
        break;
      }
    }
    const size_t n_atoms = config.min_atoms +
                           rng.UniformU64(config.max_atoms - config.min_atoms + 1);
    for (size_t k = 0; k < n_atoms; ++k) {
      graph::Vec3 f{};
      for (int d = 0; d < 3; ++d) {
        // Grid-ish sites plus thermal displacement; keeps atoms from
        // colliding while staying irregular.
        const double site =
            (static_cast<double>(rng.UniformU64(4)) + 0.5) / 4.0;
        double v = site + rng.Normal(0, config.displacement);
        v -= std::floor(v);
        f[static_cast<size_t>(d)] = v;
      }
      s.frac_coords.push_back(f);
      s.atomic_numbers.push_back(
          kSpecies[rng.UniformU64(std::size(kSpecies))]);
    }
    s.energy_per_atom = ReferenceEnergyPerAtom(s);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace drai::workloads
