#include "workloads/skew.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace drai::workloads {

bool SkewHot(const SkewSpec& spec, uint64_t unit) {
  if (spec.hot_fraction <= 0.0) return false;
  if (spec.hot_fraction >= 1.0) return true;
  // One SplitMix64 draw keyed by (seed, unit); the golden-ratio offset
  // decorrelates adjacent units the same way DeriveStageRng's salts do.
  SplitMix64 mix(spec.seed ^ (unit * 0x9E3779B97F4A7C15ull +
                              0xBF58476D1CE4E5B9ull));
  const double u =
      static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;  // [0, 1)
  return u < spec.hot_fraction;
}

double SkewFactor(const SkewSpec& spec, uint64_t unit) {
  return SkewHot(spec, unit) ? spec.multiplier : 1.0;
}

uint64_t SkewIters(const SkewSpec& spec, uint64_t unit) {
  const double iters =
      static_cast<double>(spec.base_iters) * SkewFactor(spec, unit);
  return static_cast<uint64_t>(std::llround(iters));
}

void BurnCpu(uint64_t iters) {
  static volatile uint64_t sink = 0;
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  sink = sink ^ x;
}

}  // namespace drai::workloads
