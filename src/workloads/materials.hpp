// drai/workloads/materials.hpp
//
// Synthetic materials workload (substitute for OMat24/AFLOW DFT archives):
// randomized crystal structures — a lattice drawn from one of several
// crystal systems with class-imbalanced frequencies, a basis of a few
// species, thermal displacement noise — labeled with a deterministic
// pair-potential energy per atom (a cheap stand-in for a DFT total energy
// that a GNN can regress). The imbalance across crystal-system classes is
// the §3.4 readiness challenge.
#pragma once

#include "common/rng.hpp"
#include "graph/structure.hpp"

namespace drai::workloads {

struct MaterialsConfig {
  size_t n_structures = 64;
  size_t min_atoms = 2;
  size_t max_atoms = 12;
  double displacement = 0.02;  ///< fractional-coordinate thermal noise
  uint64_t seed = 90210;
  /// Class frequencies for crystal systems 0..3 (cubic, tetragonal,
  /// orthorhombic, hexagonal-ish). Deliberately imbalanced by default.
  std::vector<double> class_weights = {0.6, 0.25, 0.1, 0.05};
};

std::vector<graph::Structure> GenerateMaterials(const MaterialsConfig& config);

/// The deterministic energy model the labels come from (exposed so tests
/// can verify a trained surrogate approaches it): sum over neighbor pairs
/// within 6 Å of a Lennard-Jones-like term with species-dependent sigma.
double ReferenceEnergyPerAtom(const graph::Structure& s);

}  // namespace drai::workloads
