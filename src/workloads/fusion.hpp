// drai/workloads/fusion.hpp
//
// Synthetic fusion workload (substitute for DIII-D/MDSplus shot archives):
// per-shot multi-channel diagnostics sampled at *different, irregular*
// rates, with dropouts, spikes, and an optional disruption event that the
// downstream ML task predicts. Disrupted shots show a precursor signature
// (growing oscillation on the mode-amplitude channel, current spike then
// crash) so the label is learnable from the features the fusion pipeline
// extracts — exercising extract -> align -> normalize -> shard end to end.
#pragma once

#include "common/rng.hpp"
#include "timeseries/signal.hpp"

namespace drai::workloads {

struct FusionConfig {
  size_t n_shots = 32;
  size_t n_channels = 4;       ///< >= 3: ip, mode_amp, density, extra...
  double flattop_seconds = 2.0;
  double base_rate_hz = 1000;  ///< nominal sample rate; per-channel jittered
  double disruption_prob = 0.35;
  double dropout_prob = 0.01;  ///< per-sample NaN
  double spike_prob = 0.002;   ///< per-sample despike-able outlier
  /// Per-channel trigger skew: each non-reference channel's clock runs
  /// late by Uniform(0, trigger_skew_max) seconds (the lag
  /// AlignChannelsWithLag exists to correct). 0 disables.
  double trigger_skew_max = 0.0;
  uint64_t seed = 777;
  /// Fraction of shots whose disruption label is withheld (sparse labels —
  /// the fusion readiness challenge).
  double unlabeled_fraction = 0.0;
};

struct FusionShot {
  std::string shot_id;
  std::vector<timeseries::Signal> channels;
  int label = 0;            ///< 1 = disrupted; -1 = label withheld
  double disruption_time = -1;  ///< seconds; < 0 when none
};

std::vector<FusionShot> GenerateFusionShots(const FusionConfig& config);

}  // namespace drai::workloads
