// drai/workloads/climate.hpp
//
// Synthetic climate workload (substitute for CMIP6/ERA5, per DESIGN.md):
// multi-variable, multi-timestep fields on a Gaussian-like grid, encoded
// as a GRIB-lite byte stream — i.e. level-1 data the climate pipeline must
// actually decode, regrid, normalize and shard. Fields are smooth
// (superposed low-wavenumber waves + latitude structure) so regridding and
// XOR compression behave like they do on real reanalyses; configurable
// dropout injects the missing-data problem.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "grid/latlon.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::workloads {

struct ClimateConfig {
  size_t n_times = 8;
  size_t n_lat = 32;
  size_t n_lon = 64;
  std::vector<std::string> variables = {"t2m", "z500", "u10"};
  double missing_prob = 0.0;  ///< per-cell NaN dropout before packing
  uint64_t seed = 1234;
  bool gaussian_grid = true;  ///< source on a Gaussian-like grid
};

/// One decoded field and its metadata (for tests that bypass encoding).
struct ClimateField {
  std::string variable;
  int64_t valid_time = 0;
  NDArray field;  ///< [n_lat, n_lon] f64
};

/// The grid the generator uses for `config`.
grid::LatLonGrid ClimateSourceGrid(const ClimateConfig& config);

/// Generate decoded fields (n_times * variables entries, time-major).
std::vector<ClimateField> GenerateClimateFields(const ClimateConfig& config);

/// Generate the GRIB-lite file bytes the ingest stage consumes.
Bytes GenerateClimateGrib(const ClimateConfig& config);

/// Generate the same fields as a NetCDF-lite container: variables over
/// (time, lat, lon) dimensions with CF-ish attributes. Exercises the
/// self-describing ingest path (real pipelines receive both GRIB and
/// NetCDF; §3.1).
Bytes GenerateClimateNetcdf(const ClimateConfig& config);

}  // namespace drai::workloads
