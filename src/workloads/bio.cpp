#include "workloads/bio.hpp"

#include <cstdio>

namespace drai::workloads {

namespace {
const char* kFirstNames[] = {"Ada",  "Grace", "Alan",  "Edsger", "Barbara",
                             "John", "Mary",  "Edith", "Donald", "Radia"};
const char* kLastNames[] = {"Lovelace", "Hopper",   "Turing", "Dijkstra",
                            "Liskov",   "Backus",   "Shaw",   "Clarke",
                            "Knuth",    "Perlman"};
const char* kDiagnoses[] = {"I10", "E11", "J45", "M54", "F41", "K21"};

std::string RandomDna(Rng& rng, size_t len, double n_prob) {
  static const char kBases[] = "ACGT";
  std::string s(len, 'A');
  for (char& c : s) {
    c = rng.Bernoulli(n_prob) ? 'N' : kBases[rng.UniformU64(4)];
  }
  return s;
}
}  // namespace

BioWorkload GenerateBioWorkload(const BioConfig& config) {
  Rng rng(config.seed);
  BioWorkload out;
  out.clinical.columns = {"patient_name", "ssn",       "dob",
                          "zip",          "sex",       "age",
                          "admit_date",   "diagnosis", "subject_id"};
  for (size_t i = 0; i < config.n_subjects; ++i) {
    BioSubject subj;
    char id[32];
    std::snprintf(id, sizeof(id), "SUBJ-%05zu", i);
    subj.subject_id = id;
    subj.sequence =
        RandomDna(rng, config.sequence_length, config.n_dropout_prob);
    const bool has_motif = rng.Bernoulli(config.motif_prob);
    if (has_motif && config.motif.size() < subj.sequence.size()) {
      const size_t pos = static_cast<size_t>(
          rng.UniformU64(subj.sequence.size() - config.motif.size()));
      subj.sequence.replace(pos, config.motif.size(), config.motif);
    }
    subj.expression_label = has_motif ? 1 : 0;
    if (rng.Bernoulli(config.unlabeled_fraction)) subj.expression_label = -1;

    // Clinical row with PHI.
    const std::string name =
        std::string(kFirstNames[rng.UniformU64(10)]) + " " +
        kLastNames[rng.UniformU64(10)];
    char ssn[16];
    std::snprintf(ssn, sizeof(ssn), "%03d-%02d-%04d",
                  static_cast<int>(rng.UniformU64(900)) + 100,
                  static_cast<int>(rng.UniformU64(99)) + 1,
                  static_cast<int>(rng.UniformU64(10000)));
    const int age = static_cast<int>(rng.UniformInt(20, 90));
    char dob[16];
    std::snprintf(dob, sizeof(dob), "%04d-%02d-%02d", 2024 - age,
                  static_cast<int>(rng.UniformInt(1, 12)),
                  static_cast<int>(rng.UniformInt(1, 28)));
    char admit[16];
    std::snprintf(admit, sizeof(admit), "%04d-%02d-%02d", 2024,
                  static_cast<int>(rng.UniformInt(1, 12)),
                  static_cast<int>(rng.UniformInt(1, 28)));
    char zip[8];
    std::snprintf(zip, sizeof(zip), "%05d",
                  37800 + static_cast<int>(rng.UniformU64(40)));
    out.clinical.rows.push_back({name, ssn, dob, zip,
                                 rng.Bernoulli(0.5) ? "F" : "M",
                                 std::to_string(age), admit,
                                 kDiagnoses[rng.UniformU64(6)],
                                 subj.subject_id});
    out.subjects.push_back(std::move(subj));
  }
  return out;
}

}  // namespace drai::workloads
