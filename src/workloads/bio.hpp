// drai/workloads/bio.hpp
//
// Synthetic bio/health workload (substitute for genomic + clinical data):
//  * DNA sequences with a planted regulatory motif whose presence drives a
//    binary expression label (Enformer-shaped task), plus 'N' dropouts;
//  * a clinical table carrying PHI columns (names, SSNs, DOBs, zips) and a
//    sensitive diagnosis column — level-1 data the bio pipeline must
//    classify, pseudonymize, date-shift and k-anonymize before fusion.
#pragma once

#include "common/rng.hpp"
#include "privacy/tabular.hpp"

namespace drai::workloads {

struct BioConfig {
  size_t n_subjects = 200;
  size_t sequence_length = 512;
  std::string motif = "TATAAGCG";
  double motif_prob = 0.45;      ///< subjects whose sequence contains it
  double n_dropout_prob = 0.005; ///< per-base 'N'
  uint64_t seed = 4242;
  /// Fraction of subjects with no expression label.
  double unlabeled_fraction = 0.1;
};

struct BioSubject {
  std::string subject_id;   ///< direct identifier pre-anonymization
  std::string sequence;
  int expression_label = 0; ///< 1 when motif present; -1 withheld
};

struct BioWorkload {
  std::vector<BioSubject> subjects;
  privacy::Table clinical;  ///< one row per subject, PHI included
};

BioWorkload GenerateBioWorkload(const BioConfig& config);

}  // namespace drai::workloads
