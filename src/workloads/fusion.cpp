#include "workloads/fusion.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <numbers>

namespace drai::workloads {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

const char* ChannelName(size_t c) {
  switch (c) {
    case 0: return "ip";         // plasma current
    case 1: return "mode_amp";   // MHD mode amplitude
    case 2: return "density";    // line-averaged density
    case 3: return "coil_v";     // coil voltage
    default: return nullptr;
  }
}
}  // namespace

std::vector<FusionShot> GenerateFusionShots(const FusionConfig& config) {
  Rng master(config.seed);
  std::vector<FusionShot> shots;
  shots.reserve(config.n_shots);
  for (size_t s = 0; s < config.n_shots; ++s) {
    Rng rng = master.Split();
    FusionShot shot;
    char id[32];
    std::snprintf(id, sizeof(id), "shot-%06zu", 100000 + s);
    shot.shot_id = id;
    const bool disrupts = rng.Bernoulli(config.disruption_prob);
    shot.label = disrupts ? 1 : 0;
    const double t_end = config.flattop_seconds;
    shot.disruption_time = disrupts ? rng.Uniform(0.5 * t_end, 0.95 * t_end)
                                    : -1.0;

    for (size_t c = 0; c < config.n_channels; ++c) {
      timeseries::Signal sig;
      const char* base_name = ChannelName(c);
      sig.name = base_name != nullptr
                     ? base_name
                     : "diag" + std::to_string(c);
      // Irregular clock: per-channel rate jitter plus per-sample jitter —
      // exactly the alignment problem §3.2 describes.
      const double rate = config.base_rate_hz * rng.Uniform(0.6, 1.4);
      // Trigger skew: the channel's clock stamps time t while the physics
      // actually happened at t - skew (channel 0 is the reference).
      const double skew =
          (c == 0 || config.trigger_skew_max <= 0)
              ? 0.0
              : rng.Uniform(0, config.trigger_skew_max);
      double t = rng.Uniform(0, 2.0 / rate);  // channels start offset
      while (t < t_end) {
        double v = 0;
        const double tw = t - skew;  // waveform time
        const double phase = 2 * std::numbers::pi * tw;
        switch (c % 4) {
          case 0: {  // plasma current: ramp, flattop, crash at disruption
            const double ramp = std::min(1.0, tw / (0.2 * t_end));
            v = 1.2e6 * ramp;
            if (disrupts && tw > shot.disruption_time) {
              v *= std::exp(-(tw - shot.disruption_time) * 40.0);
            }
            v += rng.Normal(0, 8e3);
            break;
          }
          case 1: {  // mode amplitude: precursor grows before disruption
            v = 0.05 + 0.02 * std::sin(phase * 7.0) + rng.Normal(0, 0.01);
            if (disrupts) {
              const double lead = shot.disruption_time - tw;
              if (lead < 0.3 && lead > -0.02) {
                v += 0.5 * std::exp(-lead / 0.1) *
                     std::fabs(std::sin(phase * 90.0));
              }
            }
            break;
          }
          case 2: {  // density: slow drift + noise
            v = 3.5e19 * (1.0 + 0.1 * std::sin(phase * 0.8)) +
                rng.Normal(0, 5e17);
            if (disrupts && tw > shot.disruption_time) {
              v *= std::exp(-(tw - shot.disruption_time) * 15.0);
            }
            break;
          }
          default: {  // coil voltage etc.: broadband
            v = 40.0 * std::sin(phase * 3.3) + rng.Normal(0, 4.0);
            break;
          }
        }
        if (rng.Bernoulli(config.dropout_prob)) v = kNaN;
        if (rng.Bernoulli(config.spike_prob)) {
          v = (rng.Bernoulli(0.5) ? 1.0 : -1.0) * 1e3 *
              (std::fabs(v) + 1.0);  // grossly out of family
        }
        sig.t.push_back(t);
        sig.v.push_back(v);
        t += (1.0 / rate) * rng.Uniform(0.7, 1.3);
      }
      shot.channels.push_back(std::move(sig));
    }
    if (config.unlabeled_fraction > 0 &&
        rng.Bernoulli(config.unlabeled_fraction)) {
      shot.label = -1;
    }
    shots.push_back(std::move(shot));
  }
  return shots;
}

}  // namespace drai::workloads
