// drai/workloads/skew.hpp
//
// Deterministic partition skew — the straggler generator for overlap and
// speculation benchmarks. A seeded subset of work units costs `multiplier`×
// the base compute; whether a unit is hot is a pure hash of (seed, unit),
// independent of partition count, worker count, or execution order, so the
// same seed produces the same straggler schedule under any backend and any
// grain. BurnCpu is the compute itself: an integer mix loop whose checksum
// feeds a volatile sink so the optimizer cannot elide it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace drai::workloads {

/// A deterministic hot-unit schedule: `hot_fraction` of units cost
/// `multiplier` × `base_iters` of BurnCpu work, the rest cost `base_iters`.
struct SkewSpec {
  double hot_fraction = 0.0;  ///< fraction of units that are hot, in [0, 1]
  double multiplier = 1.0;    ///< hot-unit cost relative to a cold unit
  uint64_t seed = 0x5CE3;     ///< schedule seed (pure function input)
  uint64_t base_iters = 0;    ///< BurnCpu iterations for a cold unit

  /// True when the spec adds any work at all.
  [[nodiscard]] bool active() const {
    return base_iters > 0 && (hot_fraction > 0.0 ? multiplier >= 1.0 : true);
  }
};

/// Whether unit `unit` is hot under `spec` — a pure function of
/// (spec.seed, spec.hot_fraction, unit); never of partition geometry.
[[nodiscard]] bool SkewHot(const SkewSpec& spec, uint64_t unit);

/// The cost factor for `unit`: spec.multiplier when hot, 1.0 otherwise.
[[nodiscard]] double SkewFactor(const SkewSpec& spec, uint64_t unit);

/// BurnCpu iterations for `unit`: base_iters × SkewFactor, rounded.
[[nodiscard]] uint64_t SkewIters(const SkewSpec& spec, uint64_t unit);

/// Spin the CPU for `iters` integer-mix rounds. The checksum lands in a
/// volatile sink, so the loop survives optimization; wall time scales
/// linearly with `iters`.
void BurnCpu(uint64_t iters);

}  // namespace drai::workloads
