#include "workloads/climate.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "container/grib_lite.hpp"
#include "container/netcdf_lite.hpp"

namespace drai::workloads {

grid::LatLonGrid ClimateSourceGrid(const ClimateConfig& config) {
  return config.gaussian_grid
             ? grid::LatLonGrid::GaussianLike(config.n_lat, config.n_lon)
             : grid::LatLonGrid::Uniform(config.n_lat, config.n_lon);
}

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;

/// Variable-specific base climatology: value as a function of latitude.
double Baseline(const std::string& variable, double lat_deg) {
  const double coslat = std::cos(lat_deg * kDegToRad);
  if (variable == "t2m") return 215.0 + 85.0 * coslat;          // kelvin-ish
  if (variable == "z500") return 49000.0 + 8000.0 * coslat;     // gpm-ish
  if (variable == "u10") return 8.0 * std::sin(3.0 * lat_deg * kDegToRad);
  return 100.0 * coslat;
}

double Amplitude(const std::string& variable) {
  if (variable == "t2m") return 6.0;
  if (variable == "z500") return 400.0;
  if (variable == "u10") return 4.0;
  return 10.0;
}
}  // namespace

std::vector<ClimateField> GenerateClimateFields(const ClimateConfig& config) {
  const grid::LatLonGrid g = ClimateSourceGrid(config);
  Rng rng(config.seed);
  std::vector<ClimateField> out;
  out.reserve(config.n_times * config.variables.size());

  for (const std::string& variable : config.variables) {
    // Per-variable wave set, shared across times so fields evolve smoothly.
    struct Wave {
      int k_lon;
      int k_lat;
      double phase;
      double speed;
      double amp;
    };
    std::vector<Wave> waves;
    for (int w = 0; w < 6; ++w) {
      waves.push_back({static_cast<int>(rng.UniformU64(5)) + 1,
                       static_cast<int>(rng.UniformU64(4)) + 1,
                       rng.Uniform(0, 2 * std::numbers::pi),
                       rng.Uniform(-0.3, 0.3),
                       Amplitude(variable) * rng.Uniform(0.3, 1.0)});
    }
    Rng dropout_rng = rng.Split();
    for (size_t t = 0; t < config.n_times; ++t) {
      ClimateField f;
      f.variable = variable;
      f.valid_time = static_cast<int64_t>(t) * 21600;  // 6-hourly
      f.field = NDArray::Zeros({g.n_lat(), g.n_lon()}, DType::kF64);
      for (size_t i = 0; i < g.n_lat(); ++i) {
        const double lat = g.lat(i);
        for (size_t j = 0; j < g.n_lon(); ++j) {
          const double lon = g.lon(j) * kDegToRad;
          double v = Baseline(variable, lat);
          for (const Wave& w : waves) {
            v += w.amp *
                 std::sin(w.k_lon * (lon + w.speed * static_cast<double>(t)) +
                          w.phase) *
                 std::cos(w.k_lat * lat * kDegToRad);
          }
          if (config.missing_prob > 0 &&
              dropout_rng.Bernoulli(config.missing_prob)) {
            v = std::numeric_limits<double>::quiet_NaN();
          }
          f.field.SetFromDouble(i * g.n_lon() + j, v);
        }
      }
      out.push_back(std::move(f));
    }
  }
  return out;
}

Bytes GenerateClimateNetcdf(const ClimateConfig& config) {
  const std::vector<ClimateField> fields = GenerateClimateFields(config);
  const grid::LatLonGrid g = ClimateSourceGrid(config);
  container::NcFile nc;
  nc.SetGlobalAttr("institution",
                   container::AttrValue::String("drai synthetic"));
  nc.SetGlobalAttr("grid", container::AttrValue::String(
                               config.gaussian_grid ? "gaussian-like"
                                                    : "uniform"));
  nc.AddDimension("time", config.n_times).OrDie();
  nc.AddDimension("lat", config.n_lat).OrDie();
  nc.AddDimension("lon", config.n_lon).OrDie();

  // Coordinate variables.
  container::NcVariable lat;
  lat.name = "lat";
  lat.dims = {"lat"};
  lat.data = NDArray::Zeros({config.n_lat}, DType::kF64);
  for (size_t i = 0; i < config.n_lat; ++i) {
    lat.data.SetFromDouble(i, g.lat(i));
  }
  lat.attrs["units"] = container::AttrValue::String("degrees_north");
  nc.AddVariable(std::move(lat)).OrDie();

  for (const std::string& var : config.variables) {
    container::NcVariable v;
    v.name = var;
    v.dims = {"time", "lat", "lon"};
    v.data = NDArray::Zeros({config.n_times, config.n_lat, config.n_lon},
                            DType::kF64);
    size_t t = 0;
    for (const ClimateField& f : fields) {
      if (f.variable != var) continue;
      NDArray slot = v.data.Slice(0, t, t + 1)
                         .Reshape({config.n_lat, config.n_lon});
      slot.CopyFrom(f.field);
      ++t;
    }
    v.attrs["units"] = container::AttrValue::String(
        var == "t2m" ? "K" : var == "z500" ? "gpm" : "m s-1");
    nc.AddVariable(std::move(v)).OrDie();
  }
  return nc.Serialize();
}

Bytes GenerateClimateGrib(const ClimateConfig& config) {
  const std::vector<ClimateField> fields = GenerateClimateFields(config);
  Bytes file;
  for (const ClimateField& f : fields) {
    container::GribMessage msg;
    msg.variable = f.variable;
    msg.valid_time = f.valid_time;
    msg.level_hpa = f.variable == "z500" ? 500 : 0;
    msg.bits = 16;
    msg.field = f.field;
    container::AppendGribMessage(file, msg).OrDie();
  }
  return file;
}

}  // namespace drai::workloads
