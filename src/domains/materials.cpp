#include "domains/materials.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "shard/shard_writer.hpp"
#include "stats/imbalance.hpp"
#include "stats/normalizer.hpp"

namespace drai::domains {

using core::DataBundle;
using core::ExecutionHint;
using core::ParallelSpec;
using core::PartitionAxis;
using core::StageContext;
using core::StageKind;

Result<MaterialsArchetypeResult> RunMaterialsArchetype(
    par::StripedStore& store, const MaterialsArchetypeConfig& config) {
  MaterialsArchetypeResult result;
  auto structures = std::make_shared<std::vector<graph::Structure>>(
      workloads::GenerateMaterials(config.workload));
  auto samples = std::make_shared<std::vector<graph::GraphSample>>();
  auto label_norm = std::make_shared<stats::Normalizer>(
      stats::NormKind::kZScore, 1);
  auto manifest = std::make_shared<shard::DatasetManifest>();

  core::PipelineOptions options;
  options.backend = config.backend;
  options.threads = config.threads;
  options.faults = config.faults;
  options.overlap = config.overlap;
  core::Pipeline pipeline("materials-archetype", options);

  // The corpus lives in the shared `structures` vector, not the bundle, so
  // the parallel stages partition the index range; each partition touches
  // only its own disjoint slice.
  ParallelSpec per_structure;
  per_structure.axis = PartitionAxis::kRange;
  per_structure.range_count = structures->size();

  // ingest: parse/validate simulation outputs.
  pipeline.Add(
      "parse", StageKind::kIngest,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        for (const auto& s : *structures) {
          DRAI_RETURN_IF_ERROR(s.Validate());
        }
        context.NoteParam("structures", std::to_string(structures->size()));
        bundle.SetAttr("source", container::AttrValue::String("dft-synthetic"));
        return Status::Ok();
      });

  // preprocess: wrap fractional coordinates into [0, 1).
  pipeline.Add(
      "wrap-coords", StageKind::kPreprocess,
      ExecutionHint::kRecordParallel,
      [structures](DataBundle&, StageContext& context) -> Status {
        const auto& slot = context.partition();
        for (size_t i = slot.lo; i < slot.hi; ++i) {
          // Cancellation poll per structure — a cancelled attempt stops at
          // the next record instead of finishing the slice.
          if (context.Cancelled()) return context.CancelledStatus();
          for (auto& f : (*structures)[i].frac_coords) {
            for (double& v : f) {
              v -= std::floor(v);
            }
          }
        }
        return Status::Ok();
      },
      per_structure);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // transform: standardize energy labels (z-score over the corpus).
  pipeline.Add(
      "normalize-labels", StageKind::kTransform,
      [&](DataBundle&, StageContext& context) -> Status {
        for (const auto& s : *structures) {
          label_norm->Observe(0, s.energy_per_atom);
        }
        label_norm->Fit();
        context.NoteParam("label_mean", FormatDouble(label_norm->Center(0), 4));
        context.NoteParam("label_std", FormatDouble(label_norm->Scale(0), 4));
        return Status::Ok();
      });

  // structure: neighbor graphs + GNN encoding in parallel (each partition
  // fills its disjoint slice of `samples`), then class rebalancing and
  // example emission in the serial After hook (both need the full corpus).
  pipeline.Add(
      "graph-encode", StageKind::kStructure,
      ExecutionHint::kRecordParallel,
      /*before=*/
      [structures, samples](DataBundle&, StageContext&) -> Status {
        samples->clear();
        samples->resize(structures->size());
        return Status::Ok();
      },
      [&, structures, samples, label_norm](DataBundle&,
                                           StageContext& context) -> Status {
        const auto& slot = context.partition();
        for (size_t i = slot.lo; i < slot.hi; ++i) {
          DRAI_ASSIGN_OR_RETURN(
              graph::GraphSample g,
              graph::EncodeGraph((*structures)[i], config.encode));
          g.label = label_norm->Apply(0, g.label);
          (*samples)[i] = std::move(g);
        }
        return Status::Ok();
      },
      /*after=*/
      [&, samples](DataBundle& bundle, StageContext& context) -> Status {
        std::vector<int> classes;
        classes.reserve(samples->size());
        for (const auto& g : *samples) classes.push_back(g.class_label);
        std::vector<int64_t> class64(classes.begin(), classes.end());
        result.imbalance_before =
            stats::ImbalanceRatio(stats::CountClasses(class64));

        std::vector<size_t> order(samples->size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        if (config.rebalance) {
          order = graph::RebalanceIndices(classes, config.strategy,
                                          config.split_seed);
        }
        std::vector<int64_t> after;
        std::map<std::string, size_t> copy_count;
        for (size_t idx : order) {
          const graph::GraphSample& g = (*samples)[idx];
          after.push_back(g.class_label);
          shard::Example ex = graph::ToExample(g);
          // Oversampled repeats need distinct keys (same split by
          // construction: the split key strips the copy suffix).
          const size_t copy = copy_count[g.id]++;
          if (copy > 0) ex.key = g.id + "~dup" + std::to_string(copy);
          bundle.examples.push_back(std::move(ex));
        }
        result.imbalance_after =
            stats::ImbalanceRatio(stats::CountClasses(after));
        context.NoteParam("imbalance_before",
                          FormatDouble(result.imbalance_before, 2));
        context.NoteParam("imbalance_after",
                          FormatDouble(result.imbalance_after, 2));
        return Status::Ok();
      },
      per_structure);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // shard: split by structure id (duplicates follow their original).
  pipeline.Add(
      "shard", StageKind::kShard,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        shard::ShardWriterConfig wc;
        wc.dataset_name = "materials-graphs";
        wc.created_by = "drai/materials-archetype";
        wc.directory = config.dataset_dir;
        wc.split_seed = config.split_seed;
        shard::ShardWriter writer(store, wc);
        ByteWriter nb;
        label_norm->Serialize(nb);
        writer.SetNormalizerBlob(nb.Take());
        writer.SetProvenanceHash(context.provenance() != nullptr
                                     ? context.provenance()->RecordHash()
                                     : "");
        const shard::SplitAssigner by_structure(0.8, 0.1, 0.1,
                                                config.split_seed);
        for (const shard::Example& ex : bundle.examples) {
          const std::string base = ex.key.substr(0, ex.key.find('~'));
          DRAI_RETURN_IF_ERROR(writer.AddTo(by_structure.Assign(base), ex));
        }
        DRAI_ASSIGN_OR_RETURN(*manifest, writer.Finalize());
        context.NoteParam("records", std::to_string(manifest->TotalRecords()));
        return Status::Ok();
      });

  DataBundle bundle;
  result.report = pipeline.Run(bundle);
  if (!result.report.ok) return result.report.error;

  result.manifest = *manifest;
  result.quality = core::AssessQuality(bundle.examples);
  result.provenance_hash = pipeline.provenance().RecordHash();

  core::DatasetState& s = result.state;
  s.acquired = true;
  s.validated_standard_format = true;
  s.metadata_enriched = true;
  s.high_throughput_ingest = true;
  s.ingest_automated = true;
  s.initial_alignment = true;
  s.grids_standardized = true;
  s.alignment_fully_standardized = true;
  s.alignment_automated = true;
  s.basic_normalization = true;
  s.normalization_finalized = true;
  s.basic_labels = true;
  s.comprehensive_labels = true;  // DFT labels exist for every structure
  s.transform_automated_audited = true;
  s.features_extracted = true;
  s.features_validated = true;
  s.split_and_sharded = manifest->TotalRecords() > 0;
  s.missing_fraction = result.quality.MissingFraction();
  s.label_fraction = 1.0;
  result.readiness = core::Assess(s);
  return result;
}

}  // namespace drai::domains
