// drai/domains/materials.hpp
//
// Materials archetype (Table 1, §3.4): parse -> normalize -> encode ->
// shard. Ingest validates parsed structures; preprocess wraps coordinates
// into the unit cell; transform standardizes the energy labels and fits
// the node-descriptor normalizer; structure builds the periodic neighbor
// graph and encodes GNN samples, rebalancing the skewed crystal-system
// classes; shard writes BpLite-backed RecIO shards.
#pragma once

#include "domains/climate.hpp"  // ArchetypeResult
#include "graph/encode.hpp"
#include "workloads/materials.hpp"

namespace drai::domains {

struct MaterialsArchetypeConfig {
  workloads::MaterialsConfig workload;
  graph::GraphEncodeOptions encode;
  bool rebalance = true;
  graph::RebalanceStrategy strategy = graph::RebalanceStrategy::kOversample;
  std::string dataset_dir = "/datasets/materials";
  uint64_t split_seed = 44;
  /// Execution substrate for the parallel stages (thread pool or SPMD
  /// ranks). Output bytes are identical either way.
  core::Backend backend = core::Backend::kThread;
  /// Worker threads (kThread) or rank world size (kSpmd); 0 = default.
  /// Output bytes are identical for any value.
  size_t threads = 0;
  /// Retry policy applied to every parallel stage (default: no retry).
  core::RetryPolicy retry;
  /// Deadline policy applied to every stage alongside `retry`: hard limits
  /// cancel hung attempts, soft limits launch straggler speculation,
  /// collective_ms bounds SPMD collective waits. Inactive by default.
  core::DeadlinePolicy deadline;
  /// Deterministic fault injection (tests/benches). Inactive by default.
  core::FaultPlan faults;
  /// Inter-stage pipelining master switch (PipelineOptions::overlap). This
  /// plan has no streamable boundaries today (hooks and serial stages sit
  /// between its parallel groups), so this is plumbing for parity with the
  /// climate archetype; output bytes are identical either way.
  bool overlap = true;
};

struct MaterialsArchetypeResult : ArchetypeResult {
  double imbalance_before = 0;  ///< max/min class ratio pre-rebalance
  double imbalance_after = 0;
};

Result<MaterialsArchetypeResult> RunMaterialsArchetype(
    par::StripedStore& store, const MaterialsArchetypeConfig& config);

}  // namespace drai::domains
