// drai/domains/climate.hpp
//
// Climate archetype (Table 1, §3.1): download -> regrid -> normalize ->
// shard. Ingest decodes GRIB-lite messages into per-variable field stacks;
// preprocess regrids every variable from its source (Gaussian-like) grid
// onto one uniform target grid; transform fills missing cells and applies
// per-variable z-score normalization; structure slices spatiotemporal
// patches (Pangu-style); shard writes train/val/test RecIO shards plus the
// manifest with the serialized normalizer.
#pragma once

#include "core/datasheet.hpp"
#include "core/pipeline.hpp"
#include "core/readiness.hpp"
#include "grid/latlon.hpp"
#include "parallel/striped_store.hpp"
#include "shard/manifest.hpp"
#include "workloads/climate.hpp"
#include "workloads/skew.hpp"

namespace drai::domains {

/// Which community format the synthetic source arrives in. kAuto sniffs
/// the magic bytes — the heterogeneous-ingest situation §5 calls
/// "fragmentation across domains".
enum class ClimateSourceFormat { kGrib, kNetcdf };

struct ClimateArchetypeConfig {
  workloads::ClimateConfig workload;
  ClimateSourceFormat source_format = ClimateSourceFormat::kGrib;
  size_t target_lat = 24;
  size_t target_lon = 48;
  grid::RegridMethod regrid = grid::RegridMethod::kBilinear;
  size_t patch = 8;            ///< spatial patch edge (cells)
  std::string dataset_dir = "/datasets/climate";
  uint64_t split_seed = 11;
  /// Execution substrate for the parallel stages: thread pool or
  /// in-process SPMD ranks. Output bytes are identical either way.
  core::Backend backend = core::Backend::kThread;
  /// Worker threads (kThread: 0 = shared global pool, 1 = serial) or rank
  /// world size (kSpmd). Output bytes are identical for any value.
  size_t threads = 0;
  /// Retry policy applied to every parallel stage. Default = no retry, a
  /// failing partition fails the run; raise max_attempts (and optionally
  /// allow quarantine) to ride out transient faults.
  core::RetryPolicy retry;
  /// Deadline policy applied to every stage alongside `retry`: hard limits
  /// cancel hung attempts, soft limits launch straggler speculation,
  /// collective_ms bounds SPMD collective waits. Inactive by default.
  core::DeadlinePolicy deadline;
  /// Deterministic fault injection (tests/benches). Inactive by default.
  core::FaultPlan faults;
  /// When set, every successful stage group checkpoints here (see
  /// core/checkpoint.hpp). Not owned. Default: no checkpointing.
  core::CheckpointSink* checkpoint = nullptr;
  /// Inter-stage pipelining master switch (PipelineOptions::overlap). The
  /// normalize -> patch boundary is marked OverlapPolicy::kStream; it
  /// actually streams only when `normalize_grain` separates the two stages
  /// into distinct fused groups. Output bytes are identical either way.
  bool overlap = true;
  /// Time steps per `normalize` partition. 1 (default) keeps normalize and
  /// patch fused into one group, exactly the seed behavior; > 1 splits them
  /// into separate groups whose boundary can stream (grain N -> 1).
  size_t normalize_grain = 1;
  /// Deterministic compute skew added to `normalize`, keyed by time step —
  /// the straggler generator for overlap/speculation benchmarks. Inactive
  /// by default; never changes output bytes.
  workloads::SkewSpec skew;
};

struct ArchetypeResult {
  core::PipelineReport report;
  shard::DatasetManifest manifest;
  core::QualityReport quality;
  core::ReadinessAssessment readiness;
  core::DatasetState state;
  std::string provenance_hash;
};

/// Run the full archetype against `store`. The pipeline is built fresh per
/// call (stages capture config + store).
Result<ArchetypeResult> RunClimateArchetype(par::StripedStore& store,
                                            const ClimateArchetypeConfig& config);

}  // namespace drai::domains
