#include "domains/bio.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "privacy/anonymize.hpp"
#include "sequence/sequence.hpp"
#include "shard/shard_writer.hpp"

namespace drai::domains {

using core::DataBundle;
using core::StageContext;
using core::StageKind;

Result<BioArchetypeResult> RunBioArchetype(par::StripedStore& store,
                                           const BioArchetypeConfig& config) {
  BioArchetypeResult result;
  auto workload = std::make_shared<workloads::BioWorkload>(
      workloads::GenerateBioWorkload(config.workload));
  auto audit = std::make_shared<privacy::AuditLog>();
  auto manifest = std::make_shared<shard::DatasetManifest>();
  auto k_report = std::make_shared<privacy::KAnonymityReport>();
  // subject_id -> pseudonymized token (the join key after de-identification)
  auto token_of = std::make_shared<std::map<std::string, std::string>>();
  auto labeled_fraction = std::make_shared<double>(0.0);

  core::Pipeline pipeline("bio-archetype");

  // ingest: load sequences + clinical table; validate.
  pipeline.Add(
      "load", StageKind::kIngest,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        DRAI_RETURN_IF_ERROR(workload->clinical.Validate());
        bundle.tables["clinical"] = workload->clinical;
        context.NoteParam("subjects", std::to_string(workload->subjects.size()));
        bundle.SetAttr("modality", container::AttrValue::String(
                                       "dna-sequence + clinical-tabular"));
        return Status::Ok();
      });

  // preprocess: sequence QC + tiling.
  pipeline.Add(
      "tile-sequences", StageKind::kPreprocess,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        size_t rejected = 0;
        for (const auto& subj : workload->subjects) {
          DRAI_ASSIGN_OR_RETURN(
              double unknown,
              sequence::UnknownFraction(sequence::Alphabet::kDna,
                                        subj.sequence));
          if (unknown > 0.2) {  // QC: mostly-N sequences are unusable
            ++rejected;
            continue;
          }
          const auto tiles = sequence::Tile(subj.sequence, config.tile_len,
                                            config.tile_stride);
          bundle.SetAttr("tiles/" + subj.subject_id,
                         container::AttrValue::Int(
                             static_cast<int64_t>(tiles.size())));
        }
        context.NoteParam("rejected", std::to_string(rejected));
        return Status::Ok();
      });

  // transform: the privacy battery under audit, then one-hot encoding.
  pipeline.Add(
      "anonymize-encode", StageKind::kTransform,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        privacy::Table& table = bundle.tables.at("clinical");
        // 1. classify fields
        std::vector<std::string> direct_cols;
        for (size_t c = 0; c < table.columns.size(); ++c) {
          std::vector<std::string> sample;
          for (size_t r = 0; r < std::min<size_t>(table.rows.size(), 32); ++r) {
            sample.push_back(table.rows[r][c]);
          }
          const privacy::FieldClass cls =
              privacy::ClassifyField(table.columns[c], sample);
          if (cls == privacy::FieldClass::kDirectIdentifier) {
            direct_cols.push_back(table.columns[c]);
          }
        }
        audit->Append("bio-archetype", "classify-fields",
                      "direct identifiers: " + Join(direct_cols, ","));
        // 2. pseudonymize direct identifiers; remember subject tokens
        privacy::Pseudonymizer pseudo(config.hmac_key);
        const int subj_col = table.ColumnIndex("subject_id");
        if (subj_col < 0) return NotFound("clinical table lacks subject_id");
        for (const auto& row : table.rows) {
          const std::string& sid = row[static_cast<size_t>(subj_col)];
          (*token_of)[sid] = pseudo.Token(sid);
        }
        for (const std::string& col : direct_cols) {
          DRAI_RETURN_IF_ERROR(pseudo.PseudonymizeColumn(table, col));
          audit->Append("bio-archetype", "pseudonymize", "column=" + col);
        }
        // 3. shift dates per subject (subject_id column is already
        // tokenized, which is fine: shifts stay per-subject stable).
        privacy::DateShifter shifter(config.hmac_key);
        for (const std::string& col : {std::string("dob"), std::string("admit_date")}) {
          DRAI_RETURN_IF_ERROR(shifter.ShiftColumn(table, "subject_id", col));
          audit->Append("bio-archetype", "date-shift", "column=" + col);
        }
        // 4. k-anonymity over (age, zip)
        privacy::KAnonymityConfig kc;
        kc.k = config.k_anonymity;
        kc.numeric_bands["age"] = 5;
        kc.prefix_lengths["zip"] = 3;
        DRAI_ASSIGN_OR_RETURN(*k_report, privacy::EnforceKAnonymity(table, kc));
        audit->Append(
            "bio-archetype", "k-anonymize",
            "k=" + std::to_string(k_report->k_achieved) + " suppressed=" +
                std::to_string(k_report->suppressed_rows) + " level=" +
                std::to_string(k_report->generalization_level));
        context.NoteParam("k_achieved", std::to_string(k_report->k_achieved));
        context.NoteParam("audit_head", audit->HeadHash().substr(0, 12));
        return Status::Ok();
      });

  // structure: cross-modal fusion — sequence features + de-identified
  // clinical covariates per subject.
  pipeline.Add(
      "fuse", StageKind::kStructure,
      [&](DataBundle& bundle, StageContext&) -> Status {
        const privacy::Table& table = bundle.tables.at("clinical");
        const int subj_col = table.ColumnIndex("subject_id");
        const int age_col = table.ColumnIndex("age");
        const int sex_col = table.ColumnIndex("sex");
        // Surviving (non-suppressed) tokens.
        std::map<std::string, std::pair<double, double>> covariates;
        for (const auto& row : table.rows) {
          double age_mid = 50;
          // age is generalized to "lo-hi": use the band midpoint.
          const std::string& band = row[static_cast<size_t>(age_col)];
          const auto dash = band.find('-');
          int64_t lo = 0, hi = 0;
          if (dash != std::string::npos &&
              ParseInt64(band.substr(0, dash), lo) &&
              ParseInt64(band.substr(dash + 1), hi)) {
            age_mid = 0.5 * static_cast<double>(lo + hi);
          }
          const double sex = row[static_cast<size_t>(sex_col)] == "F" ? 1.0 : 0.0;
          covariates[row[static_cast<size_t>(subj_col)]] = {age_mid, sex};
        }
        size_t labeled = 0, emitted = 0;
        for (const auto& subj : workload->subjects) {
          auto token_it = token_of->find(subj.subject_id);
          if (token_it == token_of->end()) continue;
          auto cov_it = covariates.find(token_it->second);
          if (cov_it == covariates.end()) continue;  // suppressed by k-anon
          const auto tiles = sequence::Tile(subj.sequence, config.tile_len,
                                            config.tile_stride);
          // Sequence features: per-tile GC content + k-mer motif-ish
          // summary (mean one-hot occupancy per base).
          NDArray x = NDArray::Zeros({tiles.size() * 5 + 2}, DType::kF32);
          for (size_t t = 0; t < tiles.size(); ++t) {
            DRAI_ASSIGN_OR_RETURN(
                NDArray onehot,
                sequence::OneHot(sequence::Alphabet::kDna, tiles[t]));
            // Column means of the one-hot tile: base composition.
            for (size_t b = 0; b < 4; ++b) {
              double mean = 0;
              for (size_t p = 0; p < tiles[t].size(); ++p) {
                mean += onehot.GetAsDouble(p * 4 + b);
              }
              x.SetFromDouble(t * 5 + b,
                              mean / static_cast<double>(tiles[t].size()));
            }
            x.SetFromDouble(t * 5 + 4, sequence::GcContent(tiles[t]));
          }
          x.SetFromDouble(tiles.size() * 5 + 0, cov_it->second.first / 100.0);
          x.SetFromDouble(tiles.size() * 5 + 1, cov_it->second.second);
          shard::Example ex;
          ex.key = token_it->second;  // pseudonymized key — no PHI in shards
          ex.features["x"] = std::move(x);
          if (subj.expression_label >= 0) {
            ex.SetLabel(subj.expression_label);
            ++labeled;
          } else {
            ex.SetLabel(-1);
          }
          bundle.examples.push_back(std::move(ex));
          ++emitted;
        }
        *labeled_fraction = emitted == 0 ? 0.0
                                         : static_cast<double>(labeled) /
                                               static_cast<double>(emitted);
        return Status::Ok();
      });

  // shard: secure export — audit head + provenance in the manifest.
  pipeline.Add(
      "secure-shard", StageKind::kShard,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        shard::ShardWriterConfig wc;
        wc.dataset_name = "bio-fused";
        wc.created_by = "drai/bio-archetype(audit:" +
                        audit->HeadHash().substr(0, 12) + ")";
        wc.directory = config.dataset_dir;
        wc.split_seed = config.split_seed;
        shard::ShardWriter writer(store, wc);
        writer.SetProvenanceHash(context.provenance() != nullptr
                                     ? context.provenance()->RecordHash()
                                     : "");
        for (const shard::Example& ex : bundle.examples) {
          DRAI_ASSIGN_OR_RETURN(shard::Split split, writer.Add(ex));
          (void)split;
        }
        DRAI_ASSIGN_OR_RETURN(*manifest, writer.Finalize());
        audit->Append("bio-archetype", "export",
                      "records=" + std::to_string(manifest->TotalRecords()));
        return Status::Ok();
      });

  DataBundle bundle;
  result.report = pipeline.Run(bundle);
  if (!result.report.ok) return result.report.error;

  result.manifest = *manifest;
  result.quality = core::AssessQuality(bundle.examples);
  result.provenance_hash = pipeline.provenance().RecordHash();
  result.audit = *audit;
  result.k_report = *k_report;

  core::DatasetState& s = result.state;
  s.acquired = true;
  s.validated_standard_format = true;
  s.metadata_enriched = true;
  s.high_throughput_ingest = true;
  s.ingest_automated = true;
  s.initial_alignment = true;
  s.grids_standardized = true;
  s.alignment_fully_standardized = true;
  s.alignment_automated = true;
  s.basic_normalization = true;
  s.anonymization_done = k_report->k_achieved >= config.k_anonymity;
  s.normalization_finalized = true;
  s.basic_labels = *labeled_fraction > 0;
  s.comprehensive_labels = *labeled_fraction >= 0.95;
  s.transform_automated_audited = audit->Verify().ok();
  s.features_extracted = true;
  s.features_validated = true;
  s.split_and_sharded = manifest->TotalRecords() > 0;
  s.missing_fraction = result.quality.MissingFraction();
  s.label_fraction = *labeled_fraction;
  result.readiness = core::Assess(s);
  return result;
}

}  // namespace drai::domains
