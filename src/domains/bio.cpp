#include "domains/bio.hpp"

#include <cmath>
#include <map>
#include <memory>

#include "common/strings.hpp"
#include "privacy/anonymize.hpp"
#include "sequence/sequence.hpp"
#include "shard/shard_writer.hpp"

namespace drai::domains {

using core::DataBundle;
using core::ExecutionHint;
using core::ParallelSpec;
using core::PartitionAxis;
using core::StageContext;
using core::StageKind;

Result<BioArchetypeResult> RunBioArchetype(par::StripedStore& store,
                                           const BioArchetypeConfig& config) {
  BioArchetypeResult result;
  auto workload = std::make_shared<workloads::BioWorkload>(
      workloads::GenerateBioWorkload(config.workload));
  auto audit = std::make_shared<privacy::AuditLog>();
  auto manifest = std::make_shared<shard::DatasetManifest>();
  auto k_report = std::make_shared<privacy::KAnonymityReport>();
  // subject_id -> pseudonymized token (the join key after de-identification)
  auto token_of = std::make_shared<std::map<std::string, std::string>>();
  auto labeled_fraction = std::make_shared<double>(0.0);
  // Serial-hook state for the parallel stages: which columns each partition
  // must pseudonymize and the token -> subject lookup for row-driven
  // fusion. Label tallies flow through StageContext counts instead, which
  // the executor sums across partitions (and ranks) deterministically.
  auto direct_cols = std::make_shared<std::vector<std::string>>();
  auto subject_by_token = std::make_shared<std::map<std::string, size_t>>();

  core::PipelineOptions options;
  options.backend = config.backend;
  options.threads = config.threads;
  options.faults = config.faults;
  options.overlap = config.overlap;
  core::Pipeline pipeline("bio-archetype", options);

  // Parallel grains: sequence QC partitions the subject index range (the
  // bundle carries no per-subject collection yet); the privacy battery and
  // fusion partition the clinical table by rows.
  ParallelSpec per_subject;
  per_subject.axis = PartitionAxis::kRange;
  per_subject.range_count = workload->subjects.size();
  ParallelSpec per_rows;
  per_rows.axis = PartitionAxis::kTableRows;

  // ingest: load sequences + clinical table; validate.
  pipeline.Add(
      "load", StageKind::kIngest,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        DRAI_RETURN_IF_ERROR(workload->clinical.Validate());
        bundle.tables["clinical"] = workload->clinical;
        context.NoteParam("subjects", std::to_string(workload->subjects.size()));
        bundle.SetAttr("modality", container::AttrValue::String(
                                       "dna-sequence + clinical-tabular"));
        return Status::Ok();
      });

  // preprocess: sequence QC + tiling, partitioned over the subject index
  // range. Each partition records tile counts for its own subjects only.
  pipeline.Add(
      "tile-sequences", StageKind::kPreprocess,
      ExecutionHint::kRecordParallel,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        size_t rejected = 0;
        const auto& slot = context.partition();
        for (size_t i = slot.lo; i < slot.hi; ++i) {
          // Cancellation poll per subject — see core/plan.hpp's
          // DeadlinePolicy for the watchdog contract.
          if (context.Cancelled()) return context.CancelledStatus();
          const auto& subj = workload->subjects[i];
          DRAI_ASSIGN_OR_RETURN(
              double unknown,
              sequence::UnknownFraction(sequence::Alphabet::kDna,
                                        subj.sequence));
          if (unknown > 0.2) {  // QC: mostly-N sequences are unusable
            ++rejected;
            continue;
          }
          const auto tiles = sequence::Tile(subj.sequence, config.tile_len,
                                            config.tile_stride);
          bundle.SetAttr("tiles/" + subj.subject_id,
                         container::AttrValue::Int(
                             static_cast<int64_t>(tiles.size())));
        }
        context.NoteCount("rejected", rejected);
        return Status::Ok();
      },
      per_subject);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // transform: the privacy battery under audit. Field classification and
  // the audit transcript are serial (Before); pseudonymization + date
  // shifting are per-row and run per table-rows partition; k-anonymity
  // needs the whole table back, so it runs in the serial After hook.
  pipeline.Add(
      "anonymize-encode", StageKind::kTransform,
      ExecutionHint::kRecordParallel,
      /*before=*/
      [&, audit, token_of, direct_cols](DataBundle& bundle,
                                        StageContext&) -> Status {
        const privacy::Table& table = bundle.tables.at("clinical");
        // 1. classify fields
        direct_cols->clear();
        for (size_t c = 0; c < table.columns.size(); ++c) {
          std::vector<std::string> sample;
          for (size_t r = 0; r < std::min<size_t>(table.rows.size(), 32); ++r) {
            sample.push_back(table.rows[r][c]);
          }
          const privacy::FieldClass cls =
              privacy::ClassifyField(table.columns[c], sample);
          if (cls == privacy::FieldClass::kDirectIdentifier) {
            direct_cols->push_back(table.columns[c]);
          }
        }
        audit->Append("bio-archetype", "classify-fields",
                      "direct identifiers: " + Join(*direct_cols, ","));
        // 2. remember subject tokens before the ids are rewritten.
        privacy::Pseudonymizer pseudo(config.hmac_key);
        const int subj_col = table.ColumnIndex("subject_id");
        if (subj_col < 0) return NotFound("clinical table lacks subject_id");
        token_of->clear();
        for (const auto& row : table.rows) {
          const std::string& sid = row[static_cast<size_t>(subj_col)];
          (*token_of)[sid] = pseudo.Token(sid);
        }
        for (const std::string& col : *direct_cols) {
          audit->Append("bio-archetype", "pseudonymize", "column=" + col);
        }
        for (const std::string& col : {std::string("dob"), std::string("admit_date")}) {
          audit->Append("bio-archetype", "date-shift", "column=" + col);
        }
        return Status::Ok();
      },
      [&, direct_cols](DataBundle& bundle, StageContext&) -> Status {
        privacy::Table& table = bundle.tables.at("clinical");
        // Pseudonymize direct identifiers in this partition's rows. The
        // HMAC is keyed per value, so chunked application matches the
        // whole-table result byte for byte.
        privacy::Pseudonymizer pseudo(config.hmac_key);
        for (const std::string& col : *direct_cols) {
          DRAI_RETURN_IF_ERROR(pseudo.PseudonymizeColumn(table, col));
        }
        // Shift dates per subject (subject_id column is already tokenized,
        // which is fine: shifts stay per-subject stable).
        privacy::DateShifter shifter(config.hmac_key);
        for (const std::string& col : {std::string("dob"), std::string("admit_date")}) {
          DRAI_RETURN_IF_ERROR(shifter.ShiftColumn(table, "subject_id", col));
        }
        return Status::Ok();
      },
      /*after=*/
      [&, audit, k_report](DataBundle& bundle, StageContext& context) -> Status {
        // 4. k-anonymity over (age, zip) — a whole-table property.
        privacy::Table& table = bundle.tables.at("clinical");
        privacy::KAnonymityConfig kc;
        kc.k = config.k_anonymity;
        kc.numeric_bands["age"] = 5;
        kc.prefix_lengths["zip"] = 3;
        DRAI_ASSIGN_OR_RETURN(*k_report, privacy::EnforceKAnonymity(table, kc));
        audit->Append(
            "bio-archetype", "k-anonymize",
            "k=" + std::to_string(k_report->k_achieved) + " suppressed=" +
                std::to_string(k_report->suppressed_rows) + " level=" +
                std::to_string(k_report->generalization_level));
        context.NoteParam("k_achieved", std::to_string(k_report->k_achieved));
        context.NoteParam("audit_head", audit->HeadHash().substr(0, 12));
        return Status::Ok();
      },
      per_rows);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // structure: cross-modal fusion — sequence features + de-identified
  // clinical covariates per subject, one example per surviving table row.
  pipeline.Add(
      "fuse", StageKind::kStructure,
      ExecutionHint::kRecordParallel,
      /*before=*/
      [workload, token_of, subject_by_token](DataBundle&,
                                             StageContext&) -> Status {
        subject_by_token->clear();
        for (size_t i = 0; i < workload->subjects.size(); ++i) {
          const auto it = token_of->find(workload->subjects[i].subject_id);
          if (it == token_of->end()) continue;
          (*subject_by_token)[it->second] = i;
        }
        return Status::Ok();
      },
      [&, subject_by_token](DataBundle& bundle,
                            StageContext& context) -> Status {
        const privacy::Table& table = bundle.tables.at("clinical");
        const int subj_col = table.ColumnIndex("subject_id");
        const int age_col = table.ColumnIndex("age");
        const int sex_col = table.ColumnIndex("sex");
        size_t labeled = 0, emitted = 0;
        // Rows suppressed by k-anonymity are already gone from the table,
        // so every surviving row fuses into one example.
        for (const auto& row : table.rows) {
          const std::string& token = row[static_cast<size_t>(subj_col)];
          const auto subj_it = subject_by_token->find(token);
          if (subj_it == subject_by_token->end()) continue;
          const auto& subj = workload->subjects[subj_it->second];
          double age_mid = 50;
          // age is generalized to "lo-hi": use the band midpoint.
          const std::string& band = row[static_cast<size_t>(age_col)];
          const auto dash = band.find('-');
          int64_t lo = 0, hi = 0;
          if (dash != std::string::npos &&
              ParseInt64(band.substr(0, dash), lo) &&
              ParseInt64(band.substr(dash + 1), hi)) {
            age_mid = 0.5 * static_cast<double>(lo + hi);
          }
          const double sex = row[static_cast<size_t>(sex_col)] == "F" ? 1.0 : 0.0;
          const auto tiles = sequence::Tile(subj.sequence, config.tile_len,
                                            config.tile_stride);
          // Sequence features: per-tile GC content + k-mer motif-ish
          // summary (mean one-hot occupancy per base).
          NDArray x = NDArray::Zeros({tiles.size() * 5 + 2}, DType::kF32);
          for (size_t t = 0; t < tiles.size(); ++t) {
            DRAI_ASSIGN_OR_RETURN(
                NDArray onehot,
                sequence::OneHot(sequence::Alphabet::kDna, tiles[t]));
            // Column means of the one-hot tile: base composition.
            for (size_t b = 0; b < 4; ++b) {
              double mean = 0;
              for (size_t p = 0; p < tiles[t].size(); ++p) {
                mean += onehot.GetAsDouble(p * 4 + b);
              }
              x.SetFromDouble(t * 5 + b,
                              mean / static_cast<double>(tiles[t].size()));
            }
            x.SetFromDouble(t * 5 + 4, sequence::GcContent(tiles[t]));
          }
          x.SetFromDouble(tiles.size() * 5 + 0, age_mid / 100.0);
          x.SetFromDouble(tiles.size() * 5 + 1, sex);
          shard::Example ex;
          ex.key = token;  // pseudonymized key — no PHI in shards
          ex.features["x"] = std::move(x);
          if (subj.expression_label >= 0) {
            ex.SetLabel(subj.expression_label);
            ++labeled;
          } else {
            ex.SetLabel(-1);
          }
          bundle.examples.push_back(std::move(ex));
          ++emitted;
        }
        context.NoteCount("labeled", labeled);
        context.NoteCount("emitted", emitted);
        return Status::Ok();
      },
      /*after=*/
      [labeled_fraction](DataBundle&, StageContext& context) -> Status {
        const uint64_t emitted = context.MergedCount("emitted");
        *labeled_fraction =
            emitted == 0 ? 0.0
                         : static_cast<double>(context.MergedCount("labeled")) /
                               static_cast<double>(emitted);
        return Status::Ok();
      },
      per_rows);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // shard: secure export — audit head + provenance in the manifest.
  pipeline.Add(
      "secure-shard", StageKind::kShard,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        shard::ShardWriterConfig wc;
        wc.dataset_name = "bio-fused";
        wc.created_by = "drai/bio-archetype(audit:" +
                        audit->HeadHash().substr(0, 12) + ")";
        wc.directory = config.dataset_dir;
        wc.split_seed = config.split_seed;
        shard::ShardWriter writer(store, wc);
        writer.SetProvenanceHash(context.provenance() != nullptr
                                     ? context.provenance()->RecordHash()
                                     : "");
        for (const shard::Example& ex : bundle.examples) {
          DRAI_ASSIGN_OR_RETURN(shard::Split split, writer.Add(ex));
          (void)split;
        }
        DRAI_ASSIGN_OR_RETURN(*manifest, writer.Finalize());
        audit->Append("bio-archetype", "export",
                      "records=" + std::to_string(manifest->TotalRecords()));
        return Status::Ok();
      });

  DataBundle bundle;
  result.report = pipeline.Run(bundle);
  if (!result.report.ok) return result.report.error;

  result.manifest = *manifest;
  result.quality = core::AssessQuality(bundle.examples);
  result.provenance_hash = pipeline.provenance().RecordHash();
  result.audit = *audit;
  result.k_report = *k_report;

  core::DatasetState& s = result.state;
  s.acquired = true;
  s.validated_standard_format = true;
  s.metadata_enriched = true;
  s.high_throughput_ingest = true;
  s.ingest_automated = true;
  s.initial_alignment = true;
  s.grids_standardized = true;
  s.alignment_fully_standardized = true;
  s.alignment_automated = true;
  s.basic_normalization = true;
  s.anonymization_done = k_report->k_achieved >= config.k_anonymity;
  s.normalization_finalized = true;
  s.basic_labels = *labeled_fraction > 0;
  s.comprehensive_labels = *labeled_fraction >= 0.95;
  s.transform_automated_audited = audit->Verify().ok();
  s.features_extracted = true;
  s.features_validated = true;
  s.split_and_sharded = manifest->TotalRecords() > 0;
  s.missing_fraction = result.quality.MissingFraction();
  s.label_fraction = *labeled_fraction;
  result.readiness = core::Assess(s);
  return result;
}

}  // namespace drai::domains
