// drai/domains/fusion.hpp
//
// Fusion archetype (Table 1, §3.2): extract -> align -> normalize -> shard.
// Ingest validates per-shot diagnostic channels; preprocess despikes,
// gap-fills, and aligns every shot's channels onto a uniform clock;
// transform computes windowed derivative features and z-scores them
// (fit across all shots), pseudo-labeling shots whose disruption label was
// withheld; structure emits one example per window with the shot's label;
// shard writes the dataset grouped by shot key so no shot leaks across
// splits.
#pragma once

#include "domains/climate.hpp"  // ArchetypeResult
#include "workloads/fusion.hpp"

namespace drai::domains {

struct FusionArchetypeConfig {
  workloads::FusionConfig workload;
  double align_dt = 2e-3;       ///< common clock step (s)
  size_t window = 64;           ///< samples per window
  size_t stride = 32;
  double despike_z = 6.0;
  size_t max_gap = 8;
  bool pseudo_label = true;     ///< kNN self-training for unlabeled shots
  /// Estimate and correct per-channel trigger skew against channel 0
  /// before aligning (timeseries::AlignChannelsWithLag). 0 disables.
  double lag_correct_max = 0.0;
  /// Jitter-augmentation: extra synthetic windows per shot (amplitude
  /// scaling + circular shift). 0 disables.
  size_t jitter_windows_per_shot = 0;
  std::string dataset_dir = "/datasets/fusion";
  uint64_t split_seed = 22;
  /// Execution substrate for the parallel stages (thread pool or SPMD
  /// ranks). Output bytes are identical either way.
  core::Backend backend = core::Backend::kThread;
  /// Worker threads (kThread) or rank world size (kSpmd); 0 = default.
  /// Output bytes are identical for any value.
  size_t threads = 0;
  /// Retry policy applied to every parallel stage (default: no retry).
  core::RetryPolicy retry;
  /// Deadline policy applied to every stage alongside `retry`: hard limits
  /// cancel hung attempts, soft limits launch straggler speculation,
  /// collective_ms bounds SPMD collective waits. Inactive by default.
  core::DeadlinePolicy deadline;
  /// Deterministic fault injection (tests/benches). Inactive by default.
  core::FaultPlan faults;
  /// Inter-stage pipelining master switch (PipelineOptions::overlap). This
  /// plan has no streamable boundaries today (hooks and serial stages sit
  /// between its parallel groups), so this is plumbing for parity with the
  /// climate archetype; output bytes are identical either way.
  bool overlap = true;
};

Result<ArchetypeResult> RunFusionArchetype(par::StripedStore& store,
                                           const FusionArchetypeConfig& config);

}  // namespace drai::domains
