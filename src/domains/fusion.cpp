#include "domains/fusion.hpp"

#include <cmath>
#include <map>
#include <memory>

#include "augment/augment.hpp"
#include "common/strings.hpp"
#include "ml/models.hpp"
#include "shard/shard_writer.hpp"
#include "stats/normalizer.hpp"
#include "timeseries/lag.hpp"
#include "timeseries/signal.hpp"

namespace drai::domains {

using core::DataBundle;
using core::ExecutionHint;
using core::ParallelSpec;
using core::PartitionAxis;
using core::StageContext;
using core::StageKind;

namespace {

/// Per-shot intermediate the stages pass through bundle.tensors under
/// "windows/<shot>" ([n_windows, channels, window]) plus label attrs.
struct ShotMeta {
  std::string id;
  int label;
};

}  // namespace

Result<ArchetypeResult> RunFusionArchetype(
    par::StripedStore& store, const FusionArchetypeConfig& config) {
  ArchetypeResult result;
  auto shots = std::make_shared<std::vector<workloads::FusionShot>>(
      workloads::GenerateFusionShots(config.workload));
  auto metas = std::make_shared<std::vector<ShotMeta>>();
  auto normalizer = std::make_shared<stats::Normalizer>(
      stats::NormKind::kZScore,
      config.workload.n_channels * timeseries::kFeaturesPerChannel);
  auto manifest = std::make_shared<shard::DatasetManifest>();
  auto labeled_fraction = std::make_shared<double>(0.0);
  // Shot id -> label snapshot taken after pseudo-labeling, for the
  // partition-parallel example emission.
  auto label_of = std::make_shared<std::map<std::string, int>>();

  core::PipelineOptions options;
  options.backend = config.backend;
  options.threads = config.threads;
  options.faults = config.faults;
  options.overlap = config.overlap;
  core::Pipeline pipeline("fusion-archetype", options);

  // One shot = one unit of parallel work: align partitions the signal sets,
  // the later stages partition the per-shot tensors they produce.
  ParallelSpec per_shot;
  per_shot.axis = PartitionAxis::kSignalSets;
  per_shot.grain = 1;
  ParallelSpec per_tensor;
  per_tensor.axis = PartitionAxis::kTensorGroups;
  per_tensor.grain = 1;

  // ingest: validate every channel of every shot (MDSplus-extract analog).
  pipeline.Add(
      "extract-shots", StageKind::kIngest,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        context.NoteParam("shots", std::to_string(shots->size()));
        for (const auto& shot : *shots) {
          for (const auto& ch : shot.channels) {
            DRAI_RETURN_IF_ERROR(ch.Validate());
          }
          bundle.signal_sets[shot.shot_id] = shot.channels;
          metas->push_back({shot.shot_id, shot.label});
        }
        bundle.SetAttr("facility", container::AttrValue::String("synthetic-tokamak"));
        return Status::Ok();
      });

  // preprocess: despike -> gap-fill -> align channels, one shot per
  // partition. Jitter augmentation draws from the partition's own RNG
  // stream, so the synthetic windows are stable across worker counts.
  pipeline.Add(
      "align", StageKind::kPreprocess, ExecutionHint::kRecordParallel,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        context.NoteParam("dt", FormatDouble(config.align_dt, 6));
        for (auto& [shot_id, channels] : bundle.signal_sets) {
          // Cancellation poll per shot — hung-attempt cancels take effect
          // at the next record, not at the end of the slice.
          if (context.Cancelled()) return context.CancelledStatus();
          size_t despiked = 0, filled = 0;
          for (auto& ch : channels) {
            despiked += timeseries::Despike(ch, config.despike_z);
            filled += timeseries::FillGaps(ch, config.max_gap);
          }
          context.NoteCount("despiked", despiked);
          context.NoteCount("gap_filled", filled);
          timeseries::AlignedFrame frame;
          if (config.lag_correct_max > 0) {
            DRAI_ASSIGN_OR_RETURN(
                timeseries::LagAlignedFrame corrected,
                timeseries::AlignChannelsWithLag(channels, config.align_dt,
                                                 config.lag_correct_max));
            frame = std::move(corrected.frame);
          } else {
            DRAI_ASSIGN_OR_RETURN(
                frame, timeseries::AlignChannels(channels, config.align_dt));
          }
          DRAI_ASSIGN_OR_RETURN(
              NDArray windows,
              timeseries::SlidingWindows(frame, config.window, config.stride));
          if (config.jitter_windows_per_shot > 0 && windows.shape()[0] > 0) {
            DRAI_ASSIGN_OR_RETURN(
                NDArray extra,
                augment::JitterWindows(windows,
                                       config.jitter_windows_per_shot,
                                       /*amplitude_scale=*/0.05,
                                       /*max_shift=*/config.window / 8,
                                       context.rng()));
            // Stack originals + synthetics along the window axis.
            Shape stacked_shape = windows.shape();
            stacked_shape[0] += extra.shape()[0];
            NDArray stacked = NDArray::Zeros(stacked_shape, windows.dtype());
            stacked.Slice(0, 0, windows.shape()[0]).CopyFrom(windows);
            stacked
                .Slice(0, windows.shape()[0], stacked_shape[0])
                .CopyFrom(extra);
            windows = std::move(stacked);
          }
          bundle.tensors["windows/" + shot_id] = std::move(windows);
        }
        if (config.lag_correct_max > 0) {
          context.NoteParam("lag_corrected", "true");
        }
        return Status::Ok();
      },
      per_shot);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // transform: window features per shot in parallel, each partition
  // observing into its own normalizer piece and emitting its serialized
  // streaming state; the serial AfterMerge hook reduces the pieces in
  // ascending partition order, fits, applies, then pseudo-labels from shot
  // means. The executor transports the partials cross-rank under the SPMD
  // backend.
  pipeline.Add(
      "normalize-features", StageKind::kTransform,
      ExecutionHint::kRecordParallel,
      /*before=*/nullptr,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        stats::Normalizer local(stats::NormKind::kZScore,
                                normalizer->n_features());
        std::vector<std::pair<std::string, NDArray>> features_out;
        std::vector<std::string> consumed;
        for (const auto& [key, windows] : bundle.tensors) {
          if (key.rfind("windows/", 0) != 0) continue;
          DRAI_ASSIGN_OR_RETURN(
              NDArray features,
              timeseries::WindowFeatures(windows, config.align_dt));
          local.ObserveMatrix(features);
          features_out.emplace_back("features/" + key.substr(8),
                                    std::move(features));
          consumed.push_back(key);
        }
        for (const std::string& key : consumed) bundle.tensors.erase(key);
        for (auto& [key, tensor] : features_out) {
          bundle.tensors[key] = std::move(tensor);
        }
        ByteWriter pw;
        DRAI_RETURN_IF_ERROR(local.SerializeObservations(pw));
        context.EmitPartial("normalizer", pw.Take());
        return Status::Ok();
      },
      /*after=*/
      [&, normalizer](DataBundle& bundle, StageContext& context) -> Status {
        for (const Bytes& blob : context.Partials("normalizer")) {
          ByteReader reader(blob);
          DRAI_ASSIGN_OR_RETURN(
              stats::Normalizer partial,
              stats::Normalizer::DeserializeObservations(reader));
          normalizer->Merge(partial);
        }
        normalizer->Fit();
        for (const ShotMeta& meta : *metas) {
          NDArray& features = bundle.tensors.at("features/" + meta.id);
          normalizer->ApplyMatrix(features);
        }
        // Pseudo-label withheld shots from shot-mean features via kNN
        // self-training (Figure 1's semi-supervised branch).
        if (config.pseudo_label) {
          const size_t nf = normalizer->n_features();
          NDArray shot_features =
              NDArray::Zeros({metas->size(), nf}, DType::kF64);
          std::vector<int64_t> labels(metas->size());
          for (size_t s = 0; s < metas->size(); ++s) {
            const NDArray& f = bundle.tensors.at("features/" + (*metas)[s].id);
            const size_t rows = f.shape()[0];
            for (size_t j = 0; j < nf; ++j) {
              double mean = 0;
              for (size_t r = 0; r < rows; ++r) {
                mean += f.GetAsDouble(r * nf + j);
              }
              shot_features.SetFromDouble(
                  s * nf + j, rows ? mean / static_cast<double>(rows) : 0.0);
            }
            labels[s] = (*metas)[s].label;
          }
          augment::TrainFn train = [](const NDArray& x,
                                      std::span<const int64_t> y)
              -> augment::Classifier {
            auto knn = std::make_shared<ml::KnnClassifier>(3);
            knn->Fit(x, y).status().OrDie();
            return [knn](std::span<const double> row) {
              return knn->Predict(row);
            };
          };
          augment::PseudoLabelOptions plo;
          plo.confidence_threshold = 0.67;
          DRAI_ASSIGN_OR_RETURN(
              augment::PseudoLabelResult pl,
              augment::PseudoLabel(shot_features, labels, train, plo));
          size_t adopted = 0;
          for (size_t s = 0; s < metas->size(); ++s) {
            if ((*metas)[s].label < 0 && pl.labels[s] >= 0) {
              (*metas)[s].label = static_cast<int>(pl.labels[s]);
              ++adopted;
            }
          }
          context.NoteParam("pseudo_labeled", std::to_string(adopted));
        }
        size_t labeled = 0;
        for (const ShotMeta& m : *metas) {
          if (m.label >= 0) ++labeled;
        }
        *labeled_fraction = metas->empty()
                                ? 0.0
                                : static_cast<double>(labeled) /
                                      static_cast<double>(metas->size());
        return Status::Ok();
      },
      per_tensor);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // structure: one example per window, keyed by shot (split leak-safe).
  // Shot ids are zero-padded, so ascending-partition merge reproduces the
  // serial emission order exactly.
  pipeline.Add(
      "windows-to-examples", StageKind::kStructure,
      ExecutionHint::kRecordParallel,
      /*before=*/
      [metas, label_of](DataBundle&, StageContext&) -> Status {
        label_of->clear();
        for (const ShotMeta& meta : *metas) {
          (*label_of)[meta.id] = meta.label;
        }
        return Status::Ok();
      },
      [label_of](DataBundle& bundle, StageContext&) -> Status {
        for (const auto& [key, features] : bundle.tensors) {
          if (key.rfind("features/", 0) != 0) continue;
          const std::string shot_id = key.substr(9);
          const auto it = label_of->find(shot_id);
          if (it == label_of->end()) {
            return Internal("fusion: unexpected feature key " + key);
          }
          if (it->second < 0) continue;  // still unlabeled: excluded
          const size_t rows = features.shape()[0];
          const size_t nf = features.shape()[1];
          for (size_t r = 0; r < rows; ++r) {
            shard::Example ex;
            ex.key = shot_id + "#w" + std::to_string(r);
            NDArray row = NDArray::Zeros({nf}, DType::kF32);
            for (size_t j = 0; j < nf; ++j) {
              row.SetFromDouble(j, features.GetAsDouble(r * nf + j));
            }
            ex.features["x"] = std::move(row);
            ex.SetLabel(it->second);
            bundle.examples.push_back(std::move(ex));
          }
        }
        return Status::Ok();
      },
      /*after=*/nullptr, per_tensor);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // shard: split by *shot* (key prefix before '#') so windows of one shot
  // never straddle train/val/test.
  pipeline.Add(
      "shard", StageKind::kShard,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        shard::ShardWriterConfig wc;
        wc.dataset_name = "fusion-windows";
        wc.created_by = "drai/fusion-archetype";
        wc.directory = config.dataset_dir;
        wc.split_seed = config.split_seed;
        shard::ShardWriter writer(store, wc);
        ByteWriter nb;
        normalizer->Serialize(nb);
        writer.SetNormalizerBlob(nb.Take());
        writer.SetProvenanceHash(context.provenance() != nullptr
                                     ? context.provenance()->RecordHash()
                                     : "");
        const shard::SplitAssigner by_shot(0.8, 0.1, 0.1, config.split_seed);
        for (const shard::Example& ex : bundle.examples) {
          const std::string shot_key = ex.key.substr(0, ex.key.find('#'));
          DRAI_RETURN_IF_ERROR(writer.AddTo(by_shot.Assign(shot_key), ex));
        }
        DRAI_ASSIGN_OR_RETURN(*manifest, writer.Finalize());
        context.NoteParam("records", std::to_string(manifest->TotalRecords()));
        return Status::Ok();
      });

  DataBundle bundle;
  result.report = pipeline.Run(bundle);
  if (!result.report.ok) return result.report.error;

  result.manifest = *manifest;
  result.quality = core::AssessQuality(bundle.examples);
  result.provenance_hash = pipeline.provenance().RecordHash();

  core::DatasetState& s = result.state;
  s.acquired = true;
  s.validated_standard_format = true;
  s.metadata_enriched = true;
  s.high_throughput_ingest = true;
  s.ingest_automated = true;
  s.initial_alignment = true;
  s.grids_standardized = true;
  s.alignment_fully_standardized = true;
  s.alignment_automated = true;
  s.basic_normalization = true;
  s.normalization_finalized = true;
  s.basic_labels = *labeled_fraction > 0;
  s.comprehensive_labels = *labeled_fraction >= 0.95;
  s.transform_automated_audited = true;
  s.features_extracted = true;
  s.features_validated = true;
  s.split_and_sharded = manifest->TotalRecords() > 0;
  s.missing_fraction = result.quality.MissingFraction();
  s.label_fraction = *labeled_fraction;
  result.readiness = core::Assess(s);
  return result;
}

}  // namespace drai::domains
