// drai/domains/bio.hpp
//
// Bio/health archetype (Table 1, §3.3): encode -> anonymize -> fuse ->
// (secure) shard. Ingest loads sequences plus the PHI-bearing clinical
// table; preprocess validates sequences and tiles them; transform runs the
// privacy battery (field classification, pseudonymization, date shifting,
// k-anonymity) under a hash-chained audit log, then one-hot encodes tiles;
// structure fuses sequence features with de-identified clinical covariates
// into per-subject examples; shard embeds the audit head hash in the
// manifest so the export is traceable to the privacy transcript.
#pragma once

#include "domains/climate.hpp"  // ArchetypeResult
#include "privacy/anonymize.hpp"
#include "privacy/audit.hpp"
#include "workloads/bio.hpp"

namespace drai::domains {

struct BioArchetypeConfig {
  workloads::BioConfig workload;
  size_t tile_len = 128;
  size_t tile_stride = 128;
  size_t k_anonymity = 4;
  std::string hmac_key = "drai-demo-key-0123456789abcdef";
  std::string dataset_dir = "/datasets/bio";
  uint64_t split_seed = 33;
  /// Execution substrate for the parallel stages (thread pool or SPMD
  /// ranks). Output bytes are identical either way.
  core::Backend backend = core::Backend::kThread;
  /// Worker threads (kThread) or rank world size (kSpmd); 0 = default.
  /// Output bytes are identical for any value.
  size_t threads = 0;
  /// Retry policy applied to every parallel stage (default: no retry).
  core::RetryPolicy retry;
  /// Deadline policy applied to every stage alongside `retry`: hard limits
  /// cancel hung attempts, soft limits launch straggler speculation,
  /// collective_ms bounds SPMD collective waits. Inactive by default.
  core::DeadlinePolicy deadline;
  /// Deterministic fault injection (tests/benches). Inactive by default.
  core::FaultPlan faults;
  /// Inter-stage pipelining master switch (PipelineOptions::overlap). This
  /// plan has no streamable boundaries today (hooks and serial stages sit
  /// between its parallel groups), so this is plumbing for parity with the
  /// climate archetype; output bytes are identical either way.
  bool overlap = true;
};

struct BioArchetypeResult : ArchetypeResult {
  privacy::AuditLog audit;
  privacy::KAnonymityReport k_report;
};

Result<BioArchetypeResult> RunBioArchetype(par::StripedStore& store,
                                           const BioArchetypeConfig& config);

}  // namespace drai::domains
