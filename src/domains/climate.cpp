#include "domains/climate.hpp"

#include <cmath>

#include "container/grib_lite.hpp"
#include "container/netcdf_lite.hpp"
#include "container/sniff.hpp"
#include "ndarray/kernels.hpp"
#include "shard/shard_writer.hpp"
#include "stats/normalizer.hpp"

namespace drai::domains {

using core::DataBundle;
using core::StageContext;
using core::StageKind;

Result<ArchetypeResult> RunClimateArchetype(
    par::StripedStore& store, const ClimateArchetypeConfig& config) {
  ArchetypeResult result;
  const grid::LatLonGrid src_grid = workloads::ClimateSourceGrid(config.workload);
  const grid::LatLonGrid dst_grid =
      grid::LatLonGrid::Uniform(config.target_lat, config.target_lon);
  const auto& variables = config.workload.variables;

  // Shared state the stages hand forward outside the bundle's generic maps.
  auto normalizer = std::make_shared<stats::Normalizer>(
      stats::NormKind::kZScore, variables.size());
  auto manifest = std::make_shared<shard::DatasetManifest>();

  core::Pipeline pipeline("climate-archetype");

  // ingest: sniff the container format, decode either GRIB messages or a
  // NetCDF-lite file into per-variable [time, lat, lon] stacks.
  pipeline.Add("decode-source", StageKind::kIngest,
               [&](DataBundle& bundle, StageContext& context) -> Status {
                 DRAI_ASSIGN_OR_RETURN(Bytes blob, bundle.Blob("source"));
                 const container::FileFormat format =
                     container::SniffFormat(blob);
                 context.NoteParam("format",
                                   std::string(container::FileFormatName(format)));
                 if (format == container::FileFormat::kGribLite) {
                   DRAI_ASSIGN_OR_RETURN(auto messages,
                                         container::DecodeGribFile(blob));
                   context.NoteParam("messages",
                                     std::to_string(messages.size()));
                   std::map<std::string, std::vector<NDArray>> stacks;
                   for (auto& msg : messages) {
                     stacks[msg.variable].push_back(std::move(msg.field));
                   }
                   for (const std::string& var : variables) {
                     auto it = stacks.find(var);
                     if (it == stacks.end()) {
                       return DataLoss("climate: variable missing from GRIB: " +
                                       var);
                     }
                     const auto& frames = it->second;
                     NDArray stack = NDArray::Zeros(
                         {frames.size(), src_grid.n_lat(), src_grid.n_lon()},
                         DType::kF64);
                     for (size_t t = 0; t < frames.size(); ++t) {
                       NDArray slot = stack.Slice(0, t, t + 1).Reshape(
                           {src_grid.n_lat(), src_grid.n_lon()});
                       slot.CopyFrom(frames[t]);
                     }
                     bundle.tensors["raw/" + var] = std::move(stack);
                   }
                 } else if (format == container::FileFormat::kSdf) {
                   // NetCDF-lite lowers to SDF bytes; parse the variable
                   // stacks straight out of the self-describing container.
                   DRAI_ASSIGN_OR_RETURN(container::NcFile nc,
                                         container::NcFile::Parse(blob));
                   for (const std::string& var : variables) {
                     const container::NcVariable* v = nc.FindVariable(var);
                     if (v == nullptr) {
                       return DataLoss(
                           "climate: variable missing from NetCDF: " + var);
                     }
                     bundle.tensors["raw/" + var] = v->data.AsContiguous();
                   }
                 } else {
                   return DataLoss("climate: unrecognized source format");
                 }
                 // Metadata enrichment (L3 ingest cell).
                 bundle.SetAttr("source_grid",
                                container::AttrValue::String("gaussian-like"));
                 bundle.SetAttr("n_times",
                                container::AttrValue::Int(static_cast<int64_t>(
                                    config.workload.n_times)));
                 return Status::Ok();
               });

  // preprocess: regrid every (variable, time) slice onto the target grid.
  pipeline.Add("regrid", StageKind::kPreprocess,
               [&](DataBundle& bundle, StageContext& context) -> Status {
                 context.NoteParam("method", std::string(grid::RegridMethodName(
                                                 config.regrid)));
                 for (const std::string& var : variables) {
                   DRAI_ASSIGN_OR_RETURN(NDArray stack,
                                         bundle.Tensor("raw/" + var));
                   const size_t n_times = stack.shape()[0];
                   NDArray out = NDArray::Zeros(
                       {n_times, dst_grid.n_lat(), dst_grid.n_lon()},
                       DType::kF64);
                   for (size_t t = 0; t < n_times; ++t) {
                     const NDArray slice =
                         stack.Slice(0, t, t + 1)
                             .Reshape({src_grid.n_lat(), src_grid.n_lon()});
                     DRAI_ASSIGN_OR_RETURN(
                         NDArray regridded,
                         grid::Regrid(slice, src_grid, dst_grid, config.regrid));
                     NDArray slot = out.Slice(0, t, t + 1).Reshape(
                         {dst_grid.n_lat(), dst_grid.n_lon()});
                     slot.CopyFrom(regridded);
                   }
                   bundle.tensors["grid/" + var] = std::move(out);
                   bundle.tensors.erase("raw/" + var);
                 }
                 return Status::Ok();
               });

  // transform: fill missing cells with the variable mean, then z-score.
  pipeline.Add("normalize", StageKind::kTransform,
               [&](DataBundle& bundle, StageContext& context) -> Status {
                 for (size_t v = 0; v < variables.size(); ++v) {
                   DRAI_ASSIGN_OR_RETURN(NDArray stack,
                                         bundle.Tensor("grid/" + variables[v]));
                   for (size_t i = 0; i < stack.numel(); ++i) {
                     normalizer->Observe(v, stack.GetAsDouble(i));
                   }
                 }
                 normalizer->Fit();
                 context.NoteParam("kind", "zscore");
                 for (size_t v = 0; v < variables.size(); ++v) {
                   NDArray stack =
                       bundle.tensors.at("grid/" + variables[v]);
                   const double mean = normalizer->Center(v);
                   for (size_t i = 0; i < stack.numel(); ++i) {
                     double x = stack.GetAsDouble(i);
                     if (std::isnan(x)) x = mean;  // mean-fill missing cells
                     stack.SetFromDouble(i, normalizer->Apply(v, x));
                   }
                   bundle.tensors["norm/" + variables[v]] = stack;
                   bundle.tensors.erase("grid/" + variables[v]);
                 }
                 return Status::Ok();
               });

  // structure: cut [vars, patch, patch] patches per time step.
  pipeline.Add("patch", StageKind::kStructure,
               [&](DataBundle& bundle, StageContext& context) -> Status {
                 context.NoteParam("patch", std::to_string(config.patch));
                 const size_t n_times = config.workload.n_times;
                 // Assemble [vars, lat, lon] per time, then patch.
                 for (size_t t = 0; t < n_times; ++t) {
                   NDArray frame = NDArray::Zeros(
                       {variables.size(), dst_grid.n_lat(), dst_grid.n_lon()},
                       DType::kF64);
                   for (size_t v = 0; v < variables.size(); ++v) {
                     DRAI_ASSIGN_OR_RETURN(
                         NDArray stack, bundle.Tensor("norm/" + variables[v]));
                     NDArray slot = frame.Slice(0, v, v + 1).Reshape(
                         {dst_grid.n_lat(), dst_grid.n_lon()});
                     slot.CopyFrom(stack.Slice(0, t, t + 1).Reshape(
                         {dst_grid.n_lat(), dst_grid.n_lon()}));
                   }
                   DRAI_ASSIGN_OR_RETURN(
                       NDArray patches,
                       grid::ExtractPatches(frame, config.patch, config.patch));
                   const size_t n_patches = patches.shape()[0];
                   for (size_t p = 0; p < n_patches; ++p) {
                     shard::Example ex;
                     ex.key = "t" + std::to_string(t) + "-p" + std::to_string(p);
                     NDArray sample =
                         patches.Slice(0, p, p + 1)
                             .Reshape({variables.size(), config.patch,
                                       config.patch})
                             .Cast(DType::kF32);
                     ex.features["x"] = std::move(sample);
                     // Patch-mean regression target (self-supervised).
                     ex.features["y"] = NDArray::FromVector<float>(
                         {1}, {static_cast<float>(Mean(
                                  patches.Slice(0, p, p + 1)))});
                     bundle.examples.push_back(std::move(ex));
                   }
                 }
                 return Status::Ok();
               });

  // shard: write RecIO shards + manifest with the normalizer embedded.
  pipeline.Add("shard", StageKind::kShard,
               [&](DataBundle& bundle, StageContext& context) -> Status {
                 shard::ShardWriterConfig wc;
                 wc.dataset_name = "climate-patches";
                 wc.created_by = "drai/climate-archetype";
                 wc.directory = config.dataset_dir;
                 wc.split_seed = config.split_seed;
                 wc.tensor_codec = codec::Codec::kNone;
                 shard::ShardWriter writer(store, wc);
                 ByteWriter nb;
                 normalizer->Serialize(nb);
                 writer.SetNormalizerBlob(nb.Take());
                 writer.SetProvenanceHash(
                     context.provenance() != nullptr
                         ? context.provenance()->RecordHash()
                         : "");
                 for (const shard::Example& ex : bundle.examples) {
                   DRAI_ASSIGN_OR_RETURN(shard::Split split, writer.Add(ex));
                   (void)split;
                 }
                 DRAI_ASSIGN_OR_RETURN(*manifest, writer.Finalize());
                 context.NoteParam("records",
                                   std::to_string(manifest->TotalRecords()));
                 return Status::Ok();
               });

  DataBundle bundle;
  bundle.blobs["source"] =
      config.source_format == ClimateSourceFormat::kNetcdf
          ? workloads::GenerateClimateNetcdf(config.workload)
          : workloads::GenerateClimateGrib(config.workload);
  result.report = pipeline.Run(bundle);
  if (!result.report.ok) return result.report.error;

  result.manifest = *manifest;
  result.quality = core::AssessQuality(bundle.examples);
  result.provenance_hash = pipeline.provenance().RecordHash();

  core::DatasetState& s = result.state;
  s.acquired = true;
  s.validated_standard_format = true;
  s.metadata_enriched = true;
  s.high_throughput_ingest = true;
  s.ingest_automated = true;
  s.initial_alignment = true;
  s.grids_standardized = true;
  s.alignment_fully_standardized = true;
  s.alignment_automated = true;
  s.basic_normalization = true;
  s.normalization_finalized = true;
  s.basic_labels = true;
  s.comprehensive_labels = true;  // self-supervised target on every sample
  s.transform_automated_audited = true;
  s.features_extracted = true;
  s.features_validated = true;
  s.split_and_sharded = manifest->TotalRecords() > 0;
  s.missing_fraction = result.quality.MissingFraction();
  s.label_fraction = 1.0;
  result.readiness = core::Assess(s);
  return result;
}

}  // namespace drai::domains
