#include "domains/climate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "container/grib_lite.hpp"
#include "container/netcdf_lite.hpp"
#include "container/sniff.hpp"
#include "ndarray/kernels.hpp"
#include "shard/shard_writer.hpp"
#include "stats/normalizer.hpp"

namespace drai::domains {

using core::DataBundle;
using core::ExecutionHint;
using core::ParallelSpec;
using core::PartitionAxis;
using core::StageContext;
using core::StageKind;

namespace {

/// Per-time-step tensor keys: "raw@t00003/t2m". Zero-padded so sorted map
/// order is time order, and '/' so kTensorGroups' prefix grouping keeps
/// all variables of one time step in one partition.
std::string TimeKey(const char* prefix, size_t t, const std::string& var) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s@t%05zu/", prefix, t);
  return buf + var;
}

/// "raw@t00003" -> 3.
size_t TimeOfGroup(const std::string& group) {
  const size_t at = group.find("@t");
  return at == std::string::npos
             ? 0
             : static_cast<size_t>(std::strtoull(group.c_str() + at + 2,
                                                 nullptr, 10));
}

}  // namespace

Result<ArchetypeResult> RunClimateArchetype(
    par::StripedStore& store, const ClimateArchetypeConfig& config) {
  ArchetypeResult result;
  const grid::LatLonGrid src_grid = workloads::ClimateSourceGrid(config.workload);
  const grid::LatLonGrid dst_grid =
      grid::LatLonGrid::Uniform(config.target_lat, config.target_lon);
  const auto& variables = config.workload.variables;
  std::map<std::string, size_t> var_index;
  for (size_t v = 0; v < variables.size(); ++v) var_index[variables[v]] = v;

  // Shared state the stages hand forward outside the bundle's generic maps.
  auto normalizer = std::make_shared<stats::Normalizer>(
      stats::NormKind::kZScore, variables.size());
  auto manifest = std::make_shared<shard::DatasetManifest>();

  core::PipelineOptions options;
  options.backend = config.backend;
  options.threads = config.threads;
  options.faults = config.faults;
  options.checkpoint = config.checkpoint;
  options.overlap = config.overlap;
  core::Pipeline pipeline("climate-archetype", options);

  // One partition per time step for every parallel stage: the partition
  // count is data-dependent only, so output bytes and provenance hashes
  // are identical for any thread count.
  ParallelSpec per_time;
  per_time.axis = PartitionAxis::kTensorGroups;
  per_time.group_by_prefix = true;
  per_time.grain = 1;

  // `normalize` may run at a coarser grain (N time steps per partition).
  // With the default grain 1 it fuses with `patch` exactly as before; with
  // N > 1 the two stages form separate groups whose boundary can stream
  // (grain N re-splits into whole grain-1 partitions).
  ParallelSpec per_time_coarse = per_time;
  per_time_coarse.grain = std::max<size_t>(1, config.normalize_grain);

  // ingest: sniff the container format, decode either GRIB messages or a
  // NetCDF-lite file into per-(time, variable) fields.
  pipeline.Add("decode-source", StageKind::kIngest,
               [&](DataBundle& bundle, StageContext& context) -> Status {
                 DRAI_ASSIGN_OR_RETURN(Bytes blob, bundle.Blob("source"));
                 const container::FileFormat format =
                     container::SniffFormat(blob);
                 context.NoteParam("format",
                                   std::string(container::FileFormatName(format)));
                 if (format == container::FileFormat::kGribLite) {
                   DRAI_ASSIGN_OR_RETURN(auto messages,
                                         container::DecodeGribFile(blob));
                   context.NoteParam("messages",
                                     std::to_string(messages.size()));
                   // Messages arrive per variable in time order; track a
                   // per-variable clock to place each field.
                   std::map<std::string, size_t> t_of;
                   for (auto& msg : messages) {
                     const size_t t = t_of[msg.variable]++;
                     bundle.tensors[TimeKey("raw", t, msg.variable)] =
                         std::move(msg.field);
                   }
                   for (const std::string& var : variables) {
                     if (t_of.find(var) == t_of.end()) {
                       return DataLoss("climate: variable missing from GRIB: " +
                                       var);
                     }
                   }
                 } else if (format == container::FileFormat::kSdf) {
                   // NetCDF-lite lowers to SDF bytes; parse the variable
                   // stacks straight out of the self-describing container.
                   DRAI_ASSIGN_OR_RETURN(container::NcFile nc,
                                         container::NcFile::Parse(blob));
                   for (const std::string& var : variables) {
                     const container::NcVariable* v = nc.FindVariable(var);
                     if (v == nullptr) {
                       return DataLoss(
                           "climate: variable missing from NetCDF: " + var);
                     }
                     const NDArray stack = v->data.AsContiguous();
                     const size_t n_times = stack.shape()[0];
                     for (size_t t = 0; t < n_times; ++t) {
                       bundle.tensors[TimeKey("raw", t, var)] =
                           stack.Slice(0, t, t + 1).Reshape(
                               {src_grid.n_lat(), src_grid.n_lon()});
                     }
                   }
                 } else {
                   return DataLoss("climate: unrecognized source format");
                 }
                 // Metadata enrichment (L3 ingest cell).
                 bundle.SetAttr("source_grid",
                                container::AttrValue::String("gaussian-like"));
                 bundle.SetAttr("n_times",
                                container::AttrValue::Int(static_cast<int64_t>(
                                    config.workload.n_times)));
                 return Status::Ok();
               });

  // preprocess: regrid every (time, variable) field onto the target grid —
  // record-parallel over time steps. Each partition observes the regridded
  // values into a local normalizer partial and emits its serialized
  // streaming state; the AfterMerge hook reduces the partials in ascending
  // partition order and fits (the §3.5 "global statistics need a
  // reduction, not a serial stage" pattern). The executor transports the
  // partials cross-rank under the SPMD backend, so the fit is identical
  // for any backend and worker count.
  pipeline.Add(
      "regrid", StageKind::kPreprocess, ExecutionHint::kRecordParallel,
      /*before=*/nullptr,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        stats::Normalizer local(stats::NormKind::kZScore, variables.size());
        std::vector<std::pair<std::string, NDArray>> regridded_out;
        std::vector<std::string> consumed;
        for (const auto& [key, field] : bundle.tensors) {
          if (key.rfind("raw@", 0) != 0) continue;
          // Record-granularity cancellation poll: a hard-deadline cancel
          // (or a committed speculative twin) stops this partition at the
          // next field instead of finishing the whole slice.
          if (context.Cancelled()) return context.CancelledStatus();
          const size_t slash = key.rfind('/');
          const std::string var = key.substr(slash + 1);
          const auto vit = var_index.find(var);
          if (vit == var_index.end()) {
            return Internal("climate: unexpected variable key " + key);
          }
          DRAI_ASSIGN_OR_RETURN(
              NDArray regridded,
              grid::Regrid(field, src_grid, dst_grid, config.regrid));
          for (size_t i = 0; i < regridded.numel(); ++i) {
            local.Observe(vit->second, regridded.GetAsDouble(i));
          }
          // "raw@t00003/t2m" -> "grid@t00003/t2m"
          regridded_out.emplace_back("grid@" + key.substr(4),
                                     std::move(regridded));
          consumed.push_back(key);
        }
        for (const std::string& key : consumed) bundle.tensors.erase(key);
        for (auto& [key, tensor] : regridded_out) {
          bundle.tensors[key] = std::move(tensor);
        }
        context.NoteParam("method", std::string(grid::RegridMethodName(
                                        config.regrid)));
        ByteWriter pw;
        DRAI_RETURN_IF_ERROR(local.SerializeObservations(pw));
        context.EmitPartial("normalizer", pw.Take());
        return Status::Ok();
      },
      /*after=*/
      [normalizer](DataBundle&, StageContext& context) -> Status {
        for (const Bytes& blob : context.Partials("normalizer")) {
          ByteReader reader(blob);
          DRAI_ASSIGN_OR_RETURN(
              stats::Normalizer partial,
              stats::Normalizer::DeserializeObservations(reader));
          normalizer->Merge(partial);
        }
        normalizer->Fit();
        return Status::Ok();
      },
      per_time);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // transform: fill missing cells with the variable mean, then z-score.
  // Pure per-field map — partition-parallel, and fusable with `patch`.
  pipeline.Add(
      "normalize", StageKind::kTransform, ExecutionHint::kPartitionParallel,
      [&, normalizer](DataBundle& bundle, StageContext& context) -> Status {
        std::vector<std::pair<std::string, NDArray>> renamed;
        std::vector<std::string> consumed;
        for (const auto& [key, tensor] : bundle.tensors) {
          if (key.rfind("grid@", 0) != 0) continue;
          const size_t slash = key.rfind('/');
          if (config.skew.active()) {
            // Benchmark straggler generator: hot time steps cost more. The
            // schedule keys off the time step, never the partition, so it
            // is identical at any grain or worker count.
            workloads::BurnCpu(workloads::SkewIters(
                config.skew, TimeOfGroup(key.substr(0, slash))));
          }
          const std::string var = key.substr(slash + 1);
          const auto vit = var_index.find(var);
          if (vit == var_index.end()) {
            return Internal("climate: unexpected variable key " + key);
          }
          const size_t v = vit->second;
          NDArray field = tensor;
          const double mean = normalizer->Center(v);
          for (size_t i = 0; i < field.numel(); ++i) {
            double x = field.GetAsDouble(i);
            if (std::isnan(x)) x = mean;  // mean-fill missing cells
            field.SetFromDouble(i, normalizer->Apply(v, x));
          }
          renamed.emplace_back("norm@" + key.substr(5), std::move(field));
          consumed.push_back(key);
        }
        for (const std::string& key : consumed) bundle.tensors.erase(key);
        for (auto& [key, tensor] : renamed) {
          bundle.tensors[key] = std::move(tensor);
        }
        context.NoteParam("kind", "zscore");
        return Status::Ok();
      },
      per_time_coarse);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);

  // structure: cut [vars, patch, patch] patches per time step. Same axis as
  // `normalize`, no hooks — at the default normalize_grain the executor
  // fuses the two stages into one split/merge round; at a coarser grain
  // the kStream boundary below lets them overlap instead.
  pipeline.Add(
      "patch", StageKind::kStructure, ExecutionHint::kPartitionParallel,
      [&](DataBundle& bundle, StageContext& context) -> Status {
        context.NoteParam("patch", std::to_string(config.patch));
        // Group this partition's normalized fields by time step.
        std::map<size_t, std::map<std::string, const NDArray*>> by_time;
        for (const auto& [key, tensor] : bundle.tensors) {
          if (key.rfind("norm@", 0) != 0) continue;
          const size_t slash = key.rfind('/');
          by_time[TimeOfGroup(key.substr(0, slash))][key.substr(slash + 1)] =
              &tensor;
        }
        for (const auto& [t, fields] : by_time) {
          // Assemble [vars, lat, lon], then patch.
          NDArray frame = NDArray::Zeros(
              {variables.size(), dst_grid.n_lat(), dst_grid.n_lon()},
              DType::kF64);
          for (size_t v = 0; v < variables.size(); ++v) {
            const auto fit = fields.find(variables[v]);
            if (fit == fields.end()) {
              return Internal("climate: missing normalized field for " +
                              variables[v]);
            }
            NDArray slot = frame.Slice(0, v, v + 1).Reshape(
                {dst_grid.n_lat(), dst_grid.n_lon()});
            slot.CopyFrom(*fit->second);
          }
          DRAI_ASSIGN_OR_RETURN(
              NDArray patches,
              grid::ExtractPatches(frame, config.patch, config.patch));
          const size_t n_patches = patches.shape()[0];
          for (size_t p = 0; p < n_patches; ++p) {
            shard::Example ex;
            ex.key = "t" + std::to_string(t) + "-p" + std::to_string(p);
            NDArray sample =
                patches.Slice(0, p, p + 1)
                    .Reshape({variables.size(), config.patch, config.patch})
                    .Cast(DType::kF32);
            ex.features["x"] = std::move(sample);
            // Patch-mean regression target (self-supervised).
            ex.features["y"] = NDArray::FromVector<float>(
                {1}, {static_cast<float>(Mean(patches.Slice(0, p, p + 1)))});
            bundle.examples.push_back(std::move(ex));
          }
        }
        return Status::Ok();
      },
      per_time);
  pipeline.WithRetry(config.retry);
  pipeline.WithDeadline(config.deadline);
  // Stream normalized partitions straight into patching when the stages
  // are separate groups (normalize_grain > 1); dormant while they fuse.
  pipeline.WithOverlap(core::OverlapPolicy::kStream);

  // shard: write RecIO shards + manifest with the normalizer embedded.
  pipeline.Add("shard", StageKind::kShard,
               [&](DataBundle& bundle, StageContext& context) -> Status {
                 shard::ShardWriterConfig wc;
                 wc.dataset_name = "climate-patches";
                 wc.created_by = "drai/climate-archetype";
                 wc.directory = config.dataset_dir;
                 wc.split_seed = config.split_seed;
                 wc.tensor_codec = codec::Codec::kNone;
                 shard::ShardWriter writer(store, wc);
                 ByteWriter nb;
                 normalizer->Serialize(nb);
                 writer.SetNormalizerBlob(nb.Take());
                 writer.SetProvenanceHash(
                     context.provenance() != nullptr
                         ? context.provenance()->RecordHash()
                         : "");
                 for (const shard::Example& ex : bundle.examples) {
                   DRAI_ASSIGN_OR_RETURN(shard::Split split, writer.Add(ex));
                   (void)split;
                 }
                 DRAI_ASSIGN_OR_RETURN(*manifest, writer.Finalize());
                 context.NoteParam("records",
                                   std::to_string(manifest->TotalRecords()));
                 return Status::Ok();
               });

  DataBundle bundle;
  bundle.blobs["source"] =
      config.source_format == ClimateSourceFormat::kNetcdf
          ? workloads::GenerateClimateNetcdf(config.workload)
          : workloads::GenerateClimateGrib(config.workload);
  result.report = pipeline.Run(bundle);
  if (!result.report.ok) return result.report.error;

  result.manifest = *manifest;
  result.quality = core::AssessQuality(bundle.examples);
  result.provenance_hash = pipeline.provenance().RecordHash();

  core::DatasetState& s = result.state;
  s.acquired = true;
  s.validated_standard_format = true;
  s.metadata_enriched = true;
  s.high_throughput_ingest = true;
  s.ingest_automated = true;
  s.initial_alignment = true;
  s.grids_standardized = true;
  s.alignment_fully_standardized = true;
  s.alignment_automated = true;
  s.basic_normalization = true;
  s.normalization_finalized = true;
  s.basic_labels = true;
  s.comprehensive_labels = true;  // self-supervised target on every sample
  s.transform_automated_audited = true;
  s.features_extracted = true;
  s.features_validated = true;
  s.split_and_sharded = manifest->TotalRecords() > 0;
  s.missing_fraction = result.quality.MissingFraction();
  s.label_fraction = 1.0;
  result.readiness = core::Assess(s);
  return result;
}

}  // namespace drai::domains
