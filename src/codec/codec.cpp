#include "codec/codec.hpp"

#include <cstring>

namespace drai::codec {

std::string_view CodecName(Codec c) {
  switch (c) {
    case Codec::kNone: return "none";
    case Codec::kRle: return "rle";
    case Codec::kDeltaI32: return "delta-i32";
    case Codec::kDeltaI64: return "delta-i64";
    case Codec::kLz: return "lz";
    case Codec::kXorF32: return "xor-f32";
    case Codec::kXorF64: return "xor-f64";
  }
  return "?";
}

namespace {

size_t WordWidth(Codec c) {
  switch (c) {
    case Codec::kDeltaI32:
    case Codec::kXorF32:
      return 4;
    case Codec::kDeltaI64:
    case Codec::kXorF64:
      return 8;
    default:
      return 1;
  }
}

}  // namespace

Result<Bytes> Encode(Codec codec, std::span<const std::byte> raw) {
  const size_t width = WordWidth(codec);
  if (raw.size() % width != 0) {
    return InvalidArgument(std::string("codec ") + std::string(CodecName(codec)) +
                           " requires size divisible by " +
                           std::to_string(width));
  }
  ByteWriter w(raw.size() / 2 + 16);
  w.PutU8(static_cast<uint8_t>(codec));
  w.PutVarU64(raw.size());
  switch (codec) {
    case Codec::kNone: {
      w.PutRaw(raw);
      break;
    }
    case Codec::kRle: {
      const Bytes packed = RleCompress(raw);
      w.PutRaw(packed);
      break;
    }
    case Codec::kDeltaI32: {
      const Bytes packed = DeltaCompressI32(raw);
      w.PutRaw(packed);
      break;
    }
    case Codec::kDeltaI64: {
      const Bytes packed = DeltaCompressI64(raw);
      w.PutRaw(packed);
      break;
    }
    case Codec::kLz: {
      const Bytes packed = LzCompress(raw);
      w.PutRaw(packed);
      break;
    }
    case Codec::kXorF32: {
      const Bytes packed = XorCompressF32(raw);
      w.PutRaw(packed);
      break;
    }
    case Codec::kXorF64: {
      const Bytes packed = XorCompressF64(raw);
      w.PutRaw(packed);
      break;
    }
  }
  return w.Take();
}

Result<Codec> PeekCodec(std::span<const std::byte> framed) {
  if (framed.empty()) return DataLoss("empty codec frame");
  const uint8_t id = static_cast<uint8_t>(framed[0]);
  if (id > static_cast<uint8_t>(Codec::kXorF64)) {
    return DataLoss("unknown codec id " + std::to_string(id));
  }
  return static_cast<Codec>(id);
}

Result<Bytes> Decode(std::span<const std::byte> framed) {
  ByteReader r(framed);
  uint8_t id = 0;
  DRAI_RETURN_IF_ERROR(r.GetU8(id));
  if (id > static_cast<uint8_t>(Codec::kXorF64)) {
    return DataLoss("unknown codec id " + std::to_string(id));
  }
  const Codec codec = static_cast<Codec>(id);
  uint64_t raw_size = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(raw_size));
  std::span<const std::byte> payload;
  DRAI_RETURN_IF_ERROR(r.GetSpan(r.remaining(), payload));
  switch (codec) {
    case Codec::kNone: {
      if (payload.size() != raw_size) return DataLoss("kNone size mismatch");
      return Bytes(payload.begin(), payload.end());
    }
    case Codec::kRle:
      return RleDecompress(payload, raw_size);
    case Codec::kDeltaI32:
      return DeltaDecompressI32(payload, raw_size);
    case Codec::kDeltaI64:
      return DeltaDecompressI64(payload, raw_size);
    case Codec::kLz:
      return LzDecompress(payload, raw_size);
    case Codec::kXorF32:
      return XorDecompressF32(payload, raw_size);
    case Codec::kXorF64:
      return XorDecompressF64(payload, raw_size);
  }
  return Internal("unreachable codec");
}

// ---- RLE -------------------------------------------------------------
// Format: sequence of (count:varint, literal_flag:u8, then either one byte
// repeated `count` times, or `count` literal bytes). Runs >= 4 become
// repeats, shorter stretches are emitted as literal blocks.

Bytes RleCompress(std::span<const std::byte> raw) {
  ByteWriter w;
  size_t i = 0;
  const size_t n = raw.size();
  while (i < n) {
    // Measure the run starting at i.
    size_t run = 1;
    while (i + run < n && raw[i + run] == raw[i]) ++run;
    if (run >= 4) {
      w.PutVarU64(run);
      w.PutU8(1);  // repeat
      w.PutU8(static_cast<uint8_t>(raw[i]));
      i += run;
    } else {
      // Collect a literal stretch until the next long run (or end).
      size_t j = i;
      while (j < n) {
        size_t r2 = 1;
        while (j + r2 < n && raw[j + r2] == raw[j]) ++r2;
        if (r2 >= 4) break;
        j += r2;
      }
      const size_t len = j - i;
      w.PutVarU64(len);
      w.PutU8(0);  // literals
      w.PutRaw(raw.subspan(i, len));
      i = j;
    }
  }
  return w.Take();
}

Result<Bytes> RleDecompress(std::span<const std::byte> packed,
                            size_t raw_size) {
  Bytes out;
  out.reserve(raw_size);
  ByteReader r(packed);
  while (!r.exhausted()) {
    uint64_t count = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(count));
    uint8_t flag = 0;
    DRAI_RETURN_IF_ERROR(r.GetU8(flag));
    if (out.size() + count > raw_size) return DataLoss("RLE overruns raw size");
    if (flag == 1) {
      uint8_t b = 0;
      DRAI_RETURN_IF_ERROR(r.GetU8(b));
      out.insert(out.end(), count, static_cast<std::byte>(b));
    } else if (flag == 0) {
      std::span<const std::byte> lit;
      DRAI_RETURN_IF_ERROR(r.GetSpan(count, lit));
      out.insert(out.end(), lit.begin(), lit.end());
    } else {
      return DataLoss("RLE bad block flag");
    }
  }
  if (out.size() != raw_size) return DataLoss("RLE size mismatch");
  return out;
}

// ---- Delta varint ------------------------------------------------------

namespace {

template <typename T>
Bytes DeltaCompressT(std::span<const std::byte> raw) {
  const size_t n = raw.size() / sizeof(T);
  ByteWriter w;
  T prev = 0;
  for (size_t i = 0; i < n; ++i) {
    T v;
    std::memcpy(&v, raw.data() + i * sizeof(T), sizeof(T));
    const int64_t delta = static_cast<int64_t>(v) - static_cast<int64_t>(prev);
    w.PutVarI64(delta);
    prev = v;
  }
  return w.Take();
}

template <typename T>
Result<Bytes> DeltaDecompressT(std::span<const std::byte> packed,
                               size_t raw_size) {
  if (raw_size % sizeof(T) != 0) return DataLoss("delta raw size not aligned");
  const size_t n = raw_size / sizeof(T);
  Bytes out(raw_size);
  ByteReader r(packed);
  T prev = 0;
  for (size_t i = 0; i < n; ++i) {
    int64_t delta = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarI64(delta));
    const T v = static_cast<T>(static_cast<int64_t>(prev) + delta);
    std::memcpy(out.data() + i * sizeof(T), &v, sizeof(T));
    prev = v;
  }
  if (!r.exhausted()) return DataLoss("delta trailing bytes");
  return out;
}

}  // namespace

Bytes DeltaCompressI32(std::span<const std::byte> raw) {
  return DeltaCompressT<int32_t>(raw);
}
Result<Bytes> DeltaDecompressI32(std::span<const std::byte> packed,
                                 size_t raw_size) {
  return DeltaDecompressT<int32_t>(packed, raw_size);
}
Bytes DeltaCompressI64(std::span<const std::byte> raw) {
  return DeltaCompressT<int64_t>(raw);
}
Result<Bytes> DeltaDecompressI64(std::span<const std::byte> packed,
                                 size_t raw_size) {
  return DeltaDecompressT<int64_t>(packed, raw_size);
}

}  // namespace drai::codec
