// LZ77 with a hash-chain matcher over a 64 KiB window — the general-purpose
// byte codec (think "deflate without Huffman"). Token stream:
//   literal: 0x00, len:varint, bytes
//   match:   0x01, len:varint, distance:varint   (len >= 4)
#include <cstring>

#include "codec/codec.hpp"

namespace drai::codec {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kWindow = 1 << 16;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1 << kHashBits;

inline uint32_t HashAt(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes LzCompress(std::span<const std::byte> raw) {
  ByteWriter w;
  const size_t n = raw.size();
  if (n == 0) return w.Take();

  // head[h] = most recent position with hash h; prev[i % window] = previous
  // position in i's chain.
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(kWindow, -1);

  size_t lit_start = 0;
  auto flush_literals = [&](size_t upto) {
    if (upto > lit_start) {
      w.PutU8(0x00);
      w.PutVarU64(upto - lit_start);
      w.PutRaw(raw.subspan(lit_start, upto - lit_start));
    }
  };

  size_t i = 0;
  while (i < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      const uint32_t h = HashAt(raw.data() + i);
      int64_t cand = head[h];
      int chain = 32;  // bounded chain walk: speed/ratio tradeoff
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<size_t>(cand) <= kWindow) {
        const size_t c = static_cast<size_t>(cand);
        size_t len = 0;
        const size_t max_len = std::min(n - i, kMaxMatch);
        while (len < max_len && raw[c + len] == raw[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len >= 128) break;  // good enough
        }
        cand = prev[c % kWindow];
      }
    }
    if (best_len >= kMinMatch) {
      flush_literals(i);
      w.PutU8(0x01);
      w.PutVarU64(best_len);
      w.PutVarU64(best_dist);
      // Insert hash entries for the covered positions (sparsely, every
      // position would be exact but slower; every position is still cheap
      // here because chains are bounded).
      const size_t end = i + best_len;
      while (i < end && i + kMinMatch <= n) {
        const uint32_t h = HashAt(raw.data() + i);
        prev[i % kWindow] = head[h];
        head[h] = static_cast<int64_t>(i);
        ++i;
      }
      i = end;
      lit_start = i;
    } else {
      if (i + kMinMatch <= n) {
        const uint32_t h = HashAt(raw.data() + i);
        prev[i % kWindow] = head[h];
        head[h] = static_cast<int64_t>(i);
      }
      ++i;
    }
  }
  flush_literals(n);
  return w.Take();
}

Result<Bytes> LzDecompress(std::span<const std::byte> packed,
                           size_t raw_size) {
  Bytes out;
  out.reserve(raw_size);
  ByteReader r(packed);
  while (!r.exhausted()) {
    uint8_t tag = 0;
    DRAI_RETURN_IF_ERROR(r.GetU8(tag));
    if (tag == 0x00) {
      uint64_t len = 0;
      DRAI_RETURN_IF_ERROR(r.GetVarU64(len));
      if (out.size() + len > raw_size) return DataLoss("LZ literal overrun");
      std::span<const std::byte> lit;
      DRAI_RETURN_IF_ERROR(r.GetSpan(len, lit));
      out.insert(out.end(), lit.begin(), lit.end());
    } else if (tag == 0x01) {
      uint64_t len = 0, dist = 0;
      DRAI_RETURN_IF_ERROR(r.GetVarU64(len));
      DRAI_RETURN_IF_ERROR(r.GetVarU64(dist));
      if (dist == 0 || dist > out.size()) return DataLoss("LZ bad distance");
      if (out.size() + len > raw_size) return DataLoss("LZ match overrun");
      // Byte-at-a-time copy: overlapping matches (dist < len) must repeat.
      size_t src = out.size() - dist;
      for (uint64_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    } else {
      return DataLoss("LZ bad token tag");
    }
  }
  if (out.size() != raw_size) return DataLoss("LZ size mismatch");
  return out;
}

}  // namespace drai::codec
