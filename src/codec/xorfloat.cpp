// Gorilla-style XOR compression for float streams: each word is XORed with
// its predecessor; the result is encoded as (leading-zero-bytes, significant
// bytes). Smooth scientific fields change slowly word-to-word, so XOR
// residuals have many leading zero bytes. Byte-granular (not bit-granular)
// to keep the decoder simple and fast; ratios remain strong on real fields.
//
// Token per word: u8 header = number of significant bytes (0..width), then
// that many low-order bytes of the XOR residual.
#include <cstring>

#include "codec/codec.hpp"

namespace drai::codec {

namespace {

template <typename WordT>
Bytes XorCompressT(std::span<const std::byte> raw) {
  const size_t n = raw.size() / sizeof(WordT);
  ByteWriter w;
  WordT prev = 0;
  for (size_t i = 0; i < n; ++i) {
    WordT v;
    std::memcpy(&v, raw.data() + i * sizeof(WordT), sizeof(WordT));
    WordT x = v ^ prev;
    // Count significant (non-zero) low bytes.
    uint8_t sig = 0;
    WordT t = x;
    while (t != 0) {
      ++sig;
      t >>= 8;
    }
    w.PutU8(sig);
    for (uint8_t b = 0; b < sig; ++b) {
      w.PutU8(static_cast<uint8_t>(x >> (8 * b)));
    }
    prev = v;
  }
  return w.Take();
}

template <typename WordT>
Result<Bytes> XorDecompressT(std::span<const std::byte> packed,
                             size_t raw_size) {
  if (raw_size % sizeof(WordT) != 0) {
    return DataLoss("xor codec raw size not aligned");
  }
  const size_t n = raw_size / sizeof(WordT);
  Bytes out(raw_size);
  ByteReader r(packed);
  WordT prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint8_t sig = 0;
    DRAI_RETURN_IF_ERROR(r.GetU8(sig));
    if (sig > sizeof(WordT)) return DataLoss("xor codec bad header");
    WordT x = 0;
    for (uint8_t b = 0; b < sig; ++b) {
      uint8_t byte = 0;
      DRAI_RETURN_IF_ERROR(r.GetU8(byte));
      x |= static_cast<WordT>(byte) << (8 * b);
    }
    const WordT v = x ^ prev;
    std::memcpy(out.data() + i * sizeof(WordT), &v, sizeof(WordT));
    prev = v;
  }
  if (!r.exhausted()) return DataLoss("xor codec trailing bytes");
  return out;
}

}  // namespace

Bytes XorCompressF32(std::span<const std::byte> raw) {
  return XorCompressT<uint32_t>(raw);
}
Result<Bytes> XorDecompressF32(std::span<const std::byte> packed,
                               size_t raw_size) {
  return XorDecompressT<uint32_t>(packed, raw_size);
}
Bytes XorCompressF64(std::span<const std::byte> raw) {
  return XorCompressT<uint64_t>(raw);
}
Result<Bytes> XorDecompressF64(std::span<const std::byte> packed,
                               size_t raw_size) {
  return XorDecompressT<uint64_t>(packed, raw_size);
}

}  // namespace drai::codec
