// drai/codec/quantize.hpp
//
// Precision reduction with explicit error accounting (§2.2 of the paper:
// scientific data demands 32/64-bit precision; anything narrower must be
// justified by a measured error budget).
//
// Two families:
//  * Float narrowing: f64 -> f32 -> f16 (IEEE), reported with max/RMS error.
//  * Linear integer packing: GRIB-style scale/offset quantization of a float
//    field into n-bit integers (n in {8, 16}), used by the grib container.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::codec {

/// Error metrics of a lossy round trip.
struct QuantError {
  double max_abs = 0;
  double rms = 0;
  /// max_abs / (max - min of the original); scale-free comparability.
  double relative_to_range = 0;
};

/// Narrow a float array to `target` dtype and back to its original dtype,
/// returning the round-tripped array and error metrics.
struct NarrowResult {
  NDArray round_tripped;
  QuantError error;
};
NarrowResult NarrowRoundTrip(const NDArray& input, DType target);

/// GRIB-style linear packing parameters: value = offset + scale * q.
struct LinearPack {
  double offset = 0;
  double scale = 1;
  uint8_t bits = 16;                 ///< 8 or 16
  std::vector<uint8_t> packed8;      ///< used when bits == 8
  std::vector<uint16_t> packed16;    ///< used when bits == 16
  size_t count = 0;
};

/// Pack doubles into `bits`-bit integers spanning [min, max] of the data.
/// NaNs are encoded as the max quantum and reported via `nan_mask` when the
/// caller provides one.
Result<LinearPack> LinearQuantize(std::span<const double> values, uint8_t bits);

/// Reconstruct the (lossy) values.
std::vector<double> LinearDequantize(const LinearPack& pack);

/// Error of a LinearQuantize round trip.
QuantError MeasureLinearError(std::span<const double> values,
                              const LinearPack& pack);

}  // namespace drai::codec
