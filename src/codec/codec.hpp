// drai/codec/codec.hpp
//
// Byte-stream compression codecs for the container formats and shards.
// Every codec is self-framing: Encode() prepends a 1-byte codec id and the
// varint raw size, so Decode() can dispatch and validate without side
// channels. Corrupt or truncated payloads return kDataLoss, never UB.
//
// Codecs and the modality they target:
//   kRle     — byte runs: masks, one-hot tiles, categorical rasters
//   kDeltaI32/kDeltaI64 — monotone-ish integer streams: timestamps, indices
//   kLz      — general bytes (LZ77, 64 KiB window, greedy hash-chain match)
//   kXorF32/kXorF64 — smooth float fields (Gorilla-style XOR of consecutive
//                     words; climate/fusion data compresses well)
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace drai::codec {

enum class Codec : uint8_t {
  kNone = 0,
  kRle = 1,
  kDeltaI32 = 2,
  kDeltaI64 = 3,
  kLz = 4,
  kXorF32 = 5,
  kXorF64 = 6,
};

std::string_view CodecName(Codec c);

/// All known codecs (for sweeps/benches).
inline constexpr Codec kAllCodecs[] = {
    Codec::kNone, Codec::kRle,    Codec::kDeltaI32, Codec::kDeltaI64,
    Codec::kLz,   Codec::kXorF32, Codec::kXorF64,
};

/// Compress `raw` with `codec`, producing a self-framed buffer.
/// Word codecs (kDeltaI32/kXorF32/...) require raw.size() to be a multiple
/// of the word width (kInvalidArgument otherwise).
Result<Bytes> Encode(Codec codec, std::span<const std::byte> raw);

/// Inverse of Encode. Reads the frame header, validates, and reproduces the
/// original bytes exactly.
Result<Bytes> Decode(std::span<const std::byte> framed);

/// Peek at the codec id of a framed buffer.
Result<Codec> PeekCodec(std::span<const std::byte> framed);

// Raw (frameless) codec kernels, exposed for tests and for formats that do
// their own framing.
Bytes RleCompress(std::span<const std::byte> raw);
Result<Bytes> RleDecompress(std::span<const std::byte> packed, size_t raw_size);

Bytes DeltaCompressI32(std::span<const std::byte> raw);
Result<Bytes> DeltaDecompressI32(std::span<const std::byte> packed,
                                 size_t raw_size);
Bytes DeltaCompressI64(std::span<const std::byte> raw);
Result<Bytes> DeltaDecompressI64(std::span<const std::byte> packed,
                                 size_t raw_size);

Bytes LzCompress(std::span<const std::byte> raw);
Result<Bytes> LzDecompress(std::span<const std::byte> packed, size_t raw_size);

Bytes XorCompressF32(std::span<const std::byte> raw);
Result<Bytes> XorDecompressF32(std::span<const std::byte> packed,
                               size_t raw_size);
Bytes XorCompressF64(std::span<const std::byte> raw);
Result<Bytes> XorDecompressF64(std::span<const std::byte> packed,
                               size_t raw_size);

}  // namespace drai::codec
