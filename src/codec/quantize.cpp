#include "codec/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ndarray/kernels.hpp"

namespace drai::codec {

NarrowResult NarrowRoundTrip(const NDArray& input, DType target) {
  if (!IsFloating(input.dtype()) || !IsFloating(target)) {
    throw std::invalid_argument("NarrowRoundTrip: floating dtypes only");
  }
  NarrowResult out;
  const NDArray narrow = input.Cast(target);
  out.round_tripped = narrow.Cast(input.dtype());
  out.error.max_abs = MaxAbsDiff(input, out.round_tripped);
  out.error.rms = RmsDiff(input, out.round_tripped);
  const double range = input.numel() ? Max(input) - Min(input) : 0.0;
  out.error.relative_to_range = range > 0 ? out.error.max_abs / range : 0.0;
  return out;
}

Result<LinearPack> LinearQuantize(std::span<const double> values,
                                  uint8_t bits) {
  if (bits != 8 && bits != 16) {
    return InvalidArgument("LinearQuantize: bits must be 8 or 16");
  }
  LinearPack pack;
  pack.bits = bits;
  pack.count = values.size();
  // Range over finite values only.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(lo <= hi)) {  // no finite values
    lo = 0;
    hi = 0;
  }
  const uint32_t levels = bits == 8 ? 255u : 65535u;
  pack.offset = lo;
  pack.scale = hi > lo ? (hi - lo) / static_cast<double>(levels) : 1.0;

  auto quantum = [&](double v) -> uint32_t {
    if (!std::isfinite(v)) return levels;  // NaN/inf sentinel: saturate
    const double q = (v - pack.offset) / pack.scale;
    const double clamped = std::clamp(q, 0.0, static_cast<double>(levels));
    return static_cast<uint32_t>(clamped + 0.5);
  };
  if (bits == 8) {
    pack.packed8.reserve(values.size());
    for (double v : values) pack.packed8.push_back(static_cast<uint8_t>(quantum(v)));
  } else {
    pack.packed16.reserve(values.size());
    for (double v : values) pack.packed16.push_back(static_cast<uint16_t>(quantum(v)));
  }
  return pack;
}

std::vector<double> LinearDequantize(const LinearPack& pack) {
  std::vector<double> out;
  out.reserve(pack.count);
  if (pack.bits == 8) {
    for (uint8_t q : pack.packed8) {
      out.push_back(pack.offset + pack.scale * static_cast<double>(q));
    }
  } else {
    for (uint16_t q : pack.packed16) {
      out.push_back(pack.offset + pack.scale * static_cast<double>(q));
    }
  }
  return out;
}

QuantError MeasureLinearError(std::span<const double> values,
                              const LinearPack& pack) {
  const std::vector<double> restored = LinearDequantize(pack);
  QuantError e;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double acc = 0;
  size_t n = 0;
  for (size_t i = 0; i < values.size() && i < restored.size(); ++i) {
    if (!std::isfinite(values[i])) continue;
    const double d = std::fabs(values[i] - restored[i]);
    e.max_abs = std::max(e.max_abs, d);
    acc += d * d;
    ++n;
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  e.rms = n ? std::sqrt(acc / static_cast<double>(n)) : 0.0;
  e.relative_to_range = (hi > lo) ? e.max_abs / (hi - lo) : 0.0;
  return e;
}

}  // namespace drai::codec
