// drai/core/checkpoint.hpp
//
// Stage checkpoint/resume for the pipeline executor. After every successful
// stage group the executor can persist the run's full restart state — the
// merged bundle, the provenance graph, and the lineage cursor — through a
// CheckpointSink. Pipeline::Resume later reloads the newest checkpoint and
// runs only the remaining stages; because RNG streams and fault decisions
// key off absolute stage indices, a resumed run reproduces the killed run's
// downstream results byte-for-byte.
//
// The on-disk format lives in shard/checkpoint.hpp (a CRC-checked RecIO
// section container); this layer binds it to the executor's types.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "core/bundle.hpp"
#include "core/executor.hpp"

namespace drai::par {
class StripedStore;
}  // namespace drai::par

namespace drai::core {

/// Everything needed to restart a run from after stage `stages_done - 1`.
struct PipelineCheckpoint {
  std::string pipeline;
  uint64_t run_index = 1;
  /// PipelinePlan::Fingerprint() of the plan that produced the state; a
  /// resume against a structurally different plan is refused.
  std::string plan_fingerprint;
  /// Plan stages already applied to `bundle` (== next stage to run).
  size_t stages_done = 0;
  DataBundle bundle;
  /// Serialized ProvenanceGraph at the checkpoint, empty when capture was
  /// off. Restored on resume so lineage (and the provenance hash embedded
  /// in downstream shard manifests) is identical to an uninterrupted run.
  Bytes provenance;
  /// The lineage cursor (index of the latest bundle-state artifact).
  std::optional<size_t> last_state;
  /// Partitions the run quarantined so far, pristine slices included, so a
  /// later Resume can re-ingest the dropped records once the transient
  /// fault clears.
  std::vector<QuarantineRecord> quarantined;
};

/// Where checkpoints go. Save replaces the pipeline's previous checkpoint;
/// LoadLatest returns nullopt when none exists yet.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual Status Save(const PipelineCheckpoint& checkpoint) = 0;
  virtual Result<std::optional<PipelineCheckpoint>> LoadLatest(
      const std::string& pipeline) = 0;
};

/// CheckpointSink over the simulated parallel filesystem, one file per
/// pipeline under `directory`, in the shard/checkpoint.hpp container
/// format. A torn or corrupted file surfaces as kDataLoss from LoadLatest.
class StoreCheckpointSink final : public CheckpointSink {
 public:
  StoreCheckpointSink(par::StripedStore& store, std::string directory);

  Status Save(const PipelineCheckpoint& checkpoint) override;
  Result<std::optional<PipelineCheckpoint>> LoadLatest(
      const std::string& pipeline) override;

  /// Path a pipeline's checkpoint lives at (for tests and corruption
  /// drills).
  [[nodiscard]] std::string PathFor(const std::string& pipeline) const;

 private:
  par::StripedStore& store_;
  std::string directory_;
};

}  // namespace drai::core
