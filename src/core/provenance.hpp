// drai/core/provenance.hpp
//
// Provenance capture (§5 "Provenance and Reproducibility"): a bipartite
// lineage graph of *artifacts* (content-hashed data states) and
// *activities* (stage executions with parameters), in the spirit of
// W3C PROV / ProvEn. Every pipeline run appends activities; the record's
// own hash goes into the dataset manifest so the shards are traceable back
// to raw inputs.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"

namespace drai::core {

/// A content-addressed data state.
struct Artifact {
  std::string name;       ///< human label, e.g. "raw/cmip6-0042.grb"
  std::string sha256_hex; ///< content hash
  uint64_t bytes = 0;
};

/// One stage execution.
struct Activity {
  std::string name;                   ///< e.g. "regrid[bilinear 64x128->32x64]"
  std::string stage_kind;             ///< "ingest" ... "shard"
  std::map<std::string, std::string> params;
  std::vector<size_t> inputs;         ///< artifact indices consumed
  std::vector<size_t> outputs;        ///< artifact indices produced
  double seconds = 0;
};

/// Thread safety: the mutating calls (AddArtifact / AddArtifactHashed /
/// AddActivity) and the whole-graph reads (Ancestors, LineageActivities,
/// RecordHash, Serialize, ToText) are internally synchronized so parallel
/// pipeline stages can record concurrently. The reference accessors
/// artifacts()/activities() are NOT synchronized — call them only when no
/// writer is active (e.g. after a pipeline run returns).
class ProvenanceGraph {
 public:
  ProvenanceGraph() = default;
  ProvenanceGraph(const ProvenanceGraph& other);
  ProvenanceGraph& operator=(const ProvenanceGraph& other);
  ProvenanceGraph(ProvenanceGraph&& other) noexcept;
  ProvenanceGraph& operator=(ProvenanceGraph&& other) noexcept;

  /// Register an artifact; returns its index. Hash is computed here.
  size_t AddArtifact(const std::string& name, std::span<const std::byte> content);
  /// Register with a precomputed hash (for large data hashed streaming).
  size_t AddArtifactHashed(const std::string& name, std::string sha256_hex,
                           uint64_t bytes);
  /// Record an activity linking inputs to outputs. Indices must exist.
  Status AddActivity(Activity activity);

  [[nodiscard]] const std::vector<Artifact>& artifacts() const {
    return artifacts_;
  }
  [[nodiscard]] const std::vector<Activity>& activities() const {
    return activities_;
  }

  /// All artifact indices an artifact transitively derives from.
  [[nodiscard]] Result<std::vector<size_t>> Ancestors(size_t artifact) const;
  /// Activity chain (in execution order) that produced an artifact.
  [[nodiscard]] Result<std::vector<size_t>> LineageActivities(
      size_t artifact) const;

  /// Stable hash of the whole record — what manifests store. Changes iff
  /// any artifact hash, activity, or parameter changes.
  [[nodiscard]] std::string RecordHash() const;

  [[nodiscard]] Bytes Serialize() const;
  static Result<ProvenanceGraph> Parse(std::span<const std::byte> bytes);

  /// Render as indented text for reports.
  [[nodiscard]] std::string ToText() const;

 private:
  mutable std::mutex mutex_;  ///< guards all three containers
  std::vector<Artifact> artifacts_;
  std::vector<Activity> activities_;
  /// producer activity per artifact (if any)
  std::map<size_t, size_t> produced_by_;
};

}  // namespace drai::core
