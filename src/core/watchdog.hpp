// drai/core/watchdog.hpp
//
// AttemptWatchdog — the executor's timekeeper for in-flight stage attempts.
// The scheduler registers every attempt (key → CancelToken + limits) when
// it starts and releases it when it returns; a single monitor thread polls
// the registry and acts on two thresholds:
//
//   hard_ms  cancel the attempt's token. The attempt unwinds cooperatively
//            (ctx.Cancelled() poll or cancellable sleep) with
//            kDeadlineExceeded and replays under its RetryPolicy.
//   soft_ms  declare the attempt a straggler and fire `on_straggler(key)`
//            once per key — the executor uses it to launch a speculative
//            re-execution of the partition.
//
// The watchdog never touches bundles or results; it only trips tokens and
// fires callbacks, so it is safe against any backend. Created only when a
// group actually arms deadlines — an un-deadlined plan pays nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/cancel.hpp"

namespace drai::core {

class AttemptWatchdog {
 public:
  using StragglerFn = std::function<void(uint64_t key)>;

  /// `poll_ms` bounds how late a deadline can fire; `on_straggler` may be
  /// null (hard deadlines only). The monitor thread starts immediately.
  explicit AttemptWatchdog(double poll_ms = 2.0,
                           StragglerFn on_straggler = nullptr);
  ~AttemptWatchdog();

  AttemptWatchdog(const AttemptWatchdog&) = delete;
  AttemptWatchdog& operator=(const AttemptWatchdog&) = delete;

  /// Register (or re-register, for the next attempt) the running attempt
  /// for `key`. `what` labels the cancellation reason. Limits of 0 disarm
  /// that threshold for this attempt.
  void Track(uint64_t key, CancelToken token, double soft_ms, double hard_ms,
             std::string what);
  /// The attempt for `key` returned; stop watching it.
  void Release(uint64_t key);

  /// Cancel whatever attempt is currently tracked under `key` (no-op when
  /// none is) — how a committed partition stops its racing twin.
  void CancelKey(uint64_t key, const std::string& reason);

  /// Attempts cancelled by a hard deadline so far.
  [[nodiscard]] uint64_t hard_cancels() const {
    return hard_cancels_.load(std::memory_order_relaxed);
  }

  /// Stop the monitor thread. Idempotent; the destructor calls it.
  void Stop();

 private:
  struct Entry {
    CancelToken token;
    double soft_ms = 0;
    double hard_ms = 0;
    std::string what;
    std::chrono::steady_clock::time_point start;
    bool hard_fired = false;
  };

  void Loop();

  const double poll_ms_;
  const StragglerFn on_straggler_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Entry> entries_;
  /// Keys whose straggler callback already fired — once per key, even
  /// across retries of the same partition.
  std::set<uint64_t> straggled_;
  std::atomic<uint64_t> hard_cancels_{0};
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace drai::core
