// drai/core/quality.hpp
//
// Dataset quality diagnostics (§5 "Data Quality, Bias, and Fairness"):
// per-feature distribution statistics, missingness, duplicate detection,
// and class balance — aggregated into a score that feeds the readiness
// assessor's quantitative gates and the datasheet.
#pragma once

#include <map>
#include <string>

#include "shard/example.hpp"
#include "stats/imbalance.hpp"
#include "stats/running.hpp"

namespace drai::core {

struct FeatureQuality {
  stats::RunningStats stats;   ///< over all elements of the feature
  uint64_t total_elements = 0;
  uint64_t nan_elements = 0;
  [[nodiscard]] double MissingFraction() const {
    return total_elements == 0
               ? 0.0
               : static_cast<double>(nan_elements) /
                     static_cast<double>(total_elements);
  }
};

struct QualityReport {
  uint64_t n_examples = 0;
  uint64_t duplicate_keys = 0;       ///< repeated example keys
  uint64_t duplicate_payloads = 0;   ///< byte-identical feature payloads
  std::map<std::string, FeatureQuality> features;
  stats::ClassCounts label_counts;   ///< empty when unlabeled
  double labeled_fraction = 0;

  /// Overall missingness across features (element-weighted).
  [[nodiscard]] double MissingFraction() const;
  /// Normalized label entropy (1 = balanced); 0 when unlabeled.
  [[nodiscard]] double BalanceScore() const;
  /// Composite score in [0, 1]: penalizes missingness, duplicates and
  /// imbalance equally. Heuristic, but monotone in each defect.
  [[nodiscard]] double OverallScore() const;

  [[nodiscard]] std::string ToText() const;
};

/// Scan a set of examples.
QualityReport AssessQuality(std::span<const shard::Example> examples);

}  // namespace drai::core
