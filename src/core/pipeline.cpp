#include "core/pipeline.hpp"

#include "core/partitioner.hpp"

namespace drai::core {

namespace {
ExecutorOptions ToExecutorOptions(const PipelineOptions& options) {
  ExecutorOptions out;
  out.backend = options.backend;
  out.threads = options.threads;
  out.seed = options.seed;
  out.capture_provenance = options.capture_provenance;
  out.fail_fast = options.fail_fast;
  out.faults = options.faults;
  out.default_deadline = options.default_deadline;
  out.overlap = options.overlap;
  return out;
}

PipelineReport FailedReport(Status error) {
  PipelineReport report;
  report.ok = false;
  report.error = std::move(error);
  return report;
}
}  // namespace

Pipeline::Pipeline(std::string name, PipelineOptions options)
    : plan_(std::move(name)),
      options_(options),
      executor_(ToExecutorOptions(options)) {}

Pipeline& Pipeline::Add(std::unique_ptr<Stage> stage, ExecutionHint hint,
                        ParallelSpec spec) {
  plan_.Add(std::move(stage), hint, spec);
  return *this;
}

Pipeline& Pipeline::Add(std::string name, StageKind kind, LambdaStage::Fn fn) {
  plan_.Add(std::move(name), kind, std::move(fn));
  return *this;
}

Pipeline& Pipeline::Add(std::string name, StageKind kind, ExecutionHint hint,
                        LambdaStage::Fn fn, ParallelSpec spec) {
  plan_.Add(std::move(name), kind, hint, std::move(fn), spec);
  return *this;
}

Pipeline& Pipeline::Add(std::string name, StageKind kind, ExecutionHint hint,
                        LambdaStage::Fn before, LambdaStage::Fn fn,
                        LambdaStage::Fn after, ParallelSpec spec) {
  plan_.Add(std::move(name), kind, hint, std::move(before), std::move(fn),
            std::move(after), spec);
  return *this;
}

Pipeline& Pipeline::WithRetry(RetryPolicy policy) {
  plan_.WithRetry(std::move(policy));
  return *this;
}

Pipeline& Pipeline::WithDeadline(DeadlinePolicy policy) {
  plan_.WithDeadline(policy);
  return *this;
}

Pipeline& Pipeline::WithOverlap(OverlapPolicy policy) {
  plan_.WithOverlap(policy);
  return *this;
}

PipelineReport Pipeline::Run(DataBundle& bundle) {
  ++runs_;
  ExecutorRunScope scope;
  scope.pipeline_name = plan_.name();
  scope.run_index = runs_;
  scope.provenance = options_.capture_provenance ? &provenance_ : nullptr;
  scope.last_state = &last_state_;
  scope.checkpoint = options_.checkpoint;
  return executor_.Run(plan_, bundle, scope);
}

PipelineReport Pipeline::Resume(DataBundle& bundle) {
  if (options_.checkpoint == nullptr) return Run(bundle);
  auto loaded = options_.checkpoint->LoadLatest(plan_.name());
  if (!loaded.ok()) return FailedReport(loaded.status());
  if (!loaded->has_value()) return Run(bundle);  // nothing to resume from
  PipelineCheckpoint cp = std::move(**loaded);
  if (cp.plan_fingerprint != plan_.Fingerprint()) {
    return FailedReport(FailedPrecondition(
        "checkpoint for pipeline '" + plan_.name() +
        "' was written by a structurally different plan; refusing to resume"));
  }
  // Restore the full run state the checkpoint captured. Provenance and the
  // lineage cursor must come back too: downstream stages embed the
  // provenance hash in their outputs, so resuming with a fresh graph would
  // produce different shards than the uninterrupted run.
  bundle = std::move(cp.bundle);
  if (!cp.provenance.empty()) {
    auto graph = ProvenanceGraph::Parse(cp.provenance);
    if (!graph.ok()) return FailedReport(graph.status());
    provenance_ = std::move(*graph);
  }
  last_state_ = cp.last_state;
  runs_ = cp.run_index;

  // Quarantine re-admission: replay every dropped slice through the stages
  // it missed before the checkpoint, with the original run's RNG streams
  // (slot q.partition + 1, exactly what the partition would have drawn),
  // then merge the records back so the remaining stages process them. Only
  // Run bodies replay — Before/After hooks already ran on the main bundle.
  // A slice whose replay fails again simply stays dropped; either way the
  // outcome lands in PipelineReport::readmissions.
  std::vector<ReadmissionRecord> readmissions;
  const auto& stages = plan_.stages();
  for (QuarantineRecord& q : cp.quarantined) {
    ReadmissionRecord rec;
    rec.stage = q.stage;
    rec.partition = q.partition;
    DataBundle slice = std::move(q.slice);
    // Partitions start from a snapshot of pre-split attrs, and Merge
    // overlays only entries that differ from the target's — hand the slice
    // the *current* attrs so only changes the replay itself makes land.
    slice.attrs = bundle.attrs;
    Status status;
    const size_t end = std::min(cp.stages_done, stages.size());
    for (size_t s = q.stage_index; s < end && status.ok(); ++s) {
      StageContext ctx(
          DeriveStageRng(options_.seed, cp.run_index, s, q.partition + 1),
          nullptr);
      ctx.SetPartition(q.slot);
      ctx.SetAttempt(1);
      try {
        status = stages[s].stage->Run(slice, ctx);
      } catch (const std::exception& e) {
        status = Internal("stage '" + stages[s].stage->name() +
                          "' threw during re-admission replay: " + e.what());
      }
    }
    if (status.ok()) {
      rec.units = q.slot.hi - q.slot.lo;
      std::vector<BundlePartition> part(1);
      part[0].bundle = std::move(slice);
      part[0].slot = q.slot;
      BundlePartitioner::Merge(bundle, part);
    }
    rec.status = std::move(status);
    readmissions.push_back(std::move(rec));
  }

  ExecutorRunScope scope;
  scope.pipeline_name = plan_.name();
  scope.run_index = cp.run_index;
  scope.provenance = options_.capture_provenance ? &provenance_ : nullptr;
  scope.last_state = &last_state_;
  scope.start_stage = cp.stages_done;
  scope.checkpoint = options_.checkpoint;
  PipelineReport report = executor_.Run(plan_, bundle, scope);
  report.readmissions = std::move(readmissions);
  return report;
}

Pipeline::FeedbackReport Pipeline::RunWithFeedback(
    DataBundle& bundle, const std::function<bool(const DataBundle&)>& evaluate,
    const std::function<void(DataBundle&)>& refine, size_t max_iterations) {
  FeedbackReport fb;
  for (size_t i = 0; i < max_iterations; ++i) {
    fb.last_run = Run(bundle);
    fb.iterations = i + 1;
    if (!fb.last_run.ok) return fb;
    if (evaluate(bundle)) {
      fb.converged = true;
      return fb;
    }
    refine(bundle);
  }
  return fb;
}

}  // namespace drai::core
