#include "core/pipeline.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace drai::core {

std::string_view StageKindName(StageKind k) {
  switch (k) {
    case StageKind::kIngest: return "ingest";
    case StageKind::kPreprocess: return "preprocess";
    case StageKind::kTransform: return "transform";
    case StageKind::kStructure: return "structure";
    case StageKind::kShard: return "shard";
  }
  return "?";
}

double PipelineReport::SecondsIn(StageKind kind) const {
  double total = 0;
  for (const StageMetrics& s : stages) {
    if (s.kind == kind) total += s.seconds;
  }
  return total;
}

std::string PipelineReport::TimeBreakdown() const {
  std::string out;
  for (StageKind k : kAllStageKinds) {
    const double s = SecondsIn(k);
    if (s <= 0) continue;
    if (!out.empty()) out += " | ";
    const double pct = total_seconds > 0 ? 100.0 * s / total_seconds : 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.1f%%",
                  std::string(StageKindName(k)).c_str(), pct);
    out += buf;
  }
  return out;
}

Pipeline::Pipeline(std::string name, PipelineOptions options)
    : name_(std::move(name)), options_(options) {}

Pipeline& Pipeline::Add(std::unique_ptr<Stage> stage) {
  if (!stages_.empty() &&
      static_cast<uint8_t>(stage->kind()) <
          static_cast<uint8_t>(stages_.back()->kind())) {
    throw std::invalid_argument(
        "Pipeline '" + name_ + "': stage '" + stage->name() + "' (" +
        std::string(StageKindName(stage->kind())) +
        ") would run after a later-kind stage; the canonical order is "
        "ingest -> preprocess -> transform -> structure -> shard");
  }
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::Add(std::string name, StageKind kind, LambdaStage::Fn fn) {
  return Add(std::make_unique<LambdaStage>(std::move(name), kind,
                                           std::move(fn)));
}

PipelineReport Pipeline::Run(DataBundle& bundle) {
  PipelineReport report;
  WallTimer total;
  ++runs_;
  Rng run_rng(options_.seed ^ (runs_ * 0x9E3779B97F4A7C15ull));
  for (const auto& stage : stages_) {
    StageMetrics m;
    m.name = stage->name();
    m.kind = stage->kind();
    m.bundle_bytes_before = bundle.ApproxBytes();
    StageContext context(run_rng.Split(),
                         options_.capture_provenance ? &provenance_ : nullptr);
    WallTimer timer;
    m.status = stage->Run(bundle, context);
    m.seconds = timer.Seconds();
    m.bundle_bytes_after = bundle.ApproxBytes();
    if (options_.capture_provenance) {
      Activity act;
      act.name = m.name;
      act.stage_kind = std::string(StageKindName(m.kind));
      act.params = context.params();
      act.seconds = m.seconds;
      // Each stage activity consumes the previous bundle state and
      // produces the new one, chaining a linear lineage.
      const std::string state_name =
          name_ + "/run" + std::to_string(runs_) + "/" + m.name;
      const size_t out_idx = provenance_.AddArtifactHashed(
          state_name,
          // Hash the bundle size + stage name as a cheap state fingerprint;
          // full content hashing is available via AddArtifact for stages
          // that need byte-exact lineage.
          DigestToHex(Sha256::Hash(state_name + ":" +
                                   std::to_string(m.bundle_bytes_after))),
          m.bundle_bytes_after);
      if (last_state_.has_value()) act.inputs.push_back(*last_state_);
      act.outputs.push_back(out_idx);
      provenance_.AddActivity(std::move(act)).OrDie();
      last_state_ = out_idx;
    }
    const bool failed = !m.status.ok();
    report.stages.push_back(std::move(m));
    if (failed) {
      report.ok = false;
      report.error = report.stages.back().status;
      if (options_.fail_fast) break;
    }
  }
  report.total_seconds = total.Seconds();
  return report;
}

Pipeline::FeedbackReport Pipeline::RunWithFeedback(
    DataBundle& bundle, const std::function<bool(const DataBundle&)>& evaluate,
    const std::function<void(DataBundle&)>& refine, size_t max_iterations) {
  FeedbackReport fb;
  for (size_t i = 0; i < max_iterations; ++i) {
    fb.last_run = Run(bundle);
    fb.iterations = i + 1;
    if (!fb.last_run.ok) return fb;
    if (evaluate(bundle)) {
      fb.converged = true;
      return fb;
    }
    refine(bundle);
  }
  return fb;
}

}  // namespace drai::core
