// drai/core/executor.hpp
//
// ParallelExecutor — the backend-agnostic scheduler for a PipelinePlan.
//
// Serial stages run exactly as the old monolithic Pipeline did. Parallel
// stages run as a map-reduce: the stage's serial BeforePartition hook, a
// BundlePartitioner::Split, the stage's Run once per partition (dispatched
// through an ExecutionBackend — thread pool workers or SPMD ranks), a
// deterministic Merge, then the serial AfterMerge hook. Consecutive
// parallel stages with identical ParallelSpecs and no hooks at the
// interior boundaries are *fused*: split once, run the stage chain per
// partition, merge once.
//
// The scheduler decides what each partition runs and how outcomes merge;
// the backend (core/backend.hpp) only decides where partitions execute.
// Determinism: partition counts are data-dependent only, per-partition RNG
// streams are derived arithmetically from (seed, run, stage, partition),
// params/counts/partials merge in ascending partition order, and the
// first-error rule picks the lowest (hook, partition-index) position — so
// reports, bundles, and provenance are identical for any backend at any
// worker count or world size.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/plan.hpp"

namespace drai::core {

class CheckpointSink;

/// Per-stage execution record.
struct StageMetrics {
  std::string name;
  StageKind kind = StageKind::kIngest;
  double seconds = 0;
  uint64_t bundle_bytes_before = 0;
  uint64_t bundle_bytes_after = 0;
  Status status;
  /// Scheduling facts (identity values for serial stages).
  ExecutionHint hint = ExecutionHint::kSerial;
  size_t partitions = 1;
  /// Per-partition Run seconds; empty for serial stages.
  std::vector<double> partition_seconds;
  /// Total Run attempts across all partitions (== partitions for a clean
  /// parallel stage, 1 for a clean serial stage, more when retries fired).
  uint64_t attempts = 0;
  /// Partition indices this stage quarantined (attempts exhausted under a
  /// RetryPolicy that allows degradation). Ascending.
  std::vector<size_t> quarantined;
  /// Attempts that ended kDeadlineExceeded (watchdog hard-deadline cancel,
  /// a stage's own Cancelled() poll, or a bounded collective wait).
  uint64_t timeouts = 0;
  /// Straggler speculation under a soft deadline, attributed to the fused
  /// group's head stage: backup copies launched, and how many committed
  /// before their primary.
  uint64_t speculative_launched = 0;
  uint64_t speculative_wins = 0;
  /// True when the stage ran inside an overlap window (inter-stage
  /// pipelining): partitions streamed to the next group as they committed
  /// instead of waiting for the merge barrier. Output bytes and provenance
  /// are identical either way; this only records how the stage was driven.
  bool overlapped = false;

  /// Partition skew: max / median of partition_seconds. 1.0 when balanced
  /// or serial; the straggler diagnosis for the §4 scaling story.
  [[nodiscard]] double PartitionSkew() const;
};

/// One partition dropped from the run instead of failing it.
struct QuarantineRecord {
  std::string stage;      ///< stage whose attempts were exhausted
  size_t stage_index = 0; ///< absolute plan index of that stage
  size_t partition = 0;   ///< partition index within that stage's split
  PartitionSlot slot;     ///< where the slice sat in the partitioned run
  size_t attempts = 0;    ///< tries spent before giving up
  Status error;           ///< the final attempt's failure
  size_t units = 0;       ///< axis units (examples/rows/keys) dropped
  /// The slice exactly as the failing stage first saw it. Persisted with
  /// checkpoints so Pipeline::Resume can re-ingest the dropped records once
  /// the transient fault clears (quarantine re-admission).
  DataBundle slice;
};

/// One quarantined slice re-ingested (or re-attempted) by Pipeline::Resume.
struct ReadmissionRecord {
  std::string stage;     ///< stage the slice was quarantined at
  size_t partition = 0;  ///< its partition index in that stage's split
  size_t units = 0;      ///< axis units re-admitted (0 when status != OK)
  Status status;         ///< OK = records merged back into the bundle
};

struct PipelineReport {
  std::vector<StageMetrics> stages;
  double total_seconds = 0;
  bool ok = true;
  /// First failing status when !ok.
  Status error;
  /// Partitions dropped by retry exhaustion under quarantine policies, in
  /// execution order. A run can be ok with a nonempty quarantine list —
  /// that is the degraded-but-successful outcome the policy opted into.
  std::vector<QuarantineRecord> quarantined;
  /// Quarantined slices a Resume re-ingested from the checkpoint (empty
  /// except on the resume path).
  std::vector<ReadmissionRecord> readmissions;
  /// Inter-stage pipelining facts: how many overlap windows streamed, and a
  /// conservative estimate of the wall-clock saved versus running the same
  /// stage groups back-to-back behind barriers (sum of per-stage critical
  /// paths minus the window's measured wall time; split/merge overhead the
  /// barriered run would also pay is not credited).
  uint64_t overlap_windows = 0;
  double overlap_seconds_saved = 0;

  [[nodiscard]] double SecondsIn(StageKind kind) const;
  /// "ingest 12% | preprocess 55% | ..." — the §3.2 curation-time story —
  /// followed by per-stage partition skew (max/median partition seconds)
  /// for every parallel stage that recorded partition timings.
  [[nodiscard]] std::string TimeBreakdown() const;
};

struct ExecutorOptions {
  /// Execution substrate for parallel stages: thread pool or SPMD ranks.
  Backend backend = Backend::kThread;
  /// Parallel workers. kThread: 0 = share the process pool
  /// (par::GlobalPool); 1 = run partitions inline on the calling thread;
  /// N > 1 = a dedicated pool of N workers. kSpmd: the rank world size
  /// (0 = one rank per hardware thread).
  size_t threads = 0;
  uint64_t seed = 0xD6A1;
  bool capture_provenance = true;
  /// How the report treats stages after the first failure. Either way no
  /// further stage *runs* (a failed bundle would poison its dependents):
  /// true truncates the report at the failure; false records every
  /// remaining stage as kFailedPrecondition "skipped", so a report always
  /// has one entry per planned stage.
  bool fail_fast = true;
  /// Deterministic fault injection (tests/benches). Inactive by default.
  FaultPlan faults;
  /// Deadline applied to stages that do not carry their own DeadlinePolicy
  /// — the safety net that lets a watchdog cancel a hung partition even
  /// when the plan never thought about deadlines. Inactive by default.
  DeadlinePolicy default_deadline;
  /// Master switch for inter-stage pipelining. When true, consecutive
  /// parallel stage groups whose boundary a plan opted into (OverlapPolicy
  /// ::kStream) and that ComputeOverlapWindows proves legal run as one
  /// overlap window: the downstream group starts processing a partition as
  /// soon as the upstream group commits it. Byte-identical output and
  /// provenance versus barriered execution; false forces barriers
  /// everywhere (the differential-testing baseline).
  bool overlap = true;
};

/// Per-run bookkeeping owned by the caller (the Pipeline facade): where to
/// record provenance and how to chain bundle-state lineage across runs.
struct ExecutorRunScope {
  std::string pipeline_name = "pipeline";
  uint64_t run_index = 1;
  /// Null disables provenance capture for this run.
  ProvenanceGraph* provenance = nullptr;
  /// Latest bundle-state artifact, updated as stages complete. May be null.
  std::optional<size_t>* last_state = nullptr;
  /// First plan stage to run (everything before it was already applied to
  /// the bundle — the checkpoint/resume path). Stage indices for RNG
  /// derivation and fault injection stay absolute, so a resumed run
  /// reproduces the original run's streams exactly.
  size_t start_stage = 0;
  /// When set, the executor saves a checkpoint after every successful
  /// stage group; a checkpoint write failure fails the run.
  CheckpointSink* checkpoint = nullptr;
};

class ParallelExecutor {
 public:
  explicit ParallelExecutor(ExecutorOptions options = {});
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;
  ParallelExecutor(ParallelExecutor&&) noexcept;
  ParallelExecutor& operator=(ParallelExecutor&&) noexcept;

  /// Run every stage of the plan in order over the bundle.
  PipelineReport Run(const PipelinePlan& plan, DataBundle& bundle,
                     const ExecutorRunScope& scope);

  [[nodiscard]] const ExecutorOptions& options() const { return options_; }
  /// Concurrency actually available to partition dispatch (threads or
  /// ranks, depending on the backend).
  [[nodiscard]] size_t thread_count() const;
  [[nodiscard]] const ExecutionBackend& backend() const { return *backend_; }

 private:
  /// Run the fused stage group [first, last) of the plan. Appends one
  /// StageMetrics per stage to the report.
  void RunGroup(const PipelinePlan& plan, size_t first, size_t last,
                DataBundle& bundle, const ExecutorRunScope& scope,
                PipelineReport& report);
  /// Run an overlap window: the window's fused groups execute as one
  /// streaming dataflow — a committed upstream partition is re-split at the
  /// downstream grain and processed immediately. Appends one StageMetrics
  /// per window stage to the report, in canonical order, with the exact
  /// statuses/bytes/params a barriered run would record.
  void RunWindow(const PipelinePlan& plan, const struct OverlapWindow& window,
                 DataBundle& bundle, const ExecutorRunScope& scope,
                 PipelineReport& report);
  void RecordStage(const ExecutorRunScope& scope, StageMetrics& metrics,
                   const std::map<std::string, std::string>& params);

  ExecutorOptions options_;
  std::unique_ptr<ExecutionBackend> backend_;
};

/// One legal overlap window: >= 2 consecutive fused groups whose boundaries
/// all stream. `group_starts` holds the absolute plan index of each group's
/// first stage (group g spans [group_starts[g], group_starts[g+1]) and the
/// final group ends at `last`).
struct OverlapWindow {
  size_t first = 0;  ///< absolute index of the window's first stage
  size_t last = 0;   ///< one past the window's final stage
  std::vector<size_t> group_starts;
};

/// The planner pass: partition the plan's fused groups into maximal legal
/// overlap windows. A boundary between group A and group B (B's first stage
/// at index b) streams iff ALL of:
///   - options.overlap is on and stages[b].overlap == OverlapPolicy::kStream
///   - both groups are parallel, on the same concrete axis (not kAuto), with
///     the same group_by_prefix (and, for kRange, the same nonzero
///     range_count) — so B's units are A's units
///   - grain(A) is a positive multiple of grain(B): each committed upstream
///     partition re-splits into whole downstream partitions
///   - no AfterMerge hook on A's last stage and no BeforePartition hook on
///     B's first stage (hooks are global barriers by definition)
/// and every stage inside the window additionally has no quarantine policy
/// (quarantine drops are merge-scoped) and no effective soft deadline
/// (speculation's commit cells assume the group barrier). Hard deadlines,
/// retry-without-quarantine, and fault injection all work inside windows.
/// Exposed for tests; the executor calls it on every Run.
std::vector<OverlapWindow> ComputeOverlapWindows(const PipelinePlan& plan,
                                                 const ExecutorOptions& options);

/// The RNG stream for one (run, stage, slot) cell — slot 0 is the serial
/// stage / Before hook, slot p+1 is partition p, slot n_parts+1 the After
/// hook. A pure function of the coordinates (never of worker count or
/// scheduling order); exposed so Resume's quarantine re-admission can
/// replay a partition with the original run's exact stream.
Rng DeriveStageRng(uint64_t seed, uint64_t run, size_t stage, size_t slot);

/// One past the last stage of the fused group starting at `first`: the
/// maximal run of parallel stages with identical specs and no hooks at
/// interior boundaries (first + 1 for serial stages). The single source of
/// truth for group boundaries, shared by the executor and the re-admission
/// replay.
size_t FusedGroupEnd(const PipelinePlan& plan, size_t first);

}  // namespace drai::core
