// drai/core/executor.hpp
//
// ParallelExecutor — the backend-agnostic scheduler for a PipelinePlan.
//
// Serial stages run exactly as the old monolithic Pipeline did. Parallel
// stages run as a map-reduce: the stage's serial BeforePartition hook, a
// BundlePartitioner::Split, the stage's Run once per partition (dispatched
// through an ExecutionBackend — thread pool workers or SPMD ranks), a
// deterministic Merge, then the serial AfterMerge hook. Consecutive
// parallel stages with identical ParallelSpecs and no hooks at the
// interior boundaries are *fused*: split once, run the stage chain per
// partition, merge once.
//
// The scheduler decides what each partition runs and how outcomes merge;
// the backend (core/backend.hpp) only decides where partitions execute.
// Determinism: partition counts are data-dependent only, per-partition RNG
// streams are derived arithmetically from (seed, run, stage, partition),
// params/counts/partials merge in ascending partition order, and the
// first-error rule picks the lowest (hook, partition-index) position — so
// reports, bundles, and provenance are identical for any backend at any
// worker count or world size.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/plan.hpp"

namespace drai::core {

/// Per-stage execution record.
struct StageMetrics {
  std::string name;
  StageKind kind = StageKind::kIngest;
  double seconds = 0;
  uint64_t bundle_bytes_before = 0;
  uint64_t bundle_bytes_after = 0;
  Status status;
  /// Scheduling facts (identity values for serial stages).
  ExecutionHint hint = ExecutionHint::kSerial;
  size_t partitions = 1;
  /// Per-partition Run seconds; empty for serial stages.
  std::vector<double> partition_seconds;

  /// Partition skew: max / median of partition_seconds. 1.0 when balanced
  /// or serial; the straggler diagnosis for the §4 scaling story.
  [[nodiscard]] double PartitionSkew() const;
};

struct PipelineReport {
  std::vector<StageMetrics> stages;
  double total_seconds = 0;
  bool ok = true;
  /// First failing status when !ok.
  Status error;

  [[nodiscard]] double SecondsIn(StageKind kind) const;
  /// "ingest 12% | preprocess 55% | ..." — the §3.2 curation-time story —
  /// followed by per-stage partition skew (max/median partition seconds)
  /// for every parallel stage that recorded partition timings.
  [[nodiscard]] std::string TimeBreakdown() const;
};

struct ExecutorOptions {
  /// Execution substrate for parallel stages: thread pool or SPMD ranks.
  Backend backend = Backend::kThread;
  /// Parallel workers. kThread: 0 = share the process pool
  /// (par::GlobalPool); 1 = run partitions inline on the calling thread;
  /// N > 1 = a dedicated pool of N workers. kSpmd: the rank world size
  /// (0 = one rank per hardware thread).
  size_t threads = 0;
  uint64_t seed = 0xD6A1;
  bool capture_provenance = true;
  /// Stop at the first failing stage (true) or attempt the rest (false).
  bool fail_fast = true;
};

/// Per-run bookkeeping owned by the caller (the Pipeline facade): where to
/// record provenance and how to chain bundle-state lineage across runs.
struct ExecutorRunScope {
  std::string pipeline_name = "pipeline";
  uint64_t run_index = 1;
  /// Null disables provenance capture for this run.
  ProvenanceGraph* provenance = nullptr;
  /// Latest bundle-state artifact, updated as stages complete. May be null.
  std::optional<size_t>* last_state = nullptr;
};

class ParallelExecutor {
 public:
  explicit ParallelExecutor(ExecutorOptions options = {});
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;
  ParallelExecutor(ParallelExecutor&&) noexcept;
  ParallelExecutor& operator=(ParallelExecutor&&) noexcept;

  /// Run every stage of the plan in order over the bundle.
  PipelineReport Run(const PipelinePlan& plan, DataBundle& bundle,
                     const ExecutorRunScope& scope);

  [[nodiscard]] const ExecutorOptions& options() const { return options_; }
  /// Concurrency actually available to partition dispatch (threads or
  /// ranks, depending on the backend).
  [[nodiscard]] size_t thread_count() const;
  [[nodiscard]] const ExecutionBackend& backend() const { return *backend_; }

 private:
  /// Run the fused stage group [first, last) of the plan. Appends one
  /// StageMetrics per stage to the report.
  void RunGroup(const PipelinePlan& plan, size_t first, size_t last,
                DataBundle& bundle, const ExecutorRunScope& scope,
                PipelineReport& report);
  void RecordStage(const ExecutorRunScope& scope, StageMetrics& metrics,
                   const std::map<std::string, std::string>& params);

  ExecutorOptions options_;
  std::unique_ptr<ExecutionBackend> backend_;
};

}  // namespace drai::core
