// drai/core/partitioner.hpp
//
// BundlePartitioner — splits a DataBundle into N disjoint sub-bundles along
// one axis (examples, signal sets, table rows, tensor groups, blobs, or an
// abstract index range) and deterministically merges the results back.
//
// Determinism contract: the partition count depends only on the data and
// the grain — never on the worker count — and Merge reassembles collections
// in ascending partition order, so a pipeline produces byte-identical
// output (and equal provenance hashes) whether it runs on 1 or 64 threads.
//
// Ownership model: Split *moves* the partitioned axis out of the source
// bundle (so nothing is copied twice) and gives every partition a copy of
// `attrs`; all other collections stay behind in the source bundle and are
// invisible to partitions. Map entries a partition erases simply never
// come back at Merge; attrs written by partitions overlay the originals in
// ascending partition order (attr *deletion* inside a parallel stage is
// not observable — delete attrs from serial stages or hooks instead).
#pragma once

#include <vector>

#include "core/bundle.hpp"
#include "core/plan.hpp"

namespace drai::core {

/// One split piece: a sub-bundle plus its slot in the partition sequence.
struct BundlePartition {
  DataBundle bundle;
  PartitionSlot slot;
};

class BundlePartitioner {
 public:
  /// Resolve kAuto to a concrete axis: the first populated collection in
  /// priority order examples > signal_sets > tensors > tables > blobs.
  static Result<PartitionAxis> ResolveAxis(const DataBundle& bundle,
                                           const ParallelSpec& spec);

  /// Units per partition when ParallelSpec.grain == 0. Constants, so the
  /// partition count is a pure function of the data.
  static size_t DefaultGrain(PartitionAxis axis);

  /// Number of partitionable units along `axis` (examples, rows, keys or
  /// key groups, indices).
  static Result<size_t> CountUnits(const DataBundle& bundle,
                                   PartitionAxis axis,
                                   const ParallelSpec& spec);

  /// Split `bundle` along the spec's axis. On success the moved-out axis
  /// lives in the returned partitions; everything else stays in `bundle`.
  /// A bundle with zero units yields one empty partition so the stage
  /// still runs exactly once (serial-equivalent).
  static Result<std::vector<BundlePartition>> Split(DataBundle& bundle,
                                                    const ParallelSpec& spec);

  /// Merge partitions back into `bundle` in ascending slot order. Always
  /// safe to call, including after a partition's stage failed (its
  /// untouched slice is simply restored).
  static void Merge(DataBundle& bundle, std::vector<BundlePartition>& parts);
};

}  // namespace drai::core
