// drai/core/plan.hpp
//
// Declarative pipeline layer. The paper's abstracted workflow (§3.5):
//
//     ingest -> preprocess -> transform -> structure -> shard
//
// A PipelinePlan is an ordered list of Stages whose kinds must be
// non-decreasing along that canonical axis (a transform can never precede
// an ingest; several stages of the same kind may run in sequence). Each
// stage additionally carries an ExecutionHint telling the executor how it
// may be scheduled:
//
//   kSerial             run once over the whole bundle (default)
//   kRecordParallel     the stage is a pure map over independent records;
//                       the executor may split the bundle and run the stage
//                       on each partition concurrently
//   kPartitionParallel  like kRecordParallel; the historical opt-in for
//                       stage fusion, kept for plans that want to state
//                       fusion-friendliness explicitly
//
// Consecutive parallel stages (either parallel hint) with identical
// ParallelSpecs and no hooks at the interior boundaries are *fused* by the
// executor: split once, run the stage chain per partition, merge once. A
// fused chain skips the interior merge+resplit, so a stage that grows or
// shrinks the partitioned collection hands its successor the original
// partition boundaries rather than freshly rebalanced ones.
//
// The plan only *describes* the work; src/core/executor.hpp schedules it
// and src/core/partitioner.hpp does the bundle splitting/merging.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "core/bundle.hpp"
#include "core/faults.hpp"
#include "core/provenance.hpp"

namespace drai::core {

/// The five canonical Data Processing Stages (Table 2's columns).
enum class StageKind : uint8_t {
  kIngest = 0,
  kPreprocess = 1,
  kTransform = 2,
  kStructure = 3,
  kShard = 4,
};

std::string_view StageKindName(StageKind k);
inline constexpr StageKind kAllStageKinds[] = {
    StageKind::kIngest, StageKind::kPreprocess, StageKind::kTransform,
    StageKind::kStructure, StageKind::kShard};

/// How a stage may be scheduled by the executor.
enum class ExecutionHint : uint8_t {
  kSerial = 0,
  kRecordParallel = 1,
  kPartitionParallel = 2,
};

std::string_view ExecutionHintName(ExecutionHint h);

/// Which bundle collection a parallel stage is partitioned over.
enum class PartitionAxis : uint8_t {
  kAuto = 0,      ///< pick the largest populated axis at run time
  kExamples,      ///< contiguous runs of bundle.examples
  kSignalSets,    ///< map entries of bundle.signal_sets
  kTableRows,     ///< row ranges of the single table in bundle.tables
  kTensorGroups,  ///< map entries (or '/'-prefix groups) of bundle.tensors
  kBlobs,         ///< map entries of bundle.blobs
  kRange,         ///< an abstract index range [0, range_count) — partitions
                  ///< see only attrs plus their PartitionSlot bounds
};

std::string_view PartitionAxisName(PartitionAxis a);

/// How a parallel stage may consume its predecessor's partitions.
///
///   kBarrier  wait for the predecessor group's full merge (default).
///   kStream   opt in to inter-stage pipelining: when the executor finds the
///             boundary legal (see ComputeOverlapWindows in executor.hpp),
///             this stage starts processing partition p as soon as the
///             predecessor commits p, instead of waiting for the barrier.
///
/// Purely an optimization hint: output bytes, provenance, and metrics
/// ordering are identical either way, and an illegal boundary silently
/// falls back to the barrier.
enum class OverlapPolicy : uint8_t {
  kBarrier = 0,
  kStream = 1,
};

std::string_view OverlapPolicyName(OverlapPolicy p);

/// Partitioning parameters for a parallel stage. The number of partitions
/// is a function of the *data* and the grain only — never of the worker
/// count — so results and provenance are identical for any thread count.
struct ParallelSpec {
  PartitionAxis axis = PartitionAxis::kAuto;
  /// Units (examples / rows / keys / indices) per partition; 0 = per-axis
  /// default (see BundlePartitioner::DefaultGrain).
  size_t grain = 0;
  /// kRange only: size of the index domain. 0 = read `range_attr` from the
  /// bundle's attrs instead.
  size_t range_count = 0;
  std::string range_attr = "drai/range";
  /// kTensorGroups only: group keys by the prefix before the last '/'
  /// ("norm@t0003/t2m" -> group "norm@t0003") so related tensors stay in
  /// one partition. Off by default: every key is its own unit.
  bool group_by_prefix = false;

  friend bool operator==(const ParallelSpec& a, const ParallelSpec& b) {
    return a.axis == b.axis && a.grain == b.grain &&
           a.range_count == b.range_count && a.range_attr == b.range_attr &&
           a.group_by_prefix == b.group_by_prefix;
  }
};

/// Per-stage failure handling. With the default policy a failing partition
/// fails the run, exactly as before retry existed. Raising max_attempts
/// makes the scheduler re-run a failed partition against a pristine copy of
/// its slice — same RNG stream, so a successful retry is byte-identical to
/// a fault-free run. Setting `quarantine` lets the run degrade instead of
/// fail once attempts are exhausted: the partition's records are dropped
/// from the merge and tallied in PipelineReport::quarantined. Serial stages
/// honor max_attempts (whole-bundle snapshot) but never quarantine.
struct RetryPolicy {
  /// Total tries per (stage, partition), including the first. 1 = no retry.
  size_t max_attempts = 1;
  /// Deterministic capped exponential backoff before attempt k+1:
  /// min(backoff_base_ms * 2^(k-1), backoff_cap_ms). 0 = no wait.
  double backoff_base_ms = 0.0;
  double backoff_cap_ms = 100.0;
  /// Drop the partition instead of failing the run when attempts exhaust.
  bool quarantine = false;
  /// Codes worth re-running. Empty = Status::IsRetryable() (transient I/O).
  /// Include kInternal to also retry crashes (thrown exceptions).
  std::vector<StatusCode> retryable_codes;

  [[nodiscard]] bool ShouldRetry(const Status& status) const {
    if (status.ok()) return false;
    if (retryable_codes.empty()) return status.IsRetryable();
    for (StatusCode c : retryable_codes) {
      if (status.code() == c) return true;
    }
    return false;
  }
  /// Backoff before re-running attempt `next_attempt` (2-based).
  [[nodiscard]] double BackoffMs(size_t next_attempt) const {
    if (backoff_base_ms <= 0.0) return 0.0;
    double ms = backoff_base_ms;
    for (size_t a = 2; a < next_attempt && ms < backoff_cap_ms; ++a) ms *= 2;
    return ms < backoff_cap_ms ? ms : backoff_cap_ms;
  }
};

/// Per-stage time-based failure handling, complementing RetryPolicy's
/// fail-stop handling. All limits are per attempt and in milliseconds;
/// 0 disables that limit.
///
///   soft_ms        straggler threshold: past it the watchdog may launch a
///                  speculative re-execution of the partition from its
///                  pristine slice (first copy to commit wins; the loser is
///                  cancelled — byte-identical because both copies run the
///                  same RNG stream on the same input).
///   hard_ms        cancel threshold: the watchdog trips the attempt's
///                  CancelToken; the attempt surfaces kDeadlineExceeded
///                  (retryable) and replays under the stage's RetryPolicy
///                  from the pristine slice, exactly like a failed one.
///   collective_ms  SPMD only: bound on every blocking Communicator wait
///                  during this stage's group, so a stuck rank cannot
///                  deadlock Scatter/GatherByIndex/AgreeQuarantine — all
///                  waiting ranks surface kDeadlineExceeded together.
///
/// Cancellation is cooperative: a cancelled attempt unwinds at the next
/// `ctx.Cancelled()` poll (or cancellable sleep); a stage body that never
/// polls and never sleeps runs to completion and merely loses the commit.
struct DeadlinePolicy {
  double soft_ms = 0.0;
  double hard_ms = 0.0;
  double collective_ms = 0.0;

  [[nodiscard]] bool active() const {
    return soft_ms > 0.0 || hard_ms > 0.0 || collective_ms > 0.0;
  }
};

/// Where a StageContext sits in a partitioned run. For serial stages (and
/// the Before/After hooks) this is the identity slot {0, 1, 0, 0}.
struct PartitionSlot {
  size_t index = 0;  ///< which partition [0, count)
  size_t count = 1;  ///< total partitions for this stage
  size_t lo = 0;     ///< first unit index covered (axis-dependent)
  size_t hi = 0;     ///< one past the last unit index
};

/// Execution context handed to every stage: deterministic randomness,
/// provenance recording, and free-form parameters. The executor clears
/// params/counts between stages so notes never leak across activities.
class StageContext {
 public:
  StageContext(Rng rng, ProvenanceGraph* provenance)
      : rng_(rng), provenance_(provenance) {}

  Rng& rng() { return rng_; }
  /// Null when provenance capture is disabled (the ablation bench does
  /// exactly that).
  ProvenanceGraph* provenance() { return provenance_; }

  /// Key-value parameters a stage wants remembered in provenance. Across
  /// partitions the executor merges these in ascending partition order
  /// (last writer wins), so identical notes are safe from any partition.
  void NoteParam(const std::string& key, const std::string& value) {
    params_[key] = value;
  }
  [[nodiscard]] const std::map<std::string, std::string>& params() const {
    return params_;
  }
  void ClearParams() { params_.clear(); }

  /// Additive counters: across partitions the executor *sums* these and
  /// records the totals as provenance params — the right merge for tallies
  /// like "despiked" or "rejected".
  void NoteCount(const std::string& key, uint64_t delta) {
    counts_[key] += delta;
  }
  [[nodiscard]] const std::map<std::string, uint64_t>& counts() const {
    return counts_;
  }
  void ClearCounts() { counts_.clear(); }

  /// Serialized reduction partial from a parallel Run (e.g. a normalizer's
  /// streaming observations). The executor transports partials back to the
  /// scheduler — through Communicator collectives under the SPMD backend —
  /// and hands them to the stage group's AfterMerge hook in ascending
  /// partition order, so a global fit is bit-identical for any backend at
  /// any worker count. One payload per key per partition (last write wins).
  void EmitPartial(const std::string& key, Bytes payload) {
    emitted_partials_[key] = std::move(payload);
  }
  [[nodiscard]] const std::map<std::string, Bytes>& emitted_partials() const {
    return emitted_partials_;
  }
  std::map<std::string, Bytes> TakePartials() {
    return std::move(emitted_partials_);
  }

  /// AfterMerge-hook view of the parallel map's outcome: `Partials(key)`
  /// returns every partition's payload for `key` in ascending partition
  /// order; `MergedCount(key)` the sum of the partitions' NoteCount
  /// tallies. Empty/zero outside an AfterMerge hook.
  [[nodiscard]] const std::vector<Bytes>& Partials(
      const std::string& key) const {
    static const std::vector<Bytes> kEmpty;
    if (gathered_partials_ == nullptr) return kEmpty;
    const auto it = gathered_partials_->find(key);
    return it == gathered_partials_->end() ? kEmpty : it->second;
  }
  [[nodiscard]] uint64_t MergedCount(const std::string& key) const {
    if (gathered_counts_ == nullptr) return 0;
    const auto it = gathered_counts_->find(key);
    return it == gathered_counts_->end() ? 0 : it->second;
  }
  /// Executor-only: install the gathered maps before an AfterMerge hook.
  void SetGathered(
      const std::map<std::string, std::vector<Bytes>>* partials,
      const std::map<std::string, uint64_t>* counts) {
    gathered_partials_ = partials;
    gathered_counts_ = counts;
  }

  [[nodiscard]] const PartitionSlot& partition() const { return partition_; }
  void SetPartition(PartitionSlot slot) { partition_ = slot; }

  /// Which try of this stage on this partition is running (1-based).
  /// Stages may branch on it to make attempt-dependent work observable in
  /// tests; production stages should ignore it.
  [[nodiscard]] size_t attempt() const { return attempt_; }
  void SetAttempt(size_t attempt) { attempt_ = attempt; }

  /// Executor-only: the fault-injection decision for this attempt. The
  /// executor's guarded runner fires it after the stage body returns, so
  /// injection is identical on every backend (the decision travels with the
  /// context, not with any backend state).
  [[nodiscard]] const std::optional<InjectedFault>& injected_fault() const {
    return injected_fault_;
  }
  void SetInjectedFault(std::optional<InjectedFault> fault) {
    injected_fault_ = std::move(fault);
  }

  /// Cooperative cancellation for this attempt. Long-running stage bodies
  /// should poll `Cancelled()` at record granularity and return
  /// `CancelledStatus()` when it trips — that is how a hard deadline or a
  /// lost speculation race actually stops the work.
  [[nodiscard]] bool Cancelled() const { return cancel_.Cancelled(); }
  [[nodiscard]] Status CancelledStatus() const { return cancel_.AsStatus(); }
  [[nodiscard]] const CancelToken& cancel_token() const { return cancel_; }
  void SetCancelToken(CancelToken token) { cancel_ = std::move(token); }

  /// True when this attempt is a speculative re-execution of a straggler.
  /// Environment-local slowness (injected hangs) does not follow the backup
  /// copy; stage semantics must not branch on it.
  [[nodiscard]] bool speculative() const { return speculative_; }
  void SetSpeculative(bool speculative) { speculative_ = speculative; }

  /// Reset for reuse on the next stage: new rng, no leftover notes.
  void Reset(Rng rng) {
    rng_ = rng;
    ClearParams();
    ClearCounts();
    emitted_partials_.clear();
    SetGathered(nullptr, nullptr);
    partition_ = PartitionSlot{};
    attempt_ = 1;
    injected_fault_.reset();
    cancel_ = CancelToken();
    speculative_ = false;
  }

 private:
  Rng rng_;
  ProvenanceGraph* provenance_;
  std::map<std::string, std::string> params_;
  std::map<std::string, uint64_t> counts_;
  std::map<std::string, Bytes> emitted_partials_;
  const std::map<std::string, std::vector<Bytes>>* gathered_partials_ = nullptr;
  const std::map<std::string, uint64_t>* gathered_counts_ = nullptr;
  PartitionSlot partition_;
  size_t attempt_ = 1;
  std::optional<InjectedFault> injected_fault_;
  CancelToken cancel_;
  bool speculative_ = false;
};

/// Interface every pipeline stage implements.
///
/// For parallel stages, Run is invoked once per partition (concurrently);
/// BeforePartition/AfterMerge are serial hooks around the parallel map for
/// global reductions (fit a normalizer, build a lookup table, rebalance).
/// A subclass that overrides a hook must also override the matching
/// HasBeforeHook/HasAfterHook to return true — the executor uses them to
/// decide stage fusion and to skip no-op hook calls.
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual StageKind kind() const = 0;
  virtual Status Run(DataBundle& bundle, StageContext& context) = 0;

  /// Serial pre-pass over the full bundle, before any split.
  virtual Status BeforePartition(DataBundle& bundle, StageContext& context) {
    (void)bundle;
    (void)context;
    return Status::Ok();
  }
  /// Serial post-pass over the merged bundle.
  virtual Status AfterMerge(DataBundle& bundle, StageContext& context) {
    (void)bundle;
    (void)context;
    return Status::Ok();
  }
  [[nodiscard]] virtual bool HasBeforeHook() const { return false; }
  [[nodiscard]] virtual bool HasAfterHook() const { return false; }
};

/// Adapter: build a stage from lambdas. `before`/`after` may be null.
class LambdaStage final : public Stage {
 public:
  using Fn = std::function<Status(DataBundle&, StageContext&)>;
  LambdaStage(std::string name, StageKind kind, Fn fn, Fn before = nullptr,
              Fn after = nullptr)
      : name_(std::move(name)),
        kind_(kind),
        fn_(std::move(fn)),
        before_(std::move(before)),
        after_(std::move(after)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] StageKind kind() const override { return kind_; }
  Status Run(DataBundle& bundle, StageContext& context) override {
    return fn_(bundle, context);
  }
  Status BeforePartition(DataBundle& bundle, StageContext& context) override {
    return before_ ? before_(bundle, context) : Status::Ok();
  }
  Status AfterMerge(DataBundle& bundle, StageContext& context) override {
    return after_ ? after_(bundle, context) : Status::Ok();
  }
  [[nodiscard]] bool HasBeforeHook() const override {
    return static_cast<bool>(before_);
  }
  [[nodiscard]] bool HasAfterHook() const override {
    return static_cast<bool>(after_);
  }

 private:
  std::string name_;
  StageKind kind_;
  Fn fn_;
  Fn before_;
  Fn after_;
};

/// One stage plus its scheduling annotations.
struct PlannedStage {
  std::unique_ptr<Stage> stage;
  ExecutionHint hint = ExecutionHint::kSerial;
  ParallelSpec parallel;
  RetryPolicy retry;
  DeadlinePolicy deadline;
  /// Boundary with the *previous* stage group; ignored on the first stage.
  OverlapPolicy overlap = OverlapPolicy::kBarrier;
};

/// An ordered, validated list of planned stages. Purely declarative: build
/// one, then hand it to a ParallelExecutor (or the Pipeline facade).
class PipelinePlan {
 public:
  explicit PipelinePlan(std::string name = "pipeline") : name_(std::move(name)) {}

  /// Append a stage. Throws std::invalid_argument if it would violate the
  /// canonical stage ordering.
  PipelinePlan& Add(std::unique_ptr<Stage> stage,
                    ExecutionHint hint = ExecutionHint::kSerial,
                    ParallelSpec spec = {});
  /// Sugar for a serial LambdaStage.
  PipelinePlan& Add(std::string name, StageKind kind, LambdaStage::Fn fn);
  /// Sugar for a parallel LambdaStage.
  PipelinePlan& Add(std::string name, StageKind kind, ExecutionHint hint,
                    LambdaStage::Fn fn, ParallelSpec spec = {});
  /// Full map-reduce sugar: serial `before`, parallel `fn`, serial `after`.
  PipelinePlan& Add(std::string name, StageKind kind, ExecutionHint hint,
                    LambdaStage::Fn before, LambdaStage::Fn fn,
                    LambdaStage::Fn after, ParallelSpec spec = {});

  /// Attach a retry policy to the most recently added stage. Throws
  /// std::logic_error if no stage has been added yet.
  PipelinePlan& WithRetry(RetryPolicy policy);

  /// Attach a deadline policy to the most recently added stage. Throws
  /// std::logic_error if no stage has been added yet, std::invalid_argument
  /// on a negative limit or soft_ms > hard_ms (both armed).
  PipelinePlan& WithDeadline(DeadlinePolicy policy);

  /// Set the overlap policy for the boundary between the most recently
  /// added stage and its predecessor group. Throws std::logic_error if no
  /// stage has been added yet. Not part of Fingerprint(): toggling overlap
  /// must not invalidate checkpoints, because output bytes are identical.
  PipelinePlan& WithOverlap(OverlapPolicy policy);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t NumStages() const { return stages_.size(); }
  [[nodiscard]] const std::vector<PlannedStage>& stages() const {
    return stages_;
  }

  /// Structural identity of the plan (name + per-stage name/kind/hint),
  /// used to refuse resuming a checkpoint against a different plan. Does
  /// not hash stage *code* — renaming a stage is the supported way to
  /// invalidate old checkpoints after a logic change.
  [[nodiscard]] std::string Fingerprint() const;

  /// Whole-plan checks beyond the incremental Add validation: parallel
  /// kRange stages must know their domain size one way or the other.
  [[nodiscard]] Status Validate() const;

 private:
  std::string name_;
  std::vector<PlannedStage> stages_;
};

}  // namespace drai::core
