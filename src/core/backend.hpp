// drai/core/backend.hpp
//
// ExecutionBackend — where a plan's partitions actually run. The scheduler
// (core/executor.hpp) decides *what* to run per partition and how results
// merge; a backend only decides *where* the per-partition work executes:
//
//   ThreadBackend  partitions fan out across a par::ThreadPool (the
//                  workstation path; shares the process pool by default)
//   SpmdBackend    partitions scatter across par::RunSpmd ranks (the MPI
//                  programming model); each rank runs its block-cyclic
//                  share, then per-partition outcomes gather back to rank 0
//                  through Communicator collectives in ascending partition
//                  order
//
// Both backends honor the determinism contract: the partition count, the
// per-partition RNG streams, and the merge order are fixed by the plan and
// the data, so shard bytes and provenance hashes are identical for any
// backend at any worker count / world size.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

#include "common/bytes.hpp"

namespace drai::par {
class ThreadPool;
}  // namespace drai::par

namespace drai::core {

/// Which execution substrate runs parallel stages.
enum class Backend : uint8_t {
  kThread = 0,  ///< par::ThreadPool workers (default)
  kSpmd = 1,    ///< par::RunSpmd ranks over the in-process Communicator
};

std::string_view BackendName(Backend b);

/// One parallel map the scheduler hands to a backend: invoke `run(p)`
/// exactly once for every partition p in [0, n_parts). `run` never throws
/// and is safe to call concurrently for distinct p (partitions own
/// disjoint state).
///
/// `pack`/`unpack` are the cross-rank transport for per-partition outcomes
/// (status, metrics, provenance notes, reduction partials): a backend whose
/// workers do not share the scheduler's memory — SPMD ranks — calls
/// `pack(p)` on the rank that ran p and `unpack(p, payload)` on rank 0
/// with the gathered payloads, ascending by partition index. Shared-memory
/// backends may skip both. Either may be null (no transport needed).
struct PartitionTask {
  size_t n_parts = 0;
  std::function<void(size_t)> run;
  std::function<Bytes(size_t)> pack;
  std::function<void(size_t, const Bytes&)> unpack;
  /// Optional quarantine probe: after `run(p)`, reports whether partition p
  /// was dropped by retry exhaustion. When set, a distributed backend must
  /// bring every rank to agreement on the dropped set (par::AgreeQuarantine)
  /// before returning, so all ranks apply the same degraded merge; on the
  /// scheduler's side it is also consulted post-transport as a cross-check.
  /// Null when no stage in the group can quarantine.
  std::function<bool(size_t)> quarantined;
  /// Bound on every blocking Communicator wait during this map (SPMD only;
  /// thread backends have no collectives). 0 = unbounded. When a rank is
  /// stuck, every other rank surfaces par::DeadlineExceededError together
  /// instead of deadlocking in Scatter/GatherByIndex/AgreeQuarantine.
  double collective_timeout_ms = 0.0;
};

/// Strategy interface: execute a PartitionTask. Implementations may throw
/// (e.g. on a transport fault); the scheduler converts that into a failing
/// stage status.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Concurrency available to partition dispatch (threads or ranks).
  [[nodiscard]] virtual size_t concurrency() const = 0;
  /// True when the backend's workers share the scheduler's memory and may
  /// pull work discovered *during* the map (a shared work queue). The
  /// overlap scheduler uses this to choose between the work-crew shape
  /// (threads drain a PartitionChannel) and the static rank-local shape
  /// (each rank runs its own partitions' downstream chains depth-first).
  [[nodiscard]] virtual bool dynamic_tasks() const { return false; }
  virtual void Map(const PartitionTask& task) = 0;
};

/// Today's thread-pool path, extracted from the pre-split executor.
/// `threads`: 0 = share the process pool (par::GlobalPool), 1 = run
/// partitions inline on the calling thread, N > 1 = a dedicated pool.
class ThreadBackend final : public ExecutionBackend {
 public:
  explicit ThreadBackend(size_t threads);
  ~ThreadBackend() override;

  [[nodiscard]] std::string_view name() const override { return "thread"; }
  [[nodiscard]] size_t concurrency() const override;
  [[nodiscard]] bool dynamic_tasks() const override { return true; }
  void Map(const PartitionTask& task) override;

 private:
  size_t threads_;
  std::unique_ptr<par::ThreadPool> pool_;  ///< only when threads > 1
};

/// SPMD path: every Map launches a fixed-size rank world (par::RunSpmd).
/// Rank 0 scatters the block-cyclic partition assignment, each rank runs
/// its partitions rank-locally, and outcomes gather back to rank 0 in
/// ascending partition order via Communicator collectives. `ranks`: 0 =
/// one rank per hardware thread.
class SpmdBackend final : public ExecutionBackend {
 public:
  explicit SpmdBackend(size_t ranks);

  [[nodiscard]] std::string_view name() const override { return "spmd"; }
  [[nodiscard]] size_t concurrency() const override { return ranks_; }
  void Map(const PartitionTask& task) override;

 private:
  size_t ranks_;
};

/// Build the backend an ExecutorOptions selection names. (Declared here,
/// defined in backend.cpp; the executor owns the returned object.)
std::unique_ptr<ExecutionBackend> MakeBackend(Backend backend, size_t workers);

}  // namespace drai::core
