#include "core/faults.hpp"

#include "common/rng.hpp"

namespace drai::core {

namespace {

/// Hash the cell coordinates into a uniform double in [0, 1). Mirrors the
/// executor's RNG derivation: fold each salt through SplitMix64 so nearby
/// coordinates land far apart.
/// Extra salt separating the hang schedule from the fail-stop schedule —
/// the two are sampled independently on the same coordinates.
constexpr uint64_t kHangSalt = 0xD6E8FEB86659FD93ull;

double CellUniform(uint64_t seed, uint64_t run, size_t stage,
                   size_t partition, uint64_t extra_salt = 0) {
  uint64_t x = seed ^ extra_salt;
  const uint64_t salts[] = {run, static_cast<uint64_t>(stage),
                            static_cast<uint64_t>(partition)};
  for (uint64_t salt : salts) {
    SplitMix64 sm(x ^ (salt * 0x9E3779B97F4A7C15ull + 0x94D049BB133111EBull));
    x = sm.Next();
  }
  // 53 high bits -> [0, 1).
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

Status MakeFaultStatus(StatusCode code, std::string_view stage_name,
                       size_t partition, size_t attempt) {
  return Status(code, "injected fault: stage '" + std::string(stage_name) +
                          "' partition " + std::to_string(partition) +
                          " attempt " + std::to_string(attempt));
}

}  // namespace

std::optional<InjectedFault> FaultPlan::Decide(uint64_t run,
                                               std::string_view stage_name,
                                               size_t stage_index,
                                               size_t partition,
                                               size_t attempt) const {
  for (const FaultSite& site : sites) {
    if (!site.stage.empty() && site.stage != stage_name) continue;
    if (site.partition != kAnyPartition && site.partition != partition) {
      continue;
    }
    if (attempt > site.fail_attempts) continue;
    if (site.code == StatusCode::kOk && site.hang_ms <= 0.0) continue;
    return InjectedFault{
        site.code == StatusCode::kOk
            ? Status::Ok()
            : MakeFaultStatus(site.code, stage_name, partition, attempt),
        site.throw_instead, site.hang_ms};
  }
  double delay = 0.0;
  if (hang_rate > 0.0 && attempt <= hang_attempts &&
      CellUniform(seed, run, stage_index, partition, kHangSalt) < hang_rate) {
    delay = hang_ms;
  }
  if (rate > 0.0 && attempt <= fail_attempts &&
      CellUniform(seed, run, stage_index, partition) < rate) {
    return InjectedFault{MakeFaultStatus(code, stage_name, partition, attempt),
                         throw_instead, delay};
  }
  if (delay > 0.0) return InjectedFault{Status::Ok(), false, delay};
  return std::nullopt;
}

}  // namespace drai::core
