#include "core/readiness.hpp"

#include <cstdio>

namespace drai::core {

std::string_view ReadinessLevelName(ReadinessLevel level) {
  switch (level) {
    case ReadinessLevel::kRaw: return "1-raw";
    case ReadinessLevel::kCleaned: return "2-cleaned";
    case ReadinessLevel::kLabeled: return "3-labeled";
    case ReadinessLevel::kFeatureEngineered: return "4-feature-engineered";
    case ReadinessLevel::kAiReady: return "5-fully-AI-ready";
  }
  return "?";
}

std::optional<std::string_view> MatrixCell(ReadinessLevel level,
                                           StageKind stage) {
  // Transcription of Table 2; grey cells are nullopt.
  switch (level) {
    case ReadinessLevel::kRaw:
      if (stage == StageKind::kIngest) return "initial raw acquisition";
      return std::nullopt;
    case ReadinessLevel::kCleaned:
      switch (stage) {
        case StageKind::kIngest: return "validated ingestion into standard formats";
        case StageKind::kPreprocess:
          return "initial spatial/temporal alignment or regridding";
        default: return std::nullopt;
      }
    case ReadinessLevel::kLabeled:
      switch (stage) {
        case StageKind::kIngest: return "enhanced metadata enrichment";
        case StageKind::kPreprocess: return "refined alignment; grids standardized";
        case StageKind::kTransform:
          return "initial normalization or anonymization; basic labels added";
        default: return std::nullopt;
      }
    case ReadinessLevel::kFeatureEngineered:
      switch (stage) {
        case StageKind::kIngest: return "optimized high-throughput ingestion";
        case StageKind::kPreprocess: return "alignment fully standardized";
        case StageKind::kTransform:
          return "normalization or anonymization finalized; comprehensive labeling";
        case StageKind::kStructure:
          return "domain-specific feature extraction completed";
        default: return std::nullopt;
      }
    case ReadinessLevel::kAiReady:
      switch (stage) {
        case StageKind::kIngest:
          return "ingestion pipelines fully automated and performance-optimized";
        case StageKind::kPreprocess: return "alignment integrated and automated";
        case StageKind::kTransform:
          return "normalization / anonymization fully automated and audited";
        case StageKind::kStructure:
          return "feature extraction automated and validated";
        case StageKind::kShard:
          return "data partitioned into train/test/val & sharded into binary "
                 "formats for scalable ingestion";
      }
  }
  return std::nullopt;
}

bool CellSatisfied(const DatasetState& s, ReadinessLevel level,
                   StageKind stage) {
  if (!MatrixCell(level, stage).has_value()) return true;  // N/A
  switch (level) {
    case ReadinessLevel::kRaw:
      return s.acquired;
    case ReadinessLevel::kCleaned:
      switch (stage) {
        case StageKind::kIngest:
          // "Cleaned" also carries a quality floor: a dataset that is 40%
          // dropouts has not been cleaned no matter what ran.
          return s.validated_standard_format && s.missing_fraction <= 0.25;
        case StageKind::kPreprocess: return s.initial_alignment;
        default: return true;
      }
    case ReadinessLevel::kLabeled:
      switch (stage) {
        case StageKind::kIngest: return s.metadata_enriched;
        case StageKind::kPreprocess: return s.grids_standardized;
        case StageKind::kTransform:
          return (s.basic_normalization && s.anonymization_done) &&
                 s.basic_labels && s.label_fraction > 0.0;
        default: return true;
      }
    case ReadinessLevel::kFeatureEngineered:
      switch (stage) {
        case StageKind::kIngest: return s.high_throughput_ingest;
        case StageKind::kPreprocess: return s.alignment_fully_standardized;
        case StageKind::kTransform:
          return s.normalization_finalized && s.comprehensive_labels &&
                 s.label_fraction >= 0.95;
        case StageKind::kStructure: return s.features_extracted;
        default: return true;
      }
    case ReadinessLevel::kAiReady:
      switch (stage) {
        case StageKind::kIngest: return s.ingest_automated;
        case StageKind::kPreprocess: return s.alignment_automated;
        case StageKind::kTransform: return s.transform_automated_audited;
        case StageKind::kStructure: return s.features_validated;
        case StageKind::kShard: return s.split_and_sharded;
      }
  }
  return false;
}

ReadinessAssessment Assess(const DatasetState& state) {
  ReadinessAssessment out;
  // Per-stage: highest level whose cells for this stage are satisfied
  // cumulatively from level 1 upward.
  for (size_t si = 0; si < 5; ++si) {
    const StageKind stage = kAllStageKinds[si];
    ReadinessLevel achieved = ReadinessLevel::kRaw;
    bool broken = false;
    for (ReadinessLevel level : kAllReadinessLevels) {
      if (!CellSatisfied(state, level, stage)) {
        broken = true;
        break;
      }
      achieved = level;
    }
    // A stage that fails even level 1 (only possible for ingest) reports
    // level 1 anyway — level "0" does not exist in the paper's scale.
    (void)broken;
    out.per_stage[si] = achieved;
  }
  // Overall: highest L with every cell of rows 1..L satisfied.
  ReadinessLevel overall = ReadinessLevel::kRaw;
  bool all_ok = true;
  for (ReadinessLevel level : kAllReadinessLevels) {
    for (StageKind stage : kAllStageKinds) {
      if (!CellSatisfied(state, level, stage)) {
        all_ok = false;
        out.blocking.push_back(
            std::string(ReadinessLevelName(level)) + "/" +
            std::string(StageKindName(stage)) + ": " +
            std::string(MatrixCell(level, stage).value_or("")));
      }
    }
    if (!all_ok) break;
    overall = level;
  }
  // Level 1 requires acquisition; report raw regardless (floor of scale).
  out.overall = overall;
  return out;
}

namespace {

std::string RenderMatrixImpl(const DatasetState* state) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-24s", "Level \\ Stage");
  out += buf;
  for (StageKind stage : kAllStageKinds) {
    std::snprintf(buf, sizeof(buf), " | %-12s",
                  std::string(StageKindName(stage)).c_str());
    out += buf;
  }
  out += "\n";
  out += std::string(24 + 5 * 15, '-');
  out += "\n";
  for (ReadinessLevel level : kAllReadinessLevels) {
    std::snprintf(buf, sizeof(buf), "%-24s",
                  std::string(ReadinessLevelName(level)).c_str());
    out += buf;
    for (StageKind stage : kAllStageKinds) {
      const auto cell = MatrixCell(level, stage);
      std::string mark;
      if (!cell.has_value()) {
        mark = "  (n/a)";
      } else if (state == nullptr) {
        mark = "  req";
      } else {
        mark = CellSatisfied(*state, level, stage) ? "  [x]" : "  [ ]";
      }
      std::snprintf(buf, sizeof(buf), " | %-12s", mark.c_str());
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace

std::string RenderMaturityMatrix(const DatasetState& state) {
  return RenderMatrixImpl(&state);
}

std::string RenderMaturityMatrix() { return RenderMatrixImpl(nullptr); }

}  // namespace drai::core
