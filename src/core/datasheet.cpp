#include "core/datasheet.hpp"

#include "common/strings.hpp"

namespace drai::core {

Datasheet MakeDatasheet(std::string dataset_name,
                        const shard::DatasetManifest& manifest,
                        const QualityReport& quality,
                        const ReadinessAssessment& readiness,
                        std::string provenance_hash) {
  Datasheet d;
  d.dataset_name = std::move(dataset_name);
  d.manifest = manifest;
  d.quality = quality;
  d.readiness = readiness;
  d.provenance_hash = std::move(provenance_hash);
  return d;
}

std::string Datasheet::ToMarkdown() const {
  std::string out;
  out += "# Data card: " + dataset_name + "\n\n";
  auto section = [&](const char* title, const std::string& body) {
    if (body.empty()) return;
    out += std::string("## ") + title + "\n" + body + "\n\n";
  };
  section("Motivation", motivation);
  section("Composition", composition);
  section("Collection process", collection_process);
  section("Recommended uses", recommended_uses);
  section("Restrictions", restrictions);

  out += "## Contents\n";
  out += "- created by: " + manifest.created_by + "\n";
  out += "- total examples: " + std::to_string(manifest.TotalRecords()) + "\n";
  for (shard::Split s : shard::kAllSplits) {
    out += "- " + std::string(shard::SplitName(s)) + ": " +
           std::to_string(manifest.TotalRecords(s)) + " records in " +
           std::to_string(manifest.shards.count(s)
                              ? manifest.shards.at(s).size()
                              : 0) +
           " shards\n";
  }
  out += "- stored bytes: " + HumanBytes(manifest.TotalBytes()) + "\n";
  out += "- split seed: " + std::to_string(manifest.split_seed) + "\n";
  out += "\n## Schema\n";
  for (const shard::FeatureSpec& f : manifest.schema) {
    out += "- `" + f.name + "`: " + std::string(DTypeName(f.dtype)) + " " +
           ShapeToString(f.shape) + "\n";
  }
  out += "\n## Quality\n```\n" + quality.ToText() + "```\n";
  out += "\n## Readiness\n";
  out += "- overall: " + std::string(ReadinessLevelName(readiness.overall)) +
         "\n";
  for (size_t i = 0; i < 5; ++i) {
    out += "- " + std::string(StageKindName(kAllStageKinds[i])) + ": " +
           std::string(ReadinessLevelName(readiness.per_stage[i])) + "\n";
  }
  if (!readiness.blocking.empty()) {
    out += "- blocking next level:\n";
    for (const std::string& b : readiness.blocking) {
      out += "  - " + b + "\n";
    }
  }
  out += "\n## Provenance\n- record hash: `" + provenance_hash + "`\n";
  return out;
}

}  // namespace drai::core
