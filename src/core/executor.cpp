#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/strings.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "core/partitioner.hpp"
#include "core/stream.hpp"
#include "core/watchdog.hpp"
#include "parallel/communicator.hpp"

namespace drai::core {

double StageMetrics::PartitionSkew() const {
  if (partition_seconds.size() <= 1) return 1.0;
  std::vector<double> sorted = partition_seconds;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  if (median <= 0) return 1.0;
  return sorted.back() / median;
}

double PipelineReport::SecondsIn(StageKind kind) const {
  double total = 0;
  for (const StageMetrics& s : stages) {
    if (s.kind == kind) total += s.seconds;
  }
  return total;
}

std::string PipelineReport::TimeBreakdown() const {
  std::string out;
  for (StageKind k : kAllStageKinds) {
    const double s = SecondsIn(k);
    if (s <= 0) continue;
    if (!out.empty()) out += " | ";
    const double pct = total_seconds > 0 ? 100.0 * s / total_seconds : 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.1f%%",
                  std::string(StageKindName(k)).c_str(), pct);
    out += buf;
  }
  // Partition skew per parallel stage: max/median partition seconds. The
  // executor records partition_seconds for every parallel stage; a skew
  // well above 1 names the straggler stage that caps parallel speedup.
  std::string skew;
  for (const StageMetrics& s : stages) {
    if (s.partition_seconds.size() <= 1) continue;
    if (!skew.empty()) skew += ", ";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s %.2fx", s.name.c_str(),
                  s.PartitionSkew());
    skew += buf;
  }
  if (!skew.empty()) out += " || skew(max/med): " + skew;
  // Time-based fault handling, when any of it fired: deadline-cancelled
  // attempts and straggler speculation outcomes.
  uint64_t timeouts = 0, launched = 0, wins = 0;
  for (const StageMetrics& s : stages) {
    timeouts += s.timeouts;
    launched += s.speculative_launched;
    wins += s.speculative_wins;
  }
  if (timeouts > 0 || launched > 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  " || deadlines: %llu timeouts, %llu speculative (%llu won)",
                  static_cast<unsigned long long>(timeouts),
                  static_cast<unsigned long long>(launched),
                  static_cast<unsigned long long>(wins));
    out += buf;
  }
  if (overlap_windows > 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  " || overlap: %llu window%s, ~%.2fs saved",
                  static_cast<unsigned long long>(overlap_windows),
                  overlap_windows == 1 ? "" : "s", overlap_seconds_saved);
    out += buf;
  }
  return out;
}

Rng DeriveStageRng(uint64_t seed, uint64_t run, size_t stage, size_t slot) {
  uint64_t x = seed;
  const uint64_t salts[] = {run, static_cast<uint64_t>(stage),
                            static_cast<uint64_t>(slot)};
  for (uint64_t salt : salts) {
    SplitMix64 sm(x ^ (salt * 0x9E3779B97F4A7C15ull + 0xBF58476D1CE4E5B9ull));
    x = sm.Next();
  }
  return Rng(x);
}

size_t FusedGroupEnd(const PipelinePlan& plan, size_t first) {
  const auto& stages = plan.stages();
  size_t j = first + 1;
  if (stages[first].hint == ExecutionHint::kSerial) return j;
  while (j < stages.size() && stages[j].hint != ExecutionHint::kSerial &&
         stages[j].parallel == stages[first].parallel &&
         !stages[j - 1].stage->HasAfterHook() &&
         !stages[j].stage->HasBeforeHook()) {
    ++j;
  }
  return j;
}

namespace {

/// Shorthand — the executor derives every stream through the exported
/// DeriveStageRng so Resume's re-admission replay can reproduce them.
Rng DeriveRng(uint64_t seed, uint64_t run, size_t stage, size_t slot) {
  return DeriveStageRng(seed, run, stage, slot);
}

Status GuardedRun(Stage& stage, DataBundle& bundle, StageContext& ctx) {
  try {
    Status status = stage.Run(bundle, ctx);
    // An injected fault fires only after a clean run, modeling a failure at
    // commit time: the bundle (or partition slice) is left mutated, so the
    // retry path must restore a pristine copy to be correct. A genuine
    // stage failure always wins over an injected one.
    if (status.ok() && ctx.injected_fault().has_value()) {
      const InjectedFault& fault = *ctx.injected_fault();
      // An injected hang stalls the commit cooperatively, so a watchdog
      // cancel (hard deadline, lost speculation race) still unwinds the
      // attempt promptly. The delay models *environment*-local slowness —
      // a slow mount, a wedged peer — so it does not follow a speculative
      // backup copy onto its (presumed healthy) worker.
      if (fault.delay_ms > 0 && !ctx.speculative()) {
        if (!SleepUnlessCancelled(fault.delay_ms, ctx.cancel_token())) {
          return ctx.CancelledStatus();
        }
      }
      if (!fault.status.ok()) {
        if (fault.throw_instead) {
          throw std::runtime_error(fault.status.message());
        }
        return fault.status;
      }
    }
    return status;
  } catch (const std::exception& e) {
    return Internal("stage '" + stage.name() + "' threw: " + e.what());
  } catch (...) {
    return Internal("stage '" + stage.name() + "' threw a non-std exception");
  }
}

/// Deterministic capped backoff between attempts. Wall-clock only; results
/// never depend on it.
void BackoffSleep(const RetryPolicy& retry, size_t next_attempt) {
  const double ms = retry.BackoffMs(next_attempt);
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Render params plus additive counters into one provenance param map.
std::map<std::string, std::string> MergedParams(
    const std::map<std::string, std::string>& params,
    const std::map<std::string, uint64_t>& counts) {
  std::map<std::string, std::string> out = params;
  for (const auto& [k, v] : counts) out[k] = std::to_string(v);
  return out;
}

/// One partition's outcome for one stage of a fused group. Everything the
/// scheduler needs survives pack/unpack, so SPMD ranks can ship outcomes
/// home through the communicator instead of relying on shared memory.
struct PartResult {
  Status status;
  double seconds = 0;
  uint64_t bytes_after = 0;
  bool ran = false;
  /// Run tries spent on this (stage, partition); 1 when no retry fired.
  uint64_t attempts = 0;
  /// Attempts exhausted under a quarantine policy: the slice's records are
  /// dropped from the merge and the run continues.
  bool quarantined = false;
  /// Attempts that ended kDeadlineExceeded (cancelled or timed out).
  uint64_t timeouts = 0;
  std::map<std::string, std::string> params;
  std::map<std::string, uint64_t> counts;
  std::map<std::string, Bytes> partials;
};

void PackResult(ByteWriter& w, const PartResult& r) {
  w.PutU8(r.ran ? 1 : 0);
  w.PutI32(static_cast<int32_t>(r.status.code()));
  w.PutString(r.status.message());
  w.PutF64(r.seconds);
  w.PutU64(r.bytes_after);
  w.PutVarU64(r.attempts);
  w.PutU8(r.quarantined ? 1 : 0);
  w.PutVarU64(r.timeouts);
  w.PutVarU64(r.params.size());
  for (const auto& [k, v] : r.params) {
    w.PutString(k);
    w.PutString(v);
  }
  w.PutVarU64(r.counts.size());
  for (const auto& [k, v] : r.counts) {
    w.PutString(k);
    w.PutU64(v);
  }
  w.PutVarU64(r.partials.size());
  for (const auto& [k, v] : r.partials) {
    w.PutString(k);
    w.PutBlob(v);
  }
}

/// Throws std::runtime_error on a malformed payload (the backend surfaces
/// that as a transport fault).
PartResult UnpackResult(ByteReader& rd) {
  const auto req = [](const Status& s) {
    if (!s.ok()) throw std::runtime_error("partition outcome: " + s.message());
  };
  PartResult r;
  uint8_t ran = 0;
  req(rd.GetU8(ran));
  r.ran = ran != 0;
  int32_t code = 0;
  std::string message;
  req(rd.GetI32(code));
  req(rd.GetString(message));
  r.status = code == static_cast<int32_t>(StatusCode::kOk)
                 ? Status::Ok()
                 : Status(static_cast<StatusCode>(code), std::move(message));
  req(rd.GetF64(r.seconds));
  req(rd.GetU64(r.bytes_after));
  req(rd.GetVarU64(r.attempts));
  uint8_t quarantined = 0;
  req(rd.GetU8(quarantined));
  r.quarantined = quarantined != 0;
  req(rd.GetVarU64(r.timeouts));
  uint64_t n = 0;
  req(rd.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string k, v;
    req(rd.GetString(k));
    req(rd.GetString(v));
    r.params.emplace(std::move(k), std::move(v));
  }
  req(rd.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string k;
    uint64_t v = 0;
    req(rd.GetString(k));
    req(rd.GetU64(v));
    r.counts.emplace(std::move(k), v);
  }
  req(rd.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string k;
    Bytes v;
    req(rd.GetString(k));
    req(rd.GetBlob(v));
    r.partials.emplace(std::move(k), std::move(v));
  }
  return r;
}

bool IsParallel(ExecutionHint hint) { return hint != ExecutionHint::kSerial; }

/// Watchdog poll interval: fine enough that the smallest armed limit fires
/// within ~10% of its value, without spinning for generous limits.
double WatchdogPollMs(double min_limit_ms) {
  return std::clamp(min_limit_ms / 10.0, 0.5, 25.0);
}

/// The smallest positive armed limit among the group's policies, for the
/// poll interval above. 0 when nothing is armed.
double MinArmedLimitMs(const std::vector<const DeadlinePolicy*>& policies) {
  double min_ms = 0;
  for (const DeadlinePolicy* d : policies) {
    for (double v : {d->soft_ms, d->hard_ms}) {
      if (v > 0 && (min_ms == 0 || v < min_ms)) min_ms = v;
    }
  }
  return min_ms;
}

/// The grain Split will actually use (ParallelSpec.grain, or the per-axis
/// default) — the planner needs the concrete value for the divisibility
/// rule.
size_t EffectiveGrain(const ParallelSpec& spec) {
  return spec.grain > 0 ? spec.grain
                        : BundlePartitioner::DefaultGrain(spec.axis);
}

const DeadlinePolicy& EffectiveDeadlineOf(const PipelinePlan& plan,
                                          const ExecutorOptions& options,
                                          size_t abs) {
  const PlannedStage& s = plan.stages()[abs];
  return s.deadline.active() ? s.deadline : options.default_deadline;
}

/// Window-membership rules that apply to every stage of a candidate group:
/// quarantine drops are scoped to the group's merge (a streamed partition
/// may already have fed its consumers when attempts exhaust), and soft
/// deadlines drive speculation, whose commit-cell protocol assumes the
/// group barrier. Hard deadlines and plain retry are stream-safe.
bool GroupStreamable(const PipelinePlan& plan, const ExecutorOptions& options,
                     size_t first, size_t last) {
  const auto& stages = plan.stages();
  if (stages[first].hint == ExecutionHint::kSerial) return false;
  // kAuto resolves against the bundle at run time, so two kAuto groups
  // cannot be proven to partition the same units.
  if (stages[first].parallel.axis == PartitionAxis::kAuto) return false;
  for (size_t s = first; s < last; ++s) {
    if (stages[s].retry.quarantine) return false;
    if (EffectiveDeadlineOf(plan, options, s).soft_ms > 0) return false;
  }
  return true;
}

/// Legality of streaming across the boundary at stage `b` (the first stage
/// of the downstream group). See the ComputeOverlapWindows contract in
/// executor.hpp.
bool BoundaryStreams(const PipelinePlan& plan, size_t b) {
  const auto& stages = plan.stages();
  if (stages[b].overlap != OverlapPolicy::kStream) return false;
  if (stages[b - 1].stage->HasAfterHook() || stages[b].stage->HasBeforeHook()) {
    return false;
  }
  const ParallelSpec& up = stages[b - 1].parallel;
  const ParallelSpec& down = stages[b].parallel;
  if (up.axis != down.axis) return false;
  if (up.group_by_prefix != down.group_by_prefix) return false;
  if (up.axis == PartitionAxis::kRange &&
      (up.range_count == 0 || up.range_count != down.range_count)) {
    // A runtime range_attr domain cannot be re-derived from a streamed
    // partition (its bundle is a slice, not the whole).
    return false;
  }
  const size_t g_up = EffectiveGrain(up);
  const size_t g_down = EffectiveGrain(down);
  return g_up > 0 && g_down > 0 && g_up % g_down == 0;
}

}  // namespace

std::vector<OverlapWindow> ComputeOverlapWindows(
    const PipelinePlan& plan, const ExecutorOptions& options) {
  std::vector<OverlapWindow> windows;
  if (!options.overlap) return windows;
  const auto& stages = plan.stages();
  size_t i = 0;
  while (i < stages.size()) {
    const size_t j = FusedGroupEnd(plan, i);
    if (!GroupStreamable(plan, options, i, j)) {
      i = j;
      continue;
    }
    OverlapWindow win;
    win.first = i;
    win.group_starts.push_back(i);
    size_t end = j;
    while (end < stages.size() && BoundaryStreams(plan, end)) {
      const size_t next_end = FusedGroupEnd(plan, end);
      if (!GroupStreamable(plan, options, end, next_end)) break;
      win.group_starts.push_back(end);
      end = next_end;
    }
    if (win.group_starts.size() >= 2) {
      win.last = end;
      windows.push_back(std::move(win));
      i = end;
    } else {
      i = j;
    }
  }
  return windows;
}

ParallelExecutor::ParallelExecutor(ExecutorOptions options)
    : options_(options),
      backend_(MakeBackend(options.backend, options.threads)) {}

ParallelExecutor::~ParallelExecutor() = default;
ParallelExecutor::ParallelExecutor(ParallelExecutor&&) noexcept = default;
ParallelExecutor& ParallelExecutor::operator=(ParallelExecutor&&) noexcept =
    default;

size_t ParallelExecutor::thread_count() const {
  return backend_->concurrency();
}

PipelineReport ParallelExecutor::Run(const PipelinePlan& plan,
                                     DataBundle& bundle,
                                     const ExecutorRunScope& scope) {
  PipelineReport report;
  WallTimer total;
  if (Status valid = plan.Validate(); !valid.ok()) {
    report.ok = false;
    report.error = valid;
    report.total_seconds = total.Seconds();
    return report;
  }
  const auto& stages = plan.stages();
  // Overlap windows are a property of the plan + options, computed once per
  // run. A resume that starts mid-window falls back to barriered groups for
  // the remainder (windows only fire from their first stage), which is
  // sound because window output is byte-identical to barriered output.
  const std::vector<OverlapWindow> windows =
      ComputeOverlapWindows(plan, options_);
  size_t i = scope.start_stage;
  while (i < stages.size()) {
    // Fuse maximal runs of parallel stages (either parallel hint) with
    // identical specs and no hooks at interior boundaries: split once, run
    // the chain per partition, merge once. Fusion is independent of
    // fail_fast — the error-reporting knob must not change which bundle
    // states stages observe. A legal overlap window starting here takes
    // over several groups at once and streams between them.
    const OverlapWindow* window = nullptr;
    for (const OverlapWindow& w : windows) {
      if (w.first == i) {
        window = &w;
        break;
      }
    }
    const size_t j = window != nullptr ? window->last : FusedGroupEnd(plan, i);
    const size_t already = report.stages.size();
    if (window != nullptr) {
      RunWindow(plan, *window, bundle, scope, report);
    } else {
      RunGroup(plan, i, j, bundle, scope, report);
    }
    bool failed = false;
    for (size_t s = already; s < report.stages.size(); ++s) {
      if (!report.stages[s].status.ok()) {
        failed = true;
        if (report.ok) {
          // First failing status wins (lowest stage position).
          report.ok = false;
          report.error = report.stages[s].status;
        }
      }
    }
    if (failed) {
      // No later stage runs either way — a failed bundle would poison its
      // dependents. fail_fast only picks the report shape: truncate, or
      // record every skipped dependent explicitly.
      if (!options_.fail_fast) {
        for (size_t k = scope.start_stage + report.stages.size();
             k < stages.size(); ++k) {
          StageMetrics m;
          m.name = stages[k].stage->name();
          m.kind = stages[k].stage->kind();
          m.hint = stages[k].hint;
          m.status =
              FailedPrecondition("skipped: an upstream stage failed (" +
                                 report.error.ToString() + ")");
          report.stages.push_back(std::move(m));
        }
      }
      break;
    }
    i = j;
    if (scope.checkpoint != nullptr) {
      PipelineCheckpoint cp;
      cp.pipeline = scope.pipeline_name;
      cp.run_index = scope.run_index;
      cp.plan_fingerprint = plan.Fingerprint();
      cp.stages_done = i;
      cp.bundle = bundle;
      if (scope.provenance != nullptr) {
        cp.provenance = scope.provenance->Serialize();
      }
      if (scope.last_state != nullptr && scope.last_state->has_value()) {
        cp.last_state = **scope.last_state;
      }
      // Quarantined slices travel with every checkpoint, so whichever save
      // the run dies after still lets Resume re-admit the dropped records.
      cp.quarantined = report.quarantined;
      if (Status saved = scope.checkpoint->Save(cp); !saved.ok()) {
        report.ok = false;
        report.error = Status(saved.code(),
                              "checkpoint after stage " + std::to_string(i) +
                                  ": " + saved.message());
        break;
      }
    }
  }
  report.total_seconds = total.Seconds();
  return report;
}

void ParallelExecutor::RunGroup(const PipelinePlan& plan, size_t first,
                                size_t last, DataBundle& bundle,
                                const ExecutorRunScope& scope,
                                PipelineReport& report) {
  const auto& stages = plan.stages();
  const PlannedStage& head = stages[first];
  // Effective deadline: the stage's own policy, or the executor-wide
  // default for stages that never declared one (the watchdog safety net).
  auto effective_deadline = [&](size_t abs) -> const DeadlinePolicy& {
    return stages[abs].deadline.active() ? stages[abs].deadline
                                         : options_.default_deadline;
  };

  // ---- Serial stage: hooks + Run inline on the calling thread. ----------
  if (head.hint == ExecutionHint::kSerial) {
    StageMetrics m;
    m.name = head.stage->name();
    m.kind = head.stage->kind();
    m.hint = ExecutionHint::kSerial;
    m.bundle_bytes_before = bundle.ApproxBytes();
    StageContext ctx(Rng(0), scope.provenance);
    // Retry re-runs the whole stage (hooks included) against a pristine
    // bundle snapshot with the *same* derived RNG, so a successful retry is
    // byte-identical to a fault-free run. Serial stages never quarantine —
    // dropping the entire bundle is not a degraded outcome.
    const RetryPolicy& retry = head.retry;
    // Hard deadlines cover serial stages too; soft ones do not — there is
    // no pristine slice to race a second copy on while the only copy runs.
    const DeadlinePolicy& deadline = effective_deadline(first);
    std::unique_ptr<AttemptWatchdog> watchdog;
    if (deadline.hard_ms > 0) {
      watchdog = std::make_unique<AttemptWatchdog>(
          WatchdogPollMs(deadline.hard_ms));
    }
    std::optional<DataBundle> snapshot;
    if (retry.max_attempts > 1) snapshot = bundle.Clone();
    size_t attempt = 1;
    WallTimer timer;
    for (;;) {
      // Reset (not just construct) so the no-leak-across-stages contract is
      // exercised on every path.
      ctx.Reset(DeriveRng(options_.seed, scope.run_index, first, 0));
      ctx.SetAttempt(attempt);
      if (options_.faults.active()) {
        ctx.SetInjectedFault(options_.faults.Decide(scope.run_index, m.name,
                                                    first, 0, attempt));
      }
      if (watchdog) {
        watchdog->Track(0, ctx.cancel_token(), /*soft_ms=*/0.0,
                        deadline.hard_ms, "stage '" + m.name + "'");
      }
      m.status = head.stage->HasBeforeHook()
                     ? head.stage->BeforePartition(bundle, ctx)
                     : Status::Ok();
      if (m.status.ok()) m.status = GuardedRun(*head.stage, bundle, ctx);
      if (m.status.ok() && head.stage->HasAfterHook()) {
        m.status = head.stage->AfterMerge(bundle, ctx);
      }
      if (watchdog) watchdog->Release(0);
      if (m.status.code() == StatusCode::kDeadlineExceeded) ++m.timeouts;
      if (m.status.ok() || attempt >= retry.max_attempts ||
          !retry.ShouldRetry(m.status)) {
        break;
      }
      ++attempt;
      BackoffSleep(retry, attempt);
      bundle = snapshot->Clone();
    }
    m.attempts = attempt;
    m.seconds = timer.Seconds();
    m.bundle_bytes_after = bundle.ApproxBytes();
    auto params = MergedParams(ctx.params(), ctx.counts());
    // Retry counts live in StageMetrics only, never in provenance: a
    // successfully retried run must hash byte-identically to a fault-free
    // run, and shard manifests embed the provenance hash.
    RecordStage(scope, m, params);
    report.stages.push_back(std::move(m));
    return;
  }

  // ---- Parallel group [first, last): before -> split -> map -> merge ->
  // after. -----------------------------------------------------------------
  const size_t n_stages = last - first;
  const ParallelSpec& spec = head.parallel;
  std::vector<StageMetrics> metrics(n_stages);
  for (size_t s = 0; s < n_stages; ++s) {
    metrics[s].name = stages[first + s].stage->name();
    metrics[s].kind = stages[first + s].stage->kind();
    metrics[s].hint = stages[first + s].hint;
  }
  metrics[0].bundle_bytes_before = bundle.ApproxBytes();

  StageContext hook_ctx(Rng(0), scope.provenance);
  std::vector<std::map<std::string, std::string>> stage_params(n_stages);
  std::vector<std::map<std::string, uint64_t>> stage_counts(n_stages);
  auto harvest = [&](size_t s) {
    for (const auto& [k, v] : hook_ctx.params()) stage_params[s][k] = v;
    for (const auto& [k, v] : hook_ctx.counts()) stage_counts[s][k] += v;
  };

  WallTimer head_timer;
  Status before_status;
  if (head.stage->HasBeforeHook()) {
    hook_ctx.Reset(DeriveRng(options_.seed, scope.run_index, first, 0));
    before_status = head.stage->BeforePartition(bundle, hook_ctx);
    harvest(0);
  }
  if (!before_status.ok()) {
    metrics[0].status = before_status;
    metrics[0].seconds = head_timer.Seconds();
    metrics[0].bundle_bytes_after = bundle.ApproxBytes();
    RecordStage(scope, metrics[0],
                MergedParams(stage_params[0], stage_counts[0]));
    report.stages.push_back(std::move(metrics[0]));
    return;
  }

  auto split = BundlePartitioner::Split(bundle, spec);
  if (!split.ok()) {
    metrics[0].status = split.status();
    metrics[0].seconds = head_timer.Seconds();
    metrics[0].bundle_bytes_after = bundle.ApproxBytes();
    RecordStage(scope, metrics[0],
                MergedParams(stage_params[0], stage_counts[0]));
    report.stages.push_back(std::move(metrics[0]));
    return;
  }
  std::vector<BundlePartition> parts = std::move(split).value();
  const size_t n_parts = parts.size();
  const uint64_t leftover_bytes = bundle.ApproxBytes();
  std::vector<uint64_t> part_bytes0(n_parts);
  for (size_t p = 0; p < n_parts; ++p) {
    part_bytes0[p] = parts[p].bundle.ApproxBytes();
  }
  const double before_split_seconds = head_timer.Seconds();

  std::vector<std::vector<PartResult>> results(
      n_stages, std::vector<PartResult>(n_parts));
  std::atomic<bool> abort{false};
  const bool fail_fast = options_.fail_fast;

  // Deadline posture for the fused group. Any armed soft deadline switches
  // the whole group to speculation mode (Mode B below): partitions run on
  // working copies and publish through a commit protocol, so a backup copy
  // can race its straggling primary from the same pristine slice.
  std::vector<const DeadlinePolicy*> policies(n_stages);
  bool any_hard = false;
  bool any_soft = false;
  double collective_ms = 0;
  for (size_t s = 0; s < n_stages; ++s) {
    policies[s] = &effective_deadline(first + s);
    any_hard |= policies[s]->hard_ms > 0;
    any_soft |= policies[s]->soft_ms > 0;
    collective_ms = std::max(collective_ms, policies[s]->collective_ms);
  }
  const bool speculate = any_soft;
  constexpr uint64_t kSpecKeyBit = uint64_t{1} << 63;

  // Quarantined partitions stash the pristine slice the failing stage first
  // saw, so the checkpoint can persist it for later re-admission. Written
  // by the owning worker (single writer per index in Mode A, under the cell
  // mutex in Mode B), read by the scheduler after the map completes; the
  // direct write relies on ranks being in-process threads.
  std::vector<std::optional<DataBundle>> q_slices(n_parts);

  // Per-partition commit cell (Mode B only). The first copy — primary or
  // speculative backup — to lock the cell and find it uncommitted owns the
  // partition's outcome: it moves its results, working bundle, and
  // quarantine stash into place under `mu`, so every later reader orders
  // through the same mutex (or through the spec-thread join).
  struct Cell {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> committed{false};
    bool spec_launched = false;
    bool spec_done = false;
    bool spec_won = false;
  };
  std::vector<Cell> cells(speculate ? n_parts : 0);

  std::unique_ptr<AttemptWatchdog> watchdog;
  std::mutex spec_mu;
  std::vector<std::thread> spec_threads;
  std::atomic<uint64_t> spec_launches{0};

  // Run the group's stage chain for one copy of partition `p`, writing
  // outcomes into `row` and mutating `working` in place. `q_slice` receives
  // the pristine stage-entry slice when the chain ends in quarantine.
  // Returns early once the partition's outcome was committed by the racing
  // copy — remaining work would be discarded anyway.
  auto run_chain = [&](size_t p, bool speculative, DataBundle& working,
                       std::vector<PartResult>& row,
                       std::optional<DataBundle>& q_slice) {
    for (size_t s = 0; s < n_stages; ++s) {
      if (fail_fast && abort.load(std::memory_order_relaxed)) return;
      if (speculate && cells[p].committed.load(std::memory_order_acquire)) {
        return;
      }
      const PlannedStage& planned = stages[first + s];
      const RetryPolicy& retry = planned.retry;
      const DeadlinePolicy& deadline = *policies[s];
      PartResult& r = row[s];
      // Pristine-slice snapshot for retry (and for the quarantine stash):
      // a failure may leave the slice half-mutated, so each re-run starts
      // from the state this stage first saw. Same derived RNG each attempt
      // — a successful retry is byte-identical to a fault-free run.
      std::optional<DataBundle> snapshot;
      if (retry.max_attempts > 1 || retry.quarantine) {
        snapshot = working.Clone();
      }
      size_t attempt = 1;
      WallTimer t;
      for (;;) {
        StageContext ctx(
            DeriveRng(options_.seed, scope.run_index, first + s, p + 1),
            scope.provenance);
        ctx.SetPartition(parts[p].slot);
        ctx.SetAttempt(attempt);
        ctx.SetSpeculative(speculative);
        if (options_.faults.active()) {
          ctx.SetInjectedFault(options_.faults.Decide(
              scope.run_index, planned.stage->name(), first + s, p, attempt));
        }
        // Backups never get a soft threshold — speculation does not beget
        // speculation — but keep the hard ceiling, so a backup that hangs
        // the same way its primary did is also cancelled.
        const uint64_t key = speculative ? (kSpecKeyBit | p) : p;
        const bool watched =
            watchdog && (deadline.hard_ms > 0 ||
                         (!speculative && deadline.soft_ms > 0));
        if (watched) {
          watchdog->Track(key, ctx.cancel_token(),
                          speculative ? 0.0 : deadline.soft_ms,
                          deadline.hard_ms,
                          "stage '" + planned.stage->name() + "' partition " +
                              std::to_string(p));
        }
        r.status = GuardedRun(*planned.stage, working, ctx);
        if (watched) watchdog->Release(key);
        r.params = ctx.params();
        r.counts = ctx.counts();
        r.partials = ctx.TakePartials();
        if (r.status.code() == StatusCode::kDeadlineExceeded) ++r.timeouts;
        if (r.status.ok() || attempt >= retry.max_attempts ||
            !retry.ShouldRetry(r.status)) {
          break;
        }
        if (speculate && cells[p].committed.load(std::memory_order_acquire)) {
          break;  // the racing copy already won; don't burn retries
        }
        ++attempt;
        BackoffSleep(retry, attempt);
        working = snapshot->Clone();
      }
      r.seconds = t.Seconds();
      r.bytes_after = working.ApproxBytes();
      r.ran = true;
      r.attempts = attempt;
      if (!r.status.ok()) {
        if (retry.quarantine) {
          // Degrade instead of failing the run: this slice's records will
          // be dropped from the merge; the other partitions keep going.
          r.quarantined = true;
          q_slice = std::move(snapshot);
          return;
        }
        if (fail_fast && !speculate) {
          abort.store(true, std::memory_order_relaxed);
        }
        return;  // this partition stops; its slice merges back untouched
      }
    }
  };

  // Mode B commit: first copy to claim the uncommitted cell wins the
  // partition; the racing copy is cancelled and its work discarded. Backups
  // only ever commit a fully successful chain — a failed backup must not
  // mask a primary that might still succeed — while a primary commits
  // whatever its final outcome is (after waiting out a live backup).
  auto try_commit = [&](size_t p, bool speculative,
                        std::vector<PartResult>& row, DataBundle& working,
                        std::optional<DataBundle>& q_slice) {
    if (speculative) {
      for (size_t s = 0; s < n_stages; ++s) {
        if (!row[s].ran || !row[s].status.ok()) return false;
      }
    }
    Cell& cell = cells[p];
    {
      std::lock_guard<std::mutex> lock(cell.mu);
      if (cell.committed.load(std::memory_order_relaxed)) return false;
      for (size_t s = 0; s < n_stages; ++s) results[s][p] = std::move(row[s]);
      parts[p].bundle = std::move(working);
      q_slices[p] = std::move(q_slice);
      cell.spec_won = speculative;
      cell.committed.store(true, std::memory_order_release);
    }
    cell.cv.notify_all();
    // Stop the racing copy; its next cancellation poll unwinds it.
    if (watchdog) {
      watchdog->CancelKey(speculative ? p : (kSpecKeyBit | p),
                          "partition " + std::to_string(p) +
                              ": racing copy committed first");
    }
    return true;
  };

  // Speculative backup body, run on a dedicated thread: copy the pristine
  // group-entry slice (untouched until someone commits) and race the
  // primary through the same chain with the same RNG streams — a backup
  // win is byte-identical to a primary win.
  auto spec_body = [&](size_t p) {
    Cell& cell = cells[p];
    {
      std::vector<PartResult> row(n_stages);
      std::optional<DataBundle> q_slice;
      DataBundle working;
      bool live = false;
      {
        std::lock_guard<std::mutex> lock(cell.mu);
        if (!cell.committed.load(std::memory_order_relaxed)) {
          working = parts[p].bundle.Clone();
          live = true;
        }
      }
      if (live) {
        run_chain(p, true, working, row, q_slice);
        try_commit(p, true, row, working, q_slice);
      }
    }
    {
      std::lock_guard<std::mutex> lock(cell.mu);
      cell.spec_done = true;
    }
    cell.cv.notify_all();
  };

  // Watchdog straggler callback: launch at most one backup per partition.
  auto launch_spec = [&](uint64_t key) {
    const size_t p = static_cast<size_t>(key);
    Cell& cell = cells[p];
    {
      std::lock_guard<std::mutex> lock(cell.mu);
      if (cell.committed.load(std::memory_order_relaxed) ||
          cell.spec_launched) {
        return;
      }
      cell.spec_launched = true;
    }
    spec_launches.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(spec_mu);
    spec_threads.emplace_back(spec_body, p);
  };

  if (any_hard || speculate) {
    watchdog = std::make_unique<AttemptWatchdog>(
        WatchdogPollMs(MinArmedLimitMs(policies)),
        speculate ? AttemptWatchdog::StragglerFn(launch_spec) : nullptr);
  }

  PartitionTask task;
  task.n_parts = n_parts;
  task.collective_timeout_ms = collective_ms;
  task.run = [&](size_t p) {
    std::vector<PartResult> row(n_stages);
    std::optional<DataBundle> q_slice;
    if (!speculate) {
      // Mode A: single copy per partition, results land directly.
      run_chain(p, false, parts[p].bundle, row, q_slice);
      for (size_t s = 0; s < n_stages; ++s) results[s][p] = std::move(row[s]);
      q_slices[p] = std::move(q_slice);
      return;
    }
    // Mode B: run on a working copy so parts[p].bundle stays pristine for
    // a backup launch; publish through the commit cell.
    Cell& cell = cells[p];
    DataBundle working;
    {
      std::lock_guard<std::mutex> lock(cell.mu);
      working = parts[p].bundle.Clone();
    }
    run_chain(p, false, working, row, q_slice);
    bool chain_ok = true;
    for (size_t s = 0; s < n_stages; ++s) {
      if (!row[s].ran || !row[s].status.ok()) {
        chain_ok = false;
        break;
      }
    }
    if (!chain_ok) {
      // A still-running backup may yet rescue this partition: wait for it
      // to resolve before committing a failure. Bounded by the backup's own
      // hard deadline and fault schedule — arm hard_ms alongside soft_ms.
      std::unique_lock<std::mutex> lock(cell.mu);
      cell.cv.wait(lock, [&] {
        return !cell.spec_launched || cell.spec_done ||
               cell.committed.load(std::memory_order_relaxed);
      });
    }
    if (try_commit(p, false, row, working, q_slice)) {
      // Failure is now the partition's final outcome (no backup rescued
      // it); honor fail-fast the same way Mode A does.
      bool failed_hard = false;
      for (size_t s = 0; s < n_stages; ++s) {
        const PartResult& r = results[s][p];
        if (r.ran && !r.status.ok() && !r.quarantined) failed_hard = true;
      }
      if (failed_hard && fail_fast) {
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };
  bool any_quarantine_policy = false;
  for (size_t s = 0; s < n_stages; ++s) {
    if (stages[first + s].retry.quarantine) any_quarantine_policy = true;
  }
  if (any_quarantine_policy) {
    // Lets a distributed backend reach cross-rank agreement on the dropped
    // set (par::AgreeQuarantine) before the scheduler merges.
    task.quarantined = [&](size_t p) {
      for (size_t s = 0; s < n_stages; ++s) {
        if (results[s][p].quarantined) return true;
      }
      return false;
    };
  }
  if (!speculate) {
    // Cross-rank transport: serialize one partition's outcomes across all
    // fused stages; a distributed backend gathers these to the scheduler in
    // ascending partition order instead of reading shared memory. Under
    // speculation the commit protocol IS the transport — winners (possibly
    // backup threads outside the rank world) write scheduler memory
    // directly, and a gather could race a still-unwinding loser — so Mode B
    // skips pack/unpack; ranks are in-process threads here.
    task.pack = [&](size_t p) {
      ByteWriter w;
      for (size_t s = 0; s < n_stages; ++s) PackResult(w, results[s][p]);
      return w.Take();
    };
    task.unpack = [&](size_t p, const Bytes& payload) {
      ByteReader rd(payload);
      for (size_t s = 0; s < n_stages; ++s) results[s][p] = UnpackResult(rd);
    };
  }

  Status map_status;
  try {
    backend_->Map(task);
  } catch (const par::DeadlineExceededError& e) {
    map_status = e.ToStatus();
  } catch (const std::exception& e) {
    map_status = Internal("backend '" + std::string(backend_->name()) +
                          "' failed: " + e.what());
  } catch (...) {
    map_status = Internal("backend '" + std::string(backend_->name()) +
                          "' failed with a non-std exception");
  }

  // All primaries are done; stop the watchdog first (joins the monitor
  // thread, so no further backup can launch), then drain the backups that
  // did launch. A cancelled loser unwinds at its next poll point, so the
  // join is bounded.
  if (watchdog) watchdog->Stop();
  {
    std::lock_guard<std::mutex> lock(spec_mu);
    for (std::thread& t : spec_threads) t.join();
    spec_threads.clear();
  }
  uint64_t spec_wins = 0;
  for (Cell& c : cells) {
    if (c.spec_won) ++spec_wins;
  }

  WallTimer tail_timer;

  // A quarantined partition's slice is emptied before the merge, so its
  // records drop out of the bundle — the degraded-run outcome its policy
  // opted into. Everything it produced (partials, counts, params) is
  // excluded from the reduction as well.
  std::vector<char> part_quarantined(n_parts, 0);
  for (size_t p = 0; p < n_parts; ++p) {
    for (size_t s = 0; s < n_stages; ++s) {
      if (results[s][p].quarantined) {
        part_quarantined[p] = 1;
        parts[p].bundle = DataBundle{};
        const PartResult& r = results[s][p];
        QuarantineRecord q;
        q.stage = stages[first + s].stage->name();
        q.stage_index = first + s;
        q.partition = p;
        q.slot = parts[p].slot;
        q.attempts = static_cast<size_t>(r.attempts);
        q.error = r.status;
        q.units = parts[p].slot.hi - parts[p].slot.lo;
        // The pristine stage-entry slice, for checkpointed re-admission.
        // Absent only when the SPMD transport carried the flag but not the
        // slice (never the case today: ranks share the process).
        if (q_slices[p].has_value()) q.slice = std::move(*q_slices[p]);
        report.quarantined.push_back(std::move(q));
        break;
      }
    }
  }
  BundlePartitioner::Merge(bundle, parts);

  bool group_ok = map_status.ok();
  for (size_t s = 0; s < n_stages && group_ok; ++s) {
    for (size_t p = 0; p < n_parts; ++p) {
      if (part_quarantined[p]) continue;  // dropped, not failed
      if (!results[s][p].ran || !results[s][p].status.ok()) {
        group_ok = false;
        break;
      }
    }
  }

  // The reduction inputs for the After hook: every partition's emitted
  // partials and summed counts, in ascending (stage, partition) order —
  // already transported cross-rank by the backend when needed.
  std::map<std::string, std::vector<Bytes>> gathered_partials;
  std::map<std::string, uint64_t> gathered_counts;
  if (group_ok) {
    for (size_t s = 0; s < n_stages; ++s) {
      for (size_t p = 0; p < n_parts; ++p) {
        const PartResult& r = results[s][p];
        if (!r.ran || part_quarantined[p]) continue;
        for (const auto& [k, v] : r.partials) {
          gathered_partials[k].push_back(v);
        }
        for (const auto& [k, v] : r.counts) gathered_counts[k] += v;
      }
    }
  }

  const PlannedStage& tail = stages[last - 1];
  Status after_status;
  if (group_ok && tail.stage->HasAfterHook()) {
    hook_ctx.Reset(
        DeriveRng(options_.seed, scope.run_index, last - 1, n_parts + 1));
    hook_ctx.SetGathered(&gathered_partials, &gathered_counts);
    after_status = tail.stage->AfterMerge(bundle, hook_ctx);
    hook_ctx.SetGathered(nullptr, nullptr);
    harvest(n_stages - 1);
  }
  const double tail_seconds = tail_timer.Seconds();

  // ---- Aggregate per-stage metrics in deterministic partition order. ----
  std::vector<uint64_t> cur_bytes = part_bytes0;
  uint64_t prev_bytes_after = metrics[0].bundle_bytes_before;
  for (size_t s = 0; s < n_stages; ++s) {
    StageMetrics& m = metrics[s];
    m.partitions = n_parts;
    m.partition_seconds.resize(n_parts, 0.0);
    m.bundle_bytes_before = s == 0 ? metrics[0].bundle_bytes_before
                                   : prev_bytes_after;
    double critical_path = 0;
    bool any_ran = false;
    for (size_t p = 0; p < n_parts; ++p) {
      const PartResult& r = results[s][p];
      m.partition_seconds[p] = r.seconds;
      critical_path = std::max(critical_path, r.seconds);
      if (r.ran) {
        any_ran = true;
        m.attempts += r.attempts;
        m.timeouts += r.timeouts;
        if (r.quarantined) {
          // Dropped, not failed: the stage stays OK, and nothing the
          // quarantined slice produced reaches metrics or provenance.
          m.quarantined.push_back(p);
          cur_bytes[p] = 0;
          continue;
        }
        cur_bytes[p] = r.bytes_after;
        if (m.status.ok() && !r.status.ok()) m.status = r.status;
        for (const auto& [k, v] : r.params) stage_params[s][k] = v;
        for (const auto& [k, v] : r.counts) stage_counts[s][k] += v;
      }
    }
    // Retry counts live in StageMetrics only (a successfully retried run
    // must hash byte-identically to a fault-free one, and shard manifests
    // embed the provenance hash); quarantine DID change the data, so it is
    // a provenance fact.
    if (!m.quarantined.empty()) {
      stage_params[s]["quarantined"] = std::to_string(m.quarantined.size());
    }
    if (s == 0) {
      if (m.status.ok() && !map_status.ok()) m.status = map_status;
      // A bounded collective wait that expired is a timeout too.
      if (map_status.code() == StatusCode::kDeadlineExceeded) ++m.timeouts;
      // Speculation facts attach to the fused group's head stage.
      m.speculative_launched = spec_launches.load(std::memory_order_relaxed);
      m.speculative_wins = spec_wins;
    }
    m.seconds = critical_path;
    if (s == 0) m.seconds += before_split_seconds;
    if (s == n_stages - 1) {
      m.seconds += tail_seconds;
      if (m.status.ok() && !after_status.ok()) m.status = after_status;
    }
    uint64_t bytes_after = leftover_bytes;
    for (uint64_t b : cur_bytes) bytes_after += b;
    m.bundle_bytes_after =
        s == n_stages - 1 ? bundle.ApproxBytes() : bytes_after;
    prev_bytes_after = m.bundle_bytes_after;

    // Drop trailing stages no partition attempted (fail-fast abort hit
    // before they started) — mirrors the serial truncation semantics.
    if (s > 0 && !any_ran) break;

    // Scheduling facts that are backend-invariant go into provenance; the
    // backend name deliberately does not, so thread and SPMD runs hash
    // identically.
    stage_params[s]["hint"] = std::string(ExecutionHintName(m.hint));
    stage_params[s]["partitions"] = std::to_string(n_parts);
    RecordStage(scope, m, MergedParams(stage_params[s], stage_counts[s]));
    report.stages.push_back(std::move(m));
    if (!report.stages.back().status.ok() && fail_fast) break;
  }
}

void ParallelExecutor::RunWindow(const PipelinePlan& plan,
                                 const OverlapWindow& window,
                                 DataBundle& bundle,
                                 const ExecutorRunScope& scope,
                                 PipelineReport& report) {
  const auto& stages = plan.stages();
  const size_t first = window.first;
  const size_t last = window.last;
  const size_t n_stages = last - first;
  const size_t n_groups = window.group_starts.size();
  const PlannedStage& head = stages[first];
  WallTimer window_timer;

  // Group bounds (absolute stage indices) and the level each stage runs at.
  std::vector<size_t> g_first = window.group_starts;
  std::vector<size_t> g_last(n_groups);
  for (size_t g = 0; g < n_groups; ++g) {
    g_last[g] = g + 1 < n_groups ? g_first[g + 1] : last;
  }

  auto effective_deadline = [&](size_t abs) -> const DeadlinePolicy& {
    return stages[abs].deadline.active() ? stages[abs].deadline
                                         : options_.default_deadline;
  };

  std::vector<StageMetrics> metrics(n_stages);
  for (size_t s = 0; s < n_stages; ++s) {
    metrics[s].name = stages[first + s].stage->name();
    metrics[s].kind = stages[first + s].stage->kind();
    metrics[s].hint = stages[first + s].hint;
  }
  metrics[0].bundle_bytes_before = bundle.ApproxBytes();

  StageContext hook_ctx(Rng(0), scope.provenance);
  std::vector<std::map<std::string, std::string>> stage_params(n_stages);
  std::vector<std::map<std::string, uint64_t>> stage_counts(n_stages);
  auto harvest = [&](size_t s) {
    for (const auto& [k, v] : hook_ctx.params()) stage_params[s][k] = v;
    for (const auto& [k, v] : hook_ctx.counts()) stage_counts[s][k] += v;
  };

  WallTimer head_timer;
  Status before_status;
  if (head.stage->HasBeforeHook()) {
    hook_ctx.Reset(DeriveRng(options_.seed, scope.run_index, first, 0));
    before_status = head.stage->BeforePartition(bundle, hook_ctx);
    harvest(0);
  }
  if (!before_status.ok()) {
    metrics[0].status = before_status;
    metrics[0].seconds = head_timer.Seconds();
    metrics[0].bundle_bytes_after = bundle.ApproxBytes();
    RecordStage(scope, metrics[0],
                MergedParams(stage_params[0], stage_counts[0]));
    report.stages.push_back(std::move(metrics[0]));
    return;
  }

  auto split = BundlePartitioner::Split(bundle, head.parallel);
  if (!split.ok()) {
    metrics[0].status = split.status();
    metrics[0].seconds = head_timer.Seconds();
    metrics[0].bundle_bytes_after = bundle.ApproxBytes();
    RecordStage(scope, metrics[0],
                MergedParams(stage_params[0], stage_counts[0]));
    report.stages.push_back(std::move(metrics[0]));
    return;
  }
  std::vector<BundlePartition> roots = std::move(split).value();
  const size_t n_roots = roots.size();
  const size_t n_units = roots.back().slot.hi;
  const uint64_t leftover0 = bundle.ApproxBytes();
  // Streaming cannot reproduce the merge's attr-overlay (one partition's
  // attr write would have to reach *every* downstream partition), so window
  // stages must leave attrs untouched; the commit path enforces it.
  const auto entry_attrs = bundle.attrs;
  const double before_split_seconds = head_timer.Seconds();
  ++report.overlap_windows;

  // Per-level geometry. Every level partitions the same `n_units` units
  // (the contract the commit path enforces per slice), so downstream
  // partition counts are known before anything streams — exactly what a
  // barriered run would have computed from the merged bundle.
  std::vector<size_t> g_grain(n_groups), g_nparts(n_groups);
  for (size_t g = 0; g < n_groups; ++g) {
    g_grain[g] = EffectiveGrain(stages[g_first[g]].parallel);
    g_nparts[g] =
        g == 0 ? n_roots
               : std::max<size_t>(1, (n_units + g_grain[g] - 1) / g_grain[g]);
  }

  std::vector<std::vector<PartResult>> results(n_stages);
  std::vector<std::vector<uint64_t>> level_bytes0(n_groups);
  for (size_t s = 0; s < n_stages; ++s) {
    size_t g = 0;
    while (first + s >= g_last[g]) ++g;
    results[s].resize(g_nparts[g]);
  }
  for (size_t g = 0; g < n_groups; ++g) level_bytes0[g].resize(g_nparts[g], 0);
  for (size_t p = 0; p < n_roots; ++p) {
    level_bytes0[0][p] = roots[p].bundle.ApproxBytes();
  }

  // Committed final-level slices, residual upstream content (what a stage
  // left in its slice besides the partitioned units), and their byte sizes
  // for the interior-merge accounting. Each cell is written by exactly one
  // worker (the one that processed that item) and read by the scheduler
  // after Map returns.
  std::vector<std::optional<BundlePartition>> final_parts(g_nparts.back());
  std::vector<std::vector<std::optional<DataBundle>>> residuals(n_groups - 1);
  std::vector<std::vector<uint64_t>> residual_bytes(n_groups - 1);
  for (size_t g = 0; g + 1 < n_groups; ++g) {
    residuals[g].resize(g_nparts[g]);
    residual_bytes[g].resize(g_nparts[g], 0);
  }

  std::atomic<bool> abort{false};
  const bool fail_fast = options_.fail_fast;

  std::vector<const DeadlinePolicy*> policies(n_stages);
  bool any_hard = false;
  double collective_ms = 0;
  for (size_t s = 0; s < n_stages; ++s) {
    policies[s] = &effective_deadline(first + s);
    any_hard |= policies[s]->hard_ms > 0;
    collective_ms = std::max(collective_ms, policies[s]->collective_ms);
  }
  std::unique_ptr<AttemptWatchdog> watchdog;
  if (any_hard) {
    // No straggler callback: soft deadlines are barred from windows, so
    // speculation never arms here.
    watchdog = std::make_unique<AttemptWatchdog>(
        WatchdogPollMs(MinArmedLimitMs(policies)));
  }

  // One unit of streamed work: partition `q` of level (= group) `level`.
  struct WindowItem {
    size_t level = 0;
    size_t q = 0;
    BundlePartition part;
  };

  // Run the item's group chain in place. Identical retry/fault/deadline
  // semantics to the barriered Mode A path: pristine-slice snapshot, same
  // derived RNG per attempt, watchdog hard-deadline tracking; the RNG slot
  // and fault cell are (absolute stage, global partition index), so every
  // injected fault and every random draw lands exactly where the barriered
  // run would put it.
  auto run_item_chain = [&](size_t level, size_t q, BundlePartition& part) {
    for (size_t abs = g_first[level]; abs < g_last[level]; ++abs) {
      if (fail_fast && abort.load(std::memory_order_relaxed)) return false;
      const PlannedStage& planned = stages[abs];
      const RetryPolicy& retry = planned.retry;
      const DeadlinePolicy& deadline = *policies[abs - first];
      PartResult& r = results[abs - first][q];
      std::optional<DataBundle> snapshot;
      if (retry.max_attempts > 1) snapshot = part.bundle.Clone();
      size_t attempt = 1;
      WallTimer t;
      for (;;) {
        StageContext ctx(
            DeriveRng(options_.seed, scope.run_index, abs, q + 1),
            scope.provenance);
        ctx.SetPartition(part.slot);
        ctx.SetAttempt(attempt);
        if (options_.faults.active()) {
          ctx.SetInjectedFault(options_.faults.Decide(
              scope.run_index, planned.stage->name(), abs, q, attempt));
        }
        const uint64_t key = (static_cast<uint64_t>(level) << 32) | q;
        const bool watched = watchdog && deadline.hard_ms > 0;
        if (watched) {
          watchdog->Track(key, ctx.cancel_token(), /*soft_ms=*/0.0,
                          deadline.hard_ms,
                          "stage '" + planned.stage->name() + "' partition " +
                              std::to_string(q));
        }
        r.status = GuardedRun(*planned.stage, part.bundle, ctx);
        if (watched) watchdog->Release(key);
        r.params = ctx.params();
        r.counts = ctx.counts();
        r.partials = ctx.TakePartials();
        if (r.status.code() == StatusCode::kDeadlineExceeded) ++r.timeouts;
        if (r.status.ok() || attempt >= retry.max_attempts ||
            !retry.ShouldRetry(r.status)) {
          break;
        }
        ++attempt;
        BackoffSleep(retry, attempt);
        part.bundle = snapshot->Clone();
      }
      r.seconds = t.Seconds();
      r.bytes_after = part.bundle.ApproxBytes();
      r.ran = true;
      r.attempts = attempt;
      if (!r.status.ok()) {
        if (fail_fast) abort.store(true, std::memory_order_relaxed);
        return false;
      }
    }
    return true;
  };

  // Commit an upstream item: re-split its slice at the downstream grain
  // into whole global downstream partitions. The slot arithmetic works
  // because upstream partition boundaries are multiples of the upstream
  // grain, which is a multiple of the downstream grain (the planner's
  // divisibility rule), so child q of the window equals child q of the
  // barriered run — same slot, same RNG stream, same fault cell.
  auto resplit = [&](size_t level, size_t q, BundlePartition&& part,
                     std::vector<WindowItem>& children) -> Status {
    const size_t next = level + 1;
    const ParallelSpec& spec = stages[g_first[next]].parallel;
    const std::string& tail_name = stages[g_last[level] - 1].stage->name();
    if (part.bundle.attrs != entry_attrs) {
      return FailedPrecondition(
          "stage '" + tail_name + "' modified bundle attrs inside an overlap "
          "window; attr writes need the merge barrier — mark this boundary "
          "OverlapPolicy::kBarrier");
    }
    const size_t expect = part.slot.hi - part.slot.lo;
    const size_t base_q = part.slot.lo / g_grain[next];
    std::vector<BundlePartition> sub;
    if (spec.axis == PartitionAxis::kRange) {
      // Range children carry no content — just attrs plus their slot, like
      // the barriered split; producer-written content rides the residual.
      const size_t n_children =
          (expect + g_grain[next] - 1) / g_grain[next];
      sub.resize(n_children);
      for (size_t c = 0; c < n_children; ++c) {
        sub[c].bundle.attrs = part.bundle.attrs;
      }
    } else {
      auto counted =
          BundlePartitioner::CountUnits(part.bundle, spec.axis, spec);
      if (!counted.ok()) return counted.status();
      if (counted.value() != expect) {
        return FailedPrecondition(
            "stage '" + tail_name + "' changed its partition's unit count (" +
            std::to_string(expect) + " -> " +
            std::to_string(counted.value()) + ") inside an overlap window; "
            "streamed stages must preserve unit counts — mark this boundary "
            "OverlapPolicy::kBarrier");
      }
      auto local = BundlePartitioner::Split(part.bundle, spec);
      if (!local.ok()) return local.status();
      sub = std::move(local).value();
    }
    children.reserve(sub.size());
    for (size_t c = 0; c < sub.size(); ++c) {
      WindowItem child;
      child.level = next;
      child.q = base_q + c;
      child.part.bundle = std::move(sub[c].bundle);
      child.part.slot.index = child.q;
      child.part.slot.count = g_nparts[next];
      child.part.slot.lo = std::min(n_units, child.q * g_grain[next]);
      child.part.slot.hi = std::min(n_units, (child.q + 1) * g_grain[next]);
      level_bytes0[next][child.q] = child.part.bundle.ApproxBytes();
      children.push_back(std::move(child));
    }
    residual_bytes[level][q] = part.bundle.ApproxBytes();
    residuals[level][q] = std::move(part.bundle);
    return Status::Ok();
  };

  // Process one item to completion: run its chain, then either park the
  // final slice or re-split and hand the children on — preferably through
  // the channel (another crew worker picks them up), inline otherwise.
  // `outstanding` counts unfinished items; children are counted before
  // their parent retires, so the count can only reach zero when the whole
  // cascade is done — that closes the channel and releases the crew.
  PartitionChannel<WindowItem>* chan_ptr = nullptr;
  std::atomic<size_t> outstanding{0};
  std::function<void(WindowItem&&)> process = [&](WindowItem&& item) {
    std::vector<WindowItem> children;
    if (!(fail_fast && abort.load(std::memory_order_relaxed)) &&
        run_item_chain(item.level, item.q, item.part)) {
      if (item.level + 1 == n_groups) {
        final_parts[item.q] = std::move(item.part);
      } else {
        Status st =
            resplit(item.level, item.q, std::move(item.part), children);
        if (!st.ok()) {
          // A streaming-contract violation surfaces on the level's last
          // stage — the stage whose output could not be re-split.
          results[g_last[item.level] - 1 - first][item.q].status = st;
          if (fail_fast) abort.store(true, std::memory_order_relaxed);
          children.clear();
        }
      }
    }
    std::vector<WindowItem> inline_children;
    if (chan_ptr != nullptr) {
      outstanding.fetch_add(children.size(), std::memory_order_acq_rel);
      for (WindowItem& c : children) {
        // TryPush leaves `c` intact on failure (full channel), so the
        // producer runs the child itself — pushes never block, which keeps
        // the crew deadlock-free at any worker count.
        if (!chan_ptr->TryPush(std::move(c))) {
          inline_children.push_back(std::move(c));
        }
      }
      if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        chan_ptr->Close();
      }
    } else {
      inline_children = std::move(children);
    }
    for (WindowItem& c : inline_children) process(std::move(c));
  };

  PartitionTask task;
  task.collective_timeout_ms = collective_ms;
  size_t max_parts = 0;
  for (size_t np : g_nparts) max_parts = std::max(max_parts, np);
  const size_t crew =
      std::max<size_t>(1, std::min(backend_->concurrency(), max_parts));
  PartitionChannel<WindowItem> chan(n_roots + 2 * crew);
  if (backend_->dynamic_tasks()) {
    // Work-crew shape: seed the channel with the roots and let `crew`
    // backend slots drain it; work discovered mid-map (committed children)
    // re-enters the same channel.
    chan_ptr = &chan;
    outstanding.store(n_roots, std::memory_order_relaxed);
    for (size_t p = 0; p < n_roots; ++p) {
      WindowItem item;
      item.level = 0;
      item.q = p;
      item.part = std::move(roots[p]);
      chan.TryPush(std::move(item));  // capacity >= n_roots: cannot fail
    }
    task.n_parts = crew;
    task.run = [&](size_t) {
      while (auto item = chan.Pop()) process(std::move(*item));
    };
  } else {
    // Static shape (SPMD): the rank that owns root p runs p's entire
    // downstream cone depth-first, overlapping its local partitions; the
    // backend gathers once per window, not once per group. Outcome cells
    // are written rank-locally and read after the map joins — the same
    // in-process-ranks shared-memory contract the quarantine stash uses.
    task.n_parts = n_roots;
    task.run = [&](size_t p) {
      WindowItem item;
      item.level = 0;
      item.q = p;
      item.part = std::move(roots[p]);
      process(std::move(item));
    };
  }

  Status map_status;
  try {
    backend_->Map(task);
  } catch (const par::DeadlineExceededError& e) {
    map_status = e.ToStatus();
  } catch (const std::exception& e) {
    map_status = Internal("backend '" + std::string(backend_->name()) +
                          "' failed: " + e.what());
  } catch (...) {
    map_status = Internal("backend '" + std::string(backend_->name()) +
                          "' failed with a non-std exception");
  }
  if (watchdog) watchdog->Stop();

  WallTimer tail_timer;

  // Window-end merge, reproducing the barriered bundle exactly: residual
  // content in ascending (level, partition) order — the order the interior
  // merges would have appended it — then the final level's slices in
  // ascending partition order. Slot indices here are merge-ordering keys.
  {
    std::vector<BundlePartition> merge_parts;
    size_t order = 0;
    for (size_t g = 0; g + 1 < n_groups; ++g) {
      for (size_t q = 0; q < g_nparts[g]; ++q) {
        if (!residuals[g][q].has_value()) continue;
        BundlePartition bp;
        bp.bundle = std::move(*residuals[g][q]);
        bp.slot.index = order++;
        merge_parts.push_back(std::move(bp));
      }
    }
    for (size_t q = 0; q < g_nparts.back(); ++q) {
      if (!final_parts[q].has_value()) continue;
      BundlePartition bp = std::move(*final_parts[q]);
      bp.slot.index = order++;
      merge_parts.push_back(std::move(bp));
    }
    BundlePartitioner::Merge(bundle, merge_parts);
  }

  bool group_ok = map_status.ok();
  for (size_t s = 0; s < n_stages && group_ok; ++s) {
    for (const PartResult& r : results[s]) {
      if (!r.ran || !r.status.ok()) {
        group_ok = false;
        break;
      }
    }
  }

  // The After hook belongs to the window's final group: its reduction
  // inputs are that group's partials/counts in ascending (stage, partition)
  // order, exactly as the barriered group merge would gather them.
  std::map<std::string, std::vector<Bytes>> gathered_partials;
  std::map<std::string, uint64_t> gathered_counts;
  const PlannedStage& tail = stages[last - 1];
  Status after_status;
  if (group_ok && tail.stage->HasAfterHook()) {
    for (size_t abs = g_first.back(); abs < last; ++abs) {
      for (const PartResult& r : results[abs - first]) {
        if (!r.ran) continue;
        for (const auto& [k, v] : r.partials) gathered_partials[k].push_back(v);
        for (const auto& [k, v] : r.counts) gathered_counts[k] += v;
      }
    }
    hook_ctx.Reset(DeriveRng(options_.seed, scope.run_index, last - 1,
                             g_nparts.back() + 1));
    hook_ctx.SetGathered(&gathered_partials, &gathered_counts);
    after_status = tail.stage->AfterMerge(bundle, hook_ctx);
    hook_ctx.SetGathered(nullptr, nullptr);
    harvest(n_stages - 1);
  }
  const double tail_seconds = tail_timer.Seconds();

  // ---- Aggregate per-stage metrics in canonical (stage, partition) order,
  // reproducing the barriered accounting: a stage's bundle_bytes_after is
  // its level's leftover (window leftover plus upstream residuals — exact,
  // because ApproxBytes is item-additive) plus its partitions' bytes.
  std::vector<uint64_t> level_leftover(n_groups, leftover0);
  for (size_t g = 1; g < n_groups; ++g) {
    level_leftover[g] = level_leftover[g - 1];
    for (uint64_t b : residual_bytes[g - 1]) level_leftover[g] += b;
  }

  uint64_t prev_bytes_after = metrics[0].bundle_bytes_before;
  bool stop = false;
  for (size_t g = 0; g < n_groups && !stop; ++g) {
    bool group_failed = false;
    for (size_t abs = g_first[g]; abs < g_last[g]; ++abs) {
      const size_t s = abs - first;
      StageMetrics& m = metrics[s];
      const size_t np = g_nparts[g];
      m.partitions = np;
      m.overlapped = true;
      m.partition_seconds.resize(np, 0.0);
      m.bundle_bytes_before = prev_bytes_after;
      double critical_path = 0;
      bool any_ran = false;
      uint64_t sum_bytes = 0;
      for (size_t q = 0; q < np; ++q) {
        const PartResult& r = results[s][q];
        m.partition_seconds[q] = r.seconds;
        critical_path = std::max(critical_path, r.seconds);
        if (r.ran) {
          any_ran = true;
          m.attempts += r.attempts;
          m.timeouts += r.timeouts;
          sum_bytes += r.bytes_after;
          if (m.status.ok() && !r.status.ok()) m.status = r.status;
          for (const auto& [k, v] : r.params) stage_params[s][k] = v;
          for (const auto& [k, v] : r.counts) stage_counts[s][k] += v;
        } else {
          sum_bytes += level_bytes0[g][q];
        }
      }
      if (s == 0) {
        if (m.status.ok() && !map_status.ok()) m.status = map_status;
        if (map_status.code() == StatusCode::kDeadlineExceeded) ++m.timeouts;
      }
      m.seconds = critical_path;
      if (s == 0) m.seconds += before_split_seconds;
      if (s == n_stages - 1) {
        m.seconds += tail_seconds;
        if (m.status.ok() && !after_status.ok()) m.status = after_status;
      }
      m.bundle_bytes_after = s == n_stages - 1
                                 ? bundle.ApproxBytes()
                                 : level_leftover[g] + sum_bytes;
      prev_bytes_after = m.bundle_bytes_after;

      // Mirror the barriered truncation semantics group by group: trailing
      // stages no partition attempted produce no row.
      if (abs > g_first[g] && !any_ran) break;

      stage_params[s]["hint"] = std::string(ExecutionHintName(m.hint));
      stage_params[s]["partitions"] = std::to_string(np);
      RecordStage(scope, m, MergedParams(stage_params[s], stage_counts[s]));
      report.stages.push_back(std::move(m));
      if (!report.stages.back().status.ok()) {
        group_failed = true;
        if (fail_fast) {
          stop = true;
          break;
        }
      }
    }
    // Groups downstream of a failure never ran in barrier terms: their rows
    // are dropped here and Run() records them as skipped (or truncates).
    if (group_failed) stop = true;
  }

  // Savings estimate: a barriered run pays each stage's critical path
  // back-to-back; the window paid one overlapped wall. Split/merge overhead
  // the barrier would also pay per group is not credited, so this
  // under-reports rather than flatters.
  double barrier_estimate = before_split_seconds + tail_seconds;
  for (size_t s = 0; s < n_stages; ++s) {
    double critical_path = 0;
    for (const PartResult& r : results[s]) {
      critical_path = std::max(critical_path, r.seconds);
    }
    barrier_estimate += critical_path;
  }
  const double window_wall = window_timer.Seconds();
  if (barrier_estimate > window_wall) {
    report.overlap_seconds_saved += barrier_estimate - window_wall;
  }
}

void ParallelExecutor::RecordStage(
    const ExecutorRunScope& scope, StageMetrics& metrics,
    const std::map<std::string, std::string>& params) {
  if (!options_.capture_provenance || scope.provenance == nullptr) return;
  Activity act;
  act.name = metrics.name;
  act.stage_kind = std::string(StageKindName(metrics.kind));
  act.params = params;
  act.seconds = metrics.seconds;
  // Each stage activity consumes the previous bundle state and produces
  // the new one, chaining a linear lineage.
  const std::string state_name = scope.pipeline_name + "/run" +
                                 std::to_string(scope.run_index) + "/" +
                                 metrics.name;
  const size_t out_idx = scope.provenance->AddArtifactHashed(
      state_name,
      // Hash the bundle size + stage name as a cheap state fingerprint;
      // full content hashing is available via AddArtifact for stages that
      // need byte-exact lineage.
      DigestToHex(Sha256::Hash(
          state_name + ":" + std::to_string(metrics.bundle_bytes_after))),
      metrics.bundle_bytes_after);
  if (scope.last_state != nullptr && scope.last_state->has_value()) {
    act.inputs.push_back(**scope.last_state);
  }
  act.outputs.push_back(out_idx);
  scope.provenance->AddActivity(std::move(act)).OrDie();
  if (scope.last_state != nullptr) *scope.last_state = out_idx;
}

}  // namespace drai::core
