// drai/core/pipeline.hpp
//
// The paper's abstracted workflow (§3.5):
//
//     ingest -> preprocess -> transform -> structure -> shard
//
// A Pipeline is an ordered list of Stages whose kinds must be
// non-decreasing along that canonical axis (a transform can never precede
// an ingest; several stages of the same kind may run in sequence). The
// executor times each stage, tracks bundle growth, records provenance
// activities, and supports Figure 1's feedback loop via RunWithFeedback.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/bundle.hpp"
#include "core/provenance.hpp"

namespace drai::core {

/// The five canonical Data Processing Stages (Table 2's columns).
enum class StageKind : uint8_t {
  kIngest = 0,
  kPreprocess = 1,
  kTransform = 2,
  kStructure = 3,
  kShard = 4,
};

std::string_view StageKindName(StageKind k);
inline constexpr StageKind kAllStageKinds[] = {
    StageKind::kIngest, StageKind::kPreprocess, StageKind::kTransform,
    StageKind::kStructure, StageKind::kShard};

/// Execution context handed to every stage: deterministic randomness,
/// provenance recording, and free-form parameters.
class StageContext {
 public:
  StageContext(Rng rng, ProvenanceGraph* provenance)
      : rng_(rng), provenance_(provenance) {}

  Rng& rng() { return rng_; }
  /// Null when provenance capture is disabled (the ablation bench does
  /// exactly that).
  ProvenanceGraph* provenance() { return provenance_; }

  /// Key-value parameters a stage wants remembered in provenance.
  void NoteParam(const std::string& key, const std::string& value) {
    params_[key] = value;
  }
  [[nodiscard]] const std::map<std::string, std::string>& params() const {
    return params_;
  }
  void ClearParams() { params_.clear(); }

 private:
  Rng rng_;
  ProvenanceGraph* provenance_;
  std::map<std::string, std::string> params_;
};

/// Interface every pipeline stage implements.
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual StageKind kind() const = 0;
  virtual Status Run(DataBundle& bundle, StageContext& context) = 0;
};

/// Adapter: build a stage from a lambda.
class LambdaStage final : public Stage {
 public:
  using Fn = std::function<Status(DataBundle&, StageContext&)>;
  LambdaStage(std::string name, StageKind kind, Fn fn)
      : name_(std::move(name)), kind_(kind), fn_(std::move(fn)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] StageKind kind() const override { return kind_; }
  Status Run(DataBundle& bundle, StageContext& context) override {
    return fn_(bundle, context);
  }

 private:
  std::string name_;
  StageKind kind_;
  Fn fn_;
};

/// Per-stage execution record.
struct StageMetrics {
  std::string name;
  StageKind kind = StageKind::kIngest;
  double seconds = 0;
  uint64_t bundle_bytes_before = 0;
  uint64_t bundle_bytes_after = 0;
  Status status;
};

struct PipelineReport {
  std::vector<StageMetrics> stages;
  double total_seconds = 0;
  bool ok = true;
  /// First failing status when !ok.
  Status error;

  [[nodiscard]] double SecondsIn(StageKind kind) const;
  /// "ingest 12% | preprocess 55% | ..." — the §3.2 curation-time story.
  [[nodiscard]] std::string TimeBreakdown() const;
};

struct PipelineOptions {
  uint64_t seed = 0xD6A1;
  bool capture_provenance = true;
  /// Stop at the first failing stage (true) or attempt the rest (false).
  bool fail_fast = true;
};

class Pipeline {
 public:
  explicit Pipeline(std::string name, PipelineOptions options = {});

  /// Append a stage. Throws std::invalid_argument if it would violate the
  /// canonical stage ordering.
  Pipeline& Add(std::unique_ptr<Stage> stage);
  /// Sugar for LambdaStage.
  Pipeline& Add(std::string name, StageKind kind, LambdaStage::Fn fn);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t NumStages() const { return stages_.size(); }

  /// Run every stage in order over the bundle.
  PipelineReport Run(DataBundle& bundle);

  /// Figure 1's iterate arrow: run, call `evaluate` (e.g. train a model,
  /// compute a quality score); if it returns false the caller's `refine`
  /// hook mutates the bundle/parameters and the pipeline reruns, up to
  /// `max_iterations`. Returns the last report plus iteration count.
  struct FeedbackReport {
    PipelineReport last_run;
    size_t iterations = 0;
    bool converged = false;
  };
  FeedbackReport RunWithFeedback(
      DataBundle& bundle, const std::function<bool(const DataBundle&)>& evaluate,
      const std::function<void(DataBundle&)>& refine, size_t max_iterations);

  /// The provenance collected across all runs of this pipeline.
  [[nodiscard]] const ProvenanceGraph& provenance() const {
    return provenance_;
  }

 private:
  std::string name_;
  PipelineOptions options_;
  std::vector<std::unique_ptr<Stage>> stages_;
  ProvenanceGraph provenance_;
  std::optional<size_t> last_state_;  ///< latest bundle-state artifact
  uint64_t runs_ = 0;
};

}  // namespace drai::core
