// drai/core/pipeline.hpp
//
// Pipeline — the user-facing facade over the three execution layers:
//
//   PipelinePlan        (core/plan.hpp)         what to run, in which order,
//                                               with which ExecutionHints
//   BundlePartitioner   (core/partitioner.hpp)  deterministic bundle
//                                               split/merge along one axis
//   ParallelExecutor    (core/executor.hpp)     schedules serial and
//                                               partition-parallel stages
//
// A Pipeline owns one plan, one executor, and the provenance graph that
// accumulates across runs. The original monolithic API (Add / Run /
// RunWithFeedback / provenance) is unchanged; stages may now also be added
// with an ExecutionHint + ParallelSpec to run partition-parallel, and
// PipelineOptions.threads picks the worker count (0 = shared global pool).
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/bundle.hpp"
#include "core/checkpoint.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/provenance.hpp"

namespace drai::core {

struct PipelineOptions {
  uint64_t seed = 0xD6A1;
  bool capture_provenance = true;
  /// Report shape after a failure: truncate at the failing stage (true) or
  /// record every remaining stage as kFailedPrecondition "skipped" (false).
  /// No later stage runs either way.
  bool fail_fast = true;
  /// Execution substrate for parallel stages (core/backend.hpp): a thread
  /// pool or in-process SPMD ranks. Either backend produces byte-identical
  /// shards, reports, and provenance at any worker count.
  Backend backend = Backend::kThread;
  /// Parallel workers. kThread: 0 = shared global pool, 1 = serial, N =
  /// dedicated pool of N. kSpmd: rank world size (0 = hardware threads).
  size_t threads = 0;
  /// Deterministic fault injection (tests/benches). Inactive by default.
  FaultPlan faults;
  /// Deadline for stages that carry no DeadlinePolicy of their own — the
  /// watchdog safety net that cancels a hung partition even when the plan
  /// never thought about deadlines. Inactive by default.
  DeadlinePolicy default_deadline;
  /// When set, every successful stage group checkpoints here, and Resume()
  /// can restart a killed run from the last good stage. Not owned.
  CheckpointSink* checkpoint = nullptr;
  /// Master switch for inter-stage pipelining (overlap windows). When true,
  /// stage boundaries the plan marked OverlapPolicy::kStream that pass the
  /// planner's legality rules stream committed partitions straight into the
  /// next stage group instead of waiting for the merge barrier. Output
  /// bytes and provenance are identical either way; false forces barriers
  /// everywhere (the differential-testing baseline).
  bool overlap = true;
};

class Pipeline {
 public:
  explicit Pipeline(std::string name, PipelineOptions options = {});

  /// Append a stage. Throws std::invalid_argument if it would violate the
  /// canonical stage ordering.
  Pipeline& Add(std::unique_ptr<Stage> stage,
                ExecutionHint hint = ExecutionHint::kSerial,
                ParallelSpec spec = {});
  /// Sugar for a serial LambdaStage.
  Pipeline& Add(std::string name, StageKind kind, LambdaStage::Fn fn);
  /// Sugar for a parallel LambdaStage.
  Pipeline& Add(std::string name, StageKind kind, ExecutionHint hint,
                LambdaStage::Fn fn, ParallelSpec spec = {});
  /// Map-reduce sugar: serial `before`, parallel `fn`, serial `after`.
  Pipeline& Add(std::string name, StageKind kind, ExecutionHint hint,
                LambdaStage::Fn before, LambdaStage::Fn fn,
                LambdaStage::Fn after, ParallelSpec spec = {});

  /// Attach a retry policy to the most recently added stage.
  Pipeline& WithRetry(RetryPolicy policy);
  /// Attach a deadline policy to the most recently added stage: a hard
  /// limit cancels a hung attempt (kDeadlineExceeded, retryable under the
  /// stage's RetryPolicy), a soft limit launches a speculative backup of a
  /// straggling partition, and collective_ms bounds SPMD collective waits.
  Pipeline& WithDeadline(DeadlinePolicy policy);
  /// Mark the boundary between the most recently added stage and its
  /// predecessor for inter-stage pipelining (OverlapPolicy::kStream). A
  /// purely-performance hint: if the boundary fails the planner's legality
  /// rules it silently falls back to the barrier, and output is
  /// byte-identical either way.
  Pipeline& WithOverlap(OverlapPolicy policy);

  [[nodiscard]] const std::string& name() const { return plan_.name(); }
  [[nodiscard]] size_t NumStages() const { return plan_.NumStages(); }
  [[nodiscard]] const PipelinePlan& plan() const { return plan_; }

  /// Run every stage in order over the bundle.
  PipelineReport Run(DataBundle& bundle);

  /// Restart a killed run from its last checkpoint: reload the newest
  /// checkpoint from PipelineOptions.checkpoint, restore the bundle,
  /// provenance graph and lineage cursor it captured, and run only the
  /// remaining stages. Because stage RNG streams and fault decisions key
  /// off absolute stage indices, the resumed run's downstream results are
  /// byte-identical to an uninterrupted run. With no sink configured or no
  /// checkpoint on disk this is a plain Run; a checkpoint whose plan
  /// fingerprint does not match the current plan yields a
  /// kFailedPrecondition report without touching the bundle.
  ///
  /// Quarantine re-admission: partitions the checkpointed run dropped are
  /// replayed from their pristine slices through the stages they missed
  /// (same RNG streams as the original run; Run bodies only, hooks ran on
  /// the main bundle already) and merged back before the remaining stages
  /// run — so records lost to a transient fault rejoin the dataset once
  /// the fault clears. Slices whose replay fails again stay dropped. The
  /// outcome of every replay is tallied in PipelineReport::readmissions.
  PipelineReport Resume(DataBundle& bundle);

  /// Figure 1's iterate arrow: run, call `evaluate` (e.g. train a model,
  /// compute a quality score); if it returns false the caller's `refine`
  /// hook mutates the bundle/parameters and the pipeline reruns, up to
  /// `max_iterations`. Returns the last report plus iteration count.
  struct FeedbackReport {
    PipelineReport last_run;
    size_t iterations = 0;
    bool converged = false;
  };
  FeedbackReport RunWithFeedback(
      DataBundle& bundle, const std::function<bool(const DataBundle&)>& evaluate,
      const std::function<void(DataBundle&)>& refine, size_t max_iterations);

  /// The provenance collected across all runs of this pipeline.
  [[nodiscard]] const ProvenanceGraph& provenance() const {
    return provenance_;
  }

 private:
  PipelinePlan plan_;
  PipelineOptions options_;
  ParallelExecutor executor_;
  ProvenanceGraph provenance_;
  std::optional<size_t> last_state_;  ///< latest bundle-state artifact
  uint64_t runs_ = 0;
};

}  // namespace drai::core
