#include "core/partitioner.hpp"

#include <algorithm>
#include <utility>

namespace drai::core {

namespace {

/// Group key for kTensorGroups: the prefix before the last '/' when
/// group_by_prefix is set, otherwise the full key.
std::string TensorGroupOf(const std::string& key, bool group_by_prefix) {
  if (!group_by_prefix) return key;
  const size_t slash = key.rfind('/');
  return slash == std::string::npos ? key : key.substr(0, slash);
}

/// Sorted unique group keys of the bundle's tensors.
std::vector<std::string> TensorGroups(const DataBundle& bundle,
                                      const ParallelSpec& spec) {
  std::vector<std::string> groups;
  for (const auto& [key, _] : bundle.tensors) {
    std::string g = TensorGroupOf(key, spec.group_by_prefix);
    if (groups.empty() || groups.back() != g) groups.push_back(std::move(g));
  }
  // std::map iterates in sorted key order and prefix-grouping preserves
  // that order, so `groups` is already sorted and unique.
  return groups;
}

Result<size_t> RangeCount(const DataBundle& bundle, const ParallelSpec& spec) {
  if (spec.range_count > 0) return spec.range_count;
  const size_t n = static_cast<size_t>(bundle.AttrOr(spec.range_attr, 0));
  if (n == 0) {
    return InvalidArgument("kRange partitioning: range_count unset and attr '" +
                           spec.range_attr + "' missing or zero");
  }
  return n;
}

/// Move the map entries whose key is in [keys[lo], keys[hi]) from `src`
/// into `dst`.
template <typename Map>
void MoveKeys(Map& src, Map& dst, const std::vector<std::string>& keys,
              size_t lo, size_t hi) {
  for (size_t i = lo; i < hi; ++i) {
    auto node = src.extract(keys[i]);
    if (!node.empty()) dst.insert(std::move(node));
  }
}

template <typename Map>
void MergeMap(Map& dst, Map& src) {
  for (auto it = src.begin(); it != src.end();) {
    auto node = src.extract(it++);
    dst.insert_or_assign(std::move(node.key()), std::move(node.mapped()));
  }
}

}  // namespace

Result<PartitionAxis> BundlePartitioner::ResolveAxis(const DataBundle& bundle,
                                                     const ParallelSpec& spec) {
  if (spec.axis != PartitionAxis::kAuto) return spec.axis;
  if (!bundle.examples.empty()) return PartitionAxis::kExamples;
  if (!bundle.signal_sets.empty()) return PartitionAxis::kSignalSets;
  if (!bundle.tensors.empty()) return PartitionAxis::kTensorGroups;
  if (bundle.tables.size() == 1) return PartitionAxis::kTableRows;
  if (!bundle.blobs.empty()) return PartitionAxis::kBlobs;
  return FailedPrecondition(
      "kAuto partitioning: bundle has no partitionable collection");
}

size_t BundlePartitioner::DefaultGrain(PartitionAxis axis) {
  switch (axis) {
    case PartitionAxis::kExamples: return 256;
    case PartitionAxis::kTableRows: return 64;
    case PartitionAxis::kSignalSets:
    case PartitionAxis::kTensorGroups:
    case PartitionAxis::kBlobs: return 1;
    case PartitionAxis::kRange: return 4;
    case PartitionAxis::kAuto: break;
  }
  return 1;
}

Result<size_t> BundlePartitioner::CountUnits(const DataBundle& bundle,
                                             PartitionAxis axis,
                                             const ParallelSpec& spec) {
  switch (axis) {
    case PartitionAxis::kExamples: return bundle.examples.size();
    case PartitionAxis::kSignalSets: return bundle.signal_sets.size();
    case PartitionAxis::kBlobs: return bundle.blobs.size();
    case PartitionAxis::kTensorGroups: return TensorGroups(bundle, spec).size();
    case PartitionAxis::kTableRows: {
      if (bundle.tables.size() != 1) {
        return InvalidArgument(
            "kTableRows partitioning needs exactly one table, bundle has " +
            std::to_string(bundle.tables.size()));
      }
      return bundle.tables.begin()->second.rows.size();
    }
    case PartitionAxis::kRange: return RangeCount(bundle, spec);
    case PartitionAxis::kAuto: break;
  }
  return InvalidArgument("CountUnits: unresolved partition axis");
}

Result<std::vector<BundlePartition>> BundlePartitioner::Split(
    DataBundle& bundle, const ParallelSpec& spec) {
  DRAI_ASSIGN_OR_RETURN(const PartitionAxis axis, ResolveAxis(bundle, spec));
  DRAI_ASSIGN_OR_RETURN(const size_t n_units, CountUnits(bundle, axis, spec));
  const size_t grain = spec.grain > 0 ? spec.grain : DefaultGrain(axis);
  const size_t n_parts = std::max<size_t>(1, (n_units + grain - 1) / grain);

  std::vector<BundlePartition> parts(n_parts);
  for (size_t p = 0; p < n_parts; ++p) {
    parts[p].slot.index = p;
    parts[p].slot.count = n_parts;
    parts[p].slot.lo = std::min(n_units, p * grain);
    parts[p].slot.hi = std::min(n_units, (p + 1) * grain);
    parts[p].bundle.attrs = bundle.attrs;  // snapshot, cheap metadata
  }

  switch (axis) {
    case PartitionAxis::kExamples: {
      for (size_t p = 0; p < n_parts; ++p) {
        auto& slot = parts[p].slot;
        auto begin = bundle.examples.begin() + static_cast<ptrdiff_t>(slot.lo);
        auto end = bundle.examples.begin() + static_cast<ptrdiff_t>(slot.hi);
        parts[p].bundle.examples.assign(std::move_iterator(begin),
                                        std::move_iterator(end));
      }
      bundle.examples.clear();
      break;
    }
    case PartitionAxis::kSignalSets: {
      std::vector<std::string> keys;
      keys.reserve(bundle.signal_sets.size());
      for (const auto& [k, _] : bundle.signal_sets) keys.push_back(k);
      for (size_t p = 0; p < n_parts; ++p) {
        MoveKeys(bundle.signal_sets, parts[p].bundle.signal_sets, keys,
                 parts[p].slot.lo, parts[p].slot.hi);
      }
      break;
    }
    case PartitionAxis::kBlobs: {
      std::vector<std::string> keys;
      keys.reserve(bundle.blobs.size());
      for (const auto& [k, _] : bundle.blobs) keys.push_back(k);
      for (size_t p = 0; p < n_parts; ++p) {
        MoveKeys(bundle.blobs, parts[p].bundle.blobs, keys, parts[p].slot.lo,
                 parts[p].slot.hi);
      }
      break;
    }
    case PartitionAxis::kTensorGroups: {
      const std::vector<std::string> groups = TensorGroups(bundle, spec);
      for (size_t p = 0; p < n_parts; ++p) {
        const auto& slot = parts[p].slot;
        if (slot.lo >= slot.hi) continue;
        // Move every tensor whose group falls in [lo, hi). Groups are
        // contiguous in sorted key order, so walk the map once per part.
        auto it = bundle.tensors.begin();
        while (it != bundle.tensors.end()) {
          const std::string g = TensorGroupOf(it->first, spec.group_by_prefix);
          const auto pos = std::lower_bound(groups.begin(), groups.end(), g);
          const size_t gi = static_cast<size_t>(pos - groups.begin());
          if (gi >= slot.lo && gi < slot.hi) {
            auto node = bundle.tensors.extract(it++);
            parts[p].bundle.tensors.insert(std::move(node));
          } else {
            ++it;
          }
        }
      }
      break;
    }
    case PartitionAxis::kTableRows: {
      auto node = bundle.tables.extract(bundle.tables.begin());
      const std::string& name = node.key();
      privacy::Table& table = node.mapped();
      for (size_t p = 0; p < n_parts; ++p) {
        const auto& slot = parts[p].slot;
        privacy::Table piece;
        piece.columns = table.columns;
        piece.rows.assign(
            std::move_iterator(table.rows.begin() +
                               static_cast<ptrdiff_t>(slot.lo)),
            std::move_iterator(table.rows.begin() +
                               static_cast<ptrdiff_t>(slot.hi)));
        parts[p].bundle.tables.emplace(name, std::move(piece));
      }
      break;
    }
    case PartitionAxis::kRange:
      break;  // partitions carry only attrs + slot bounds
    case PartitionAxis::kAuto:
      return Internal("Split: axis still kAuto after resolution");
  }
  return parts;
}

void BundlePartitioner::Merge(DataBundle& bundle,
                              std::vector<BundlePartition>& parts) {
  std::sort(parts.begin(), parts.end(),
            [](const BundlePartition& a, const BundlePartition& b) {
              return a.slot.index < b.slot.index;
            });
  // Partitions start from a snapshot of the pre-split attrs; only overlay
  // entries they actually added or changed, so a later partition's stale
  // snapshot can't clobber an earlier partition's update.
  const std::map<std::string, container::AttrValue> original_attrs =
      bundle.attrs;
  for (BundlePartition& part : parts) {
    DataBundle& pb = part.bundle;
    bundle.examples.insert(bundle.examples.end(),
                           std::move_iterator(pb.examples.begin()),
                           std::move_iterator(pb.examples.end()));
    MergeMap(bundle.tensors, pb.tensors);
    MergeMap(bundle.signal_sets, pb.signal_sets);
    MergeMap(bundle.blobs, pb.blobs);
    // Tables: same-name pieces with identical columns concatenate (the
    // kTableRows round trip); anything else replaces wholesale.
    for (auto it = pb.tables.begin(); it != pb.tables.end();) {
      auto node = pb.tables.extract(it++);
      auto dst = bundle.tables.find(node.key());
      if (dst != bundle.tables.end() &&
          dst->second.columns == node.mapped().columns) {
        auto& rows = node.mapped().rows;
        dst->second.rows.insert(dst->second.rows.end(),
                                std::move_iterator(rows.begin()),
                                std::move_iterator(rows.end()));
      } else {
        bundle.tables.insert_or_assign(std::move(node.key()),
                                       std::move(node.mapped()));
      }
    }
    for (auto& [key, value] : pb.attrs) {
      const auto orig = original_attrs.find(key);
      if (orig != original_attrs.end() && orig->second == value) continue;
      bundle.attrs.insert_or_assign(key, std::move(value));
    }
    pb = DataBundle{};
  }
  parts.clear();
}

}  // namespace drai::core
