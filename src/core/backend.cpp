#include "core/backend.hpp"

#include <future>
#include <stdexcept>
#include <vector>

#include "parallel/communicator.hpp"
#include "parallel/thread_pool.hpp"

namespace drai::core {

std::string_view BackendName(Backend b) {
  switch (b) {
    case Backend::kThread: return "thread";
    case Backend::kSpmd: return "spmd";
  }
  return "unknown";
}

// ---- ThreadBackend -----------------------------------------------------

ThreadBackend::ThreadBackend(size_t threads) : threads_(threads) {
  if (threads_ > 1) {
    pool_ = std::make_unique<par::ThreadPool>(threads_);
  }
}

ThreadBackend::~ThreadBackend() = default;

size_t ThreadBackend::concurrency() const {
  if (threads_ == 1) return 1;
  if (pool_) return pool_->thread_count();
  return par::GlobalPool().thread_count();
}

void ThreadBackend::Map(const PartitionTask& task) {
  // Workers share the scheduler's memory, so no pack/unpack transport.
  const bool inline_run =
      task.n_parts <= 1 || threads_ == 1 || par::InPoolWorker();
  if (inline_run) {
    for (size_t p = 0; p < task.n_parts; ++p) task.run(p);
    return;
  }
  par::ThreadPool& pool = pool_ ? *pool_ : par::GlobalPool();
  std::vector<std::future<void>> futures;
  futures.reserve(task.n_parts);
  for (size_t p = 0; p < task.n_parts; ++p) {
    futures.push_back(pool.Submit([&task, p] { task.run(p); }));
  }
  for (auto& f : futures) f.get();  // task.run never throws
}

// ---- SpmdBackend -------------------------------------------------------

SpmdBackend::SpmdBackend(size_t ranks) : ranks_(ranks) {
  if (ranks_ == 0) ranks_ = par::GlobalPool().thread_count();
  if (ranks_ == 0) ranks_ = 1;
}

void SpmdBackend::Map(const PartitionTask& task) {
  const uint64_t n_parts = task.n_parts;
  par::RunSpmd(static_cast<int>(ranks_), [&](par::Communicator& comm) {
    if (task.collective_timeout_ms > 0) {
      comm.SetWaitTimeout(task.collective_timeout_ms);
    }
    // Rank 0 deals partitions out block-cyclically; determinism does not
    // depend on the assignment (any rank may run any partition), only on
    // the ascending gather order below.
    const std::vector<uint64_t> mine =
        par::ScatterAssignment(comm, n_parts, /*root=*/0);
    std::vector<std::pair<uint64_t, Bytes>> outcomes;
    outcomes.reserve(mine.size());
    for (uint64_t p : mine) {
      task.run(static_cast<size_t>(p));
      if (task.pack) {
        outcomes.emplace_back(p, task.pack(static_cast<size_t>(p)));
      }
    }
    // Quarantine agreement: every rank learns the full dropped set before
    // anyone proceeds — the multi-process invariant that collective
    // operations (degraded merge, collective I/O) need all ranks to share
    // the same view of which partitions survived. The condition is uniform
    // across ranks (one shared task), so all ranks enter the collective.
    std::vector<uint64_t> agreed;
    if (task.quarantined) {
      std::vector<uint64_t> local;
      for (uint64_t p : mine) {
        if (task.quarantined(static_cast<size_t>(p))) local.push_back(p);
      }
      agreed = par::AgreeQuarantine(comm, n_parts, local);
    }
    if (task.pack == nullptr) {
      comm.Barrier();
      return;
    }
    // Per-partition outcomes come home to rank 0 in ascending partition
    // order — the gather is the reduction's transport, so the scheduler
    // consumes exactly what a multi-process world would have sent.
    const auto gathered = par::GatherByIndex(comm, outcomes, /*root=*/0);
    if (comm.rank() != 0) return;
    if (gathered.size() != n_parts) {
      throw std::logic_error("SpmdBackend: gather covered " +
                             std::to_string(gathered.size()) + " of " +
                             std::to_string(n_parts) + " partitions");
    }
    if (task.unpack) {
      for (const auto& [p, payload] : gathered) {
        task.unpack(static_cast<size_t>(p), payload);
      }
    }
    // Cross-check on the scheduler rank: the transported outcomes must name
    // exactly the partitions the collective agreed on. A mismatch means a
    // rank dropped a partition the others did not hear about — a protocol
    // bug worth failing loudly on, never silently merging.
    if (task.quarantined) {
      std::vector<uint64_t> unpacked;
      for (uint64_t p = 0; p < n_parts; ++p) {
        if (task.quarantined(static_cast<size_t>(p))) unpacked.push_back(p);
      }
      if (unpacked != agreed) {
        throw std::logic_error(
            "SpmdBackend: quarantine agreement mismatch (agreed " +
            std::to_string(agreed.size()) + " partitions, outcomes name " +
            std::to_string(unpacked.size()) + ")");
      }
    }
  });
}

std::unique_ptr<ExecutionBackend> MakeBackend(Backend backend, size_t workers) {
  switch (backend) {
    case Backend::kThread: return std::make_unique<ThreadBackend>(workers);
    case Backend::kSpmd: return std::make_unique<SpmdBackend>(workers);
  }
  throw std::invalid_argument("MakeBackend: unknown backend");
}

}  // namespace drai::core
