// drai/core/faults.hpp
//
// Deterministic fault injection for the pipeline executor. Leadership-class
// runs see transient I/O errors and node faults as a matter of course; the
// executor's retry/quarantine machinery (core/executor.hpp) must therefore
// be testable against *reproducible* failures. A FaultPlan decides, as a
// pure function of (seed, run, stage, partition, attempt), whether one
// stage attempt on one partition fails and how — so the thread and SPMD
// backends inject byte-identical fault schedules, and a fault observed in a
// bench can be replayed in a debugger from its coordinates alone.
//
// An injected fault fires *after* the stage body has run, modeling a
// failure at commit time: the partition slice is left mutated, so a retry
// is only correct if the scheduler restores the pristine slice first. This
// makes the harness a real test of the retry path, not just of the
// bookkeeping.
//
// Besides fail-stop faults, a plan can inject *hangs*: a per-(stage,
// partition, attempt) delay, decided by the same pure seeded function, that
// stalls the attempt at commit time (a stuck NFS write, a wedged collective).
// The delay sleeps cooperatively, so a watchdog-cancelled attempt unwinds
// with kDeadlineExceeded instead of blocking; an uncancelled hang merely
// slows the run and leaves the output byte-identical. A hang may carry
// `code = kOk` (pure slowdown) or combine with an error code.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace drai::core {

/// Wildcard for FaultSite fields that match any value.
inline constexpr size_t kAnyPartition = std::numeric_limits<size_t>::max();

/// One explicitly scripted fault location: "stage X, partition P fails its
/// first `fail_attempts` attempts with `code`". Empty stage name matches
/// every stage; kAnyPartition matches every partition.
struct FaultSite {
  std::string stage;
  size_t partition = kAnyPartition;
  /// Attempts 1..fail_attempts fault; attempt fail_attempts+1 succeeds.
  size_t fail_attempts = 1;
  /// kOk injects no error — combine with hang_ms for a pure slowdown site.
  StatusCode code = StatusCode::kUnavailable;
  /// Throw std::runtime_error instead of returning a Status — models a
  /// crash rather than a reported error (surfaces as kInternal).
  bool throw_instead = false;
  /// Stall the attempt this long at commit time before the outcome above.
  double hang_ms = 0.0;
};

/// What the executor does at a faulted attempt.
struct InjectedFault {
  /// May be OK when the fault is a pure slowdown.
  Status status;
  bool throw_instead = false;
  /// Cooperative sleep injected before the outcome; 0 = no hang.
  double delay_ms = 0.0;
};

/// The fault schedule for a run: explicit sites plus an optional random
/// background rate. Inactive by default — a default FaultPlan injects
/// nothing and the executor's behavior is byte-identical to a build without
/// the harness.
struct FaultPlan {
  uint64_t seed = 0;
  /// Probability that a given (run, stage, partition) cell faults at all.
  /// Sampled by hashing the coordinates, never by shared RNG state, so the
  /// schedule is identical for any backend, worker count, or replay.
  double rate = 0.0;
  /// Attempts 1..fail_attempts fault at a sampled cell (1 = first attempt
  /// only, so one retry clears it).
  size_t fail_attempts = 1;
  StatusCode code = StatusCode::kUnavailable;
  bool throw_instead = false;
  /// Probability that a cell *hangs*. Sampled independently of `rate` (a
  /// different salt on the same pure hash), so a cell can hang, fail, or
  /// both; thread and SPMD backends stall identically.
  double hang_rate = 0.0;
  /// How long a sampled hang stalls the attempt.
  double hang_ms = 0.0;
  /// Attempts 1..hang_attempts stall at a sampled cell (1 = first attempt
  /// only, so a deadline-cancelled retry runs at full speed).
  size_t hang_attempts = 1;
  std::vector<FaultSite> sites;

  [[nodiscard]] bool active() const {
    return rate > 0.0 || hang_rate > 0.0 || !sites.empty();
  }

  /// The fault decision for one stage attempt, or nullopt to run clean.
  /// Explicit sites take precedence over the background rate. Pure: equal
  /// arguments always produce an equal decision.
  [[nodiscard]] std::optional<InjectedFault> Decide(uint64_t run,
                                                    std::string_view stage_name,
                                                    size_t stage_index,
                                                    size_t partition,
                                                    size_t attempt) const;
};

}  // namespace drai::core
