#include "core/checkpoint.hpp"

#include "parallel/striped_store.hpp"
#include "shard/checkpoint.hpp"

namespace drai::core {

StoreCheckpointSink::StoreCheckpointSink(par::StripedStore& store,
                                         std::string directory)
    : store_(store), directory_(std::move(directory)) {}

std::string StoreCheckpointSink::PathFor(const std::string& pipeline) const {
  return directory_ + "/" + pipeline + ".ckpt";
}

Status StoreCheckpointSink::Save(const PipelineCheckpoint& checkpoint) {
  shard::CheckpointMeta meta;
  meta.pipeline = checkpoint.pipeline;
  meta.run_index = checkpoint.run_index;
  meta.plan_fingerprint = checkpoint.plan_fingerprint;
  meta.stages_done = checkpoint.stages_done;

  std::map<std::string, Bytes> sections;
  sections["bundle"] = checkpoint.bundle.Serialize();
  if (!checkpoint.provenance.empty()) {
    sections["provenance"] = checkpoint.provenance;
  }
  if (checkpoint.last_state.has_value()) {
    ByteWriter w;
    w.PutU64(static_cast<uint64_t>(*checkpoint.last_state));
    sections["last_state"] = w.Take();
  }

  const Bytes file = shard::EncodeCheckpoint(meta, sections);
  const std::string path = PathFor(checkpoint.pipeline);
  // Create truncates: the new checkpoint replaces the previous one whole,
  // so a reader never sees a mix of two saves.
  DRAI_RETURN_IF_ERROR(store_.Create(path));
  return store_.Write(path, 0, file);
}

Result<std::optional<PipelineCheckpoint>> StoreCheckpointSink::LoadLatest(
    const std::string& pipeline) {
  const std::string path = PathFor(pipeline);
  if (!store_.Exists(path)) return std::optional<PipelineCheckpoint>{};
  DRAI_ASSIGN_OR_RETURN(Bytes file, store_.ReadAll(path));
  DRAI_ASSIGN_OR_RETURN(shard::CheckpointFile decoded,
                        shard::DecodeCheckpoint(file));

  PipelineCheckpoint cp;
  cp.pipeline = decoded.meta.pipeline;
  cp.run_index = decoded.meta.run_index;
  cp.plan_fingerprint = decoded.meta.plan_fingerprint;
  cp.stages_done = static_cast<size_t>(decoded.meta.stages_done);

  const auto bundle_it = decoded.sections.find("bundle");
  if (bundle_it == decoded.sections.end()) {
    return DataLoss("checkpoint '" + path + "' has no bundle section");
  }
  DRAI_ASSIGN_OR_RETURN(cp.bundle, DataBundle::Parse(bundle_it->second));
  if (const auto it = decoded.sections.find("provenance");
      it != decoded.sections.end()) {
    cp.provenance = it->second;
  }
  if (const auto it = decoded.sections.find("last_state");
      it != decoded.sections.end()) {
    ByteReader r(it->second);
    uint64_t v = 0;
    DRAI_RETURN_IF_ERROR(r.GetU64(v));
    cp.last_state = static_cast<size_t>(v);
  }
  return std::optional<PipelineCheckpoint>{std::move(cp)};
}

}  // namespace drai::core
