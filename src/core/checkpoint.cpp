#include "core/checkpoint.hpp"

#include <cstdio>

#include "parallel/striped_store.hpp"
#include "shard/checkpoint.hpp"

namespace drai::core {

namespace {

// Quarantined partitions travel as one section each ("quarantine/0007"),
// pristine slice included, so Resume can re-ingest the dropped records.
// Zero-padded keys keep the section map's lexicographic order equal to
// execution order.
std::string QuarantineKey(size_t i) {
  char key[32];
  std::snprintf(key, sizeof key, "quarantine/%04zu", i);
  return key;
}

Bytes EncodeQuarantine(const QuarantineRecord& q) {
  ByteWriter w;
  w.PutString(q.stage);
  w.PutVarU64(q.stage_index);
  w.PutVarU64(q.partition);
  w.PutVarU64(q.slot.index);
  w.PutVarU64(q.slot.count);
  w.PutVarU64(q.slot.lo);
  w.PutVarU64(q.slot.hi);
  w.PutVarU64(q.attempts);
  w.PutVarU64(static_cast<uint64_t>(q.error.code()));
  w.PutString(q.error.message());
  w.PutVarU64(q.units);
  w.PutBlob(q.slice.Serialize());
  return w.Take();
}

Result<QuarantineRecord> DecodeQuarantine(const Bytes& payload) {
  ByteReader r(payload);
  QuarantineRecord q;
  uint64_t u = 0;
  DRAI_RETURN_IF_ERROR(r.GetString(q.stage));
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.stage_index = static_cast<size_t>(u);
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.partition = static_cast<size_t>(u);
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.slot.index = static_cast<size_t>(u);
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.slot.count = static_cast<size_t>(u);
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.slot.lo = static_cast<size_t>(u);
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.slot.hi = static_cast<size_t>(u);
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.attempts = static_cast<size_t>(u);
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  std::string message;
  DRAI_RETURN_IF_ERROR(r.GetString(message));
  q.error = Status(static_cast<StatusCode>(u), std::move(message));
  DRAI_RETURN_IF_ERROR(r.GetVarU64(u));
  q.units = static_cast<size_t>(u);
  Bytes slice;
  DRAI_RETURN_IF_ERROR(r.GetBlob(slice));
  DRAI_ASSIGN_OR_RETURN(q.slice, DataBundle::Parse(slice));
  return q;
}

}  // namespace

StoreCheckpointSink::StoreCheckpointSink(par::StripedStore& store,
                                         std::string directory)
    : store_(store), directory_(std::move(directory)) {}

std::string StoreCheckpointSink::PathFor(const std::string& pipeline) const {
  return directory_ + "/" + pipeline + ".ckpt";
}

Status StoreCheckpointSink::Save(const PipelineCheckpoint& checkpoint) {
  shard::CheckpointMeta meta;
  meta.pipeline = checkpoint.pipeline;
  meta.run_index = checkpoint.run_index;
  meta.plan_fingerprint = checkpoint.plan_fingerprint;
  meta.stages_done = checkpoint.stages_done;

  std::map<std::string, Bytes> sections;
  sections["bundle"] = checkpoint.bundle.Serialize();
  if (!checkpoint.provenance.empty()) {
    sections["provenance"] = checkpoint.provenance;
  }
  if (checkpoint.last_state.has_value()) {
    ByteWriter w;
    w.PutU64(static_cast<uint64_t>(*checkpoint.last_state));
    sections["last_state"] = w.Take();
  }
  for (size_t i = 0; i < checkpoint.quarantined.size(); ++i) {
    sections[QuarantineKey(i)] = EncodeQuarantine(checkpoint.quarantined[i]);
  }

  const Bytes file = shard::EncodeCheckpoint(meta, sections);
  const std::string path = PathFor(checkpoint.pipeline);
  // Create truncates: the new checkpoint replaces the previous one whole,
  // so a reader never sees a mix of two saves.
  DRAI_RETURN_IF_ERROR(store_.Create(path));
  return store_.Write(path, 0, file);
}

Result<std::optional<PipelineCheckpoint>> StoreCheckpointSink::LoadLatest(
    const std::string& pipeline) {
  const std::string path = PathFor(pipeline);
  if (!store_.Exists(path)) return std::optional<PipelineCheckpoint>{};
  DRAI_ASSIGN_OR_RETURN(Bytes file, store_.ReadAll(path));
  DRAI_ASSIGN_OR_RETURN(shard::CheckpointFile decoded,
                        shard::DecodeCheckpoint(file));

  PipelineCheckpoint cp;
  cp.pipeline = decoded.meta.pipeline;
  cp.run_index = decoded.meta.run_index;
  cp.plan_fingerprint = decoded.meta.plan_fingerprint;
  cp.stages_done = static_cast<size_t>(decoded.meta.stages_done);

  const auto bundle_it = decoded.sections.find("bundle");
  if (bundle_it == decoded.sections.end()) {
    return DataLoss("checkpoint '" + path + "' has no bundle section");
  }
  DRAI_ASSIGN_OR_RETURN(cp.bundle, DataBundle::Parse(bundle_it->second));
  if (const auto it = decoded.sections.find("provenance");
      it != decoded.sections.end()) {
    cp.provenance = it->second;
  }
  if (const auto it = decoded.sections.find("last_state");
      it != decoded.sections.end()) {
    ByteReader r(it->second);
    uint64_t v = 0;
    DRAI_RETURN_IF_ERROR(r.GetU64(v));
    cp.last_state = static_cast<size_t>(v);
  }
  // The section map is sorted and the keys are zero-padded, so quarantined
  // slices come back in the order the run dropped them.
  for (const auto& [key, payload] : decoded.sections) {
    if (key.rfind("quarantine/", 0) != 0) continue;
    DRAI_ASSIGN_OR_RETURN(QuarantineRecord q, DecodeQuarantine(payload));
    cp.quarantined.push_back(std::move(q));
  }
  return std::optional<PipelineCheckpoint>{std::move(cp)};
}

}  // namespace drai::core
