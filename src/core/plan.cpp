#include "core/plan.hpp"

#include <stdexcept>

#include "common/hash.hpp"

namespace drai::core {

std::string_view StageKindName(StageKind k) {
  switch (k) {
    case StageKind::kIngest: return "ingest";
    case StageKind::kPreprocess: return "preprocess";
    case StageKind::kTransform: return "transform";
    case StageKind::kStructure: return "structure";
    case StageKind::kShard: return "shard";
  }
  return "?";
}

std::string_view ExecutionHintName(ExecutionHint h) {
  switch (h) {
    case ExecutionHint::kSerial: return "serial";
    case ExecutionHint::kRecordParallel: return "record_parallel";
    case ExecutionHint::kPartitionParallel: return "partition_parallel";
  }
  return "?";
}

std::string_view PartitionAxisName(PartitionAxis a) {
  switch (a) {
    case PartitionAxis::kAuto: return "auto";
    case PartitionAxis::kExamples: return "examples";
    case PartitionAxis::kSignalSets: return "signal_sets";
    case PartitionAxis::kTableRows: return "table_rows";
    case PartitionAxis::kTensorGroups: return "tensor_groups";
    case PartitionAxis::kBlobs: return "blobs";
    case PartitionAxis::kRange: return "range";
  }
  return "?";
}

std::string_view OverlapPolicyName(OverlapPolicy p) {
  switch (p) {
    case OverlapPolicy::kBarrier: return "barrier";
    case OverlapPolicy::kStream: return "stream";
  }
  return "?";
}

PipelinePlan& PipelinePlan::Add(std::unique_ptr<Stage> stage,
                                ExecutionHint hint, ParallelSpec spec) {
  if (!stages_.empty() &&
      static_cast<uint8_t>(stage->kind()) <
          static_cast<uint8_t>(stages_.back().stage->kind())) {
    throw std::invalid_argument(
        "Pipeline '" + name_ + "': stage '" + stage->name() + "' (" +
        std::string(StageKindName(stage->kind())) +
        ") would run after a later-kind stage; the canonical order is "
        "ingest -> preprocess -> transform -> structure -> shard");
  }
  PlannedStage planned;
  planned.stage = std::move(stage);
  planned.hint = hint;
  planned.parallel = spec;
  stages_.push_back(std::move(planned));
  return *this;
}

PipelinePlan& PipelinePlan::Add(std::string name, StageKind kind,
                                LambdaStage::Fn fn) {
  return Add(std::make_unique<LambdaStage>(std::move(name), kind,
                                           std::move(fn)));
}

PipelinePlan& PipelinePlan::Add(std::string name, StageKind kind,
                                ExecutionHint hint, LambdaStage::Fn fn,
                                ParallelSpec spec) {
  return Add(std::make_unique<LambdaStage>(std::move(name), kind,
                                           std::move(fn)),
             hint, spec);
}

PipelinePlan& PipelinePlan::Add(std::string name, StageKind kind,
                                ExecutionHint hint, LambdaStage::Fn before,
                                LambdaStage::Fn fn, LambdaStage::Fn after,
                                ParallelSpec spec) {
  return Add(std::make_unique<LambdaStage>(std::move(name), kind,
                                           std::move(fn), std::move(before),
                                           std::move(after)),
             hint, spec);
}

PipelinePlan& PipelinePlan::WithRetry(RetryPolicy policy) {
  if (stages_.empty()) {
    throw std::logic_error("Pipeline '" + name_ +
                           "': WithRetry called before any stage was added");
  }
  if (policy.max_attempts == 0) {
    throw std::invalid_argument("Pipeline '" + name_ +
                                "': RetryPolicy.max_attempts must be >= 1");
  }
  stages_.back().retry = std::move(policy);
  return *this;
}

PipelinePlan& PipelinePlan::WithDeadline(DeadlinePolicy policy) {
  if (stages_.empty()) {
    throw std::logic_error(
        "Pipeline '" + name_ +
        "': WithDeadline called before any stage was added");
  }
  if (policy.soft_ms < 0.0 || policy.hard_ms < 0.0 ||
      policy.collective_ms < 0.0) {
    throw std::invalid_argument("Pipeline '" + name_ +
                                "': DeadlinePolicy limits must be >= 0");
  }
  if (policy.soft_ms > 0.0 && policy.hard_ms > 0.0 &&
      policy.soft_ms > policy.hard_ms) {
    throw std::invalid_argument(
        "Pipeline '" + name_ +
        "': DeadlinePolicy.soft_ms must not exceed hard_ms — speculation "
        "would launch after the attempt is already cancelled");
  }
  stages_.back().deadline = policy;
  return *this;
}

PipelinePlan& PipelinePlan::WithOverlap(OverlapPolicy policy) {
  if (stages_.empty()) {
    throw std::logic_error(
        "Pipeline '" + name_ +
        "': WithOverlap called before any stage was added");
  }
  stages_.back().overlap = policy;
  return *this;
}

std::string PipelinePlan::Fingerprint() const {
  Sha256 ctx;
  ctx.Update(name_);
  for (const PlannedStage& s : stages_) {
    ctx.Update("|");
    ctx.Update(s.stage->name());
    ctx.Update("/");
    ctx.Update(StageKindName(s.stage->kind()));
    ctx.Update("/");
    ctx.Update(ExecutionHintName(s.hint));
  }
  return DigestToHex(ctx.Finish());
}

Status PipelinePlan::Validate() const {
  for (const PlannedStage& s : stages_) {
    if (s.hint == ExecutionHint::kSerial) continue;
    if (s.parallel.axis == PartitionAxis::kRange &&
        s.parallel.range_count == 0 && s.parallel.range_attr.empty()) {
      return InvalidArgument("stage '" + s.stage->name() +
                             "': kRange partitioning needs range_count or "
                             "range_attr");
    }
  }
  return Status::Ok();
}

}  // namespace drai::core
