#include "core/bundle.hpp"

namespace drai::core {

Result<NDArray> DataBundle::Tensor(const std::string& name) const {
  auto it = tensors.find(name);
  if (it == tensors.end()) return NotFound("bundle tensor not found: " + name);
  return it->second;
}

Result<Bytes> DataBundle::Blob(const std::string& name) const {
  auto it = blobs.find(name);
  if (it == blobs.end()) return NotFound("bundle blob not found: " + name);
  return it->second;
}

std::optional<container::AttrValue> DataBundle::Attr(
    const std::string& name) const {
  auto it = attrs.find(name);
  if (it == attrs.end()) return std::nullopt;
  return it->second;
}

double DataBundle::AttrOr(const std::string& name, double fallback) const {
  auto it = attrs.find(name);
  if (it == attrs.end()) return fallback;
  switch (it->second.kind) {
    case container::AttrValue::Kind::kDouble: return it->second.d;
    case container::AttrValue::Kind::kInt:
      return static_cast<double>(it->second.i);
    default: return fallback;
  }
}

uint64_t DataBundle::ApproxBytes() const {
  uint64_t total = 0;
  for (const auto& [_, b] : blobs) total += b.size();
  for (const auto& [_, t] : tensors) total += t.nbytes();
  for (const auto& [_, table] : tables) {
    for (const auto& row : table.rows) {
      for (const auto& cell : row) total += cell.size();
    }
  }
  for (const auto& [_, signals] : signal_sets) {
    for (const auto& s : signals) total += s.size() * 16;
  }
  for (const auto& ex : examples) total += ex.PayloadBytes();
  return total;
}

}  // namespace drai::core
