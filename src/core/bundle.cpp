#include "core/bundle.hpp"

namespace drai::core {

Result<NDArray> DataBundle::Tensor(const std::string& name) const {
  auto it = tensors.find(name);
  if (it == tensors.end()) return NotFound("bundle tensor not found: " + name);
  return it->second;
}

Result<Bytes> DataBundle::Blob(const std::string& name) const {
  auto it = blobs.find(name);
  if (it == blobs.end()) return NotFound("bundle blob not found: " + name);
  return it->second;
}

std::optional<container::AttrValue> DataBundle::Attr(
    const std::string& name) const {
  auto it = attrs.find(name);
  if (it == attrs.end()) return std::nullopt;
  return it->second;
}

double DataBundle::AttrOr(const std::string& name, double fallback) const {
  auto it = attrs.find(name);
  if (it == attrs.end()) return fallback;
  switch (it->second.kind) {
    case container::AttrValue::Kind::kDouble: return it->second.d;
    case container::AttrValue::Kind::kInt:
      return static_cast<double>(it->second.i);
    default: return fallback;
  }
}

namespace {

constexpr uint32_t kBundleVersion = 1;

void WriteTable(ByteWriter& w, const privacy::Table& table) {
  w.PutVarU64(table.columns.size());
  for (const auto& c : table.columns) w.PutString(c);
  w.PutVarU64(table.rows.size());
  for (const auto& row : table.rows) {
    w.PutVarU64(row.size());
    for (const auto& cell : row) w.PutString(cell);
  }
}

Result<privacy::Table> ReadTable(ByteReader& r) {
  privacy::Table table;
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  table.columns.resize(n);
  for (auto& c : table.columns) DRAI_RETURN_IF_ERROR(r.GetString(c));
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  table.rows.resize(n);
  for (auto& row : table.rows) {
    uint64_t cells = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(cells));
    row.resize(cells);
    for (auto& cell : row) DRAI_RETURN_IF_ERROR(r.GetString(cell));
  }
  return table;
}

void WriteSignal(ByteWriter& w, const timeseries::Signal& s) {
  w.PutString(s.name);
  w.PutVarU64(s.t.size());
  for (double t : s.t) w.PutF64(t);
  w.PutVarU64(s.v.size());
  for (double v : s.v) w.PutF64(v);
}

Result<timeseries::Signal> ReadSignal(ByteReader& r) {
  timeseries::Signal s;
  DRAI_RETURN_IF_ERROR(r.GetString(s.name));
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  if (n > r.remaining() / sizeof(double)) {
    return DataLoss("bundle signal: timestamp count exceeds payload");
  }
  s.t.resize(n);
  for (auto& t : s.t) DRAI_RETURN_IF_ERROR(r.GetF64(t));
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  if (n > r.remaining() / sizeof(double)) {
    return DataLoss("bundle signal: value count exceeds payload");
  }
  s.v.resize(n);
  for (auto& v : s.v) DRAI_RETURN_IF_ERROR(r.GetF64(v));
  return s;
}

}  // namespace

Bytes DataBundle::Serialize() const {
  ByteWriter w;
  w.PutU32(kBundleVersion);
  w.PutVarU64(blobs.size());
  for (const auto& [name, b] : blobs) {
    w.PutString(name);
    w.PutBlob(b);
  }
  w.PutVarU64(tensors.size());
  for (const auto& [name, t] : tensors) {
    w.PutString(name);
    container::WriteTensor(w, t);
  }
  w.PutVarU64(tables.size());
  for (const auto& [name, table] : tables) {
    w.PutString(name);
    WriteTable(w, table);
  }
  w.PutVarU64(signal_sets.size());
  for (const auto& [name, signals] : signal_sets) {
    w.PutString(name);
    w.PutVarU64(signals.size());
    for (const auto& s : signals) WriteSignal(w, s);
  }
  w.PutVarU64(examples.size());
  for (const auto& ex : examples) w.PutBlob(ex.Serialize());
  w.PutVarU64(attrs.size());
  for (const auto& [name, v] : attrs) {
    w.PutString(name);
    container::WriteAttr(w, v);
  }
  return w.Take();
}

Result<DataBundle> DataBundle::Parse(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  uint32_t version = 0;
  DRAI_RETURN_IF_ERROR(r.GetU32(version));
  if (version != kBundleVersion) {
    return DataLoss("bundle version " + std::to_string(version) +
                    " unsupported");
  }
  DataBundle bundle;
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    Bytes b;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_RETURN_IF_ERROR(r.GetBlob(b));
    bundle.blobs.emplace(std::move(name), std::move(b));
  }
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_ASSIGN_OR_RETURN(NDArray t, container::ReadTensor(r));
    bundle.tensors.emplace(std::move(name), std::move(t));
  }
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_ASSIGN_OR_RETURN(privacy::Table table, ReadTable(r));
    bundle.tables.emplace(std::move(name), std::move(table));
  }
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    uint64_t count = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(count));
    std::vector<timeseries::Signal> signals;
    signals.reserve(count);
    for (uint64_t k = 0; k < count; ++k) {
      DRAI_ASSIGN_OR_RETURN(timeseries::Signal s, ReadSignal(r));
      signals.push_back(std::move(s));
    }
    bundle.signal_sets.emplace(std::move(name), std::move(signals));
  }
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    Bytes payload;
    DRAI_RETURN_IF_ERROR(r.GetBlob(payload));
    DRAI_ASSIGN_OR_RETURN(shard::Example ex, shard::Example::Parse(payload));
    bundle.examples.push_back(std::move(ex));
  }
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_ASSIGN_OR_RETURN(container::AttrValue v, container::ReadAttr(r));
    bundle.attrs.emplace(std::move(name), std::move(v));
  }
  if (!r.exhausted()) {
    return DataLoss("bundle payload has trailing bytes");
  }
  return bundle;
}

DataBundle DataBundle::Clone() const {
  DataBundle out;
  out.blobs = blobs;
  for (const auto& [name, t] : tensors) {
    out.tensors.emplace(name, t.AsContiguous());
  }
  out.tables = tables;
  out.signal_sets = signal_sets;
  out.examples.reserve(examples.size());
  for (const auto& ex : examples) {
    shard::Example copy;
    copy.key = ex.key;
    for (const auto& [name, f] : ex.features) {
      copy.features.emplace(name, f.AsContiguous());
    }
    out.examples.push_back(std::move(copy));
  }
  out.attrs = attrs;
  return out;
}

uint64_t DataBundle::ApproxBytes() const {
  uint64_t total = 0;
  for (const auto& [_, b] : blobs) total += b.size();
  for (const auto& [_, t] : tensors) total += t.nbytes();
  for (const auto& [_, table] : tables) {
    for (const auto& row : table.rows) {
      for (const auto& cell : row) total += cell.size();
    }
  }
  for (const auto& [_, signals] : signal_sets) {
    for (const auto& s : signals) total += s.size() * 16;
  }
  for (const auto& ex : examples) total += ex.PayloadBytes();
  return total;
}

}  // namespace drai::core
