// drai/core/bundle.hpp
//
// DataBundle — the typed blackboard a pipeline's stages read and write.
// A bundle can carry every modality the four archetypes produce (tensors,
// raw file blobs, tabular records, time-series signals, examples ready to
// shard) plus string/numeric annotations. Stages take what they need and
// leave the rest; the pipeline records what changed for provenance.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "container/tensor_io.hpp"
#include "ndarray/ndarray.hpp"
#include "privacy/tabular.hpp"
#include "shard/example.hpp"
#include "timeseries/signal.hpp"

namespace drai::core {

class DataBundle {
 public:
  // -- raw file blobs (ingest inputs) --
  std::map<std::string, Bytes> blobs;
  // -- decoded tensors (fields, feature matrices) --
  std::map<std::string, NDArray> tensors;
  // -- tabular data (clinical records) --
  std::map<std::string, privacy::Table> tables;
  // -- irregular time series (fusion diagnostics) --
  std::map<std::string, std::vector<timeseries::Signal>> signal_sets;
  // -- training examples (structure/shard stages) --
  std::vector<shard::Example> examples;
  // -- annotations: stage outputs, units, parameters --
  std::map<std::string, container::AttrValue> attrs;

  /// Lookup helpers returning kNotFound instead of default-constructing.
  Result<NDArray> Tensor(const std::string& name) const;
  Result<Bytes> Blob(const std::string& name) const;

  void SetAttr(const std::string& name, container::AttrValue v) {
    attrs[name] = std::move(v);
  }
  [[nodiscard]] std::optional<container::AttrValue> Attr(
      const std::string& name) const;
  [[nodiscard]] double AttrOr(const std::string& name, double fallback) const;

  /// Approximate resident size, for stage metrics.
  [[nodiscard]] uint64_t ApproxBytes() const;

  /// Deep copy. Plain copy-construction shares NDArray storage (tensors and
  /// example features are views onto refcounted buffers), so a stage that
  /// mutates a tensor in place writes through every "copy". Snapshots that
  /// must stay pristine while the original keeps running — retry/quarantine
  /// slices, speculative working copies — need Clone.
  [[nodiscard]] DataBundle Clone() const;

  /// Full-fidelity serialization for checkpointing: every collection, in
  /// deterministic (map/vector) order, so equal bundles produce equal
  /// bytes. Tensors ride the CRC-checked container encoding; corruption
  /// surfaces as kDataLoss from Parse.
  [[nodiscard]] Bytes Serialize() const;
  static Result<DataBundle> Parse(std::span<const std::byte> bytes);
};

}  // namespace drai::core
