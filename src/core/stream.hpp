// drai/core/stream.hpp
//
// PartitionChannel — the bounded queue that connects two stage groups of an
// overlap window (see executor.hpp / DESIGN.md §9): the upstream group
// pushes each partition as it commits, the downstream group pops and starts
// processing it before the upstream barrier would have released. Capacity
// is bounded so a fast producer cannot balloon memory past the consumer.
//
// Blocking operations are cooperative-cancellation-aware: Pop (and the
// blocking Push) poll a CancelToken and honor a Deadline while they wait,
// so a hard-deadline cancel or an aborted window unblocks a waiting worker
// promptly. The executor's scheduler itself only ever uses the
// non-blocking TryPush (falling back to running the item inline when the
// channel is full), which makes the work-crew deadlock-free by
// construction: no worker ever blocks while holding work.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/cancel.hpp"
#include "common/timer.hpp"

namespace drai::core {

template <typename T>
class PartitionChannel {
 public:
  /// `capacity` = max items buffered; 0 is clamped to 1.
  explicit PartitionChannel(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  PartitionChannel(const PartitionChannel&) = delete;
  PartitionChannel& operator=(const PartitionChannel&) = delete;

  /// Non-blocking push. Returns false — leaving `item` untouched — when the
  /// channel is full or closed.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push: waits for space. Returns false — leaving `item`
  /// untouched — when the channel closed, `cancel` tripped, or `deadline`
  /// expired before space appeared.
  bool Push(T&& item, const CancelToken& cancel = CancelToken(),
            const Deadline& deadline = Deadline()) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!closed_ && items_.size() >= capacity_) {
        if (cancel.Cancelled() || deadline.expired()) return false;
        WaitSlice(not_full_, lock, deadline);
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item. Returns nullopt when the channel is
  /// closed and drained, `cancel` tripped, or `deadline` expired first.
  std::optional<T> Pop(const CancelToken& cancel = CancelToken(),
                       const Deadline& deadline = Deadline()) {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (items_.empty() && !closed_) {
        if (cancel.Cancelled() || deadline.expired()) return std::nullopt;
        WaitSlice(not_empty_, lock, deadline);
      }
      if (items_.empty()) return std::nullopt;  // closed and drained
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop; nullopt when nothing is buffered.
  std::optional<T> TryPop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Close the channel: further pushes fail, pops drain the buffer then
  /// return nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  [[nodiscard]] size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] size_t capacity() const { return capacity_; }

 private:
  /// One bounded wait slice. CancelToken has no wakeup hook (it is a
  /// poll-only flag shared with stage bodies), so waits are sliced at a few
  /// milliseconds and the loop re-polls the token — the same cooperative
  /// contract SleepUnlessCancelled uses.
  template <typename Cv>
  void WaitSlice(Cv& cv, std::unique_lock<std::mutex>& lock,
                 const Deadline& deadline) {
    constexpr auto kPoll = std::chrono::milliseconds(2);
    if (deadline.infinite()) {
      cv.wait_for(lock, kPoll);
    } else {
      const auto until = std::min(deadline.when(),
                                  Deadline::Clock::now() + kPoll);
      cv.wait_until(lock, until);
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace drai::core
