// drai/core/readiness.hpp
//
// The paper's primary contribution: five Data Readiness Levels crossed
// with five Data Processing Stages — Table 2's conceptual maturity matrix —
// plus a rule-based assessor that scores a concrete dataset's state
// against it.
//
// The matrix cells are requirements; a dataset *is at* level L when every
// applicable cell of rows 1..L is satisfied. Grey (N/A) cells in Table 2
// are encoded as "no requirement".
#pragma once

#include <array>
#include <optional>
#include <string>

#include "core/pipeline.hpp"  // StageKind

namespace drai::core {

/// Data Readiness Levels (Table 2's rows).
enum class ReadinessLevel : uint8_t {
  kRaw = 1,
  kCleaned = 2,
  kLabeled = 3,
  kFeatureEngineered = 4,
  kAiReady = 5,
};

std::string_view ReadinessLevelName(ReadinessLevel level);
inline constexpr ReadinessLevel kAllReadinessLevels[] = {
    ReadinessLevel::kRaw, ReadinessLevel::kCleaned, ReadinessLevel::kLabeled,
    ReadinessLevel::kFeatureEngineered, ReadinessLevel::kAiReady};

/// Observable facts about a dataset, grouped by the stage that establishes
/// them. The assessor reduces these to per-stage levels and an overall
/// readiness level. Fill what applies; the defaults are all "not done".
struct DatasetState {
  // -- ingest --
  bool acquired = false;                  ///< L1: raw data exists
  bool validated_standard_format = false; ///< L2: decoded into standard formats
  bool metadata_enriched = false;         ///< L3: units/attrs/ids attached
  bool high_throughput_ingest = false;    ///< L4: parallel/optimized ingest
  bool ingest_automated = false;          ///< L5: no manual steps

  // -- preprocess --
  bool initial_alignment = false;          ///< L2: first regrid/time-align pass
  bool grids_standardized = false;         ///< L3: one target grid/clock
  bool alignment_fully_standardized = false; ///< L4
  bool alignment_automated = false;        ///< L5

  // -- transform --
  bool basic_normalization = false;        ///< L3 (or anonymization where required)
  bool anonymization_done = true;          ///< set false when PHI present & raw
  bool basic_labels = false;               ///< L3: some labels attached
  bool normalization_finalized = false;    ///< L4: stats frozen & persisted
  bool comprehensive_labels = false;       ///< L4: labels for ~all samples
  bool transform_automated_audited = false;///< L5: automated + audit trail

  // -- structure --
  bool features_extracted = false;         ///< L4: domain features computed
  bool features_validated = false;         ///< L5: automated validation

  // -- shard --
  bool split_and_sharded = false;          ///< L5: train/val/test in binary shards

  // -- quantitative gates (quality floor for "cleaned") --
  double missing_fraction = 0.0;  ///< NaN/dropout fraction after cleaning
  double label_fraction = 0.0;    ///< labeled sample fraction
};

/// Requirement text of one matrix cell, or nullopt for N/A (grey) cells.
std::optional<std::string_view> MatrixCell(ReadinessLevel level,
                                           StageKind stage);

/// Does `state` satisfy the (level, stage) cell? N/A cells return true.
bool CellSatisfied(const DatasetState& state, ReadinessLevel level,
                   StageKind stage);

struct ReadinessAssessment {
  ReadinessLevel overall = ReadinessLevel::kRaw;
  /// Highest satisfied level per stage (level 1 is stage-independent; a
  /// stage whose cells are all N/A up to L reports L).
  std::array<ReadinessLevel, 5> per_stage{};
  /// Unsatisfied (level, stage) cells blocking the next level, rendered as
  /// "L3/transform: initial normalization ...".
  std::vector<std::string> blocking;
};

/// Score a dataset state against the matrix.
ReadinessAssessment Assess(const DatasetState& state);

/// Render Table 2 with satisfied cells marked for the given state — the
/// artifact bench_table2_maturity prints.
std::string RenderMaturityMatrix(const DatasetState& state);
/// Render the requirement matrix itself (no state).
std::string RenderMaturityMatrix();

}  // namespace drai::core
