// drai/core/datasheet.hpp
//
// Datasheets for Datasets (§5 cites them as the bias-mitigation practice):
// a structured data card generated from the manifest, quality report,
// readiness assessment and provenance hash, rendered as markdown. Every
// finalized drai dataset can emit one.
#pragma once

#include <string>

#include "core/quality.hpp"
#include "core/readiness.hpp"
#include "shard/manifest.hpp"

namespace drai::core {

struct Datasheet {
  // Motivation / composition (caller-provided narrative).
  std::string dataset_name;
  std::string motivation;
  std::string composition;
  std::string collection_process;
  std::string recommended_uses;
  std::string restrictions;  ///< e.g. "PHI-derived; de-identified under key K"

  // Machine-derived sections.
  shard::DatasetManifest manifest;
  QualityReport quality;
  ReadinessAssessment readiness;
  std::string provenance_hash;

  /// Render the full card as markdown.
  [[nodiscard]] std::string ToMarkdown() const;
};

/// Assemble a datasheet from the pieces a finalize step has at hand.
Datasheet MakeDatasheet(std::string dataset_name,
                        const shard::DatasetManifest& manifest,
                        const QualityReport& quality,
                        const ReadinessAssessment& readiness,
                        std::string provenance_hash);

}  // namespace drai::core
