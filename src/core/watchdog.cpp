#include "core/watchdog.hpp"

#include <chrono>
#include <vector>

namespace drai::core {

AttemptWatchdog::AttemptWatchdog(double poll_ms, StragglerFn on_straggler)
    : poll_ms_(poll_ms > 0 ? poll_ms : 2.0),
      on_straggler_(std::move(on_straggler)) {
  thread_ = std::thread([this] { Loop(); });
}

AttemptWatchdog::~AttemptWatchdog() { Stop(); }

void AttemptWatchdog::Track(uint64_t key, CancelToken token, double soft_ms,
                            double hard_ms, std::string what) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = Entry{std::move(token), soft_ms, hard_ms, std::move(what),
                        std::chrono::steady_clock::now(), false};
}

void AttemptWatchdog::Release(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(key);
}

void AttemptWatchdog::CancelKey(uint64_t key, const std::string& reason) {
  CancelToken token;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      token = it->second.token;
      found = true;
    }
  }
  // Cancel outside the lock: token state is independently synchronized and
  // the attempt may be releasing concurrently (then the cancel is moot).
  if (found) token.Cancel(reason);
}

void AttemptWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AttemptWatchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(poll_ms_),
                 [this] { return stop_; });
    if (stop_) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<uint64_t> stragglers;
    for (auto& [key, e] : entries_) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(now - e.start).count();
      if (e.hard_ms > 0 && !e.hard_fired && elapsed_ms >= e.hard_ms) {
        e.hard_fired = true;
        hard_cancels_.fetch_add(1, std::memory_order_relaxed);
        e.token.Cancel("hard deadline (" + std::to_string(e.hard_ms) +
                       "ms) exceeded: " + e.what);
      }
      if (e.soft_ms > 0 && elapsed_ms >= e.soft_ms &&
          straggled_.insert(key).second) {
        stragglers.push_back(key);
      }
    }
    if (!stragglers.empty() && on_straggler_) {
      // Fire outside the lock: the callback launches a speculative copy,
      // which immediately calls Track() on this watchdog.
      lock.unlock();
      for (uint64_t key : stragglers) on_straggler_(key);
      lock.lock();
    }
  }
}

}  // namespace drai::core
