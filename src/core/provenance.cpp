#include "core/provenance.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"

namespace drai::core {

ProvenanceGraph::ProvenanceGraph(const ProvenanceGraph& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  artifacts_ = other.artifacts_;
  activities_ = other.activities_;
  produced_by_ = other.produced_by_;
}

ProvenanceGraph& ProvenanceGraph::operator=(const ProvenanceGraph& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  artifacts_ = other.artifacts_;
  activities_ = other.activities_;
  produced_by_ = other.produced_by_;
  return *this;
}

ProvenanceGraph::ProvenanceGraph(ProvenanceGraph&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  artifacts_ = std::move(other.artifacts_);
  activities_ = std::move(other.activities_);
  produced_by_ = std::move(other.produced_by_);
}

ProvenanceGraph& ProvenanceGraph::operator=(ProvenanceGraph&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  artifacts_ = std::move(other.artifacts_);
  activities_ = std::move(other.activities_);
  produced_by_ = std::move(other.produced_by_);
  return *this;
}

size_t ProvenanceGraph::AddArtifact(const std::string& name,
                                    std::span<const std::byte> content) {
  return AddArtifactHashed(name, DigestToHex(Sha256::Hash(content)),
                           content.size());
}

size_t ProvenanceGraph::AddArtifactHashed(const std::string& name,
                                          std::string sha256_hex,
                                          uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  artifacts_.push_back({name, std::move(sha256_hex), bytes});
  return artifacts_.size() - 1;
}

Status ProvenanceGraph::AddActivity(Activity activity) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i : activity.inputs) {
    if (i >= artifacts_.size()) {
      return OutOfRange("activity input artifact index out of range");
    }
  }
  for (size_t o : activity.outputs) {
    if (o >= artifacts_.size()) {
      return OutOfRange("activity output artifact index out of range");
    }
    if (produced_by_.count(o)) {
      return AlreadyExists("artifact " + std::to_string(o) +
                           " already has a producer");
    }
  }
  const size_t act_index = activities_.size();
  for (size_t o : activity.outputs) produced_by_[o] = act_index;
  activities_.push_back(std::move(activity));
  return Status::Ok();
}

Result<std::vector<size_t>> ProvenanceGraph::Ancestors(size_t artifact) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (artifact >= artifacts_.size()) {
    return OutOfRange("artifact index out of range");
  }
  std::set<size_t> seen;
  std::vector<size_t> frontier{artifact};
  while (!frontier.empty()) {
    const size_t a = frontier.back();
    frontier.pop_back();
    auto it = produced_by_.find(a);
    if (it == produced_by_.end()) continue;
    for (size_t input : activities_[it->second].inputs) {
      if (seen.insert(input).second) frontier.push_back(input);
    }
  }
  return std::vector<size_t>(seen.begin(), seen.end());
}

Result<std::vector<size_t>> ProvenanceGraph::LineageActivities(
    size_t artifact) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (artifact >= artifacts_.size()) {
    return OutOfRange("artifact index out of range");
  }
  std::set<size_t> acts;
  std::vector<size_t> frontier{artifact};
  std::set<size_t> visited;
  while (!frontier.empty()) {
    const size_t a = frontier.back();
    frontier.pop_back();
    if (!visited.insert(a).second) continue;
    auto it = produced_by_.find(a);
    if (it == produced_by_.end()) continue;
    acts.insert(it->second);
    for (size_t input : activities_[it->second].inputs) {
      frontier.push_back(input);
    }
  }
  return std::vector<size_t>(acts.begin(), acts.end());
}

std::string ProvenanceGraph::RecordHash() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Sha256 ctx;
  for (const Artifact& a : artifacts_) {
    ctx.Update(a.name);
    ctx.Update("\x1f");
    ctx.Update(a.sha256_hex);
    ctx.Update("\x1f");
    ctx.Update(std::to_string(a.bytes));
    ctx.Update("\x1e");
  }
  for (const Activity& act : activities_) {
    ctx.Update(act.name);
    ctx.Update("\x1f");
    ctx.Update(act.stage_kind);
    for (const auto& [k, v] : act.params) {
      ctx.Update("\x1f");
      ctx.Update(k);
      ctx.Update("=");
      ctx.Update(v);
    }
    for (size_t i : act.inputs) {
      ctx.Update("\x1fi");
      ctx.Update(std::to_string(i));
    }
    for (size_t o : act.outputs) {
      ctx.Update("\x1fo");
      ctx.Update(std::to_string(o));
    }
    ctx.Update("\x1e");
  }
  return DigestToHex(ctx.Finish());
}

Bytes ProvenanceGraph::Serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ByteWriter w;
  w.PutRaw("PRV1", 4);
  w.PutVarU64(artifacts_.size());
  for (const Artifact& a : artifacts_) {
    w.PutString(a.name);
    w.PutString(a.sha256_hex);
    w.PutU64(a.bytes);
  }
  w.PutVarU64(activities_.size());
  for (const Activity& act : activities_) {
    w.PutString(act.name);
    w.PutString(act.stage_kind);
    w.PutVarU64(act.params.size());
    for (const auto& [k, v] : act.params) {
      w.PutString(k);
      w.PutString(v);
    }
    w.PutVarU64(act.inputs.size());
    for (size_t i : act.inputs) w.PutVarU64(i);
    w.PutVarU64(act.outputs.size());
    for (size_t o : act.outputs) w.PutVarU64(o);
    w.PutF64(act.seconds);
  }
  w.PutU32(Crc32(w.bytes()));
  return w.Take();
}

Result<ProvenanceGraph> ProvenanceGraph::Parse(
    std::span<const std::byte> bytes) {
  if (bytes.size() < 8) return DataLoss("provenance: too small");
  ByteReader crc_r(bytes.subspan(bytes.size() - 4));
  uint32_t crc = 0;
  DRAI_RETURN_IF_ERROR(crc_r.GetU32(crc));
  if (Crc32(bytes.subspan(0, bytes.size() - 4)) != crc) {
    return DataLoss("provenance: crc mismatch");
  }
  ByteReader r(bytes.subspan(0, bytes.size() - 4));
  char magic[4];
  DRAI_RETURN_IF_ERROR(r.GetRaw(magic, 4));
  if (std::string_view(magic, 4) != "PRV1") {
    return DataLoss("provenance: bad magic");
  }
  ProvenanceGraph g;
  uint64_t n_artifacts = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_artifacts));
  if (n_artifacts > (1ull << 24)) return DataLoss("provenance: implausible");
  g.artifacts_.resize(n_artifacts);
  for (auto& a : g.artifacts_) {
    DRAI_RETURN_IF_ERROR(r.GetString(a.name));
    DRAI_RETURN_IF_ERROR(r.GetString(a.sha256_hex));
    DRAI_RETURN_IF_ERROR(r.GetU64(a.bytes));
  }
  uint64_t n_activities = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_activities));
  if (n_activities > (1ull << 24)) return DataLoss("provenance: implausible");
  for (uint64_t k = 0; k < n_activities; ++k) {
    Activity act;
    DRAI_RETURN_IF_ERROR(r.GetString(act.name));
    DRAI_RETURN_IF_ERROR(r.GetString(act.stage_kind));
    uint64_t n_params = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(n_params));
    for (uint64_t p = 0; p < n_params; ++p) {
      std::string key, value;
      DRAI_RETURN_IF_ERROR(r.GetString(key));
      DRAI_RETURN_IF_ERROR(r.GetString(value));
      act.params[key] = value;
    }
    uint64_t n_in = 0, n_out = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(n_in));
    act.inputs.resize(n_in);
    for (auto& i : act.inputs) {
      uint64_t v = 0;
      DRAI_RETURN_IF_ERROR(r.GetVarU64(v));
      i = static_cast<size_t>(v);
    }
    DRAI_RETURN_IF_ERROR(r.GetVarU64(n_out));
    act.outputs.resize(n_out);
    for (auto& o : act.outputs) {
      uint64_t v = 0;
      DRAI_RETURN_IF_ERROR(r.GetVarU64(v));
      o = static_cast<size_t>(v);
    }
    DRAI_RETURN_IF_ERROR(r.GetF64(act.seconds));
    DRAI_RETURN_IF_ERROR(g.AddActivity(std::move(act)));
  }
  return g;
}

std::string ProvenanceGraph::ToText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "artifacts (" + std::to_string(artifacts_.size()) + "):\n";
  for (size_t i = 0; i < artifacts_.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + artifacts_[i].name + "  sha256=" +
           artifacts_[i].sha256_hex.substr(0, 12) + "...  " +
           HumanBytes(artifacts_[i].bytes) + "\n";
  }
  out += "activities (" + std::to_string(activities_.size()) + "):\n";
  for (const Activity& act : activities_) {
    out += "  " + act.stage_kind + "/" + act.name + " (" +
           HumanDuration(act.seconds) + ")";
    if (!act.inputs.empty()) {
      out += "  in:";
      for (size_t i : act.inputs) out += " " + std::to_string(i);
    }
    if (!act.outputs.empty()) {
      out += "  out:";
      for (size_t o : act.outputs) out += " " + std::to_string(o);
    }
    out += "\n";
  }
  return out;
}

}  // namespace drai::core
