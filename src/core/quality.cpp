#include "core/quality.hpp"

#include <cmath>
#include <set>

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace drai::core {

double QualityReport::MissingFraction() const {
  uint64_t total = 0, nan = 0;
  for (const auto& [_, f] : features) {
    total += f.total_elements;
    nan += f.nan_elements;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(nan) / static_cast<double>(total);
}

double QualityReport::BalanceScore() const {
  if (label_counts.empty()) return 0.0;
  return stats::BalanceScore(label_counts);
}

double QualityReport::OverallScore() const {
  if (n_examples == 0) return 0.0;
  const double dup_fraction =
      static_cast<double>(duplicate_keys + duplicate_payloads) /
      static_cast<double>(2 * n_examples);
  const double balance = label_counts.empty() ? 1.0 : BalanceScore();
  double score = 1.0;
  score *= 1.0 - std::min(1.0, MissingFraction());
  score *= 1.0 - std::min(1.0, dup_fraction);
  score *= 0.5 + 0.5 * balance;  // imbalance halves the score at worst
  return score;
}

std::string QualityReport::ToText() const {
  std::string out;
  out += "examples: " + std::to_string(n_examples) + "\n";
  out += "duplicate keys: " + std::to_string(duplicate_keys) +
         ", duplicate payloads: " + std::to_string(duplicate_payloads) + "\n";
  out += "missing fraction: " + FormatDouble(MissingFraction(), 4) + "\n";
  out += "labeled fraction: " + FormatDouble(labeled_fraction, 4) + "\n";
  if (!label_counts.empty()) {
    out += "label balance (norm. entropy): " + FormatDouble(BalanceScore(), 4) +
           ", imbalance ratio: " +
           FormatDouble(stats::ImbalanceRatio(label_counts), 2) + "\n";
  }
  out += "overall score: " + FormatDouble(OverallScore(), 4) + "\n";
  for (const auto& [name, f] : features) {
    out += "  feature '" + name + "': mean=" + FormatDouble(f.stats.mean(), 4) +
           " std=" + FormatDouble(f.stats.stddev(), 4) +
           " min=" + FormatDouble(f.stats.min(), 4) +
           " max=" + FormatDouble(f.stats.max(), 4) +
           " missing=" + FormatDouble(f.MissingFraction(), 4) + "\n";
  }
  return out;
}

QualityReport AssessQuality(std::span<const shard::Example> examples) {
  QualityReport report;
  report.n_examples = examples.size();
  std::set<std::string> keys;
  std::set<uint64_t> payload_hashes;
  std::vector<int64_t> labels;
  for (const shard::Example& ex : examples) {
    if (!keys.insert(ex.key).second) ++report.duplicate_keys;
    // Content hash over feature bytes only (key excluded), so a renamed
    // byte-identical copy still registers as a duplicate payload.
    Bytes content;
    for (const auto& [name, tensor] : ex.features) {
      const NDArray c = tensor.IsContiguous() ? tensor : tensor.AsContiguous();
      const auto raw = c.raw_bytes();
      content.insert(content.end(), raw.begin(), raw.end());
    }
    const uint64_t h = Fnv1a64(std::span<const std::byte>(content.data(),
                                                          content.size()));
    if (!payload_hashes.insert(h).second) ++report.duplicate_payloads;

    for (const auto& [name, tensor] : ex.features) {
      if (name == "label") continue;
      FeatureQuality& fq = report.features[name];
      const size_t n = tensor.numel();
      fq.total_elements += n;
      for (size_t i = 0; i < n; ++i) {
        const double v = tensor.GetAsDouble(i);
        if (std::isnan(v)) {
          ++fq.nan_elements;
        }
        fq.stats.Add(v);
      }
    }
    const auto label = ex.Label();
    if (label.ok()) {
      labels.push_back(label.value());
    }
  }
  report.label_counts = stats::CountClasses(labels);
  report.labeled_fraction =
      examples.empty() ? 0.0
                       : static_cast<double>(labels.size()) /
                             static_cast<double>(examples.size());
  return report;
}

}  // namespace drai::core
