#include "grid/latlon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace drai::grid {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
}

LatLonGrid::LatLonGrid(std::vector<double> lats, size_t n_lon)
    : lats_(std::move(lats)), n_lon_(n_lon) {
  if (lats_.size() < 2 || n_lon_ < 2) {
    throw std::invalid_argument("LatLonGrid: need at least 2x2 cells");
  }
  // Edges: midpoints between centers, clamped at the poles.
  edges_.resize(lats_.size() + 1);
  edges_.front() = -90.0;
  edges_.back() = 90.0;
  for (size_t i = 1; i < lats_.size(); ++i) {
    edges_[i] = 0.5 * (lats_[i - 1] + lats_[i]);
  }
}

LatLonGrid LatLonGrid::Uniform(size_t n_lat, size_t n_lon) {
  std::vector<double> lats(n_lat);
  const double step = 180.0 / static_cast<double>(n_lat);
  for (size_t i = 0; i < n_lat; ++i) {
    lats[i] = -90.0 + (static_cast<double>(i) + 0.5) * step;
  }
  return LatLonGrid(std::move(lats), n_lon);
}

LatLonGrid LatLonGrid::GaussianLike(size_t n_lat, size_t n_lon) {
  std::vector<double> lats(n_lat);
  for (size_t i = 0; i < n_lat; ++i) {
    // Uniform in sin(lat): cell centers of equal-area bands.
    const double s =
        -1.0 + (2.0 * (static_cast<double>(i) + 0.5)) / static_cast<double>(n_lat);
    lats[i] = std::asin(s) / kDegToRad;
  }
  return LatLonGrid(std::move(lats), n_lon);
}

double LatLonGrid::lon(size_t j) const {
  return 360.0 * static_cast<double>(j) / static_cast<double>(n_lon_);
}

double LatLonGrid::CellArea(size_t i_lat) const {
  // Proportional true cell area: (sin(edge_hi) - sin(edge_lo)) * dlon.
  const double lo = edges_[i_lat] * kDegToRad;
  const double hi = edges_[i_lat + 1] * kDegToRad;
  return (std::sin(hi) - std::sin(lo)) / static_cast<double>(n_lon_);
}

bool LatLonGrid::SameAs(const LatLonGrid& other) const {
  return lats_ == other.lats_ && n_lon_ == other.n_lon_;
}

std::string_view RegridMethodName(RegridMethod m) {
  switch (m) {
    case RegridMethod::kNearest: return "nearest";
    case RegridMethod::kBilinear: return "bilinear";
    case RegridMethod::kConservative: return "conservative";
  }
  return "?";
}

namespace {

// Index of the source latitude center nearest to `lat`.
size_t NearestLat(const LatLonGrid& g, double lat) {
  size_t best = 0;
  double best_d = 1e300;
  for (size_t i = 0; i < g.n_lat(); ++i) {
    const double d = std::fabs(g.lat(i) - lat);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

// Bracketing lat centers and interpolation weight for `lat`; clamps at the
// poles (constant extrapolation).
void LatBracket(const LatLonGrid& g, double lat, size_t& i0, size_t& i1,
                double& w1) {
  if (lat <= g.lat(0)) {
    i0 = i1 = 0;
    w1 = 0;
    return;
  }
  if (lat >= g.lat(g.n_lat() - 1)) {
    i0 = i1 = g.n_lat() - 1;
    w1 = 0;
    return;
  }
  size_t hi = 1;
  while (g.lat(hi) < lat) ++hi;
  i0 = hi - 1;
  i1 = hi;
  w1 = (lat - g.lat(i0)) / (g.lat(i1) - g.lat(i0));
}

// Bracketing lon centers (periodic) and weight.
void LonBracket(const LatLonGrid& g, double lon, size_t& j0, size_t& j1,
                double& w1) {
  const double dlon = 360.0 / static_cast<double>(g.n_lon());
  double x = lon / dlon;
  const double fl = std::floor(x);
  w1 = x - fl;
  const int64_t base = static_cast<int64_t>(fl);
  const int64_t n = static_cast<int64_t>(g.n_lon());
  j0 = static_cast<size_t>(((base % n) + n) % n);
  j1 = static_cast<size_t>((((base + 1) % n) + n) % n);
}

// Overlap of [a0, a1] and [b0, b1].
double Overlap1D(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

// Longitude interval overlap on the periodic [0, 360) circle.
double LonOverlap(double a0, double a1, double b0, double b1) {
  double total = 0;
  for (int shift = -1; shift <= 1; ++shift) {
    total += Overlap1D(a0, a1, b0 + 360.0 * shift, b1 + 360.0 * shift);
  }
  return total;
}

}  // namespace

Result<NDArray> Regrid(const NDArray& field, const LatLonGrid& src,
                       const LatLonGrid& dst, RegridMethod method) {
  if (field.rank() != 2 || field.shape()[0] != src.n_lat() ||
      field.shape()[1] != src.n_lon()) {
    return InvalidArgument("Regrid: field shape does not match source grid");
  }
  if (!IsFloating(field.dtype())) {
    return InvalidArgument("Regrid: floating dtypes only");
  }
  NDArray out = NDArray::Zeros({dst.n_lat(), dst.n_lon()}, field.dtype());
  const size_t sn_lon = src.n_lon();

  auto src_at = [&](size_t i, size_t j) {
    return field.GetAsDouble(i * sn_lon + j);
  };

  switch (method) {
    case RegridMethod::kNearest: {
      const double dlon_src = 360.0 / static_cast<double>(sn_lon);
      for (size_t i = 0; i < dst.n_lat(); ++i) {
        const size_t si = NearestLat(src, dst.lat(i));
        for (size_t j = 0; j < dst.n_lon(); ++j) {
          const double lon = dst.lon(j);
          size_t sj = static_cast<size_t>(std::lround(lon / dlon_src)) % sn_lon;
          out.SetFromDouble(i * dst.n_lon() + j, src_at(si, sj));
        }
      }
      break;
    }
    case RegridMethod::kBilinear: {
      for (size_t i = 0; i < dst.n_lat(); ++i) {
        size_t i0, i1;
        double wlat;
        LatBracket(src, dst.lat(i), i0, i1, wlat);
        for (size_t j = 0; j < dst.n_lon(); ++j) {
          size_t j0, j1;
          double wlon;
          // Source centers are at (j + 0.5)*dlon? No: lon(j) = j*dlon
          LonBracket(src, dst.lon(j), j0, j1, wlon);
          const double v00 = src_at(i0, j0);
          const double v01 = src_at(i0, j1);
          const double v10 = src_at(i1, j0);
          const double v11 = src_at(i1, j1);
          const double v = (1 - wlat) * ((1 - wlon) * v00 + wlon * v01) +
                           wlat * ((1 - wlon) * v10 + wlon * v11);
          out.SetFromDouble(i * dst.n_lon() + j, v);
        }
      }
      break;
    }
    case RegridMethod::kConservative: {
      // Precompute lon edges for both grids.
      const double sdlon = 360.0 / static_cast<double>(sn_lon);
      const double ddlon = 360.0 / static_cast<double>(dst.n_lon());
      // For each destination cell, accumulate area-weighted source values
      // over overlapping bands.
      for (size_t i = 0; i < dst.n_lat(); ++i) {
        const double dsin0 = std::sin(dst.lat_edges()[i] * kDegToRad);
        const double dsin1 = std::sin(dst.lat_edges()[i + 1] * kDegToRad);
        // Source latitude bands overlapping this destination band.
        std::vector<std::pair<size_t, double>> lat_overlaps;
        for (size_t si = 0; si < src.n_lat(); ++si) {
          const double ssin0 = std::sin(src.lat_edges()[si] * kDegToRad);
          const double ssin1 = std::sin(src.lat_edges()[si + 1] * kDegToRad);
          const double ov = Overlap1D(ssin0, ssin1, dsin0, dsin1);
          if (ov > 0) lat_overlaps.emplace_back(si, ov);
        }
        for (size_t j = 0; j < dst.n_lon(); ++j) {
          const double dl0 = dst.lon(j) - 0.5 * ddlon;
          const double dl1 = dst.lon(j) + 0.5 * ddlon;
          double num = 0, den = 0;
          for (const auto& [si, wlat] : lat_overlaps) {
            for (size_t sj = 0; sj < sn_lon; ++sj) {
              const double sl0 = src.lon(sj) - 0.5 * sdlon;
              const double sl1 = src.lon(sj) + 0.5 * sdlon;
              const double wlon = LonOverlap(sl0, sl1, dl0, dl1);
              if (wlon <= 0) continue;
              const double v = src_at(si, sj);
              if (std::isnan(v)) continue;  // missing source cell
              const double w = wlat * wlon;
              num += w * v;
              den += w;
            }
          }
          out.SetFromDouble(i * dst.n_lon() + j,
                            den > 0 ? num / den
                                    : std::numeric_limits<double>::quiet_NaN());
        }
      }
      break;
    }
  }
  return out;
}

Result<double> AreaWeightedMean(const NDArray& field, const LatLonGrid& g) {
  if (field.rank() != 2 || field.shape()[0] != g.n_lat() ||
      field.shape()[1] != g.n_lon()) {
    return InvalidArgument("AreaWeightedMean: shape mismatch");
  }
  double num = 0, den = 0;
  for (size_t i = 0; i < g.n_lat(); ++i) {
    const double w = g.CellArea(i);
    for (size_t j = 0; j < g.n_lon(); ++j) {
      const double v = field.GetAsDouble(i * g.n_lon() + j);
      if (std::isnan(v)) continue;
      num += w * v;
      den += w;
    }
  }
  if (den == 0) return InvalidArgument("AreaWeightedMean: all missing");
  return num / den;
}

Result<NDArray> ExtractPatches(const NDArray& field, size_t ph, size_t pw) {
  if (ph == 0 || pw == 0) return InvalidArgument("ExtractPatches: zero patch");
  NDArray input = field.IsContiguous() ? field : field.AsContiguous();
  if (input.rank() == 2) {
    input = input.Reshape({1, input.shape()[0], input.shape()[1]});
  }
  if (input.rank() != 3) {
    return InvalidArgument("ExtractPatches: rank must be 2 or 3");
  }
  const size_t channels = input.shape()[0];
  const size_t h = input.shape()[1];
  const size_t w = input.shape()[2];
  const size_t py = h / ph;
  const size_t px = w / pw;
  if (py == 0 || px == 0) {
    return InvalidArgument("ExtractPatches: patch larger than field");
  }
  NDArray out = NDArray::Zeros({py * px, channels, ph, pw}, input.dtype());
  size_t patch = 0;
  for (size_t by = 0; by < py; ++by) {
    for (size_t bx = 0; bx < px; ++bx, ++patch) {
      for (size_t c = 0; c < channels; ++c) {
        for (size_t y = 0; y < ph; ++y) {
          for (size_t x = 0; x < pw; ++x) {
            const size_t src =
                c * h * w + (by * ph + y) * w + (bx * pw + x);
            const size_t dst = ((patch * channels + c) * ph + y) * pw + x;
            out.SetFromDouble(dst, input.GetAsDouble(src));
          }
        }
      }
    }
  }
  return out;
}

}  // namespace drai::grid
