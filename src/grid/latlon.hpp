// drai/grid/latlon.hpp
//
// Spherical lat-lon grids and regridding — the climate archetype's
// `regrid` step (§3.1: ClimaX interpolates CMIP6 grids to a common
// resolution; Pangu-Weather regrids reanalyses before patching).
//
// Grids are cell-centered. Latitudes may be uniformly spaced or
// Gaussian-like (sine-spaced, matching spectral-model output closely
// enough to exercise the heterogeneous-grid alignment problem).
// Longitudes are uniform on [0, 360) and periodic.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::grid {

class LatLonGrid {
 public:
  /// Uniform cell-centered grid: lat in (-90, 90), lon in [0, 360).
  static LatLonGrid Uniform(size_t n_lat, size_t n_lon);
  /// Gaussian-like grid: latitudes at arcsin of uniformly spaced sines —
  /// denser near the equator, like spectral transform grids.
  static LatLonGrid GaussianLike(size_t n_lat, size_t n_lon);

  [[nodiscard]] size_t n_lat() const { return lats_.size(); }
  [[nodiscard]] size_t n_lon() const { return n_lon_; }
  /// Cell-center latitude in degrees, ascending.
  [[nodiscard]] double lat(size_t i) const { return lats_[i]; }
  /// Cell-center longitude in degrees, [0, 360).
  [[nodiscard]] double lon(size_t j) const;
  /// Latitude cell edges (n_lat + 1 values, ascending, clamped to ±90).
  [[nodiscard]] const std::vector<double>& lat_edges() const { return edges_; }
  /// Cell area weight (proportional to the true spherical cell area).
  [[nodiscard]] double CellArea(size_t i_lat) const;

  [[nodiscard]] bool SameAs(const LatLonGrid& other) const;

 private:
  LatLonGrid(std::vector<double> lats, size_t n_lon);
  std::vector<double> lats_;
  std::vector<double> edges_;
  size_t n_lon_;
};

enum class RegridMethod {
  kNearest,       ///< nearest cell center; cheap, non-smooth
  kBilinear,      ///< lat-lon bilinear with periodic longitude
  kConservative,  ///< first-order area-weighted; preserves the global mean
};

std::string_view RegridMethodName(RegridMethod m);

/// Regrid a [n_lat, n_lon] field from `src` to `dst`. Output dtype follows
/// the input. NaNs propagate under nearest/bilinear; conservative treats
/// NaN cells as missing (zero weight) and yields NaN only where the entire
/// overlap is missing.
Result<NDArray> Regrid(const NDArray& field, const LatLonGrid& src,
                       const LatLonGrid& dst, RegridMethod method);

/// Area-weighted global mean of a field on a grid — the invariant the
/// conservative method preserves (tested property).
Result<double> AreaWeightedMean(const NDArray& field, const LatLonGrid& g);

/// Slice a [channels, n_lat, n_lon] (or [n_lat, n_lon]) field into
/// non-overlapping spatial patches of size (ph, pw), Pangu-style, returning
/// [n_patches, channels, ph, pw]. Trailing partial patches are dropped.
Result<NDArray> ExtractPatches(const NDArray& field, size_t ph, size_t pw);

}  // namespace drai::grid
