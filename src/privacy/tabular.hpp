// drai/privacy/tabular.hpp
//
// String-typed tabular records — the clinical-data currency of the bio
// archetype's anonymization step. Kept deliberately simple: a Table is
// column names plus rows of strings; typed interpretation happens at the
// privacy transforms that need it (ages, dates, zips).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace drai::privacy {

struct Table {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] size_t NumRows() const { return rows.size(); }
  [[nodiscard]] size_t NumCols() const { return columns.size(); }
  /// Index of a column name, or -1.
  [[nodiscard]] int ColumnIndex(const std::string& name) const;
  /// Validates rectangularity.
  [[nodiscard]] Status Validate() const;
};

/// HIPAA-ish field sensitivity classes.
enum class FieldClass {
  kDirectIdentifier,  ///< names, MRNs, SSNs, emails, phones — must be removed
  kQuasiIdentifier,   ///< dob, age, zip, sex — re-identification risk in combination
  kSensitive,         ///< diagnoses, labs — the values research needs
  kOther,
};

std::string_view FieldClassName(FieldClass c);

/// Classify a column from its name and sample values (heuristics modeled on
/// real de-identification tooling: name patterns first, value patterns as
/// a fallback — an SSN-shaped column is an identifier whatever it's called).
FieldClass ClassifyField(const std::string& column_name,
                         std::span<const std::string> sample_values);

/// True when the string looks like an SSN (###-##-####), email, or phone.
bool LooksLikeSsn(const std::string& v);
bool LooksLikeEmail(const std::string& v);
bool LooksLikePhone(const std::string& v);
/// ISO date YYYY-MM-DD.
bool LooksLikeIsoDate(const std::string& v);

}  // namespace drai::privacy
