#include "privacy/anonymize.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace drai::privacy {

Pseudonymizer::Pseudonymizer(std::string key, std::string prefix)
    : key_(std::move(key)), prefix_(std::move(prefix)) {
  if (key_.size() < 16) {
    throw std::invalid_argument(
        "Pseudonymizer: key must be at least 16 bytes");
  }
}

std::string Pseudonymizer::Token(std::string_view value) const {
  const Sha256Digest mac = HmacSha256(key_, value);
  // 16 hex chars (64 bits) is ample for collision-free tokens at any
  // realistic cohort size.
  return prefix_ + DigestToHex(mac).substr(0, 16);
}

Status Pseudonymizer::PseudonymizeColumn(Table& table,
                                         const std::string& column) const {
  const int col = table.ColumnIndex(column);
  if (col < 0) return NotFound("no such column: " + column);
  for (auto& row : table.rows) {
    if (!row[static_cast<size_t>(col)].empty()) {
      row[static_cast<size_t>(col)] = Token(row[static_cast<size_t>(col)]);
    }
  }
  return Status::Ok();
}

DateShifter::DateShifter(std::string key, int max_shift_days)
    : key_(std::move(key)), max_shift_days_(max_shift_days) {
  if (max_shift_days_ <= 0) {
    throw std::invalid_argument("DateShifter: max_shift_days must be > 0");
  }
}

int64_t DateShifter::ShiftFor(std::string_view subject_id) const {
  const Sha256Digest mac = HmacSha256(key_, subject_id);
  uint64_t h = 0;
  for (int i = 0; i < 8; ++i) h = (h << 8) | mac[static_cast<size_t>(i)];
  const int64_t span = 2 * static_cast<int64_t>(max_shift_days_) + 1;
  return static_cast<int64_t>(h % static_cast<uint64_t>(span)) -
         max_shift_days_;
}

// Civil-date conversion (Howard Hinnant's algorithms, public domain).
Result<int64_t> DateShifter::IsoToDays(const std::string& iso_date) {
  if (!LooksLikeIsoDate(iso_date)) {
    return InvalidArgument("not an ISO date: " + iso_date);
  }
  int64_t y = 0, m = 0, d = 0;
  if (!ParseInt64(iso_date.substr(0, 4), y) ||
      !ParseInt64(iso_date.substr(5, 2), m) ||
      !ParseInt64(iso_date.substr(8, 2), d)) {
    return InvalidArgument("unparseable ISO date: " + iso_date);
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return InvalidArgument("out-of-range ISO date: " + iso_date);
  }
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const uint64_t yoe = static_cast<uint64_t>(y - era * 400);
  const uint64_t doy =
      static_cast<uint64_t>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const uint64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

std::string DateShifter::DaysToIso(int64_t days) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint64_t doe = static_cast<uint64_t>(z - era * 146097);
  const uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint64_t mp = (5 * doy + 2) / 153;
  const uint64_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint64_t m = mp + (mp < 10 ? 3 : static_cast<uint64_t>(-9));
  const int64_t year = y + (m <= 2);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04lld-%02llu-%02llu",
                static_cast<long long>(year),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(d));
  return buf;
}

Result<std::string> DateShifter::Shift(std::string_view subject_id,
                                       const std::string& iso_date) const {
  DRAI_ASSIGN_OR_RETURN(int64_t days, IsoToDays(iso_date));
  return DaysToIso(days + ShiftFor(subject_id));
}

Status DateShifter::ShiftColumn(Table& table,
                                const std::string& subject_column,
                                const std::string& date_column) const {
  const int subj = table.ColumnIndex(subject_column);
  const int date = table.ColumnIndex(date_column);
  if (subj < 0) return NotFound("no such column: " + subject_column);
  if (date < 0) return NotFound("no such column: " + date_column);
  for (auto& row : table.rows) {
    std::string& value = row[static_cast<size_t>(date)];
    if (value.empty()) continue;
    DRAI_ASSIGN_OR_RETURN(value, Shift(row[static_cast<size_t>(subj)], value));
  }
  return Status::Ok();
}

namespace {

/// Generalize one cell of a numeric-band column at a level.
std::string GeneralizeNumeric(const std::string& value, int64_t base_band,
                              size_t level) {
  int64_t v = 0;
  if (!ParseInt64(value, v)) return value;  // non-numeric passes through
  const int64_t band = base_band << level;
  const int64_t lo = (v / band) * band - (v < 0 && v % band != 0 ? band : 0);
  return std::to_string(lo) + "-" + std::to_string(lo + band - 1);
}

std::string GeneralizePrefix(const std::string& value, size_t base_len,
                             size_t level) {
  const size_t keep = base_len > level ? base_len - level : 0;
  if (value.size() <= keep) return value;
  std::string out = value.substr(0, keep);
  out.append(value.size() - keep, '*');
  return out;
}

/// Equivalence-class key over quasi columns.
std::string ClassKey(const std::vector<std::string>& row,
                     const std::vector<size_t>& quasi_idx) {
  std::string key;
  for (size_t c : quasi_idx) {
    key += row[c];
    key += '\x1f';
  }
  return key;
}

}  // namespace

Result<size_t> MinClassSize(const Table& table,
                            const std::vector<std::string>& quasi_columns) {
  DRAI_RETURN_IF_ERROR(table.Validate());
  if (table.rows.empty()) return static_cast<size_t>(0);
  std::vector<size_t> idx;
  for (const std::string& c : quasi_columns) {
    const int i = table.ColumnIndex(c);
    if (i < 0) return NotFound("no such column: " + c);
    idx.push_back(static_cast<size_t>(i));
  }
  std::map<std::string, size_t> counts;
  for (const auto& row : table.rows) ++counts[ClassKey(row, idx)];
  size_t mn = SIZE_MAX;
  for (const auto& [_, n] : counts) mn = std::min(mn, n);
  return mn;
}

Result<size_t> MinDiversity(const Table& table,
                            const std::vector<std::string>& quasi_columns,
                            const std::string& sensitive_column) {
  DRAI_RETURN_IF_ERROR(table.Validate());
  if (table.rows.empty()) return static_cast<size_t>(0);
  std::vector<size_t> idx;
  for (const std::string& c : quasi_columns) {
    const int i = table.ColumnIndex(c);
    if (i < 0) return NotFound("no such column: " + c);
    idx.push_back(static_cast<size_t>(i));
  }
  const int sens = table.ColumnIndex(sensitive_column);
  if (sens < 0) return NotFound("no such column: " + sensitive_column);
  std::map<std::string, std::set<std::string>> diversity;
  for (const auto& row : table.rows) {
    diversity[ClassKey(row, idx)].insert(row[static_cast<size_t>(sens)]);
  }
  size_t mn = SIZE_MAX;
  for (const auto& [_, s] : diversity) mn = std::min(mn, s.size());
  return mn;
}

Result<KAnonymityReport> EnforceKAnonymity(Table& table,
                                           const KAnonymityConfig& config) {
  DRAI_RETURN_IF_ERROR(table.Validate());
  if (config.k == 0) return InvalidArgument("k must be > 0");
  std::vector<std::string> quasi;
  for (const auto& [name, _] : config.numeric_bands) quasi.push_back(name);
  for (const auto& [name, _] : config.prefix_lengths) quasi.push_back(name);
  if (quasi.empty()) return InvalidArgument("no quasi-identifiers configured");
  std::vector<size_t> quasi_idx;
  for (const std::string& c : quasi) {
    const int i = table.ColumnIndex(c);
    if (i < 0) return NotFound("no such column: " + c);
    quasi_idx.push_back(static_cast<size_t>(i));
  }

  const Table original = table;
  KAnonymityReport report;
  for (size_t level = 0; level <= config.max_levels; ++level) {
    // Re-generalize from the original at this level.
    table = original;
    for (auto& row : table.rows) {
      for (const auto& [name, band] : config.numeric_bands) {
        const size_t c = static_cast<size_t>(table.ColumnIndex(name));
        row[c] = GeneralizeNumeric(row[c], band, level);
      }
      for (const auto& [name, len] : config.prefix_lengths) {
        const size_t c = static_cast<size_t>(table.ColumnIndex(name));
        row[c] = GeneralizePrefix(row[c], len, level);
      }
    }
    // Count classes; suppress rows in classes still below k.
    std::map<std::string, size_t> counts;
    for (const auto& row : table.rows) ++counts[ClassKey(row, quasi_idx)];
    size_t suppressed = 0;
    for (const auto& [_, n] : counts) {
      if (n < config.k) suppressed += n;
    }
    // Accept this level when suppression is under 10% of rows, or at the
    // final level regardless (suppress what remains).
    const bool acceptable =
        suppressed * 10 <= table.rows.size() || level == config.max_levels;
    if (!acceptable) continue;

    std::vector<std::vector<std::string>> kept;
    kept.reserve(table.rows.size());
    for (auto& row : table.rows) {
      if (counts[ClassKey(row, quasi_idx)] >= config.k) {
        kept.push_back(std::move(row));
      }
    }
    report.suppressed_rows = table.rows.size() - kept.size();
    table.rows = std::move(kept);
    report.generalization_level = level;
    std::map<std::string, size_t> final_counts;
    for (const auto& row : table.rows) ++final_counts[ClassKey(row, quasi_idx)];
    report.equivalence_classes = final_counts.size();
    size_t mn = table.rows.empty() ? 0 : SIZE_MAX;
    for (const auto& [_, n] : final_counts) mn = std::min(mn, n);
    report.k_achieved = table.rows.empty() ? 0 : mn;
    return report;
  }
  return Internal("unreachable: final level always accepted");
}

}  // namespace drai::privacy
