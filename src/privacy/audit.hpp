// drai/privacy/audit.hpp
//
// Hash-chained audit log — the "secure and auditable workflows" requirement
// (§2.2, §5). Every privacy-relevant operation appends an entry whose hash
// covers the previous entry's hash, so any retroactive tampering breaks
// verification from that point forward (a lightweight transparency log).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"

namespace drai::privacy {

struct AuditEntry {
  uint64_t sequence = 0;
  std::string actor;    ///< pipeline/user identity
  std::string action;   ///< e.g. "pseudonymize", "k-anonymize", "export"
  std::string detail;   ///< free text: columns touched, parameters
  std::string prev_hash_hex;
  std::string hash_hex;  ///< SHA-256 over (sequence, actor, action, detail, prev)
};

class AuditLog {
 public:
  /// Append an entry; hash chain is maintained internally.
  const AuditEntry& Append(std::string actor, std::string action,
                           std::string detail);

  [[nodiscard]] const std::vector<AuditEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] size_t size() const { return entries_.size(); }

  /// Recompute the chain and compare; kDataLoss names the first bad entry.
  [[nodiscard]] Status Verify() const;

  /// Hash of the latest entry ("" when empty) — what a manifest records.
  [[nodiscard]] std::string HeadHash() const;

  [[nodiscard]] Bytes Serialize() const;
  static Result<AuditLog> Parse(std::span<const std::byte> bytes);

 private:
  static std::string ComputeHash(const AuditEntry& e);
  std::vector<AuditEntry> entries_;
};

}  // namespace drai::privacy
