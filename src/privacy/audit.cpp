#include "privacy/audit.hpp"

namespace drai::privacy {

std::string AuditLog::ComputeHash(const AuditEntry& e) {
  Sha256 ctx;
  ctx.Update(std::to_string(e.sequence));
  ctx.Update("\x1f");
  ctx.Update(e.actor);
  ctx.Update("\x1f");
  ctx.Update(e.action);
  ctx.Update("\x1f");
  ctx.Update(e.detail);
  ctx.Update("\x1f");
  ctx.Update(e.prev_hash_hex);
  return DigestToHex(ctx.Finish());
}

const AuditEntry& AuditLog::Append(std::string actor, std::string action,
                                   std::string detail) {
  AuditEntry e;
  e.sequence = entries_.size();
  e.actor = std::move(actor);
  e.action = std::move(action);
  e.detail = std::move(detail);
  e.prev_hash_hex = HeadHash();
  e.hash_hex = ComputeHash(e);
  entries_.push_back(std::move(e));
  return entries_.back();
}

Status AuditLog::Verify() const {
  std::string prev;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& e = entries_[i];
    if (e.sequence != i) {
      return DataLoss("audit entry " + std::to_string(i) + ": bad sequence");
    }
    if (e.prev_hash_hex != prev) {
      return DataLoss("audit entry " + std::to_string(i) + ": chain broken");
    }
    if (ComputeHash(e) != e.hash_hex) {
      return DataLoss("audit entry " + std::to_string(i) + ": hash mismatch");
    }
    prev = e.hash_hex;
  }
  return Status::Ok();
}

std::string AuditLog::HeadHash() const {
  return entries_.empty() ? "" : entries_.back().hash_hex;
}

Bytes AuditLog::Serialize() const {
  ByteWriter w;
  w.PutRaw("AUD1", 4);
  w.PutVarU64(entries_.size());
  for (const AuditEntry& e : entries_) {
    w.PutU64(e.sequence);
    w.PutString(e.actor);
    w.PutString(e.action);
    w.PutString(e.detail);
    w.PutString(e.prev_hash_hex);
    w.PutString(e.hash_hex);
  }
  w.PutU32(Crc32(w.bytes()));
  return w.Take();
}

Result<AuditLog> AuditLog::Parse(std::span<const std::byte> bytes) {
  if (bytes.size() < 8) return DataLoss("audit log: too small");
  ByteReader crc_r(bytes.subspan(bytes.size() - 4));
  uint32_t crc = 0;
  DRAI_RETURN_IF_ERROR(crc_r.GetU32(crc));
  if (Crc32(bytes.subspan(0, bytes.size() - 4)) != crc) {
    return DataLoss("audit log: crc mismatch");
  }
  ByteReader r(bytes.subspan(0, bytes.size() - 4));
  char magic[4];
  DRAI_RETURN_IF_ERROR(r.GetRaw(magic, 4));
  if (std::string_view(magic, 4) != "AUD1") {
    return DataLoss("audit log: bad magic");
  }
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  if (n > (1ull << 24)) return DataLoss("audit log: implausible size");
  AuditLog log;
  log.entries_.resize(n);
  for (auto& e : log.entries_) {
    DRAI_RETURN_IF_ERROR(r.GetU64(e.sequence));
    DRAI_RETURN_IF_ERROR(r.GetString(e.actor));
    DRAI_RETURN_IF_ERROR(r.GetString(e.action));
    DRAI_RETURN_IF_ERROR(r.GetString(e.detail));
    DRAI_RETURN_IF_ERROR(r.GetString(e.prev_hash_hex));
    DRAI_RETURN_IF_ERROR(r.GetString(e.hash_hex));
  }
  DRAI_RETURN_IF_ERROR(log.Verify());
  return log;
}

}  // namespace drai::privacy
