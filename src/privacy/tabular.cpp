#include "privacy/tabular.hpp"

#include <algorithm>
#include <cctype>

#include "common/strings.hpp"

namespace drai::privacy {

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Validate() const {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != columns.size()) {
      return InvalidArgument("table row " + std::to_string(i) +
                             " has wrong arity");
    }
  }
  return Status::Ok();
}

std::string_view FieldClassName(FieldClass c) {
  switch (c) {
    case FieldClass::kDirectIdentifier: return "direct-identifier";
    case FieldClass::kQuasiIdentifier: return "quasi-identifier";
    case FieldClass::kSensitive: return "sensitive";
    case FieldClass::kOther: return "other";
  }
  return "?";
}

namespace {
bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c));
  });
}

bool NameContainsAny(const std::string& lower,
                     std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (lower.find(n) != std::string::npos) return true;
  }
  return false;
}
}  // namespace

bool LooksLikeSsn(const std::string& v) {
  return v.size() == 11 && v[3] == '-' && v[6] == '-' &&
         AllDigits(v.substr(0, 3)) && AllDigits(v.substr(4, 2)) &&
         AllDigits(v.substr(7, 4));
}

bool LooksLikeEmail(const std::string& v) {
  const size_t at = v.find('@');
  return at != std::string::npos && at > 0 && v.find('.', at) != std::string::npos;
}

bool LooksLikePhone(const std::string& v) {
  size_t digits = 0;
  for (char c : v) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
    } else if (c != '-' && c != ' ' && c != '(' && c != ')' && c != '+') {
      return false;
    }
  }
  return digits == 10 || digits == 11;
}

bool LooksLikeIsoDate(const std::string& v) {
  return v.size() == 10 && v[4] == '-' && v[7] == '-' &&
         AllDigits(v.substr(0, 4)) && AllDigits(v.substr(5, 2)) &&
         AllDigits(v.substr(8, 2));
}

FieldClass ClassifyField(const std::string& column_name,
                         std::span<const std::string> sample_values) {
  const std::string lower = ToLower(column_name);
  if (NameContainsAny(lower, {"ssn", "social_security", "mrn", "medical_record",
                              "patient_name", "first_name", "last_name",
                              "full_name", "email", "phone", "address",
                              "patient_id", "subject_id"})) {
    return FieldClass::kDirectIdentifier;
  }
  if (NameContainsAny(lower, {"dob", "birth", "zip", "postal", "age", "sex",
                              "gender", "race", "ethnicity", "admit_date",
                              "discharge_date", "visit_date", "date"})) {
    return FieldClass::kQuasiIdentifier;
  }
  if (NameContainsAny(lower, {"diagnosis", "icd", "lab", "result", "dose",
                              "medication", "procedure", "outcome",
                              "condition"})) {
    return FieldClass::kSensitive;
  }
  // Value-shape fallback: identifier-shaped data is an identifier no matter
  // what the column is called.
  size_t ssn = 0, email = 0, phone = 0, date = 0, checked = 0;
  for (const std::string& v : sample_values) {
    if (v.empty()) continue;
    ++checked;
    if (LooksLikeSsn(v)) ++ssn;
    if (LooksLikeEmail(v)) ++email;
    if (LooksLikePhone(v)) ++phone;
    if (LooksLikeIsoDate(v)) ++date;
    if (checked >= 64) break;
  }
  if (checked > 0) {
    const double frac_id = static_cast<double>(ssn + email + phone) /
                           static_cast<double>(checked);
    if (frac_id > 0.5) return FieldClass::kDirectIdentifier;
    if (static_cast<double>(date) / static_cast<double>(checked) > 0.5) {
      return FieldClass::kQuasiIdentifier;
    }
  }
  return FieldClass::kOther;
}

}  // namespace drai::privacy
