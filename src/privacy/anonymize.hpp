// drai/privacy/anonymize.hpp
//
// De-identification transforms (§3.3: "anonymization and integration
// across formats" under HIPAA/GA4GH):
//  * Pseudonymizer  — HMAC-keyed stable tokens replacing direct identifiers
//  * DateShifter    — per-subject constant day shift preserving intervals
//  * k-anonymity    — generalize quasi-identifiers (age bands, zip prefixes)
//                     and suppress residual small groups until every
//                     equivalence class has >= k rows
//  * l-diversity    — verify each class carries >= l distinct sensitive values
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "privacy/tabular.hpp"

namespace drai::privacy {

/// Stable keyed tokenization of identifier values. The same input under the
/// same key yields the same token (joins across tables still work); without
/// the key the mapping is computationally irreversible.
class Pseudonymizer {
 public:
  explicit Pseudonymizer(std::string key, std::string prefix = "anon-");

  [[nodiscard]] std::string Token(std::string_view value) const;

  /// Replace every value of the given column in place.
  Status PseudonymizeColumn(Table& table, const std::string& column) const;

 private:
  std::string key_;
  std::string prefix_;
};

/// Per-subject constant date shift within ±`max_shift_days`. Constant per
/// subject so intervals between a subject's events are preserved — the
/// property clinical ML needs.
class DateShifter {
 public:
  explicit DateShifter(std::string key, int max_shift_days = 365);

  /// Shift one ISO date for a subject.
  [[nodiscard]] Result<std::string> Shift(std::string_view subject_id,
                                          const std::string& iso_date) const;

  /// Shift a date column using `subject_column` as the shift key.
  Status ShiftColumn(Table& table, const std::string& subject_column,
                     const std::string& date_column) const;

  /// Days-since-epoch <-> civil date helpers (public for tests).
  static Result<int64_t> IsoToDays(const std::string& iso_date);
  static std::string DaysToIso(int64_t days);

 private:
  [[nodiscard]] int64_t ShiftFor(std::string_view subject_id) const;
  std::string key_;
  int max_shift_days_;
};

/// k-anonymity configuration: which columns are quasi-identifiers and how
/// each generalizes.
struct KAnonymityConfig {
  size_t k = 5;
  /// Numeric columns generalized into bands; value = initial band width,
  /// doubled per generalization level.
  std::map<std::string, int64_t> numeric_bands;   // e.g. {"age", 5}
  /// String columns generalized by prefix truncation; value = initial kept
  /// prefix length, reduced by one per level.
  std::map<std::string, size_t> prefix_lengths;   // e.g. {"zip", 3}
  size_t max_levels = 5;
};

struct KAnonymityReport {
  size_t k_achieved = 0;
  size_t suppressed_rows = 0;
  size_t generalization_level = 0;
  size_t equivalence_classes = 0;
};

/// Generalize + suppress until k-anonymity holds over the configured
/// quasi-identifiers. Modifies the table in place.
Result<KAnonymityReport> EnforceKAnonymity(Table& table,
                                           const KAnonymityConfig& config);

/// Smallest equivalence-class size over the given quasi-identifier columns
/// (0 for an empty table).
Result<size_t> MinClassSize(const Table& table,
                            const std::vector<std::string>& quasi_columns);

/// l-diversity: smallest number of distinct `sensitive_column` values in
/// any equivalence class over `quasi_columns`.
Result<size_t> MinDiversity(const Table& table,
                            const std::vector<std::string>& quasi_columns,
                            const std::string& sensitive_column);

}  // namespace drai::privacy
