#include "ndarray/dtype.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace drai {

size_t DTypeSize(DType t) {
  switch (t) {
    case DType::kF16: return 2;
    case DType::kF32: return 4;
    case DType::kF64: return 8;
    case DType::kI8: return 1;
    case DType::kI16: return 2;
    case DType::kI32: return 4;
    case DType::kI64: return 8;
    case DType::kU8: return 1;
  }
  return 0;
}

std::string_view DTypeName(DType t) {
  switch (t) {
    case DType::kF16: return "f16";
    case DType::kF32: return "f32";
    case DType::kF64: return "f64";
    case DType::kI8: return "i8";
    case DType::kI16: return "i16";
    case DType::kI32: return "i32";
    case DType::kI64: return "i64";
    case DType::kU8: return "u8";
  }
  return "?";
}

Result<DType> ParseDType(std::string_view name) {
  for (DType t : {DType::kF16, DType::kF32, DType::kF64, DType::kI8,
                  DType::kI16, DType::kI32, DType::kI64, DType::kU8}) {
    if (DTypeName(t) == name) return t;
  }
  return InvalidArgument("unknown dtype: " + std::string(name));
}

bool IsFloating(DType t) {
  return t == DType::kF16 || t == DType::kF32 || t == DType::kF64;
}

uint16_t FloatToHalf(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const int32_t exp = static_cast<int32_t>((bits >> 23) & 0xff) - 127 + 15;
  uint32_t mant = bits & 0x7fffffu;

  if (((bits >> 23) & 0xff) == 0xff) {  // inf / nan
    return static_cast<uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0));
  }
  if (exp >= 0x1f) {  // overflow → inf
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (exp <= 0) {
    if (exp < -10) return static_cast<uint16_t>(sign);  // underflow → ±0
    // Subnormal half: shift the (implicit-1) mantissa right.
    mant |= 0x800000u;
    const int shift = 14 - exp;
    uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1))) ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  // Normalized: round mantissa from 23 to 10 bits, nearest-even.
  uint32_t half_mant = mant >> 13;
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflow bumps the exponent
      half_mant = 0;
      if (exp + 1 >= 0x1f) return static_cast<uint16_t>(sign | 0x7c00u);
      return static_cast<uint16_t>(sign | (static_cast<uint32_t>(exp + 1) << 10));
    }
  }
  return static_cast<uint16_t>(sign | (static_cast<uint32_t>(exp) << 10) |
                               half_mant);
}

float HalfToFloat(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1f;
  const uint32_t mant = h & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // ±0
    } else {
      // Subnormal half → normalized float.
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / nan
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace drai
