// drai/ndarray/dtype.hpp
//
// Element types for NDArray and on-disk datasets. Scientific pipelines care
// about precision explicitly (§2.2 of the paper: 32/64-bit floats for
// physical realism, 16-bit only where the error budget allows), so dtype is
// a first-class runtime value, and fp16 conversion is implemented in
// software (IEEE 754 binary16, round-to-nearest-even).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace drai {

enum class DType : uint8_t {
  kF16 = 0,
  kF32 = 1,
  kF64 = 2,
  kI8 = 3,
  kI16 = 4,
  kI32 = 5,
  kI64 = 6,
  kU8 = 7,
};

/// Bytes per element.
size_t DTypeSize(DType t);

/// "f32", "i64", ...
std::string_view DTypeName(DType t);

/// Parse "f32" etc. Returns kInvalidArgument on unknown names.
Result<DType> ParseDType(std::string_view name);

/// True for kF16/kF32/kF64.
bool IsFloating(DType t);

/// IEEE 754 binary16 conversions. Round-to-nearest-even on narrowing;
/// preserves inf/nan; flushes values below the subnormal range to ±0.
uint16_t FloatToHalf(float f);
float HalfToFloat(uint16_t h);

/// Compile-time mapping from C++ type to DType.
template <typename T> struct DTypeOf;
template <> struct DTypeOf<float>   { static constexpr DType value = DType::kF32; };
template <> struct DTypeOf<double>  { static constexpr DType value = DType::kF64; };
template <> struct DTypeOf<int8_t>  { static constexpr DType value = DType::kI8;  };
template <> struct DTypeOf<int16_t> { static constexpr DType value = DType::kI16; };
template <> struct DTypeOf<int32_t> { static constexpr DType value = DType::kI32; };
template <> struct DTypeOf<int64_t> { static constexpr DType value = DType::kI64; };
template <> struct DTypeOf<uint8_t> { static constexpr DType value = DType::kU8;  };

}  // namespace drai
