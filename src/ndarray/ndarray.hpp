// drai/ndarray/ndarray.hpp
//
// NDArray: an n-dimensional, runtime-typed tensor with shared storage and
// strided views. It is the in-memory currency of every pipeline stage —
// climate fields (time, var, lat, lon), fusion windows (window, channel,
// sample), one-hot sequence tiles, graph feature matrices.
//
// Semantics follow NumPy: Slice/Transpose return views sharing storage;
// Reshape requires contiguity; Cast/AsContiguous copy. Element access is
// checked in at<T>() and unchecked via data<T>() for kernels.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "ndarray/dtype.hpp"

namespace drai {

using Shape = std::vector<size_t>;

/// Number of elements of a shape (empty shape = scalar = 1 element).
size_t ShapeNumel(const Shape& shape);
/// "[4, 128, 256]"
std::string ShapeToString(const Shape& shape);

class NDArray {
 public:
  /// Empty (rank-0, zero elements) array of f32 — a moved-from-safe state.
  NDArray();

  /// Uninitialized array (storage is zero-filled for determinism).
  static NDArray Zeros(Shape shape, DType dtype = DType::kF32);
  /// All elements set to `value` (converted to dtype).
  static NDArray Full(Shape shape, double value, DType dtype = DType::kF32);
  /// Copy data from a typed vector; numel must match the shape.
  template <typename T>
  static NDArray FromVector(Shape shape, const std::vector<T>& data);
  /// 1-D convenience.
  template <typename T>
  static NDArray FromVector(const std::vector<T>& data) {
    return FromVector<T>({data.size()}, data);
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] const std::vector<int64_t>& strides() const { return strides_; }
  [[nodiscard]] size_t rank() const { return shape_.size(); }
  [[nodiscard]] size_t numel() const { return ShapeNumel(shape_); }
  [[nodiscard]] DType dtype() const { return dtype_; }
  [[nodiscard]] size_t nbytes() const { return numel() * DTypeSize(dtype_); }
  [[nodiscard]] bool IsContiguous() const;

  /// Checked, strided element access. T must match dtype exactly.
  template <typename T>
  T& at(std::span<const size_t> idx);
  template <typename T>
  const T& at(std::span<const size_t> idx) const;
  template <typename T>
  T& at(std::initializer_list<size_t> idx) {
    return at<T>(std::span<const size_t>(idx.begin(), idx.size()));
  }
  template <typename T>
  const T& at(std::initializer_list<size_t> idx) const {
    return at<T>(std::span<const size_t>(idx.begin(), idx.size()));
  }

  /// Raw typed pointer to the first element of this view. Only valid for
  /// kernels that honor strides, or on contiguous arrays.
  template <typename T>
  T* data();
  template <typename T>
  const T* data() const;

  /// Untyped view of the storage bytes (contiguous arrays only).
  [[nodiscard]] std::span<const std::byte> raw_bytes() const;
  [[nodiscard]] std::span<std::byte> raw_bytes_mut();

  /// Read element i (flattened, respecting strides) as double, regardless
  /// of dtype. Slow path for generic code (stats, assessors, tests).
  [[nodiscard]] double GetAsDouble(size_t flat_index) const;
  /// Write element i from a double (converted to dtype).
  void SetFromDouble(size_t flat_index, double value);

  /// View of a sub-range along `dim`: [start, stop) with step 1.
  [[nodiscard]] NDArray Slice(size_t dim, size_t start, size_t stop) const;
  /// View with two dims swapped (default: last two).
  [[nodiscard]] NDArray Transpose() const;
  [[nodiscard]] NDArray Transpose(size_t a, size_t b) const;
  /// View with dims reordered by `perm` (a permutation of 0..rank-1).
  [[nodiscard]] NDArray Permute(std::span<const size_t> perm) const;
  /// New shape over the same storage; requires contiguity & equal numel.
  [[nodiscard]] NDArray Reshape(Shape new_shape) const;
  /// Deep copy, contiguous, same dtype.
  [[nodiscard]] NDArray AsContiguous() const;
  /// Deep copy converted to `target` dtype (via double; fp16 through the
  /// software converter).
  [[nodiscard]] NDArray Cast(DType target) const;

  /// Copy `src` into this view elementwise (shapes must match; dtypes must
  /// match). Used to fill slices.
  void CopyFrom(const NDArray& src);

  /// Scalar fill of this view.
  void Fill(double value);

 private:
  NDArray(std::shared_ptr<std::vector<std::byte>> storage, size_t offset_bytes,
          Shape shape, std::vector<int64_t> strides, DType dtype);

  [[nodiscard]] size_t FlatToOffsetElems(size_t flat) const;
  [[nodiscard]] std::byte* BasePtr() const {
    return storage_->data() + offset_bytes_;
  }
  void CheckIndex(std::span<const size_t> idx) const;
  [[nodiscard]] size_t IndexToOffsetElems(std::span<const size_t> idx) const;

  std::shared_ptr<std::vector<std::byte>> storage_;
  size_t offset_bytes_ = 0;
  Shape shape_;
  std::vector<int64_t> strides_;  ///< in elements, per dim
  DType dtype_ = DType::kF32;
};

// ---- template definitions ------------------------------------------------

template <typename T>
NDArray NDArray::FromVector(Shape shape, const std::vector<T>& data) {
  if (ShapeNumel(shape) != data.size()) {
    throw std::invalid_argument("FromVector: numel mismatch");
  }
  NDArray a = Zeros(std::move(shape), DTypeOf<T>::value);
  std::memcpy(a.BasePtr(), data.data(), data.size() * sizeof(T));
  return a;
}

template <typename T>
T& NDArray::at(std::span<const size_t> idx) {
  if (DTypeOf<T>::value != dtype_) {
    throw std::invalid_argument("at<T>: dtype mismatch");
  }
  CheckIndex(idx);
  return *(reinterpret_cast<T*>(BasePtr()) + IndexToOffsetElems(idx));
}

template <typename T>
const T& NDArray::at(std::span<const size_t> idx) const {
  if (DTypeOf<T>::value != dtype_) {
    throw std::invalid_argument("at<T>: dtype mismatch");
  }
  CheckIndex(idx);
  return *(reinterpret_cast<const T*>(BasePtr()) + IndexToOffsetElems(idx));
}

template <typename T>
T* NDArray::data() {
  if (DTypeOf<T>::value != dtype_) {
    throw std::invalid_argument("data<T>: dtype mismatch");
  }
  return reinterpret_cast<T*>(BasePtr());
}

template <typename T>
const T* NDArray::data() const {
  if (DTypeOf<T>::value != dtype_) {
    throw std::invalid_argument("data<T>: dtype mismatch");
  }
  return reinterpret_cast<const T*>(BasePtr());
}

}  // namespace drai
