// drai/ndarray/kernels.hpp
//
// Elementwise and reduction kernels over NDArray. Generic (dtype-erased)
// code paths route through GetAsDouble; the f32/f64 contiguous fast paths
// are specialized because normalization and feature extraction dominate
// pipeline compute.
#pragma once

#include "ndarray/ndarray.hpp"

namespace drai {

/// out[i] = a[i] + b[i]; shapes and dtypes must match. Returns a new
/// contiguous array.
NDArray Add(const NDArray& a, const NDArray& b);
NDArray Sub(const NDArray& a, const NDArray& b);
NDArray Mul(const NDArray& a, const NDArray& b);

/// In-place scalar affine: a[i] = a[i] * scale + shift. Honors views.
void ScaleShiftInPlace(NDArray& a, double scale, double shift);

/// Elementwise map via double (slow generic path): a[i] = fn(a[i]).
void MapInPlace(NDArray& a, double (*fn)(double));

/// Reductions over the whole array (any view, any dtype).
double Sum(const NDArray& a);
double Mean(const NDArray& a);
double Min(const NDArray& a);
double Max(const NDArray& a);
/// Population variance.
double Variance(const NDArray& a);

/// Count of NaN elements (floating dtypes; zero otherwise).
size_t CountNaN(const NDArray& a);

/// Largest absolute elementwise difference |a-b| (shape must match; dtypes
/// may differ — used for precision-loss measurements).
double MaxAbsDiff(const NDArray& a, const NDArray& b);
/// Root-mean-square elementwise difference.
double RmsDiff(const NDArray& a, const NDArray& b);

}  // namespace drai
