#include "ndarray/ndarray.hpp"

#include <algorithm>
#include <stdexcept>

namespace drai {

size_t ShapeNumel(const Shape& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

namespace {
std::vector<int64_t> ContiguousStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t s = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = s;
    s *= static_cast<int64_t>(shape[i]);
  }
  return strides;
}
}  // namespace

NDArray::NDArray()
    : storage_(std::make_shared<std::vector<std::byte>>()),
      shape_{0},
      strides_{1},
      dtype_(DType::kF32) {}

NDArray::NDArray(std::shared_ptr<std::vector<std::byte>> storage,
                 size_t offset_bytes, Shape shape,
                 std::vector<int64_t> strides, DType dtype)
    : storage_(std::move(storage)),
      offset_bytes_(offset_bytes),
      shape_(std::move(shape)),
      strides_(std::move(strides)),
      dtype_(dtype) {}

NDArray NDArray::Zeros(Shape shape, DType dtype) {
  const size_t bytes = ShapeNumel(shape) * DTypeSize(dtype);
  auto storage = std::make_shared<std::vector<std::byte>>(bytes, std::byte{0});
  auto strides = ContiguousStrides(shape);
  return NDArray(std::move(storage), 0, std::move(shape), std::move(strides),
                 dtype);
}

NDArray NDArray::Full(Shape shape, double value, DType dtype) {
  NDArray a = Zeros(std::move(shape), dtype);
  a.Fill(value);
  return a;
}

bool NDArray::IsContiguous() const {
  return strides_ == ContiguousStrides(shape_);
}

void NDArray::CheckIndex(std::span<const size_t> idx) const {
  if (idx.size() != shape_.size()) {
    throw std::out_of_range("NDArray index rank mismatch");
  }
  for (size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= shape_[i]) {
      throw std::out_of_range("NDArray index out of bounds");
    }
  }
}

size_t NDArray::IndexToOffsetElems(std::span<const size_t> idx) const {
  int64_t off = 0;
  for (size_t i = 0; i < idx.size(); ++i) {
    off += static_cast<int64_t>(idx[i]) * strides_[i];
  }
  return static_cast<size_t>(off);
}

size_t NDArray::FlatToOffsetElems(size_t flat) const {
  // Decompose the flat logical index into per-dim indices (row-major) and
  // apply strides. Works for any view.
  int64_t off = 0;
  for (size_t i = shape_.size(); i-- > 0;) {
    const size_t dim = shape_[i];
    if (dim == 0) return 0;
    off += static_cast<int64_t>(flat % dim) * strides_[i];
    flat /= dim;
  }
  return static_cast<size_t>(off);
}

std::span<const std::byte> NDArray::raw_bytes() const {
  if (!IsContiguous()) {
    throw std::logic_error("raw_bytes on non-contiguous view");
  }
  return {BasePtr(), nbytes()};
}

std::span<std::byte> NDArray::raw_bytes_mut() {
  if (!IsContiguous()) {
    throw std::logic_error("raw_bytes_mut on non-contiguous view");
  }
  return {BasePtr(), nbytes()};
}

double NDArray::GetAsDouble(size_t flat_index) const {
  if (flat_index >= numel()) {
    throw std::out_of_range("GetAsDouble index out of range");
  }
  const std::byte* p =
      BasePtr() + FlatToOffsetElems(flat_index) * DTypeSize(dtype_);
  switch (dtype_) {
    case DType::kF16: {
      uint16_t h;
      std::memcpy(&h, p, 2);
      return HalfToFloat(h);
    }
    case DType::kF32: {
      float v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case DType::kF64: {
      double v;
      std::memcpy(&v, p, 8);
      return v;
    }
    case DType::kI8: {
      int8_t v;
      std::memcpy(&v, p, 1);
      return v;
    }
    case DType::kI16: {
      int16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case DType::kI32: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case DType::kI64: {
      int64_t v;
      std::memcpy(&v, p, 8);
      return static_cast<double>(v);
    }
    case DType::kU8: {
      uint8_t v;
      std::memcpy(&v, p, 1);
      return v;
    }
  }
  throw std::logic_error("unreachable dtype");
}

void NDArray::SetFromDouble(size_t flat_index, double value) {
  if (flat_index >= numel()) {
    throw std::out_of_range("SetFromDouble index out of range");
  }
  std::byte* p = BasePtr() + FlatToOffsetElems(flat_index) * DTypeSize(dtype_);
  switch (dtype_) {
    case DType::kF16: {
      const uint16_t h = FloatToHalf(static_cast<float>(value));
      std::memcpy(p, &h, 2);
      return;
    }
    case DType::kF32: {
      const float v = static_cast<float>(value);
      std::memcpy(p, &v, 4);
      return;
    }
    case DType::kF64: {
      std::memcpy(p, &value, 8);
      return;
    }
    case DType::kI8: {
      const int8_t v = static_cast<int8_t>(value);
      std::memcpy(p, &v, 1);
      return;
    }
    case DType::kI16: {
      const int16_t v = static_cast<int16_t>(value);
      std::memcpy(p, &v, 2);
      return;
    }
    case DType::kI32: {
      const int32_t v = static_cast<int32_t>(value);
      std::memcpy(p, &v, 4);
      return;
    }
    case DType::kI64: {
      const int64_t v = static_cast<int64_t>(value);
      std::memcpy(p, &v, 8);
      return;
    }
    case DType::kU8: {
      const uint8_t v = static_cast<uint8_t>(value);
      std::memcpy(p, &v, 1);
      return;
    }
  }
}

NDArray NDArray::Slice(size_t dim, size_t start, size_t stop) const {
  if (dim >= rank()) throw std::out_of_range("Slice: dim out of range");
  if (start > stop || stop > shape_[dim]) {
    throw std::out_of_range("Slice: bad range");
  }
  Shape new_shape = shape_;
  new_shape[dim] = stop - start;
  const size_t new_offset =
      offset_bytes_ + static_cast<size_t>(strides_[dim]) * start *
                          DTypeSize(dtype_);
  return NDArray(storage_, new_offset, std::move(new_shape), strides_, dtype_);
}

NDArray NDArray::Transpose() const {
  if (rank() < 2) throw std::logic_error("Transpose needs rank >= 2");
  return Transpose(rank() - 2, rank() - 1);
}

NDArray NDArray::Transpose(size_t a, size_t b) const {
  if (a >= rank() || b >= rank()) {
    throw std::out_of_range("Transpose: dim out of range");
  }
  Shape new_shape = shape_;
  std::vector<int64_t> new_strides = strides_;
  std::swap(new_shape[a], new_shape[b]);
  std::swap(new_strides[a], new_strides[b]);
  return NDArray(storage_, offset_bytes_, std::move(new_shape),
                 std::move(new_strides), dtype_);
}

NDArray NDArray::Permute(std::span<const size_t> perm) const {
  if (perm.size() != rank()) throw std::invalid_argument("Permute: bad rank");
  std::vector<bool> seen(rank(), false);
  Shape new_shape(rank());
  std::vector<int64_t> new_strides(rank());
  for (size_t i = 0; i < rank(); ++i) {
    if (perm[i] >= rank() || seen[perm[i]]) {
      throw std::invalid_argument("Permute: not a permutation");
    }
    seen[perm[i]] = true;
    new_shape[i] = shape_[perm[i]];
    new_strides[i] = strides_[perm[i]];
  }
  return NDArray(storage_, offset_bytes_, std::move(new_shape),
                 std::move(new_strides), dtype_);
}

NDArray NDArray::Reshape(Shape new_shape) const {
  if (ShapeNumel(new_shape) != numel()) {
    throw std::invalid_argument("Reshape: numel mismatch");
  }
  if (!IsContiguous()) {
    throw std::logic_error("Reshape requires a contiguous array");
  }
  auto strides = ContiguousStrides(new_shape);
  return NDArray(storage_, offset_bytes_, std::move(new_shape),
                 std::move(strides), dtype_);
}

NDArray NDArray::AsContiguous() const {
  if (IsContiguous()) {
    // Still deep-copy so the result owns fresh storage (documented copy).
    NDArray out = Zeros(shape_, dtype_);
    std::memcpy(out.BasePtr(), BasePtr(), nbytes());
    return out;
  }
  NDArray out = Zeros(shape_, dtype_);
  const size_t n = numel();
  const size_t esize = DTypeSize(dtype_);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out.BasePtr() + i * esize,
                BasePtr() + FlatToOffsetElems(i) * esize, esize);
  }
  return out;
}

NDArray NDArray::Cast(DType target) const {
  if (target == dtype_) return AsContiguous();
  NDArray out = Zeros(shape_, target);
  const size_t n = numel();
  for (size_t i = 0; i < n; ++i) {
    out.SetFromDouble(i, GetAsDouble(i));
  }
  return out;
}

void NDArray::CopyFrom(const NDArray& src) {
  if (src.shape() != shape_) {
    throw std::invalid_argument("CopyFrom: shape mismatch");
  }
  if (src.dtype() != dtype_) {
    throw std::invalid_argument("CopyFrom: dtype mismatch");
  }
  const size_t n = numel();
  const size_t esize = DTypeSize(dtype_);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(BasePtr() + FlatToOffsetElems(i) * esize,
                src.BasePtr() + src.FlatToOffsetElems(i) * esize, esize);
  }
}

void NDArray::Fill(double value) {
  const size_t n = numel();
  for (size_t i = 0; i < n; ++i) SetFromDouble(i, value);
}

}  // namespace drai
