#include "ndarray/kernels.hpp"

#include <cmath>
#include <stdexcept>

namespace drai {

namespace {

void CheckSameShapeDtype(const NDArray& a, const NDArray& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("kernel: shape mismatch");
  }
  if (a.dtype() != b.dtype()) {
    throw std::invalid_argument("kernel: dtype mismatch");
  }
}

template <typename T, typename Op>
bool TryBinaryFast(const NDArray& a, const NDArray& b, NDArray& out, Op op) {
  if (a.dtype() != DTypeOf<T>::value) return false;
  if (!a.IsContiguous() || !b.IsContiguous()) return false;
  const T* pa = a.data<T>();
  const T* pb = b.data<T>();
  T* po = out.data<T>();
  const size_t n = a.numel();
  for (size_t i = 0; i < n; ++i) po[i] = op(pa[i], pb[i]);
  return true;
}

template <typename Op>
NDArray Binary(const NDArray& a, const NDArray& b, Op op) {
  CheckSameShapeDtype(a, b);
  NDArray out = NDArray::Zeros(a.shape(), a.dtype());
  if (TryBinaryFast<float>(a, b, out, op)) return out;
  if (TryBinaryFast<double>(a, b, out, op)) return out;
  const size_t n = a.numel();
  for (size_t i = 0; i < n; ++i) {
    out.SetFromDouble(i, op(a.GetAsDouble(i), b.GetAsDouble(i)));
  }
  return out;
}

}  // namespace

NDArray Add(const NDArray& a, const NDArray& b) {
  return Binary(a, b, [](auto x, auto y) { return x + y; });
}
NDArray Sub(const NDArray& a, const NDArray& b) {
  return Binary(a, b, [](auto x, auto y) { return x - y; });
}
NDArray Mul(const NDArray& a, const NDArray& b) {
  return Binary(a, b, [](auto x, auto y) { return x * y; });
}

void ScaleShiftInPlace(NDArray& a, double scale, double shift) {
  if (a.IsContiguous() && a.dtype() == DType::kF32) {
    float* p = a.data<float>();
    const size_t n = a.numel();
    const float fs = static_cast<float>(scale);
    const float fo = static_cast<float>(shift);
    for (size_t i = 0; i < n; ++i) p[i] = p[i] * fs + fo;
    return;
  }
  if (a.IsContiguous() && a.dtype() == DType::kF64) {
    double* p = a.data<double>();
    const size_t n = a.numel();
    for (size_t i = 0; i < n; ++i) p[i] = p[i] * scale + shift;
    return;
  }
  const size_t n = a.numel();
  for (size_t i = 0; i < n; ++i) {
    a.SetFromDouble(i, a.GetAsDouble(i) * scale + shift);
  }
}

void MapInPlace(NDArray& a, double (*fn)(double)) {
  const size_t n = a.numel();
  for (size_t i = 0; i < n; ++i) a.SetFromDouble(i, fn(a.GetAsDouble(i)));
}

double Sum(const NDArray& a) {
  // Kahan summation: pipelines reduce over 1e8-element fields and plain
  // accumulation loses digits the precision bench would misattribute.
  double sum = 0, c = 0;
  const size_t n = a.numel();
  for (size_t i = 0; i < n; ++i) {
    const double y = a.GetAsDouble(i) - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double Mean(const NDArray& a) {
  const size_t n = a.numel();
  if (n == 0) throw std::invalid_argument("Mean of empty array");
  return Sum(a) / static_cast<double>(n);
}

double Min(const NDArray& a) {
  const size_t n = a.numel();
  if (n == 0) throw std::invalid_argument("Min of empty array");
  double m = a.GetAsDouble(0);
  for (size_t i = 1; i < n; ++i) m = std::min(m, a.GetAsDouble(i));
  return m;
}

double Max(const NDArray& a) {
  const size_t n = a.numel();
  if (n == 0) throw std::invalid_argument("Max of empty array");
  double m = a.GetAsDouble(0);
  for (size_t i = 1; i < n; ++i) m = std::max(m, a.GetAsDouble(i));
  return m;
}

double Variance(const NDArray& a) {
  const size_t n = a.numel();
  if (n == 0) throw std::invalid_argument("Variance of empty array");
  const double mean = Mean(a);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a.GetAsDouble(i) - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

size_t CountNaN(const NDArray& a) {
  if (!IsFloating(a.dtype())) return 0;
  size_t count = 0;
  const size_t n = a.numel();
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(a.GetAsDouble(i))) ++count;
  }
  return count;
}

double MaxAbsDiff(const NDArray& a, const NDArray& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("MaxAbsDiff: shape mismatch");
  }
  double m = 0;
  const size_t n = a.numel();
  for (size_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(a.GetAsDouble(i) - b.GetAsDouble(i)));
  }
  return m;
}

double RmsDiff(const NDArray& a, const NDArray& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("RmsDiff: shape mismatch");
  }
  const size_t n = a.numel();
  if (n == 0) return 0;
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a.GetAsDouble(i) - b.GetAsDouble(i);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace drai
