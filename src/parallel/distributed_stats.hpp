// drai/parallel/distributed_stats.hpp
//
// Cross-rank statistics — the piece that makes drai's normalization
// "scalable preprocessing" in the paper's sense: each rank streams its
// slice of the data through a local accumulator, then a tree-free
// gather-merge-broadcast produces the global statistics every rank needs
// to apply the transform. Works for RunningStats and whole Normalizers
// (z-score / min-max / log1p — robust quantile sketches are not mergeable
// and are rejected by Normalizer::Merge).
#pragma once

#include "common/bytes.hpp"
#include "parallel/communicator.hpp"
#include "stats/normalizer.hpp"
#include "stats/running.hpp"

namespace drai::par {

/// Merge each rank's RunningStats into one global accumulator, returned on
/// every rank. Deterministic merge order (by rank).
stats::RunningStats AllMergeStats(Communicator& comm,
                                  const stats::RunningStats& local);

/// Merge each rank's (unfitted) Normalizer observations, fit once, and
/// return the fitted Normalizer on every rank — the distributed version of
/// Observe-everything-then-Fit. All ranks must pass identically configured
/// normalizers. Robust normalizers are rejected (kFailedPrecondition).
Result<stats::Normalizer> AllMergeFit(Communicator& comm,
                                      stats::Normalizer local);

}  // namespace drai::par
