#include "parallel/distributed_stats.hpp"

namespace drai::par {

stats::RunningStats AllMergeStats(Communicator& comm,
                                  const stats::RunningStats& local) {
  ByteWriter w;
  local.Serialize(w);
  const Bytes mine = w.Take();
  const auto all = comm.AllGather(std::vector<std::byte>(mine.begin(), mine.end()));
  stats::RunningStats merged;
  for (const auto& payload : all) {
    ByteReader r(payload);
    stats::RunningStats part = stats::RunningStats::Deserialize(r).value();
    merged.Merge(part);
  }
  return merged;
}

Result<stats::Normalizer> AllMergeFit(Communicator& comm,
                                      stats::Normalizer local) {
  ByteWriter w;
  DRAI_RETURN_IF_ERROR(local.SerializeObservations(w));
  const Bytes mine = w.Take();
  const auto all =
      comm.AllGather(std::vector<std::byte>(mine.begin(), mine.end()));
  // Merge everyone into rank 0's copy in rank order (deterministic on
  // every rank because AllGather orders by rank).
  ByteReader first(all.front());
  DRAI_ASSIGN_OR_RETURN(stats::Normalizer merged,
                        stats::Normalizer::DeserializeObservations(first));
  for (size_t r = 1; r < all.size(); ++r) {
    ByteReader reader(all[r]);
    DRAI_ASSIGN_OR_RETURN(stats::Normalizer part,
                          stats::Normalizer::DeserializeObservations(reader));
    merged.Merge(part);
  }
  merged.Fit();
  return merged;
}

}  // namespace drai::par
