#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace drai::par {

namespace {
// Set while executing inside a pool worker; nested ParallelFor calls then
// run serially instead of deadlocking on their own pool.
thread_local bool tls_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::Submit after shutdown");
    }
    queue_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& GlobalPool() {
  static ThreadPool pool;
  return pool;
}

bool InPoolWorker() { return tls_in_pool_worker; }

void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t min_grain) {
  if (begin >= end) return;
  if (tls_in_pool_worker) {  // nested parallelism: degrade to serial
    fn(begin, end);
    return;
  }
  const size_t n = end - begin;
  ThreadPool& pool = GlobalPool();
  const size_t max_chunks = pool.thread_count();
  size_t chunks = std::min(max_chunks, (n + min_grain - 1) / min_grain);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * per;
    const size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futures.push_back(pool.Submit([lo, hi, &fn] { fn(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, size_t min_grain) {
  ParallelForChunks(
      begin, end,
      [&fn](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) fn(i);
      },
      min_grain);
}

}  // namespace drai::par
