#include "parallel/communicator.hpp"

#include <exception>

namespace drai::par {

void Communicator::Send(int dst, int tag, std::span<const std::byte> data) {
  if (dst < 0 || dst >= size()) {
    throw std::out_of_range("Send: destination rank out of range");
  }
  internal::World& w = *world_;
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    w.mailboxes[{rank_, dst, tag}].emplace_back(data.begin(), data.end());
  }
  w.cv.notify_all();
}

Bytes Communicator::Recv(int src, int tag) {
  if (src < 0 || src >= size()) {
    throw std::out_of_range("Recv: source rank out of range");
  }
  internal::World& w = *world_;
  std::unique_lock<std::mutex> lock(w.mutex);
  const internal::World::Key key{src, rank_, tag};
  w.cv.wait(lock, [&] {
    auto it = w.mailboxes.find(key);
    return it != w.mailboxes.end() && !it->second.empty();
  });
  auto it = w.mailboxes.find(key);
  Bytes msg = std::move(it->second.front());
  it->second.pop_front();
  return msg;
}

void Communicator::Barrier() {
  internal::World& w = *world_;
  std::unique_lock<std::mutex> lock(w.mutex);
  const uint64_t my_generation = w.barrier_generation;
  if (++w.barrier_arrived == w.size) {
    w.barrier_arrived = 0;
    ++w.barrier_generation;
    w.cv.notify_all();
  } else {
    w.cv.wait(lock, [&] { return w.barrier_generation != my_generation; });
  }
}

double Communicator::AllReduceScalar(double v, ReduceOp op) {
  return AllReduce(std::vector<double>{v}, op)[0];
}

int64_t Communicator::AllReduceScalar(int64_t v, ReduceOp op) {
  return AllReduce(std::vector<int64_t>{v}, op)[0];
}

void RunSpmd(int n_ranks, const std::function<void(Communicator&)>& body) {
  if (n_ranks <= 0) throw std::invalid_argument("RunSpmd: n_ranks must be > 0");
  auto world = std::make_shared<internal::World>(n_ranks);
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n_ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(world, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace drai::par
