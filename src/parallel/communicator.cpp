#include "parallel/communicator.hpp"

#include <algorithm>
#include <exception>

namespace drai::par {

void Communicator::Send(int dst, int tag, std::span<const std::byte> data) {
  if (dst < 0 || dst >= size()) {
    throw std::out_of_range("Send: destination rank out of range");
  }
  internal::World& w = *world_;
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    w.mailboxes[{rank_, dst, tag}].emplace_back(data.begin(), data.end());
  }
  w.cv.notify_all();
}

Bytes Communicator::Recv(int src, int tag) {
  return Recv(src, tag, WaitDeadline());
}

Bytes Communicator::Recv(int src, int tag, const Deadline& deadline) {
  if (src < 0 || src >= size()) {
    throw std::out_of_range("Recv: source rank out of range");
  }
  internal::World& w = *world_;
  std::unique_lock<std::mutex> lock(w.mutex);
  const internal::World::Key key{src, rank_, tag};
  const auto ready = [&] {
    auto it = w.mailboxes.find(key);
    return it != w.mailboxes.end() && !it->second.empty();
  };
  if (deadline.infinite()) {
    w.cv.wait(lock, ready);
  } else if (!w.cv.wait_until(lock, deadline.when(), ready)) {
    throw DeadlineExceededError(
        "Recv: rank " + std::to_string(rank_) + " timed out waiting for rank " +
        std::to_string(src) + " (tag " + std::to_string(tag) + ")");
  }
  auto it = w.mailboxes.find(key);
  Bytes msg = std::move(it->second.front());
  it->second.pop_front();
  return msg;
}

void Communicator::Barrier() { Barrier(WaitDeadline()); }

void Communicator::Barrier(const Deadline& deadline) {
  internal::World& w = *world_;
  std::unique_lock<std::mutex> lock(w.mutex);
  const uint64_t my_generation = w.barrier_generation;
  if (++w.barrier_arrived == w.size) {
    w.barrier_arrived = 0;
    ++w.barrier_generation;
    w.cv.notify_all();
    return;
  }
  const auto released = [&] { return w.barrier_generation != my_generation; };
  if (deadline.infinite()) {
    w.cv.wait(lock, released);
    return;
  }
  if (!w.cv.wait_until(lock, deadline.when(), released)) {
    // Un-register this rank's arrival so the barrier count stays coherent:
    // a rank that gave up is indistinguishable from one that never arrived,
    // and any rank still (or later) waiting here times out in turn.
    --w.barrier_arrived;
    throw DeadlineExceededError("Barrier: rank " + std::to_string(rank_) +
                                " timed out waiting for the world");
  }
}

double Communicator::AllReduceScalar(double v, ReduceOp op) {
  return AllReduce(std::vector<double>{v}, op)[0];
}

int64_t Communicator::AllReduceScalar(int64_t v, ReduceOp op) {
  return AllReduce(std::vector<int64_t>{v}, op)[0];
}

std::vector<uint64_t> ScatterAssignment(Communicator& comm, uint64_t n_parts,
                                        int root) {
  std::vector<std::vector<uint64_t>> assignment;
  if (comm.rank() == root) {
    assignment.resize(static_cast<size_t>(comm.size()));
    for (uint64_t p = 0; p < n_parts; ++p) {
      assignment[static_cast<size_t>(p % static_cast<uint64_t>(comm.size()))]
          .push_back(p);
    }
  }
  return comm.Scatter(assignment, root);
}

std::vector<std::pair<uint64_t, Bytes>> GatherByIndex(
    Communicator& comm, const std::vector<std::pair<uint64_t, Bytes>>& local,
    int root) {
  // Flatten to one byte stream per rank: [index, length, payload]*.
  ByteWriter w;
  for (const auto& [index, payload] : local) {
    w.PutU64(index);
    w.PutBlob(payload);
  }
  const Bytes mine = w.Take();
  const auto streams = comm.Gather(
      std::vector<std::byte>(mine.begin(), mine.end()), root);
  std::vector<std::pair<uint64_t, Bytes>> out;
  if (comm.rank() != root) return out;
  for (const auto& stream : streams) {
    ByteReader r(stream);
    while (!r.exhausted()) {
      uint64_t index = 0;
      Bytes payload;
      if (!r.GetU64(index).ok() || !r.GetBlob(payload).ok()) {
        throw std::invalid_argument("GatherByIndex: truncated rank stream");
      }
      out.emplace_back(index, std::move(payload));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i].first == out[i - 1].first) {
      throw std::invalid_argument(
          "GatherByIndex: partition index claimed by two ranks");
    }
  }
  return out;
}

std::vector<uint64_t> AgreeQuarantine(Communicator& comm, uint64_t n_parts,
                                      const std::vector<uint64_t>& local) {
  std::vector<uint8_t> bitmap(static_cast<size_t>(n_parts), 0);
  for (uint64_t p : local) {
    if (p >= n_parts) {
      throw std::out_of_range("AgreeQuarantine: partition " +
                              std::to_string(p) + " >= n_parts " +
                              std::to_string(n_parts));
    }
    bitmap[static_cast<size_t>(p)] = 1;
  }
  const std::vector<uint8_t> agreed = comm.AllReduce(bitmap, ReduceOp::kMax);
  std::vector<uint64_t> out;
  for (uint64_t p = 0; p < n_parts; ++p) {
    if (agreed[static_cast<size_t>(p)] != 0) out.push_back(p);
  }
  return out;
}

void RunSpmd(int n_ranks, const std::function<void(Communicator&)>& body) {
  if (n_ranks <= 0) throw std::invalid_argument("RunSpmd: n_ranks must be > 0");
  auto world = std::make_shared<internal::World>(n_ranks);
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n_ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(world, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace drai::par
