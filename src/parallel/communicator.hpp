// drai/parallel/communicator.hpp
//
// An in-process SPMD rank model following the MPI programming model
// (LLNL HPC tutorial): data moves between ranks only through cooperative
// send/receive operations; all parallelism is explicit. Ranks are threads
// launched by RunSpmd; each receives a Communicator bound to its rank.
//
// Point-to-point Send/Recv over typed byte messages is the primitive;
// collectives (Barrier, Broadcast, Reduce, AllReduce, Gather, AllGather,
// Scatter, AllToAll) are built on top with textbook algorithms. This gives
// the same programming model as MPI on a cluster, so rank-count sweeps in
// the benches reproduce scaling *shapes* without real hardware.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"

namespace drai::par {

/// Reduction operators supported by Reduce/AllReduce.
enum class ReduceOp { kSum, kMin, kMax, kProd };

/// Thrown by a blocking wait whose deadline passed. Collectives are built
/// from Recv + Barrier and every collective ends in a Barrier, so when one
/// rank is stuck, every rank that did arrive times out within its budget and
/// throws this together — the all-or-nothing discipline collective *errors*
/// already follow, extended to hangs. Carries kDeadlineExceeded.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
  [[nodiscard]] Status ToStatus() const {
    return Status(StatusCode::kDeadlineExceeded, what());
  }
};

namespace internal {

/// Shared mailbox state for one SPMD world. One mailbox per (src, dst)
/// ordered FIFO per tag, like MPI's non-overtaking guarantee per channel.
struct World {
  explicit World(int size) : size(size), barrier_arrived(0), barrier_generation(0) {}

  const int size;

  std::mutex mutex;
  std::condition_variable cv;

  struct Key {
    int src, dst, tag;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };
  std::map<Key, std::deque<Bytes>> mailboxes;

  // Sense-reversing barrier state.
  int barrier_arrived;
  uint64_t barrier_generation;
};

}  // namespace internal

/// Handle held by one rank. All methods are callable only from that rank's
/// thread. Copyable-by-reference semantics are intentional: the World
/// outlives all ranks for the duration of RunSpmd.
class Communicator {
 public:
  Communicator(std::shared_ptr<internal::World> world, int rank)
      : world_(std::move(world)), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return world_->size; }

  /// Bound every subsequent blocking wait (Recv, Barrier — and therefore
  /// every collective) by `ms` milliseconds; 0 restores unbounded waits.
  /// Per-Communicator (per-rank) state: set it uniformly across ranks, or a
  /// rank without a budget will wait forever for peers that gave up.
  void SetWaitTimeout(double ms) { wait_timeout_ms_ = ms; }
  [[nodiscard]] double wait_timeout_ms() const { return wait_timeout_ms_; }

  // ---- point to point -----------------------------------------------
  /// Buffered send: copies `data` into dst's mailbox and returns.
  void Send(int dst, int tag, std::span<const std::byte> data);
  /// Blocking receive of the next message from (src, tag). The no-deadline
  /// overload applies the configured wait timeout; both throw
  /// DeadlineExceededError when the wait expires.
  Bytes Recv(int src, int tag);
  Bytes Recv(int src, int tag, const Deadline& deadline);

  /// Typed convenience wrappers (trivially-copyable element types only).
  template <typename T>
  void SendVec(int dst, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Send(dst, tag,
         std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T)));
  }
  template <typename T>
  std::vector<T> RecvVec(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Bytes b = Recv(src, tag);
    std::vector<T> v(b.size() / sizeof(T));
    std::memcpy(v.data(), b.data(), v.size() * sizeof(T));
    return v;
  }

  // ---- collectives ----------------------------------------------------
  /// All ranks wait until every rank has arrived. The no-deadline overload
  /// applies the configured wait timeout; an expired wait un-registers this
  /// rank's arrival and throws DeadlineExceededError.
  void Barrier();
  void Barrier(const Deadline& deadline);

  /// Root's buffer is copied to every rank (binomial-tree order is not
  /// needed in-process; root fan-out keeps semantics identical).
  template <typename T>
  void Broadcast(std::vector<T>& data, int root);

  /// Element-wise reduction of equal-length vectors onto root.
  template <typename T>
  std::vector<T> Reduce(const std::vector<T>& local, ReduceOp op, int root);

  /// Reduce + Broadcast.
  template <typename T>
  std::vector<T> AllReduce(const std::vector<T>& local, ReduceOp op);

  /// Concatenate each rank's vector at root, ordered by rank. Non-root
  /// ranks receive an empty vector.
  template <typename T>
  std::vector<std::vector<T>> Gather(const std::vector<T>& local, int root);

  /// Gather + Broadcast of the concatenation.
  template <typename T>
  std::vector<std::vector<T>> AllGather(const std::vector<T>& local);

  /// Root distributes parts[i] to rank i; returns this rank's part.
  template <typename T>
  std::vector<T> Scatter(const std::vector<std::vector<T>>& parts, int root);

  /// Personalized all-to-all: send[i] goes to rank i; returns the vector
  /// of messages received, indexed by source rank.
  template <typename T>
  std::vector<std::vector<T>> AllToAll(const std::vector<std::vector<T>>& send);

  /// Scalar sugar.
  double AllReduceScalar(double v, ReduceOp op);
  int64_t AllReduceScalar(int64_t v, ReduceOp op);

 private:
  template <typename T>
  static void ApplyOp(std::vector<T>& acc, const std::vector<T>& v, ReduceOp op);

  /// The deadline a no-deadline blocking call runs under.
  [[nodiscard]] Deadline WaitDeadline() const {
    return Deadline::AfterMs(wait_timeout_ms_);
  }

  std::shared_ptr<internal::World> world_;
  int rank_;
  double wait_timeout_ms_ = 0.0;
};

/// Launch `n_ranks` threads, each running `body(comm)` with its own rank.
/// Returns when every rank has finished. Exceptions from any rank are
/// rethrown (first by rank order) after all ranks have been joined.
void RunSpmd(int n_ranks, const std::function<void(Communicator&)>& body);

// ---- partition scatter/gather helpers ----------------------------------
//
// The distributed-executor building blocks: root deals a block-cyclic
// partition assignment out to the world, each rank works its share, and
// per-partition payloads come back to root ordered by partition index —
// the same gather-in-canonical-order rule the BundlePartitioner uses, so
// results are independent of the world size.

/// Root computes the block-cyclic owner map for `n_parts` partitions
/// (partition p belongs to rank p % size) and scatters it; every rank
/// returns its own partition indices in ascending order. Collective: all
/// ranks must call with the same `n_parts` and `root`.
std::vector<uint64_t> ScatterAssignment(Communicator& comm, uint64_t n_parts,
                                        int root);

/// Gather (partition index, payload) pairs from every rank onto `root`,
/// returned sorted ascending by partition index. Non-root ranks return an
/// empty vector. Throws std::invalid_argument if two ranks claim the same
/// partition index. Collective.
std::vector<std::pair<uint64_t, Bytes>> GatherByIndex(
    Communicator& comm, const std::vector<std::pair<uint64_t, Bytes>>& local,
    int root);

/// Agree on the union of per-rank quarantined partition sets: each rank
/// passes the partitions *it* dropped (ascending or not), every rank
/// returns the same global set in ascending order. Built on an
/// AllReduce(kMax) bitmap, so the result is independent of rank count and
/// arrival order — every rank can then apply the identical degraded-merge
/// decision (the fault-tolerance analogue of the ascending-gather rule).
/// Throws std::out_of_range if a local index is >= n_parts. Collective.
std::vector<uint64_t> AgreeQuarantine(Communicator& comm, uint64_t n_parts,
                                      const std::vector<uint64_t>& local);

// ---- template definitions ----------------------------------------------

namespace internal {
constexpr int kCollectiveTag = -1;  // reserved tag for collective traffic
}

template <typename T>
void Communicator::Broadcast(std::vector<T>& data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) SendVec(r, internal::kCollectiveTag, data);
    }
  } else {
    data = RecvVec<T>(root, internal::kCollectiveTag);
  }
  Barrier();
}

template <typename T>
void Communicator::ApplyOp(std::vector<T>& acc, const std::vector<T>& v,
                           ReduceOp op) {
  if (acc.size() != v.size()) {
    throw std::invalid_argument("Reduce: mismatched vector lengths");
  }
  for (size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] += v[i]; break;
      case ReduceOp::kMin: acc[i] = std::min(acc[i], v[i]); break;
      case ReduceOp::kMax: acc[i] = std::max(acc[i], v[i]); break;
      case ReduceOp::kProd: acc[i] *= v[i]; break;
    }
  }
}

template <typename T>
std::vector<T> Communicator::Reduce(const std::vector<T>& local, ReduceOp op,
                                    int root) {
  std::vector<T> result;
  bool bad = false;
  if (rank_ == root) {
    result = local;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      // Keep draining every rank's contribution even after a mismatch, so
      // no mailbox is left holding a stale collective message.
      const auto v = RecvVec<T>(r, internal::kCollectiveTag);
      if (bad || v.size() != result.size()) {
        bad = true;
        continue;
      }
      ApplyOp(result, v, op);
    }
  } else {
    SendVec(root, internal::kCollectiveTag, local);
  }
  Barrier();
  // Root tells every rank whether the reduction was well-formed, so a
  // mismatch throws on all ranks together instead of stranding the
  // survivors at the next collective.
  std::vector<uint8_t> status{static_cast<uint8_t>(bad ? 1 : 0)};
  Broadcast(status, root);
  if (status[0] != 0) {
    throw std::invalid_argument("Reduce: mismatched vector lengths");
  }
  return result;
}

template <typename T>
std::vector<T> Communicator::AllReduce(const std::vector<T>& local,
                                       ReduceOp op) {
  std::vector<T> result = Reduce(local, op, /*root=*/0);
  Broadcast(result, /*root=*/0);
  return result;
}

template <typename T>
std::vector<std::vector<T>> Communicator::Gather(const std::vector<T>& local,
                                                 int root) {
  std::vector<std::vector<T>> out;
  if (rank_ == root) {
    out.resize(size());
    out[static_cast<size_t>(root)] = local;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<size_t>(r)] = RecvVec<T>(r, internal::kCollectiveTag);
    }
  } else {
    SendVec(root, internal::kCollectiveTag, local);
  }
  Barrier();
  return out;
}

template <typename T>
std::vector<std::vector<T>> Communicator::AllGather(
    const std::vector<T>& local) {
  auto out = Gather(local, /*root=*/0);
  // Flatten-free broadcast: root sends each slot in rank order.
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      for (int slot = 0; slot < size(); ++slot) {
        SendVec(r, internal::kCollectiveTag, out[static_cast<size_t>(slot)]);
      }
    }
  } else {
    out.resize(size());
    for (int slot = 0; slot < size(); ++slot) {
      out[static_cast<size_t>(slot)] = RecvVec<T>(0, internal::kCollectiveTag);
    }
  }
  Barrier();
  return out;
}

template <typename T>
std::vector<T> Communicator::Scatter(const std::vector<std::vector<T>>& parts,
                                     int root) {
  std::vector<T> mine;
  bool bad = false;
  if (rank_ == root) {
    bad = parts.size() != static_cast<size_t>(size());
    if (!bad) mine = parts[static_cast<size_t>(root)];
    // On a malformed call still send placeholders, so non-root ranks are
    // not stranded in Recv; the status broadcast below makes every rank
    // throw together.
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      SendVec(r, internal::kCollectiveTag,
              bad ? std::vector<T>{} : parts[static_cast<size_t>(r)]);
    }
  } else {
    mine = RecvVec<T>(root, internal::kCollectiveTag);
  }
  Barrier();
  std::vector<uint8_t> status{static_cast<uint8_t>(bad ? 1 : 0)};
  Broadcast(status, root);
  if (status[0] != 0) {
    throw std::invalid_argument("Scatter: parts.size() != world size");
  }
  return mine;
}

template <typename T>
std::vector<std::vector<T>> Communicator::AllToAll(
    const std::vector<std::vector<T>>& send) {
  if (send.size() != static_cast<size_t>(size())) {
    throw std::invalid_argument("AllToAll: send.size() != world size");
  }
  // Everyone sends first (buffered), then receives — safe because Send is
  // non-blocking buffered.
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    SendVec(r, internal::kCollectiveTag, send[static_cast<size_t>(r)]);
  }
  std::vector<std::vector<T>> recv(size());
  recv[static_cast<size_t>(rank_)] = send[static_cast<size_t>(rank_)];
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    recv[static_cast<size_t>(r)] = RecvVec<T>(r, internal::kCollectiveTag);
  }
  Barrier();
  return recv;
}

}  // namespace drai::par
