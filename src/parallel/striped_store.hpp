// drai/parallel/striped_store.hpp
//
// In-memory object store with a Lustre-style striping *performance model*.
//
// Files are striped round-robin over simulated OSTs (object storage
// targets) in fixed-size stripes. Every read/write both (a) actually moves
// bytes in memory — so the store is a functional filesystem for the
// containers and shards built on it — and (b) charges simulated time to the
// OSTs it touches. The model captures the effects the paper's scaling
// discussion cares about:
//   * per-operation latency (metadata + RPC),
//   * per-OST bandwidth limits,
//   * contention when concurrent writers land on the same OST,
//   * stripe-count scaling until writers > OSTs.
//
// SimulatedSeconds() is a deterministic proxy for wall time on a real
// parallel filesystem; benches report it next to wall-clock.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace drai::par {

/// Performance/geometry knobs. Defaults roughly shaped like one Lustre
/// scratch tier: 1 ms op latency, 2 GiB/s per OST.
struct StripedStoreConfig {
  int num_osts = 8;                     ///< object storage targets
  uint64_t stripe_size = 1 << 20;       ///< bytes per stripe (1 MiB)
  int default_stripe_count = 4;         ///< OSTs a new file stripes across
  double ost_bandwidth_bytes_per_s = 2.0e9;
  double op_latency_s = 1.0e-3;         ///< fixed cost per I/O call
  uint64_t capacity_bytes = 0;          ///< 0 = unlimited
};

/// Statistics accumulated since construction or last ResetStats().
struct StripedStoreStats {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t write_ops = 0;
  uint64_t read_ops = 0;
  /// Modeled campaign completion time: the makespan of the busiest OST's
  /// queue since the last ResetStats (ops modeled as asynchronously queued).
  double simulated_seconds = 0;
};

class StripedStore {
 public:
  explicit StripedStore(StripedStoreConfig config = {});

  /// Create (or truncate) a file with an explicit stripe count
  /// (clamped to [1, num_osts]).
  Status Create(const std::string& path, int stripe_count = 0);

  /// Write `data` at `offset`, extending the file as needed.
  Status Write(const std::string& path, uint64_t offset,
               std::span<const std::byte> data);
  /// Append at current EOF; returns the offset written at.
  Result<uint64_t> Append(const std::string& path,
                          std::span<const std::byte> data);

  /// Read exactly `n` bytes at `offset`.
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t n) const;
  /// Read the whole file.
  Result<Bytes> ReadAll(const std::string& path) const;

  Result<uint64_t> Size(const std::string& path) const;
  [[nodiscard]] bool Exists(const std::string& path) const;
  Status Remove(const std::string& path);
  /// Paths with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix = "") const;

  /// Total bytes currently stored.
  [[nodiscard]] uint64_t UsedBytes() const;

  [[nodiscard]] StripedStoreStats stats() const;
  void ResetStats();
  [[nodiscard]] const StripedStoreConfig& config() const { return config_; }

 private:
  struct File {
    Bytes data;
    int stripe_count;
    int ost_offset = 0;  ///< starting OST, rotated per file like Lustre
  };

  /// Charge the striping model for an op of `n` bytes on `stripe_count`
  /// OSTs starting at byte `offset`; returns op completion delay.
  double ChargeOp(uint64_t offset, uint64_t n, int stripe_count,
                  int ost_offset);

  /// Sum of file sizes; caller must hold mutex_.
  [[nodiscard]] uint64_t UsedBytesLocked() const;

  StripedStoreConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, File> files_;
  int next_ost_offset_ = 0;
  std::vector<double> ost_busy_until_;  ///< per-OST simulated busy horizon
  double sim_now_ = 0;                  ///< simulated submission clock
  StripedStoreStats stats_;
};

}  // namespace drai::par
