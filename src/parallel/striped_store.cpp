#include "parallel/striped_store.hpp"

#include <algorithm>

namespace drai::par {

StripedStore::StripedStore(StripedStoreConfig config)
    : config_(config),
      ost_busy_until_(static_cast<size_t>(std::max(1, config.num_osts)), 0.0) {
  if (config_.num_osts <= 0) {
    throw std::invalid_argument("StripedStore: num_osts must be > 0");
  }
  if (config_.stripe_size == 0) {
    throw std::invalid_argument("StripedStore: stripe_size must be > 0");
  }
  if (config_.default_stripe_count <= 0) {
    config_.default_stripe_count = 1;
  }
}

double StripedStore::ChargeOp(uint64_t offset, uint64_t n, int stripe_count,
                              int ost_offset) {
  // Map the byte range [offset, offset+n) onto stripes; stripe s of a file
  // lives on OST (s % stripe_count + file's starting OST), so distinct
  // files rotate across OSTs (like Lustre's round-robin allocator) while a
  // single file spreads over stripe_count of them.
  const int sc = std::clamp(stripe_count, 1, config_.num_osts);
  std::vector<uint64_t> per_ost(static_cast<size_t>(config_.num_osts), 0);
  uint64_t pos = offset;
  uint64_t left = n;
  while (left > 0) {
    const uint64_t stripe = pos / config_.stripe_size;
    const uint64_t stripe_end = (stripe + 1) * config_.stripe_size;
    const uint64_t chunk = std::min(left, stripe_end - pos);
    const uint64_t ost =
        (stripe % static_cast<uint64_t>(sc) + static_cast<uint64_t>(ost_offset)) %
        static_cast<uint64_t>(config_.num_osts);
    per_ost[ost] += chunk;
    pos += chunk;
    left -= chunk;
  }
  // Queueing model: each involved OST accumulates latency + transfer time
  // for its share of the op. Ops are treated as asynchronously queued
  // (buffered/collective I/O), so the campaign's simulated completion time
  // is the *makespan* — the busiest OST's total queue. This is what makes
  // striping and adding writers matter: spreading bytes over more OSTs
  // shortens the longest queue, while piling writers onto few OSTs grows it.
  for (int o = 0; o < config_.num_osts; ++o) {
    const uint64_t b = per_ost[static_cast<size_t>(o)];
    if (b == 0) continue;
    ost_busy_until_[static_cast<size_t>(o)] +=
        config_.op_latency_s +
        static_cast<double>(b) / config_.ost_bandwidth_bytes_per_s;
  }
  const double makespan =
      *std::max_element(ost_busy_until_.begin(), ost_busy_until_.end());
  const double delay = makespan - sim_now_;
  sim_now_ = makespan;
  stats_.simulated_seconds = makespan;
  return delay;
}

Status StripedStore::Create(const std::string& path, int stripe_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  File f;
  f.stripe_count = stripe_count > 0
                       ? std::clamp(stripe_count, 1, config_.num_osts)
                       : config_.default_stripe_count;
  f.ost_offset = next_ost_offset_++ % config_.num_osts;
  files_[path] = std::move(f);
  return Status::Ok();
}

Status StripedStore::Write(const std::string& path, uint64_t offset,
                           std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    // Implicit create with default striping, like open(O_CREAT).
    File f;
    f.stripe_count = config_.default_stripe_count;
    f.ost_offset = next_ost_offset_++ % config_.num_osts;
    it = files_.emplace(path, std::move(f)).first;
  }
  File& f = it->second;
  const uint64_t end = offset + data.size();
  if (config_.capacity_bytes != 0) {
    const uint64_t growth = end > f.data.size() ? end - f.data.size() : 0;
    if (UsedBytesLocked() + growth > config_.capacity_bytes) {
      return ResourceExhausted("StripedStore capacity exceeded");
    }
  }
  if (end > f.data.size()) f.data.resize(end);
  std::copy(data.begin(), data.end(),
            f.data.begin() + static_cast<ptrdiff_t>(offset));
  stats_.bytes_written += data.size();
  stats_.write_ops += 1;
  ChargeOp(offset, data.size(), f.stripe_count, f.ost_offset);
  return Status::Ok();
}

Result<uint64_t> StripedStore::Append(const std::string& path,
                                      std::span<const std::byte> data) {
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = files_.find(path);
    if (it != files_.end()) offset = it->second.data.size();
  }
  DRAI_RETURN_IF_ERROR(Write(path, offset, data));
  return offset;
}

Result<Bytes> StripedStore::Read(const std::string& path, uint64_t offset,
                                 uint64_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  const File& f = it->second;
  if (offset + n > f.data.size()) {
    return OutOfRange("read past EOF: " + path);
  }
  auto* self = const_cast<StripedStore*>(this);
  self->stats_.bytes_read += n;
  self->stats_.read_ops += 1;
  self->ChargeOp(offset, n, f.stripe_count, f.ost_offset);
  return Bytes(f.data.begin() + static_cast<ptrdiff_t>(offset),
               f.data.begin() + static_cast<ptrdiff_t>(offset + n));
}

Result<Bytes> StripedStore::ReadAll(const std::string& path) const {
  uint64_t size;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = files_.find(path);
    if (it == files_.end()) return NotFound("no such file: " + path);
    size = it->second.data.size();
  }
  return Read(path, 0, size);
}

Result<uint64_t> StripedStore::Size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second.data.size());
}

bool StripedStore::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) > 0;
}

Status StripedStore::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(path) == 0) return NotFound("no such file: " + path);
  return Status::Ok();
}

std::vector<std::string> StripedStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

uint64_t StripedStore::UsedBytesLocked() const {
  uint64_t total = 0;
  for (const auto& [_, f] : files_) total += f.data.size();
  return total;
}

uint64_t StripedStore::UsedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return UsedBytesLocked();
}

StripedStoreStats StripedStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void StripedStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = StripedStoreStats{};
  std::fill(ost_busy_until_.begin(), ost_busy_until_.end(), 0.0);
  sim_now_ = 0;
}

}  // namespace drai::par
