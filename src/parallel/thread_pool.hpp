// drai/parallel/thread_pool.hpp
//
// Fixed-size worker pool plus an OpenMP-style parallel_for. Used by the
// shard loader (prefetch), the pipeline executor, and any stage kernel that
// is data-parallel over records.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace drai::par {

/// A fixed pool of worker threads executing submitted tasks FIFO.
/// Destruction drains the queue and joins all workers (RAII — no detach).
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  [[nodiscard]] size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool shared by parallel_for (lazily constructed).
ThreadPool& GlobalPool();

/// True when the calling thread is a pool worker. Nested parallel
/// constructs (ParallelFor, the pipeline executor) check this and degrade
/// to serial instead of deadlocking on their own pool.
bool InPoolWorker();

/// OpenMP-`parallel for`-style static chunking: splits [begin, end) into
/// contiguous ranges, one per worker, and blocks until all complete.
/// `fn(i)` is invoked exactly once per index. Exceptions from workers are
/// rethrown on the calling thread (first one wins).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 size_t min_grain = 1);

/// Range-chunked variant: `fn(lo, hi)` is invoked once per contiguous chunk.
/// Cheaper than per-index dispatch for tight kernels.
void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t min_grain = 1);

}  // namespace drai::par
