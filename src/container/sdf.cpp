#include "container/sdf.hpp"

#include <cstring>

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace drai::container {

// ---- SdfDataset ---------------------------------------------------------

SdfDataset::SdfDataset(const NDArray& data, SdfDatasetOptions options) {
  const NDArray contiguous = data.IsContiguous() ? data : data.AsContiguous();
  shape_ = contiguous.shape();
  dtype_ = contiguous.dtype();
  codec_ = options.codec;
  const size_t rows = shape_.empty() ? 1 : shape_[0];
  chunk_rows_ = options.chunk_rows == 0 ? rows : options.chunk_rows;
  if (chunk_rows_ == 0) chunk_rows_ = 1;

  const size_t row_bytes =
      rows == 0 ? 0 : contiguous.nbytes() / std::max<size_t>(rows, 1);
  const auto raw = contiguous.raw_bytes();
  size_t row = 0;
  while (row < rows || (rows == 0 && chunks_.empty())) {
    const size_t take = std::min(chunk_rows_, rows - row);
    const std::span<const std::byte> slice =
        raw.subspan(row * row_bytes, take * row_bytes);
    Chunk c;
    Result<Bytes> framed = codec::Encode(codec_, slice);
    if (!framed.ok()) framed = codec::Encode(codec::Codec::kNone, slice);
    c.encoded = std::move(framed).value();
    c.raw_crc = Crc32(slice);
    chunks_.push_back(std::move(c));
    row += take;
    if (rows == 0) break;
  }
  if (chunks_.empty()) {
    // Zero-row dataset still carries one empty chunk so the layout is
    // uniform.
    Chunk c;
    c.encoded = codec::Encode(codec::Codec::kNone, {}).value();
    c.raw_crc = Crc32(std::span<const std::byte>{});
    chunks_.push_back(std::move(c));
  }
}

size_t SdfDataset::stored_bytes() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.encoded.size();
  return total;
}

size_t SdfDataset::RowsInChunk(size_t index) const {
  const size_t rows = shape_.empty() ? 1 : shape_[0];
  const size_t start = index * chunk_rows_;
  if (start >= rows) return 0;
  return std::min(chunk_rows_, rows - start);
}

Result<NDArray> SdfDataset::DecodeChunk(size_t index) const {
  if (index >= chunks_.size()) return OutOfRange("chunk index out of range");
  DRAI_ASSIGN_OR_RETURN(Bytes raw, codec::Decode(chunks_[index].encoded));
  if (Crc32(raw) != chunks_[index].raw_crc) {
    return DataLoss("sdf chunk crc mismatch");
  }
  Shape chunk_shape = shape_;
  if (!chunk_shape.empty()) chunk_shape[0] = RowsInChunk(index);
  if (raw.size() != ShapeNumel(chunk_shape) * DTypeSize(dtype_)) {
    return DataLoss("sdf chunk size mismatch");
  }
  NDArray out = NDArray::Zeros(chunk_shape, dtype_);
  if (!raw.empty()) {
    std::memcpy(out.raw_bytes_mut().data(), raw.data(), raw.size());
  }
  return out;
}

Result<NDArray> SdfDataset::Read() const {
  const size_t rows = shape_.empty() ? 1 : shape_[0];
  return ReadRows(0, rows);
}

Result<NDArray> SdfDataset::ReadRows(size_t row_begin, size_t row_end) const {
  const size_t rows = shape_.empty() ? 1 : shape_[0];
  if (row_begin > row_end || row_end > rows) {
    return OutOfRange("ReadRows: bad row range");
  }
  Shape out_shape = shape_;
  if (!out_shape.empty()) out_shape[0] = row_end - row_begin;
  NDArray out = NDArray::Zeros(out_shape, dtype_);
  if (row_end == row_begin) return out;

  const size_t row_bytes = out.nbytes() / std::max<size_t>(row_end - row_begin, 1);
  auto out_bytes = out.raw_bytes_mut();
  const size_t first_chunk = row_begin / chunk_rows_;
  const size_t last_chunk = (row_end - 1) / chunk_rows_;
  for (size_t ci = first_chunk; ci <= last_chunk; ++ci) {
    DRAI_ASSIGN_OR_RETURN(NDArray chunk, DecodeChunk(ci));
    const size_t chunk_start_row = ci * chunk_rows_;
    const size_t lo = std::max(row_begin, chunk_start_row);
    const size_t hi = std::min(row_end, chunk_start_row + RowsInChunk(ci));
    if (lo >= hi) continue;
    const auto chunk_bytes = chunk.raw_bytes();
    std::memcpy(out_bytes.data() + (lo - row_begin) * row_bytes,
                chunk_bytes.data() + (lo - chunk_start_row) * row_bytes,
                (hi - lo) * row_bytes);
  }
  return out;
}

void SdfDataset::Serialize(ByteWriter& w) const {
  w.PutU8(static_cast<uint8_t>(dtype_));
  w.PutVarU64(shape_.size());
  for (size_t d : shape_) w.PutVarU64(d);
  w.PutVarU64(chunk_rows_);
  w.PutU8(static_cast<uint8_t>(codec_));
  w.PutVarU64(chunks_.size());
  for (const Chunk& c : chunks_) {
    w.PutBlob(c.encoded);
    w.PutU32(c.raw_crc);
  }
}

Result<SdfDataset> SdfDataset::Deserialize(ByteReader& r) {
  SdfDataset d;
  uint8_t dtype = 0;
  DRAI_RETURN_IF_ERROR(r.GetU8(dtype));
  if (dtype > static_cast<uint8_t>(DType::kU8)) {
    return DataLoss("sdf dataset: bad dtype");
  }
  d.dtype_ = static_cast<DType>(dtype);
  uint64_t rank = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(rank));
  if (rank > 16) return DataLoss("sdf dataset: rank too large");
  d.shape_.resize(rank);
  for (auto& dim : d.shape_) {
    uint64_t v = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(v));
    dim = static_cast<size_t>(v);
  }
  uint64_t chunk_rows = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(chunk_rows));
  d.chunk_rows_ = static_cast<size_t>(chunk_rows);
  if (d.chunk_rows_ == 0) return DataLoss("sdf dataset: zero chunk_rows");
  uint8_t codec = 0;
  DRAI_RETURN_IF_ERROR(r.GetU8(codec));
  if (codec > static_cast<uint8_t>(codec::Codec::kXorF64)) {
    return DataLoss("sdf dataset: bad codec");
  }
  d.codec_ = static_cast<codec::Codec>(codec);
  uint64_t n_chunks = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_chunks));
  const size_t rows = d.shape_.empty() ? 1 : d.shape_[0];
  const size_t expected_chunks =
      rows == 0 ? 1 : (rows + d.chunk_rows_ - 1) / d.chunk_rows_;
  if (n_chunks != expected_chunks) {
    return DataLoss("sdf dataset: chunk count mismatch");
  }
  d.chunks_.resize(n_chunks);
  for (auto& c : d.chunks_) {
    DRAI_RETURN_IF_ERROR(r.GetBlob(c.encoded));
    DRAI_RETURN_IF_ERROR(r.GetU32(c.raw_crc));
  }
  return d;
}

// ---- SdfGroup -----------------------------------------------------------

void SdfGroup::SetAttr(const std::string& name, AttrValue value) {
  attrs_[name] = std::move(value);
}

std::optional<AttrValue> SdfGroup::GetAttr(const std::string& name) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) return std::nullopt;
  return it->second;
}

void SdfGroup::PutDataset(const std::string& name, const NDArray& data,
                          SdfDatasetOptions options) {
  datasets_[name] = SdfDataset(data, options);
}

const SdfDataset* SdfGroup::FindDataset(const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second;
}

Result<NDArray> SdfGroup::ReadDataset(const std::string& name) const {
  const SdfDataset* d = FindDataset(name);
  if (d == nullptr) return NotFound("sdf dataset not found: " + name);
  return d->Read();
}

SdfGroup& SdfGroup::Child(const std::string& name) {
  auto it = children_.find(name);
  if (it == children_.end()) {
    it = children_.emplace(name, std::make_unique<SdfGroup>()).first;
  }
  return *it->second;
}

const SdfGroup* SdfGroup::FindChild(const std::string& name) const {
  auto it = children_.find(name);
  return it == children_.end() ? nullptr : it->second.get();
}

void SdfGroup::Serialize(ByteWriter& w) const {
  w.PutVarU64(attrs_.size());
  for (const auto& [name, value] : attrs_) {
    w.PutString(name);
    WriteAttr(w, value);
  }
  w.PutVarU64(datasets_.size());
  for (const auto& [name, ds] : datasets_) {
    w.PutString(name);
    ds.Serialize(w);
  }
  w.PutVarU64(children_.size());
  for (const auto& [name, child] : children_) {
    w.PutString(name);
    child->Serialize(w);
  }
}

Result<SdfGroup> SdfGroup::Deserialize(ByteReader& r, int depth) {
  if (depth > 64) return DataLoss("sdf group nesting too deep");
  SdfGroup g;
  uint64_t n_attrs = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_attrs));
  if (n_attrs > (1ull << 20)) return DataLoss("sdf: implausible attr count");
  for (uint64_t i = 0; i < n_attrs; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_ASSIGN_OR_RETURN(AttrValue v, ReadAttr(r));
    g.attrs_[name] = std::move(v);
  }
  uint64_t n_datasets = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_datasets));
  if (n_datasets > (1ull << 20)) return DataLoss("sdf: implausible ds count");
  for (uint64_t i = 0; i < n_datasets; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_ASSIGN_OR_RETURN(SdfDataset ds, SdfDataset::Deserialize(r));
    g.datasets_[name] = std::move(ds);
  }
  uint64_t n_children = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_children));
  if (n_children > (1ull << 20)) return DataLoss("sdf: implausible children");
  for (uint64_t i = 0; i < n_children; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_ASSIGN_OR_RETURN(SdfGroup child, SdfGroup::Deserialize(r, depth + 1));
    g.children_[name] = std::make_unique<SdfGroup>(std::move(child));
  }
  return g;
}

// ---- SdfFile -------------------------------------------------------------

const SdfGroup* SdfFile::Resolve(const std::string& path) const {
  const SdfGroup* g = &root_;
  for (const std::string& comp : PathComponents(path)) {
    g = g->FindChild(comp);
    if (g == nullptr) return nullptr;
  }
  return g;
}

SdfGroup& SdfFile::ResolveOrCreate(const std::string& path) {
  SdfGroup* g = &root_;
  for (const std::string& comp : PathComponents(path)) {
    g = &g->Child(comp);
  }
  return *g;
}

Bytes SdfFile::Serialize() const {
  ByteWriter w;
  w.PutRaw(kMagic, 4);
  w.PutU16(kVersion);
  root_.Serialize(w);
  const uint32_t crc = Crc32(w.bytes());
  w.PutU32(crc);
  return w.Take();
}

Result<SdfFile> SdfFile::Parse(std::span<const std::byte> bytes) {
  if (bytes.size() < 10) return DataLoss("sdf: file too small");
  // Trailer CRC covers everything before it.
  ByteReader crc_reader(bytes.subspan(bytes.size() - 4));
  uint32_t stored_crc = 0;
  DRAI_RETURN_IF_ERROR(crc_reader.GetU32(stored_crc));
  if (Crc32(bytes.subspan(0, bytes.size() - 4)) != stored_crc) {
    return DataLoss("sdf: file crc mismatch");
  }
  ByteReader r(bytes.subspan(0, bytes.size() - 4));
  char magic[4];
  DRAI_RETURN_IF_ERROR(r.GetRaw(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) return DataLoss("sdf: bad magic");
  uint16_t version = 0;
  DRAI_RETURN_IF_ERROR(r.GetU16(version));
  if (version != kVersion) {
    return DataLoss("sdf: unsupported version " + std::to_string(version));
  }
  SdfFile f;
  DRAI_ASSIGN_OR_RETURN(f.root_, SdfGroup::Deserialize(r));
  if (!r.exhausted()) return DataLoss("sdf: trailing bytes");
  return f;
}

}  // namespace drai::container
