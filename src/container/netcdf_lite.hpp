// drai/container/netcdf_lite.hpp
//
// NcFile — a NetCDF-style dimension/variable model, the community format
// climate pipelines ingest (§3.1). Variables reference named, shared
// dimensions and carry conventions-style attributes (units, long_name,
// _FillValue). Storage is layered on SDF: an NcFile lowers to an SdfFile
// for bytes, the same way NetCDF-4 lowers to HDF5.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "container/sdf.hpp"

namespace drai::container {

/// A named dimension. Unlimited dimensions are modeled as ordinary sizes —
/// drai ingests finished files, not appending streams.
struct NcDimension {
  std::string name;
  size_t size = 0;
};

/// A variable over a list of dimensions, with attributes.
struct NcVariable {
  std::string name;
  std::vector<std::string> dims;
  NDArray data;
  std::map<std::string, AttrValue> attrs;

  /// Convenience: the "units" attribute, if present.
  [[nodiscard]] std::optional<std::string> Units() const;
  /// Convenience: the "_FillValue" attribute, if present.
  [[nodiscard]] std::optional<double> FillValue() const;
};

class NcFile {
 public:
  /// Define a dimension. Redefinition with a different size is an error.
  Status AddDimension(const std::string& name, size_t size);
  [[nodiscard]] std::optional<size_t> DimensionSize(const std::string& name) const;
  [[nodiscard]] const std::vector<NcDimension>& dimensions() const {
    return dims_;
  }

  /// Add a variable. Its shape must match its dimension list.
  Status AddVariable(NcVariable var);
  [[nodiscard]] const NcVariable* FindVariable(const std::string& name) const;
  [[nodiscard]] const std::vector<NcVariable>& variables() const {
    return vars_;
  }

  void SetGlobalAttr(const std::string& name, AttrValue value);
  [[nodiscard]] std::optional<AttrValue> GetGlobalAttr(
      const std::string& name) const;

  /// Lower to SDF bytes (datasets are XOR-compressed when floating).
  [[nodiscard]] Bytes Serialize() const;
  static Result<NcFile> Parse(std::span<const std::byte> bytes);

 private:
  std::vector<NcDimension> dims_;
  std::vector<NcVariable> vars_;
  std::map<std::string, AttrValue> global_attrs_;
};

}  // namespace drai::container
