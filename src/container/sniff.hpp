// drai/container/sniff.hpp
//
// Format detection by magic bytes. Ingest stages receive heterogeneous
// files (the paper's "fragmentation across domains" challenge); sniffing
// lets one ingest front-end route each blob to the right decoder.
#pragma once

#include <string_view>

#include "common/bytes.hpp"

namespace drai::container {

enum class FileFormat {
  kUnknown,
  kSdf,      ///< hierarchical self-describing (HDF5-like)
  kGribLite, ///< packed message stream (GRIB-like)
  kRecio,    ///< record stream (TFRecord-like)
  kBpLite,   ///< step-append container (ADIOS-like)
};

std::string_view FileFormatName(FileFormat f);

/// Detect the container format from leading magic bytes. Never fails;
/// unrecognized data is kUnknown.
FileFormat SniffFormat(std::span<const std::byte> head);

}  // namespace drai::container
