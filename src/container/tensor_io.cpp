#include "container/tensor_io.hpp"

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace drai::container {

void WriteTensor(ByteWriter& w, const NDArray& array, codec::Codec codec) {
  const NDArray contiguous =
      array.IsContiguous() ? array : array.AsContiguous();
  w.PutU8(static_cast<uint8_t>(contiguous.dtype()));
  w.PutVarU64(contiguous.rank());
  for (size_t d : contiguous.shape()) w.PutVarU64(d);
  const auto raw = contiguous.raw_bytes();
  // Word codecs need aligned sizes; fall back to kNone when incompatible.
  Result<Bytes> framed = codec::Encode(codec, raw);
  if (!framed.ok()) framed = codec::Encode(codec::Codec::kNone, raw);
  w.PutBlob(framed.value());
  w.PutU32(Crc32(raw));
}

Result<NDArray> ReadTensor(ByteReader& r) {
  uint8_t dtype_byte = 0;
  DRAI_RETURN_IF_ERROR(r.GetU8(dtype_byte));
  if (dtype_byte > static_cast<uint8_t>(DType::kU8)) {
    return DataLoss("tensor: bad dtype byte");
  }
  const DType dtype = static_cast<DType>(dtype_byte);
  uint64_t rank = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(rank));
  if (rank > 16) return DataLoss("tensor: rank too large");
  Shape shape(rank);
  uint64_t numel = 1;
  for (auto& d : shape) {
    uint64_t v = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(v));
    d = static_cast<size_t>(v);
    numel *= v;
    if (numel > (1ull << 40)) return DataLoss("tensor: implausible size");
  }
  Bytes framed;
  DRAI_RETURN_IF_ERROR(r.GetBlob(framed));
  DRAI_ASSIGN_OR_RETURN(Bytes raw, codec::Decode(framed));
  uint32_t crc = 0;
  DRAI_RETURN_IF_ERROR(r.GetU32(crc));
  if (crc != Crc32(raw)) return DataLoss("tensor: crc mismatch");
  if (raw.size() != numel * DTypeSize(dtype)) {
    return DataLoss("tensor: payload size mismatch");
  }
  NDArray out = NDArray::Zeros(shape, dtype);
  std::memcpy(out.raw_bytes_mut().data(), raw.data(), raw.size());
  return out;
}

AttrValue AttrValue::Int(int64_t v) {
  AttrValue a;
  a.kind = Kind::kInt;
  a.i = v;
  return a;
}
AttrValue AttrValue::Double(double v) {
  AttrValue a;
  a.kind = Kind::kDouble;
  a.d = v;
  return a;
}
AttrValue AttrValue::String(std::string v) {
  AttrValue a;
  a.kind = Kind::kString;
  a.s = std::move(v);
  return a;
}
AttrValue AttrValue::DoubleVec(std::vector<double> v) {
  AttrValue a;
  a.kind = Kind::kDoubleVec;
  a.vec = std::move(v);
  return a;
}

std::string AttrValue::ToString() const {
  switch (kind) {
    case Kind::kInt: return std::to_string(i);
    case Kind::kDouble: return FormatDouble(d, 6);
    case Kind::kString: return s;
    case Kind::kDoubleVec: {
      std::string out = "[";
      for (size_t k = 0; k < vec.size(); ++k) {
        if (k) out += ", ";
        out += FormatDouble(vec[k], 6);
      }
      return out + "]";
    }
  }
  return "?";
}

bool AttrValue::operator==(const AttrValue& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kInt: return i == o.i;
    case Kind::kDouble: return d == o.d;
    case Kind::kString: return s == o.s;
    case Kind::kDoubleVec: return vec == o.vec;
  }
  return false;
}

void WriteAttr(ByteWriter& w, const AttrValue& v) {
  w.PutU8(static_cast<uint8_t>(v.kind));
  switch (v.kind) {
    case AttrValue::Kind::kInt: w.PutVarI64(v.i); break;
    case AttrValue::Kind::kDouble: w.PutF64(v.d); break;
    case AttrValue::Kind::kString: w.PutString(v.s); break;
    case AttrValue::Kind::kDoubleVec: {
      w.PutVarU64(v.vec.size());
      for (double x : v.vec) w.PutF64(x);
      break;
    }
  }
}

Result<AttrValue> ReadAttr(ByteReader& r) {
  uint8_t kind = 0;
  DRAI_RETURN_IF_ERROR(r.GetU8(kind));
  AttrValue v;
  switch (kind) {
    case 0:
      v.kind = AttrValue::Kind::kInt;
      DRAI_RETURN_IF_ERROR(r.GetVarI64(v.i));
      break;
    case 1:
      v.kind = AttrValue::Kind::kDouble;
      DRAI_RETURN_IF_ERROR(r.GetF64(v.d));
      break;
    case 2:
      v.kind = AttrValue::Kind::kString;
      DRAI_RETURN_IF_ERROR(r.GetString(v.s));
      break;
    case 3: {
      v.kind = AttrValue::Kind::kDoubleVec;
      uint64_t n = 0;
      DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
      if (n > (1ull << 24)) return DataLoss("attr: vector too large");
      v.vec.resize(n);
      for (auto& x : v.vec) DRAI_RETURN_IF_ERROR(r.GetF64(x));
      break;
    }
    default:
      return DataLoss("attr: bad kind byte");
  }
  return v;
}

}  // namespace drai::container
