// drai/container/grib_lite.hpp
//
// GRIB-style *encoded* (not self-describing) message format — the other
// community format climate ingest must handle (§3.1). Real GRIB packs each
// 2-D field with a reference value + binary scale into fixed-width
// integers; decoding requires knowing the spec. grib-lite reproduces that
// shape: a file is a raw concatenation of messages, each with a terse
// binary header and a 16-bit (or 8-bit) linearly packed lat-lon field.
//
// The point for the readiness framework: GRIB-like inputs sit at Data
// Readiness Level 1-2 — ingest must decode, validate, and re-materialize
// them into floating-point grids before anything downstream can run.
#pragma once

#include <string>
#include <vector>

#include "codec/quantize.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::container {

/// One packed field. `valid_time` is seconds since an epoch the producing
/// model defines; `level_hpa` is the pressure level (0 = surface).
struct GribMessage {
  std::string variable;      ///< e.g. "t2m", "z500"
  int64_t valid_time = 0;
  int32_t level_hpa = 0;
  size_t n_lat = 0;
  size_t n_lon = 0;
  uint8_t bits = 16;         ///< packing width: 8 or 16
  NDArray field;             ///< [n_lat, n_lon] f64 when decoded

  /// Packing error of the last Encode (filled by EncodeGribMessage).
  codec::QuantError pack_error;
};

/// Encode one message (packs `field` to `bits`-bit integers). The field
/// must be a 2-D [n_lat, n_lon] floating array.
Result<Bytes> EncodeGribMessage(GribMessage& msg);

/// Append an encoded message to a growing file buffer.
Status AppendGribMessage(Bytes& file, GribMessage& msg);

/// Decode every message in a file buffer. Truncated/corrupt trailing data
/// returns kDataLoss (GRIB readers must detect torn files).
Result<std::vector<GribMessage>> DecodeGribFile(std::span<const std::byte> file);

}  // namespace drai::container
