// drai/container/recio.hpp
//
// RecIO — a TFRecord-style record stream: the write-once, read-sequential
// binary format training shards use. Each record is opaque bytes framed as
//   length:varint | crc32(payload):u32 | payload
// after a file header (magic, version, user metadata blob). Designed so a
// reader can (a) iterate records without deserializing them and (b) detect
// torn writes at the exact record that was cut.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace drai::container {

/// Builds a record stream in memory. The result is a complete, valid file
/// after every Append — suitable for append-mode shard writers.
class RecWriter {
 public:
  /// `metadata` is an opaque user blob stored in the header (e.g. a
  /// serialized schema or normalizer).
  explicit RecWriter(std::span<const std::byte> metadata = {});

  /// Append one record.
  void Append(std::span<const std::byte> payload);
  void Append(std::string_view payload);

  [[nodiscard]] size_t record_count() const { return count_; }
  [[nodiscard]] size_t byte_size() const { return writer_.size(); }

  /// The finished stream. The writer is reset afterwards.
  Bytes Finish();

  static constexpr char kMagic[4] = {'R', 'E', 'C', '1'};

 private:
  ByteWriter writer_;
  size_t count_ = 0;
};

/// Iterates a record stream. Construction validates the header only;
/// records are validated (CRC) as they are read.
class RecReader {
 public:
  static Result<RecReader> Open(std::span<const std::byte> file);

  /// Metadata blob from the header.
  [[nodiscard]] std::span<const std::byte> metadata() const { return metadata_; }

  /// Next record payload, or std::nullopt at end of stream.
  /// Corruption returns kDataLoss.
  Result<std::optional<Bytes>> Next();

  /// Read all remaining records.
  Result<std::vector<Bytes>> ReadAll();

  /// Count records without copying payloads (still CRC-checks).
  Result<size_t> CountRecords();

 private:
  explicit RecReader(std::span<const std::byte> file) : reader_(file) {}
  ByteReader reader_;
  std::span<const std::byte> metadata_;
};

}  // namespace drai::container
