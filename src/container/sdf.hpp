// drai/container/sdf.hpp
//
// SDF — "Scientific Data Format", drai's HDF5-equivalent self-describing
// hierarchical container. A file is a tree of groups; groups hold typed
// attributes and chunked datasets. Datasets chunk along the first dimension
// and compress each chunk independently, so partial reads of huge arrays
// touch only the chunks they need (the property HDF5 chunking exists for).
//
// On-disk layout (little endian):
//   magic "SDF1" | format version u16 | root group | crc32 of everything
// Group: attr count + (name, AttrValue)*, dataset count + (name, Dataset)*,
//        child count + (name, Group)*.
// Dataset: dtype, shape, chunk_rows, codec id, chunk count,
//          (encoded chunk blob + raw crc)*.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "codec/codec.hpp"
#include "container/tensor_io.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::container {

/// Per-dataset storage options.
struct SdfDatasetOptions {
  /// Rows (first-dim slices) per chunk; 0 = single chunk.
  size_t chunk_rows = 0;
  codec::Codec codec = codec::Codec::kNone;
};

/// A chunked, compressed dataset inside an SDF group.
class SdfDataset {
 public:
  SdfDataset() = default;
  SdfDataset(const NDArray& data, SdfDatasetOptions options);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] DType dtype() const { return dtype_; }
  [[nodiscard]] size_t chunk_rows() const { return chunk_rows_; }
  [[nodiscard]] size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] codec::Codec codec() const { return codec_; }
  /// Sum of encoded chunk sizes (what the file pays).
  [[nodiscard]] size_t stored_bytes() const;

  /// Decode the full array.
  [[nodiscard]] Result<NDArray> Read() const;
  /// Decode only rows [row_begin, row_end) of the first dimension, touching
  /// only the covering chunks.
  [[nodiscard]] Result<NDArray> ReadRows(size_t row_begin, size_t row_end) const;

  void Serialize(ByteWriter& w) const;
  static Result<SdfDataset> Deserialize(ByteReader& r);

 private:
  [[nodiscard]] Result<NDArray> DecodeChunk(size_t index) const;
  [[nodiscard]] size_t RowsInChunk(size_t index) const;

  Shape shape_;
  DType dtype_ = DType::kF32;
  size_t chunk_rows_ = 0;  ///< rows per full chunk (0 = all rows, 1 chunk)
  codec::Codec codec_ = codec::Codec::kNone;
  struct Chunk {
    Bytes encoded;  ///< codec-framed payload
    uint32_t raw_crc = 0;
  };
  std::vector<Chunk> chunks_;
};

/// A node in the SDF tree.
class SdfGroup {
 public:
  // -- attributes --
  void SetAttr(const std::string& name, AttrValue value);
  [[nodiscard]] std::optional<AttrValue> GetAttr(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, AttrValue>& attrs() const {
    return attrs_;
  }

  // -- datasets --
  /// Store a dataset (replaces an existing one with the same name).
  void PutDataset(const std::string& name, const NDArray& data,
                  SdfDatasetOptions options = {});
  [[nodiscard]] const SdfDataset* FindDataset(const std::string& name) const;
  [[nodiscard]] Result<NDArray> ReadDataset(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, SdfDataset>& datasets() const {
    return datasets_;
  }

  // -- children --
  /// Get or create a child group.
  SdfGroup& Child(const std::string& name);
  [[nodiscard]] const SdfGroup* FindChild(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::unique_ptr<SdfGroup>>&
  children() const {
    return children_;
  }

  void Serialize(ByteWriter& w) const;
  static Result<SdfGroup> Deserialize(ByteReader& r, int depth = 0);

 private:
  std::map<std::string, AttrValue> attrs_;
  std::map<std::string, SdfDataset> datasets_;
  std::map<std::string, std::unique_ptr<SdfGroup>> children_;
};

/// The file object: a root group plus (de)serialization with magic+CRC.
class SdfFile {
 public:
  SdfGroup& root() { return root_; }
  [[nodiscard]] const SdfGroup& root() const { return root_; }

  /// Resolve a "/path/to/group" (creating nothing); nullptr when absent.
  [[nodiscard]] const SdfGroup* Resolve(const std::string& path) const;
  /// Resolve, creating intermediate groups.
  SdfGroup& ResolveOrCreate(const std::string& path);

  [[nodiscard]] Bytes Serialize() const;
  static Result<SdfFile> Parse(std::span<const std::byte> bytes);

  static constexpr char kMagic[4] = {'S', 'D', 'F', '1'};
  static constexpr uint16_t kVersion = 1;

 private:
  SdfGroup root_;
};

}  // namespace drai::container
