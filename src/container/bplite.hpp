// drai/container/bplite.hpp
//
// BpLite — an ADIOS-BP-style step-oriented container (§2.1 cites ADIOS as
// an AI-ready target format). A producer appends *steps*; each step holds
// named tensors. Data blocks are written append-only and a footer index (at
// the end, like BP) records every (step, variable) -> offset, so readers
// can fetch one variable of one step without scanning the file. This is the
// access pattern simulation campaigns and HydraGNN-style graph shards use.
//
// Layout: magic | version | data blocks... | footer | footer_size:u64 |
//         crc32(footer):u32 | magic_tail
#pragma once

#include <map>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "common/bytes.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::container {

/// Append-oriented writer. Steps are closed with EndStep; Finish writes the
/// footer index and returns the file bytes.
class BpWriter {
 public:
  BpWriter();

  /// Begin a new step (steps are numbered 0, 1, ... implicitly).
  void BeginStep();
  /// Write one variable into the current step.
  void Put(const std::string& name, const NDArray& data,
           codec::Codec codec = codec::Codec::kNone);
  /// Close the current step.
  void EndStep();

  [[nodiscard]] size_t step_count() const { return steps_completed_; }

  /// Write footer and return the complete file. Writer must not be reused.
  Bytes Finish();

  static constexpr char kMagic[4] = {'B', 'P', 'L', '1'};

 private:
  struct IndexEntry {
    uint64_t step;
    std::string name;
    uint64_t offset;  ///< into the data section
    uint64_t size;
  };
  ByteWriter data_;
  std::vector<IndexEntry> index_;
  uint64_t steps_completed_ = 0;
  bool in_step_ = false;
  bool finished_ = false;
};

/// Random-access reader over a complete BpLite file.
class BpReader {
 public:
  static Result<BpReader> Open(std::span<const std::byte> file);

  [[nodiscard]] size_t step_count() const { return step_count_; }
  /// Variable names present in a step, sorted.
  [[nodiscard]] std::vector<std::string> Variables(size_t step) const;
  /// Fetch one variable of one step (seeks directly via the index).
  [[nodiscard]] Result<NDArray> Get(size_t step, const std::string& name) const;

 private:
  BpReader() = default;
  std::span<const std::byte> file_;
  size_t data_begin_ = 0;
  size_t step_count_ = 0;
  std::map<std::pair<uint64_t, std::string>, std::pair<uint64_t, uint64_t>>
      index_;  ///< (step, name) -> (offset, size)
};

}  // namespace drai::container
