// drai/container/tensor_io.hpp
//
// Shared NDArray <-> bytes serialization used by every container format.
// Layout: dtype:u8, rank:varint, dims:varint*, codec frame of the raw
// element bytes, crc32:u32 of the *raw* bytes (integrity survives codec
// changes). Arrays are stored contiguously (views are materialized).
#pragma once

#include "codec/codec.hpp"
#include "common/bytes.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::container {

/// Append a serialized tensor to `w`.
void WriteTensor(ByteWriter& w, const NDArray& array,
                 codec::Codec codec = codec::Codec::kNone);

/// Parse a tensor written by WriteTensor. Validates CRC.
Result<NDArray> ReadTensor(ByteReader& r);

/// Attribute value for containers: int, float, string, or double vector.
struct AttrValue {
  enum class Kind : uint8_t { kInt = 0, kDouble = 1, kString = 2, kDoubleVec = 3 };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double d = 0;
  std::string s;
  std::vector<double> vec;

  static AttrValue Int(int64_t v);
  static AttrValue Double(double v);
  static AttrValue String(std::string v);
  static AttrValue DoubleVec(std::vector<double> v);

  [[nodiscard]] std::string ToString() const;
  bool operator==(const AttrValue& o) const;
};

void WriteAttr(ByteWriter& w, const AttrValue& v);
Result<AttrValue> ReadAttr(ByteReader& r);

}  // namespace drai::container
