#include "container/bplite.hpp"

#include <cstring>

#include "common/hash.hpp"
#include "container/tensor_io.hpp"

namespace drai::container {

BpWriter::BpWriter() {
  data_.PutRaw(kMagic, 4);
  data_.PutU16(1);  // version
}

void BpWriter::BeginStep() {
  if (finished_) throw std::logic_error("BpWriter reused after Finish");
  if (in_step_) throw std::logic_error("BeginStep inside an open step");
  in_step_ = true;
}

void BpWriter::Put(const std::string& name, const NDArray& array,
                   codec::Codec codec) {
  if (!in_step_) throw std::logic_error("Put outside a step");
  IndexEntry e;
  e.step = steps_completed_;
  e.name = name;
  e.offset = data_.size();
  WriteTensor(data_, array, codec);
  e.size = data_.size() - e.offset;
  index_.push_back(std::move(e));
}

void BpWriter::EndStep() {
  if (!in_step_) throw std::logic_error("EndStep without BeginStep");
  in_step_ = false;
  ++steps_completed_;
}

Bytes BpWriter::Finish() {
  if (in_step_) throw std::logic_error("Finish inside an open step");
  if (finished_) throw std::logic_error("BpWriter::Finish called twice");
  finished_ = true;

  ByteWriter footer;
  footer.PutU64(steps_completed_);
  footer.PutVarU64(index_.size());
  for (const IndexEntry& e : index_) {
    footer.PutU64(e.step);
    footer.PutString(e.name);
    footer.PutU64(e.offset);
    footer.PutU64(e.size);
  }
  const Bytes footer_bytes = footer.Take();

  data_.PutRaw(footer_bytes);
  data_.PutU64(footer_bytes.size());
  data_.PutU32(Crc32(footer_bytes));
  data_.PutRaw(kMagic, 4);  // tail magic, lets readers find the footer
  return data_.Take();
}

Result<BpReader> BpReader::Open(std::span<const std::byte> file) {
  BpReader rd;
  rd.file_ = file;
  // 4 magic + 2 version + footer_size(8) + crc(4) + 4 tail magic
  if (file.size() < 22) return DataLoss("bplite: file too small");
  if (std::memcmp(file.data(), BpWriter::kMagic, 4) != 0) {
    return DataLoss("bplite: bad head magic");
  }
  if (std::memcmp(file.data() + file.size() - 4, BpWriter::kMagic, 4) != 0) {
    return DataLoss("bplite: bad tail magic (torn file?)");
  }
  ByteReader tail(file.subspan(file.size() - 16, 12));
  uint64_t footer_size = 0;
  uint32_t footer_crc = 0;
  DRAI_RETURN_IF_ERROR(tail.GetU64(footer_size));
  DRAI_RETURN_IF_ERROR(tail.GetU32(footer_crc));
  if (footer_size + 22 > file.size()) return DataLoss("bplite: bad footer size");
  const auto footer_bytes =
      file.subspan(file.size() - 16 - footer_size, footer_size);
  if (Crc32(footer_bytes) != footer_crc) {
    return DataLoss("bplite: footer crc mismatch");
  }
  ByteReader footer(footer_bytes);
  uint64_t steps = 0;
  DRAI_RETURN_IF_ERROR(footer.GetU64(steps));
  rd.step_count_ = static_cast<size_t>(steps);
  uint64_t n_entries = 0;
  DRAI_RETURN_IF_ERROR(footer.GetVarU64(n_entries));
  if (n_entries > (1ull << 24)) return DataLoss("bplite: implausible index");
  rd.data_begin_ = 6;  // magic + version
  for (uint64_t i = 0; i < n_entries; ++i) {
    uint64_t step = 0, offset = 0, size = 0;
    std::string name;
    DRAI_RETURN_IF_ERROR(footer.GetU64(step));
    DRAI_RETURN_IF_ERROR(footer.GetString(name));
    DRAI_RETURN_IF_ERROR(footer.GetU64(offset));
    DRAI_RETURN_IF_ERROR(footer.GetU64(size));
    if (offset + size > file.size() - 16 - footer_size) {
      return DataLoss("bplite: index entry out of bounds");
    }
    rd.index_[{step, name}] = {offset, size};
  }
  return rd;
}

std::vector<std::string> BpReader::Variables(size_t step) const {
  std::vector<std::string> out;
  for (const auto& [key, _] : index_) {
    if (key.first == step) out.push_back(key.second);
  }
  return out;
}

Result<NDArray> BpReader::Get(size_t step, const std::string& name) const {
  auto it = index_.find({static_cast<uint64_t>(step), name});
  if (it == index_.end()) {
    return NotFound("bplite: no variable '" + name + "' in step " +
                    std::to_string(step));
  }
  const auto [offset, size] = it->second;
  ByteReader r(file_.subspan(offset, size));
  return ReadTensor(r);
}

}  // namespace drai::container
