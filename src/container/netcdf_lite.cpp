#include "container/netcdf_lite.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace drai::container {

std::optional<std::string> NcVariable::Units() const {
  auto it = attrs.find("units");
  if (it == attrs.end() || it->second.kind != AttrValue::Kind::kString) {
    return std::nullopt;
  }
  return it->second.s;
}

std::optional<double> NcVariable::FillValue() const {
  auto it = attrs.find("_FillValue");
  if (it == attrs.end()) return std::nullopt;
  if (it->second.kind == AttrValue::Kind::kDouble) return it->second.d;
  if (it->second.kind == AttrValue::Kind::kInt) {
    return static_cast<double>(it->second.i);
  }
  return std::nullopt;
}

Status NcFile::AddDimension(const std::string& name, size_t size) {
  for (const NcDimension& d : dims_) {
    if (d.name == name) {
      if (d.size == size) return Status::Ok();  // idempotent
      return AlreadyExists("dimension redefined with different size: " + name);
    }
  }
  dims_.push_back({name, size});
  return Status::Ok();
}

std::optional<size_t> NcFile::DimensionSize(const std::string& name) const {
  for (const NcDimension& d : dims_) {
    if (d.name == name) return d.size;
  }
  return std::nullopt;
}

Status NcFile::AddVariable(NcVariable var) {
  if (FindVariable(var.name) != nullptr) {
    return AlreadyExists("variable already defined: " + var.name);
  }
  if (var.dims.size() != var.data.rank()) {
    return InvalidArgument("variable rank does not match dimension list: " +
                           var.name);
  }
  for (size_t i = 0; i < var.dims.size(); ++i) {
    const auto size = DimensionSize(var.dims[i]);
    if (!size.has_value()) {
      return NotFound("undefined dimension '" + var.dims[i] + "' in variable " +
                      var.name);
    }
    if (*size != var.data.shape()[i]) {
      return InvalidArgument("dimension '" + var.dims[i] + "' size mismatch in " +
                             var.name);
    }
  }
  vars_.push_back(std::move(var));
  return Status::Ok();
}

const NcVariable* NcFile::FindVariable(const std::string& name) const {
  for (const NcVariable& v : vars_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

void NcFile::SetGlobalAttr(const std::string& name, AttrValue value) {
  global_attrs_[name] = std::move(value);
}

std::optional<AttrValue> NcFile::GetGlobalAttr(const std::string& name) const {
  auto it = global_attrs_.find(name);
  if (it == global_attrs_.end()) return std::nullopt;
  return it->second;
}

Bytes NcFile::Serialize() const {
  SdfFile f;
  SdfGroup& root = f.root();
  root.SetAttr("container", AttrValue::String("netcdf-lite"));
  for (const auto& [name, value] : global_attrs_) {
    f.ResolveOrCreate("/global").SetAttr(name, value);
  }
  SdfGroup& dims = f.ResolveOrCreate("/dims");
  for (const NcDimension& d : dims_) {
    dims.SetAttr(d.name, AttrValue::Int(static_cast<int64_t>(d.size)));
  }
  // A stable ordering attribute keeps variable order across the round trip
  // (SDF children are name-sorted).
  std::string order;
  for (const NcVariable& v : vars_) {
    if (!order.empty()) order += ",";
    order += v.name;
  }
  root.SetAttr("var_order", AttrValue::String(order));
  for (const NcVariable& v : vars_) {
    SdfGroup& g = f.ResolveOrCreate("/vars/" + v.name);
    std::string dim_list;
    for (const std::string& d : v.dims) {
      if (!dim_list.empty()) dim_list += ",";
      dim_list += d;
    }
    g.SetAttr("dims", AttrValue::String(dim_list));
    for (const auto& [name, value] : v.attrs) {
      g.Child("attrs").SetAttr(name, value);
    }
    SdfDatasetOptions opts;
    if (v.data.dtype() == DType::kF32) opts.codec = codec::Codec::kXorF32;
    if (v.data.dtype() == DType::kF64) opts.codec = codec::Codec::kXorF64;
    g.PutDataset("data", v.data, opts);
  }
  return f.Serialize();
}

Result<NcFile> NcFile::Parse(std::span<const std::byte> bytes) {
  DRAI_ASSIGN_OR_RETURN(SdfFile f, SdfFile::Parse(bytes));
  const auto container = f.root().GetAttr("container");
  if (!container.has_value() || container->s != "netcdf-lite") {
    return DataLoss("not a netcdf-lite container");
  }
  NcFile nc;
  if (const SdfGroup* global = f.Resolve("/global")) {
    for (const auto& [name, value] : global->attrs()) {
      nc.global_attrs_[name] = value;
    }
  }
  if (const SdfGroup* dims = f.Resolve("/dims")) {
    for (const auto& [name, value] : dims->attrs()) {
      if (value.kind != AttrValue::Kind::kInt || value.i < 0) {
        return DataLoss("netcdf-lite: bad dimension " + name);
      }
      DRAI_RETURN_IF_ERROR(
          nc.AddDimension(name, static_cast<size_t>(value.i)));
    }
  }
  const auto order = f.root().GetAttr("var_order");
  std::vector<std::string> names;
  if (order.has_value() && !order->s.empty()) {
    for (auto& n : Split(order->s, ',')) names.push_back(n);
  }
  const SdfGroup* vars = f.Resolve("/vars");
  if (vars != nullptr && names.empty()) {
    for (const auto& [name, _] : vars->children()) names.push_back(name);
  }
  for (const std::string& name : names) {
    if (vars == nullptr) return DataLoss("netcdf-lite: missing /vars");
    const SdfGroup* g = vars->FindChild(name);
    if (g == nullptr) return DataLoss("netcdf-lite: missing variable " + name);
    NcVariable v;
    v.name = name;
    const auto dim_list = g->GetAttr("dims");
    if (dim_list.has_value() && !dim_list->s.empty()) {
      for (auto& d : Split(dim_list->s, ',')) v.dims.push_back(d);
    }
    if (const SdfGroup* attrs = g->FindChild("attrs")) {
      for (const auto& [an, av] : attrs->attrs()) v.attrs[an] = av;
    }
    DRAI_ASSIGN_OR_RETURN(v.data, g->ReadDataset("data"));
    DRAI_RETURN_IF_ERROR(nc.AddVariable(std::move(v)));
  }
  return nc;
}

}  // namespace drai::container
