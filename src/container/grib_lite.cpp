#include "container/grib_lite.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "codec/codec.hpp"
#include "common/hash.hpp"

namespace drai::container {

namespace {
constexpr char kGribMagic[4] = {'G', 'R', 'B', 'L'};
}

Result<Bytes> EncodeGribMessage(GribMessage& msg) {
  if (msg.field.rank() != 2) {
    return InvalidArgument("grib: field must be 2-D [lat, lon]");
  }
  if (!IsFloating(msg.field.dtype())) {
    return InvalidArgument("grib: field must be floating point");
  }
  if (msg.bits != 8 && msg.bits != 16) {
    return InvalidArgument("grib: bits must be 8 or 16");
  }
  msg.n_lat = msg.field.shape()[0];
  msg.n_lon = msg.field.shape()[1];

  // Pack to integers.
  const size_t n = msg.field.numel();
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = msg.field.GetAsDouble(i);
  DRAI_ASSIGN_OR_RETURN(codec::LinearPack pack,
                        codec::LinearQuantize(values, msg.bits));
  msg.pack_error = codec::MeasureLinearError(values, pack);

  ByteWriter w;
  w.PutRaw(kGribMagic, 4);
  w.PutString(msg.variable);
  w.PutI64(msg.valid_time);
  w.PutI32(msg.level_hpa);
  w.PutVarU64(msg.n_lat);
  w.PutVarU64(msg.n_lon);
  w.PutU8(msg.bits);
  w.PutF64(pack.offset);
  w.PutF64(pack.scale);
  // Missing-value bitmap (real GRIB's section 6): 1 bit per cell, packed,
  // then RLE framed — all-present fields cost a few bytes.
  Bytes bitmap((n + 7) / 8, std::byte{0});
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      bitmap[i / 8] |= static_cast<std::byte>(1u << (i % 8));
    }
  }
  DRAI_ASSIGN_OR_RETURN(Bytes bitmap_framed,
                        codec::Encode(codec::Codec::kRle, bitmap));
  w.PutBlob(bitmap_framed);
  if (msg.bits == 8) {
    w.PutRaw(pack.packed8.data(), pack.packed8.size());
  } else {
    // Little-endian 16-bit quanta.
    for (uint16_t q : pack.packed16) w.PutU16(q);
  }
  // CRC over the whole message body (after magic).
  const auto body = w.bytes().subspan(4);
  w.PutU32(Crc32(body));
  return w.Take();
}

Status AppendGribMessage(Bytes& file, GribMessage& msg) {
  DRAI_ASSIGN_OR_RETURN(Bytes encoded, EncodeGribMessage(msg));
  file.insert(file.end(), encoded.begin(), encoded.end());
  return Status::Ok();
}

Result<std::vector<GribMessage>> DecodeGribFile(
    std::span<const std::byte> file) {
  std::vector<GribMessage> out;
  ByteReader r(file);
  while (!r.exhausted()) {
    const size_t msg_start = r.position();
    char magic[4];
    DRAI_RETURN_IF_ERROR(r.GetRaw(magic, 4));
    if (std::memcmp(magic, kGribMagic, 4) != 0) {
      return DataLoss("grib: bad message magic at offset " +
                      std::to_string(msg_start));
    }
    GribMessage msg;
    DRAI_RETURN_IF_ERROR(r.GetString(msg.variable));
    DRAI_RETURN_IF_ERROR(r.GetI64(msg.valid_time));
    DRAI_RETURN_IF_ERROR(r.GetI32(msg.level_hpa));
    uint64_t n_lat = 0, n_lon = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(n_lat));
    DRAI_RETURN_IF_ERROR(r.GetVarU64(n_lon));
    if (n_lat == 0 || n_lon == 0 || n_lat * n_lon > (1ull << 32)) {
      return DataLoss("grib: implausible grid dims");
    }
    msg.n_lat = static_cast<size_t>(n_lat);
    msg.n_lon = static_cast<size_t>(n_lon);
    DRAI_RETURN_IF_ERROR(r.GetU8(msg.bits));
    if (msg.bits != 8 && msg.bits != 16) return DataLoss("grib: bad bits");
    double offset = 0, scale = 0;
    DRAI_RETURN_IF_ERROR(r.GetF64(offset));
    DRAI_RETURN_IF_ERROR(r.GetF64(scale));
    const size_t n = msg.n_lat * msg.n_lon;
    Bytes bitmap_framed;
    DRAI_RETURN_IF_ERROR(r.GetBlob(bitmap_framed));
    DRAI_ASSIGN_OR_RETURN(Bytes bitmap, codec::Decode(bitmap_framed));
    if (bitmap.size() != (n + 7) / 8) {
      return DataLoss("grib: bitmap size mismatch");
    }
    const auto is_missing = [&bitmap](size_t i) {
      return (static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1;
    };

    msg.field = NDArray::Zeros({msg.n_lat, msg.n_lon}, DType::kF64);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    if (msg.bits == 8) {
      std::span<const std::byte> quanta;
      DRAI_RETURN_IF_ERROR(r.GetSpan(n, quanta));
      for (size_t i = 0; i < n; ++i) {
        msg.field.SetFromDouble(
            i, is_missing(i)
                   ? nan
                   : offset + scale * static_cast<double>(
                                  static_cast<uint8_t>(quanta[i])));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        uint16_t q = 0;
        DRAI_RETURN_IF_ERROR(r.GetU16(q));
        msg.field.SetFromDouble(
            i, is_missing(i) ? nan : offset + scale * static_cast<double>(q));
      }
    }
    // Validate CRC (covers body between magic and crc).
    const size_t body_end = r.position();
    uint32_t stored_crc = 0;
    DRAI_RETURN_IF_ERROR(r.GetU32(stored_crc));
    const auto body = file.subspan(msg_start + 4, body_end - (msg_start + 4));
    if (Crc32(body) != stored_crc) {
      return DataLoss("grib: message crc mismatch for " + msg.variable);
    }
    out.push_back(std::move(msg));
  }
  return out;
}

}  // namespace drai::container
