#include "container/recio.hpp"

#include <cstring>

#include "common/hash.hpp"

namespace drai::container {

RecWriter::RecWriter(std::span<const std::byte> metadata) {
  writer_.PutRaw(kMagic, 4);
  writer_.PutU16(1);  // version
  writer_.PutBlob(metadata);
}

void RecWriter::Append(std::span<const std::byte> payload) {
  writer_.PutVarU64(payload.size());
  writer_.PutU32(Crc32(payload));
  writer_.PutRaw(payload);
  ++count_;
}

void RecWriter::Append(std::string_view payload) {
  Append(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(payload.data()), payload.size()));
}

Bytes RecWriter::Finish() {
  count_ = 0;
  Bytes out = writer_.Take();
  // Re-arm with an empty header so accidental reuse still produces a valid
  // (empty) stream rather than a corrupt one.
  writer_ = ByteWriter();
  writer_.PutRaw(kMagic, 4);
  writer_.PutU16(1);
  writer_.PutBlob({});
  return out;
}

Result<RecReader> RecReader::Open(std::span<const std::byte> file) {
  RecReader rd(file);
  char magic[4];
  DRAI_RETURN_IF_ERROR(rd.reader_.GetRaw(magic, 4));
  if (std::memcmp(magic, RecWriter::kMagic, 4) != 0) {
    return DataLoss("recio: bad magic");
  }
  uint16_t version = 0;
  DRAI_RETURN_IF_ERROR(rd.reader_.GetU16(version));
  if (version != 1) return DataLoss("recio: unsupported version");
  uint64_t meta_len = 0;
  DRAI_RETURN_IF_ERROR(rd.reader_.GetVarU64(meta_len));
  DRAI_RETURN_IF_ERROR(rd.reader_.GetSpan(meta_len, rd.metadata_));
  return rd;
}

Result<std::optional<Bytes>> RecReader::Next() {
  if (reader_.exhausted()) return std::optional<Bytes>(std::nullopt);
  uint64_t len = 0;
  DRAI_RETURN_IF_ERROR(reader_.GetVarU64(len));
  uint32_t crc = 0;
  DRAI_RETURN_IF_ERROR(reader_.GetU32(crc));
  std::span<const std::byte> payload;
  DRAI_RETURN_IF_ERROR(reader_.GetSpan(len, payload));
  if (Crc32(payload) != crc) return DataLoss("recio: record crc mismatch");
  return std::optional<Bytes>(Bytes(payload.begin(), payload.end()));
}

Result<std::vector<Bytes>> RecReader::ReadAll() {
  std::vector<Bytes> out;
  for (;;) {
    DRAI_ASSIGN_OR_RETURN(std::optional<Bytes> rec, Next());
    if (!rec.has_value()) break;
    out.push_back(std::move(*rec));
  }
  return out;
}

Result<size_t> RecReader::CountRecords() {
  size_t n = 0;
  for (;;) {
    DRAI_ASSIGN_OR_RETURN(std::optional<Bytes> rec, Next());
    if (!rec.has_value()) break;
    ++n;
  }
  return n;
}

}  // namespace drai::container
