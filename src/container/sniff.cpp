#include "container/sniff.hpp"

#include <cstring>

namespace drai::container {

std::string_view FileFormatName(FileFormat f) {
  switch (f) {
    case FileFormat::kUnknown: return "unknown";
    case FileFormat::kSdf: return "sdf";
    case FileFormat::kGribLite: return "grib-lite";
    case FileFormat::kRecio: return "recio";
    case FileFormat::kBpLite: return "bplite";
  }
  return "?";
}

FileFormat SniffFormat(std::span<const std::byte> head) {
  if (head.size() < 4) return FileFormat::kUnknown;
  const auto is = [&](const char* magic) {
    return std::memcmp(head.data(), magic, 4) == 0;
  };
  if (is("SDF1")) return FileFormat::kSdf;
  if (is("GRBL")) return FileFormat::kGribLite;
  if (is("REC1")) return FileFormat::kRecio;
  if (is("BPL1")) return FileFormat::kBpLite;
  return FileFormat::kUnknown;
}

}  // namespace drai::container
