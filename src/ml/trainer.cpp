#include "ml/trainer.hpp"

#include "ml/metrics.hpp"

namespace drai::ml {

Status BatchToMatrix(const shard::Batch& batch,
                     const std::string& feature_name,
                     const std::string& target_name, NDArray& x_out,
                     std::vector<double>& y_out) {
  auto xit = batch.features.find(feature_name);
  auto yit = batch.features.find(target_name);
  if (xit == batch.features.end()) {
    return NotFound("batch missing feature: " + feature_name);
  }
  if (yit == batch.features.end()) {
    return NotFound("batch missing target: " + target_name);
  }
  const NDArray& x = xit->second;
  const NDArray& y = yit->second;
  const size_t n = batch.size();
  if (x.shape().empty() || x.shape()[0] != n || y.shape().empty() ||
      y.shape()[0] != n) {
    return InvalidArgument("batch feature leading dim mismatch");
  }
  const size_t f = x.numel() / n;
  const size_t targets_per = y.numel() / n;
  if (targets_per == 0) return InvalidArgument("empty target");

  x_out = NDArray::Zeros({n, f}, DType::kF64);
  y_out.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < f; ++j) {
      x_out.SetFromDouble(i * f + j, x.GetAsDouble(i * f + j));
    }
    y_out[i] = y.GetAsDouble(i * targets_per);  // first target component
  }
  return Status::Ok();
}

namespace {

/// Flatten a batch feature into [rows, f] plus integer labels.
Status BatchToClassMatrix(const shard::Batch& batch,
                          const std::string& feature_name, NDArray& x_out,
                          std::vector<int64_t>& y_out) {
  auto xit = batch.features.find(feature_name);
  auto yit = batch.features.find("label");
  if (xit == batch.features.end()) {
    return NotFound("batch missing feature: " + feature_name);
  }
  if (yit == batch.features.end()) return NotFound("batch missing labels");
  const NDArray& x = xit->second;
  const size_t n = batch.size();
  const size_t f = x.numel() / n;
  x_out = NDArray::Zeros({n, f}, DType::kF64);
  y_out.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < f; ++j) {
      x_out.SetFromDouble(i * f + j, x.GetAsDouble(i * f + j));
    }
    y_out[i] = static_cast<int64_t>(yit->second.GetAsDouble(i));
  }
  return Status::Ok();
}

}  // namespace

Result<ClassifierTrainReport> TrainClassifierFromShards(
    const shard::ShardReader& reader, const std::string& feature_name,
    const SgdOptions& sgd, size_t epochs, SoftmaxClassifier& model) {
  ClassifierTrainReport report;
  shard::DataLoaderOptions loader_options;
  loader_options.batch_size = sgd.batch_size;
  loader_options.seed = sgd.seed;
  shard::DataLoader loader(reader, shard::Split::kTrain, loader_options);
  SgdOptions step = sgd;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    loader.StartEpoch(epoch);
    double loss_sum = 0;
    size_t batches = 0;
    for (;;) {
      DRAI_ASSIGN_OR_RETURN(std::optional<shard::Batch> batch, loader.Next());
      if (!batch.has_value()) break;
      NDArray x;
      std::vector<int64_t> y;
      DRAI_RETURN_IF_ERROR(BatchToClassMatrix(*batch, feature_name, x, y));
      step.seed = sgd.seed + epoch * 8191 + batches;
      DRAI_ASSIGN_OR_RETURN(double loss, model.PartialFit(x, y, step));
      loss_sum += loss;
      report.samples_seen += batch->size();
      ++batches;
    }
    report.epoch_train_loss.push_back(
        batches ? loss_sum / static_cast<double>(batches) : 0.0);
  }
  DRAI_ASSIGN_OR_RETURN(std::vector<shard::Example> val,
                        reader.ReadAll(shard::Split::kVal));
  if (!val.empty()) {
    DRAI_ASSIGN_OR_RETURN(shard::Batch vb, shard::Collate(val));
    NDArray x;
    std::vector<int64_t> y;
    DRAI_RETURN_IF_ERROR(BatchToClassMatrix(vb, feature_name, x, y));
    std::vector<int64_t> pred(y.size());
    std::vector<double> row(x.shape()[1]);
    for (size_t i = 0; i < y.size(); ++i) {
      for (size_t j = 0; j < row.size(); ++j) {
        row[j] = x.GetAsDouble(i * row.size() + j);
      }
      pred[i] = model.Predict(row);
    }
    report.val_accuracy = Accuracy(pred, y);
    DRAI_ASSIGN_OR_RETURN(report.val_macro_f1,
                          MacroF1(pred, y, model.n_classes()));
  }
  return report;
}

Result<TrainReport> TrainRegressorFromShards(
    const shard::ShardReader& reader, const TrainFromShardsOptions& options,
    LinearRegressor& model) {
  TrainReport report;
  shard::DataLoaderOptions loader_options;
  loader_options.batch_size = options.sgd.batch_size;
  loader_options.seed = options.sgd.seed;
  shard::DataLoader train_loader(reader, shard::Split::kTrain, loader_options);

  // Streaming fit: every batch advances the model via PartialFit, so the
  // dataset never materializes whole.
  SgdOptions step = options.sgd;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    train_loader.StartEpoch(epoch);
    double loss_sum = 0;
    size_t batches = 0;
    for (;;) {
      DRAI_ASSIGN_OR_RETURN(std::optional<shard::Batch> batch,
                            train_loader.Next());
      if (!batch.has_value()) break;
      NDArray x;
      std::vector<double> y;
      DRAI_RETURN_IF_ERROR(BatchToMatrix(*batch, options.feature_name,
                                         options.target_name, x, y));
      step.seed = options.sgd.seed + epoch * 131071 + batches;
      DRAI_ASSIGN_OR_RETURN(double loss, model.PartialFit(x, y, step));
      loss_sum += loss;
      report.samples_seen += batch->size();
      ++batches;
    }
    report.batches_seen += batches;
    report.epoch_train_loss.push_back(
        batches ? loss_sum / static_cast<double>(batches) : 0.0);
  }

  // Validation: materialize the val split (small by construction).
  DRAI_ASSIGN_OR_RETURN(std::vector<shard::Example> val,
                        reader.ReadAll(shard::Split::kVal));
  if (!val.empty()) {
    DRAI_ASSIGN_OR_RETURN(shard::Batch vb, shard::Collate(val));
    NDArray x;
    std::vector<double> y;
    DRAI_RETURN_IF_ERROR(
        BatchToMatrix(vb, options.feature_name, options.target_name, x, y));
    std::vector<double> pred(y.size());
    std::vector<double> row(x.shape()[1]);
    for (size_t i = 0; i < y.size(); ++i) {
      for (size_t j = 0; j < row.size(); ++j) {
        row[j] = x.GetAsDouble(i * row.size() + j);
      }
      pred[i] = model.Predict(row);
    }
    report.val_mse = MeanSquaredError(pred, y);
    report.val_r2 = R2Score(pred, y);
  }
  return report;
}

}  // namespace drai::ml
