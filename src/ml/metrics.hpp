// drai/ml/metrics.hpp
//
// Evaluation metrics used by examples, benches, and the readiness
// assessor's "model feedback" loop (Figure 1's iterate-on-data arrow).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace drai::ml {

double MeanSquaredError(std::span<const double> pred,
                        std::span<const double> truth);
double MeanAbsoluteError(std::span<const double> pred,
                         std::span<const double> truth);
/// Coefficient of determination; 1 = perfect, 0 = mean predictor.
double R2Score(std::span<const double> pred, std::span<const double> truth);

double Accuracy(std::span<const int64_t> pred, std::span<const int64_t> truth);

/// Row = truth class, column = predicted class. Labels must be in [0, k).
Result<std::vector<std::vector<int64_t>>> ConfusionMatrix(
    std::span<const int64_t> pred, std::span<const int64_t> truth, size_t k);

/// Macro-averaged F1 over k classes.
Result<double> MacroF1(std::span<const int64_t> pred,
                       std::span<const int64_t> truth, size_t k);

}  // namespace drai::ml
