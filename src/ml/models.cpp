#include "ml/models.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include <cmath>
#include <map>

namespace drai::ml {

namespace {

Status CheckMatrix(const NDArray& x, size_t y_size, const char* who) {
  if (x.rank() != 2) {
    return InvalidArgument(std::string(who) + ": features must be [n, f]");
  }
  if (x.shape()[0] != y_size) {
    return InvalidArgument(std::string(who) + ": target length mismatch");
  }
  if (x.shape()[0] == 0 || x.shape()[1] == 0) {
    return InvalidArgument(std::string(who) + ": empty dataset");
  }
  return Status::Ok();
}

void FetchRow(const NDArray& x, size_t i, std::vector<double>& row) {
  const size_t f = x.shape()[1];
  row.resize(f);
  for (size_t j = 0; j < f; ++j) row[j] = x.GetAsDouble(i * f + j);
}

std::vector<size_t> EpochOrder(size_t n, Rng& rng) {
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  return order;
}

}  // namespace

// ---- LinearRegressor -----------------------------------------------------

Result<double> LinearRegressor::PartialFit(const NDArray& x,
                                           std::span<const double> y,
                                           const SgdOptions& options) {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, y.size(), "LinearRegressor"));
  const size_t n = x.shape()[0];
  const size_t f = x.shape()[1];
  if (w_.empty()) {
    w_.assign(f, 0.0);
    b_ = 0;
  } else if (w_.size() != f) {
    return InvalidArgument("PartialFit: feature count changed");
  }
  Rng rng(options.seed ^ Fnv1a64("partial", n));
  std::vector<double> row;
  const auto order = EpochOrder(n, rng);
  double loss_sum = 0;
  for (size_t start = 0; start < n; start += options.batch_size) {
    const size_t end = std::min(n, start + options.batch_size);
    std::vector<double> gw(f, 0.0);
    double gb = 0;
    for (size_t b = start; b < end; ++b) {
      const size_t i = order[b];
      FetchRow(x, i, row);
      const double err = Predict(row) - y[i];
      loss_sum += err * err;
      for (size_t j = 0; j < f; ++j) gw[j] += err * row[j];
      gb += err;
    }
    const double scale =
        options.learning_rate / static_cast<double>(end - start);
    for (size_t j = 0; j < f; ++j) {
      w_[j] -= scale * (gw[j] + options.l2 * w_[j]);
    }
    b_ -= scale * gb;
  }
  return loss_sum / static_cast<double>(n);
}

Result<std::vector<double>> LinearRegressor::Fit(const NDArray& x,
                                                 std::span<const double> y,
                                                 const SgdOptions& options) {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, y.size(), "LinearRegressor"));
  w_.assign(x.shape()[1], 0.0);
  b_ = 0;
  std::vector<double> history;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    SgdOptions pass = options;
    pass.seed = options.seed + epoch;
    DRAI_ASSIGN_OR_RETURN(double loss, PartialFit(x, y, pass));
    history.push_back(loss);
  }
  return history;
}

double LinearRegressor::Predict(std::span<const double> features) const {
  double out = b_;
  const size_t f = std::min(features.size(), w_.size());
  for (size_t j = 0; j < f; ++j) out += w_[j] * features[j];
  return out;
}

Result<double> LinearRegressor::Evaluate(const NDArray& x,
                                         std::span<const double> y) const {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, y.size(), "LinearRegressor::Evaluate"));
  std::vector<double> row;
  double mse = 0;
  const size_t n = x.shape()[0];
  for (size_t i = 0; i < n; ++i) {
    FetchRow(x, i, row);
    const double err = Predict(row) - y[i];
    mse += err * err;
  }
  return mse / static_cast<double>(n);
}

// ---- SoftmaxClassifier -----------------------------------------------------

Result<double> SoftmaxClassifier::PartialFit(
    const NDArray& x, std::span<const int64_t> labels,
    const SgdOptions& options, std::span<const double> class_weights) {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, labels.size(), "SoftmaxClassifier"));
  for (int64_t l : labels) {
    if (l < 0 || static_cast<size_t>(l) >= k_) {
      return InvalidArgument("SoftmaxClassifier: label out of range");
    }
  }
  if (!class_weights.empty() && class_weights.size() != k_) {
    return InvalidArgument("SoftmaxClassifier: class_weights size != k");
  }
  const size_t n = x.shape()[0];
  Rng rng(options.seed ^ Fnv1a64("softmax-partial", n));
  if (w_.empty()) {
    f_ = x.shape()[1];
    w_.assign(k_ * f_, 0.0);
    b_.assign(k_, 0.0);
    for (double& v : w_) v = rng.Normal(0, 0.01);
  } else if (f_ != x.shape()[1]) {
    return InvalidArgument("SoftmaxClassifier: feature count changed");
  }

  std::vector<double> row;
  const auto order = EpochOrder(n, rng);
  double loss_sum = 0;
  for (size_t start = 0; start < n; start += options.batch_size) {
    const size_t end = std::min(n, start + options.batch_size);
    std::vector<double> gw(k_ * f_, 0.0), gb(k_, 0.0);
    for (size_t b = start; b < end; ++b) {
      const size_t i = order[b];
      FetchRow(x, i, row);
      const std::vector<double> p = PredictProba(row);
      const size_t target = static_cast<size_t>(labels[i]);
      const double cw = class_weights.empty() ? 1.0 : class_weights[target];
      loss_sum += -cw * std::log(std::max(p[target], 1e-12));
      for (size_t c = 0; c < k_; ++c) {
        const double err = cw * (p[c] - (c == target ? 1.0 : 0.0));
        for (size_t j = 0; j < f_; ++j) gw[c * f_ + j] += err * row[j];
        gb[c] += err;
      }
    }
    const double scale =
        options.learning_rate / static_cast<double>(end - start);
    for (size_t c = 0; c < k_; ++c) {
      for (size_t j = 0; j < f_; ++j) {
        w_[c * f_ + j] -= scale * (gw[c * f_ + j] + options.l2 * w_[c * f_ + j]);
      }
      b_[c] -= scale * gb[c];
    }
  }
  return loss_sum / static_cast<double>(n);
}

Result<std::vector<double>> SoftmaxClassifier::Fit(
    const NDArray& x, std::span<const int64_t> labels,
    const SgdOptions& options, std::span<const double> class_weights) {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, labels.size(), "SoftmaxClassifier"));
  // Reset, then delegate epochs to PartialFit.
  f_ = x.shape()[1];
  Rng rng(options.seed);
  w_.assign(k_ * f_, 0.0);
  b_.assign(k_, 0.0);
  for (double& v : w_) v = rng.Normal(0, 0.01);
  std::vector<double> history;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    SgdOptions pass = options;
    pass.seed = options.seed + epoch;
    DRAI_ASSIGN_OR_RETURN(double loss,
                          PartialFit(x, labels, pass, class_weights));
    history.push_back(loss);
  }
  return history;
}

std::vector<double> SoftmaxClassifier::PredictProba(
    std::span<const double> features) const {
  std::vector<double> logits(k_, 0.0);
  for (size_t c = 0; c < k_; ++c) {
    double z = b_.empty() ? 0.0 : b_[c];
    const size_t f = std::min(features.size(), f_);
    for (size_t j = 0; j < f; ++j) z += w_[c * f_ + j] * features[j];
    logits[c] = z;
  }
  const double mx = *std::max_element(logits.begin(), logits.end());
  double denom = 0;
  for (double& z : logits) {
    z = std::exp(z - mx);
    denom += z;
  }
  for (double& z : logits) z /= denom;
  return logits;
}

int64_t SoftmaxClassifier::Predict(std::span<const double> features) const {
  const std::vector<double> p = PredictProba(features);
  return static_cast<int64_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

Result<double> SoftmaxClassifier::Evaluate(
    const NDArray& x, std::span<const int64_t> labels) const {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, labels.size(), "SoftmaxClassifier::Evaluate"));
  std::vector<double> row;
  size_t correct = 0;
  const size_t n = x.shape()[0];
  for (size_t i = 0; i < n; ++i) {
    FetchRow(x, i, row);
    if (Predict(row) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

// ---- MlpRegressor -----------------------------------------------------------

Result<std::vector<double>> MlpRegressor::Fit(const NDArray& x,
                                              std::span<const double> y,
                                              const SgdOptions& options) {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, y.size(), "MlpRegressor"));
  const size_t n = x.shape()[0];
  f_ = x.shape()[1];
  Rng rng(options.seed);
  const double init = 1.0 / std::sqrt(static_cast<double>(f_));
  w1_.assign(hidden_ * f_, 0.0);
  b1_.assign(hidden_, 0.0);
  w2_.assign(hidden_, 0.0);
  b2_ = 0;
  for (double& v : w1_) v = rng.Normal(0, init);
  for (double& v : w2_) {
    v = rng.Normal(0, 1.0 / std::sqrt(static_cast<double>(hidden_)));
  }

  std::vector<double> history, row, h(hidden_), gh(hidden_);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const auto order = EpochOrder(n, rng);
    double loss_sum = 0;
    for (size_t oi = 0; oi < n; ++oi) {  // pure SGD: batch of 1 keeps it simple
      const size_t i = order[oi];
      FetchRow(x, i, row);
      // Forward.
      for (size_t u = 0; u < hidden_; ++u) {
        double z = b1_[u];
        for (size_t j = 0; j < f_; ++j) z += w1_[u * f_ + j] * row[j];
        h[u] = std::tanh(z);
      }
      double out = b2_;
      for (size_t u = 0; u < hidden_; ++u) out += w2_[u] * h[u];
      const double err = out - y[i];
      loss_sum += err * err;
      // Backward.
      const double lr = options.learning_rate;
      for (size_t u = 0; u < hidden_; ++u) {
        gh[u] = err * w2_[u] * (1.0 - h[u] * h[u]);
      }
      for (size_t u = 0; u < hidden_; ++u) {
        w2_[u] -= lr * (err * h[u] + options.l2 * w2_[u]);
        for (size_t j = 0; j < f_; ++j) {
          w1_[u * f_ + j] -= lr * (gh[u] * row[j] + options.l2 * w1_[u * f_ + j]);
        }
        b1_[u] -= lr * gh[u];
      }
      b2_ -= lr * err;
    }
    history.push_back(loss_sum / static_cast<double>(n));
  }
  return history;
}

double MlpRegressor::Predict(std::span<const double> features) const {
  double out = b2_;
  for (size_t u = 0; u < hidden_; ++u) {
    double z = b1_.empty() ? 0.0 : b1_[u];
    const size_t f = std::min(features.size(), f_);
    for (size_t j = 0; j < f; ++j) z += w1_[u * f_ + j] * features[j];
    out += w2_[u] * std::tanh(z);
  }
  return out;
}

Result<double> MlpRegressor::Evaluate(const NDArray& x,
                                      std::span<const double> y) const {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, y.size(), "MlpRegressor::Evaluate"));
  std::vector<double> row;
  double mse = 0;
  const size_t n = x.shape()[0];
  for (size_t i = 0; i < n; ++i) {
    FetchRow(x, i, row);
    const double err = Predict(row) - y[i];
    mse += err * err;
  }
  return mse / static_cast<double>(n);
}

// ---- KnnClassifier -----------------------------------------------------------

Result<size_t> KnnClassifier::Fit(const NDArray& x,
                                  std::span<const int64_t> labels) {
  DRAI_RETURN_IF_ERROR(CheckMatrix(x, labels.size(), "KnnClassifier"));
  f_ = x.shape()[1];
  rows_.clear();
  labels_.clear();
  std::vector<double> row;
  for (size_t i = 0; i < x.shape()[0]; ++i) {
    if (labels[i] < 0) continue;
    FetchRow(x, i, row);
    rows_.push_back(row);
    labels_.push_back(labels[i]);
  }
  if (rows_.empty()) {
    return FailedPrecondition("KnnClassifier: no labeled rows");
  }
  return rows_.size();
}

std::pair<int64_t, double> KnnClassifier::Predict(
    std::span<const double> features) const {
  if (rows_.empty()) return {-1, 0.0};
  const size_t k = std::min(k_, rows_.size());
  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int64_t>> d;
  d.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    double d2 = 0;
    const size_t f = std::min(features.size(), f_);
    for (size_t j = 0; j < f; ++j) {
      const double diff = rows_[i][j] - features[j];
      d2 += diff * diff;
    }
    d.emplace_back(d2, labels_[i]);
  }
  std::nth_element(d.begin(), d.begin() + static_cast<ptrdiff_t>(k - 1),
                   d.end());
  std::map<int64_t, size_t> votes;
  for (size_t i = 0; i < k; ++i) ++votes[d[i].second];
  int64_t best = -1;
  size_t best_votes = 0;
  for (const auto& [label, v] : votes) {
    if (v > best_votes) {
      best = label;
      best_votes = v;
    }
  }
  return {best, static_cast<double>(best_votes) / static_cast<double>(k)};
}

}  // namespace drai::ml
