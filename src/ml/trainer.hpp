// drai/ml/trainer.hpp
//
// Shard-fed training loop — the end of the readiness pipeline. Reads
// batches from a shard::DataLoader (flattening one named feature into a
// row per sample), trains, and evaluates on the val split. Its success is
// the operational definition of "fully AI-ready" (level 5): the dataset
// feeds a training loop with no further preparation.
#pragma once

#include "ml/models.hpp"
#include "shard/shard_reader.hpp"

namespace drai::ml {

struct TrainFromShardsOptions {
  std::string feature_name = "x";   ///< flattened into the row vector
  std::string target_name = "y";    ///< scalar regression target
  SgdOptions sgd;
  size_t epochs = 3;                ///< loader epochs (sgd.epochs ignored)
};

struct TrainReport {
  std::vector<double> epoch_train_loss;
  double val_mse = 0;
  double val_r2 = 0;
  uint64_t samples_seen = 0;
  uint64_t batches_seen = 0;
};

/// Train a LinearRegressor from the train split of a sharded dataset and
/// evaluate on the val split. The model is fit incrementally batch by
/// batch — data never materializes whole, which is the point of shards.
Result<TrainReport> TrainRegressorFromShards(
    const shard::ShardReader& reader, const TrainFromShardsOptions& options,
    LinearRegressor& model);

/// Extract [rows, features] + targets from a batch (helper shared with
/// examples and tests). Flattens `feature_name` per sample; reads scalar
/// `target_name`.
Status BatchToMatrix(const shard::Batch& batch, const std::string& feature_name,
                     const std::string& target_name, NDArray& x_out,
                     std::vector<double>& y_out);

struct ClassifierTrainReport {
  std::vector<double> epoch_train_loss;  ///< mean cross-entropy per epoch
  double val_accuracy = 0;
  double val_macro_f1 = 0;
  uint64_t samples_seen = 0;
};

/// Train a SoftmaxClassifier from the train split (streaming PartialFit per
/// batch; the "label" feature is the target) and evaluate on val.
Result<ClassifierTrainReport> TrainClassifierFromShards(
    const shard::ShardReader& reader, const std::string& feature_name,
    const SgdOptions& sgd, size_t epochs, SoftmaxClassifier& model);

}  // namespace drai::ml
