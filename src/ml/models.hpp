// drai/ml/models.hpp
//
// Minimal training substrate. drai is a data-readiness framework, not a
// DL framework — these models exist to *prove* level-5 datasets train:
// a linear regressor, a softmax classifier, and a one-hidden-layer MLP,
// all SGD-fit from NDArray feature matrices or shard DataLoaders.
// Deterministic given the seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::ml {

struct SgdOptions {
  double learning_rate = 0.01;
  size_t epochs = 20;
  size_t batch_size = 32;
  double l2 = 0.0;
  uint64_t seed = 42;
};

/// Ordinary least squares via mini-batch SGD.
class LinearRegressor {
 public:
  /// Fit on X [n, f], y [n]. Resets weights, then runs options.epochs
  /// passes. Returns per-epoch mean squared error.
  Result<std::vector<double>> Fit(const NDArray& x, std::span<const double> y,
                                  const SgdOptions& options = {});

  /// One SGD pass *without* resetting weights (streaming/warm-start fit for
  /// shard-fed training). Lazily initializes on first call. Returns the
  /// pass's mean squared error.
  Result<double> PartialFit(const NDArray& x, std::span<const double> y,
                            const SgdOptions& options = {});

  [[nodiscard]] double Predict(std::span<const double> features) const;
  /// MSE on a dataset.
  [[nodiscard]] Result<double> Evaluate(const NDArray& x,
                                        std::span<const double> y) const;

  [[nodiscard]] const std::vector<double>& weights() const { return w_; }
  [[nodiscard]] double bias() const { return b_; }

 private:
  std::vector<double> w_;
  double b_ = 0;
};

/// Multiclass softmax (multinomial logistic) classifier.
class SoftmaxClassifier {
 public:
  explicit SoftmaxClassifier(size_t n_classes) : k_(n_classes) {
    if (n_classes < 2) {
      throw std::invalid_argument("SoftmaxClassifier: need >= 2 classes");
    }
  }

  /// Fit on X [n, f], labels in [0, k). Resets weights, then runs
  /// options.epochs passes. Returns per-epoch mean cross-entropy.
  /// Optional per-class loss weights correct imbalance.
  Result<std::vector<double>> Fit(const NDArray& x,
                                  std::span<const int64_t> labels,
                                  const SgdOptions& options = {},
                                  std::span<const double> class_weights = {});

  /// One SGD pass without resetting weights (streaming/warm-start fit for
  /// shard-fed training). Lazily initializes on first call. Returns the
  /// pass's mean cross-entropy.
  Result<double> PartialFit(const NDArray& x, std::span<const int64_t> labels,
                            const SgdOptions& options = {},
                            std::span<const double> class_weights = {});

  /// Class probabilities for one feature row.
  [[nodiscard]] std::vector<double> PredictProba(
      std::span<const double> features) const;
  /// Argmax label.
  [[nodiscard]] int64_t Predict(std::span<const double> features) const;
  /// Accuracy on a dataset.
  [[nodiscard]] Result<double> Evaluate(const NDArray& x,
                                        std::span<const int64_t> labels) const;

  [[nodiscard]] size_t n_classes() const { return k_; }

 private:
  size_t k_;
  size_t f_ = 0;
  std::vector<double> w_;  ///< [k, f] row-major
  std::vector<double> b_;  ///< [k]
};

/// One-hidden-layer tanh MLP regressor (f -> hidden -> 1).
class MlpRegressor {
 public:
  explicit MlpRegressor(size_t hidden) : hidden_(hidden) {
    if (hidden == 0) throw std::invalid_argument("MlpRegressor: hidden > 0");
  }

  Result<std::vector<double>> Fit(const NDArray& x, std::span<const double> y,
                                  const SgdOptions& options = {});
  [[nodiscard]] double Predict(std::span<const double> features) const;
  [[nodiscard]] Result<double> Evaluate(const NDArray& x,
                                        std::span<const double> y) const;

 private:
  size_t hidden_;
  size_t f_ = 0;
  std::vector<double> w1_;  ///< [hidden, f]
  std::vector<double> b1_;  ///< [hidden]
  std::vector<double> w2_;  ///< [hidden]
  double b2_ = 0;
};

/// k-nearest-neighbor classifier (exact, brute force). Supplies the
/// confidence scores pseudo-labeling needs (vote fraction).
class KnnClassifier {
 public:
  explicit KnnClassifier(size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("KnnClassifier: k > 0");
  }

  /// Stores rows with label >= 0 (negative = unlabeled, skipped).
  Result<size_t> Fit(const NDArray& x, std::span<const int64_t> labels);

  /// (label, confidence = vote fraction). Fails before Fit.
  [[nodiscard]] std::pair<int64_t, double> Predict(
      std::span<const double> features) const;

 private:
  size_t k_;
  size_t f_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int64_t> labels_;
};

}  // namespace drai::ml
