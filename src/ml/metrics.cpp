#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace drai::ml {

namespace {
void CheckSizes(size_t a, size_t b) {
  if (a != b || a == 0) {
    throw std::invalid_argument("metrics: size mismatch or empty");
  }
}
}  // namespace

double MeanSquaredError(std::span<const double> pred,
                        std::span<const double> truth) {
  CheckSizes(pred.size(), truth.size());
  double acc = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - truth[i];
    acc += e * e;
  }
  return acc / static_cast<double>(pred.size());
}

double MeanAbsoluteError(std::span<const double> pred,
                         std::span<const double> truth) {
  CheckSizes(pred.size(), truth.size());
  double acc = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    acc += std::fabs(pred[i] - truth[i]);
  }
  return acc / static_cast<double>(pred.size());
}

double R2Score(std::span<const double> pred, std::span<const double> truth) {
  CheckSizes(pred.size(), truth.size());
  double mean = 0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0) return ss_res == 0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Accuracy(std::span<const int64_t> pred, std::span<const int64_t> truth) {
  CheckSizes(pred.size(), truth.size());
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

Result<std::vector<std::vector<int64_t>>> ConfusionMatrix(
    std::span<const int64_t> pred, std::span<const int64_t> truth, size_t k) {
  if (pred.size() != truth.size() || pred.empty()) {
    return InvalidArgument("ConfusionMatrix: size mismatch or empty");
  }
  std::vector<std::vector<int64_t>> m(k, std::vector<int64_t>(k, 0));
  for (size_t i = 0; i < pred.size(); ++i) {
    if (truth[i] < 0 || static_cast<size_t>(truth[i]) >= k || pred[i] < 0 ||
        static_cast<size_t>(pred[i]) >= k) {
      return InvalidArgument("ConfusionMatrix: label out of range");
    }
    ++m[static_cast<size_t>(truth[i])][static_cast<size_t>(pred[i])];
  }
  return m;
}

Result<double> MacroF1(std::span<const int64_t> pred,
                       std::span<const int64_t> truth, size_t k) {
  DRAI_ASSIGN_OR_RETURN(auto m, ConfusionMatrix(pred, truth, k));
  double f1_sum = 0;
  for (size_t c = 0; c < k; ++c) {
    int64_t tp = m[c][c], fp = 0, fn = 0;
    for (size_t o = 0; o < k; ++o) {
      if (o == c) continue;
      fp += m[o][c];
      fn += m[c][o];
    }
    const double precision =
        tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0;
    const double recall =
        tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0;
    f1_sum += precision + recall > 0
                  ? 2 * precision * recall / (precision + recall)
                  : 0;
  }
  return f1_sum / static_cast<double>(k);
}

}  // namespace drai::ml
