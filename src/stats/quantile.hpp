// drai/stats/quantile.hpp
//
// Streaming quantile estimation (P² algorithm, Jain & Chlamtac 1985) and a
// fixed-bin histogram. Robust normalization (median/IQR) over datasets too
// large to sort uses P²; quality reports use the histogram.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace drai::stats {

/// P² estimator for a single quantile q in (0, 1). Constant memory: five
/// markers. Exact until five observations have arrived, then approximate
/// with piecewise-parabolic marker updates.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void Add(double x);
  /// Current estimate. Exact for < 5 samples (interpolated order statistic).
  [[nodiscard]] double Value() const;
  [[nodiscard]] uint64_t count() const { return count_; }

 private:
  double q_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{}; // desired position increments
  std::vector<double> warmup_;         // first five observations
};

/// Fixed-range histogram with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] uint64_t underflow() const { return underflow_; }
  [[nodiscard]] uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<uint64_t>& counts() const { return counts_; }
  [[nodiscard]] size_t bins() const { return counts_.size(); }
  /// Center of bin i.
  [[nodiscard]] double BinCenter(size_t i) const;
  /// Approximate quantile by walking the cumulative histogram.
  [[nodiscard]] double Quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

/// Exact quantile of a copied, sorted sample (linear interpolation between
/// order statistics). Reference implementation for tests and small data.
double ExactQuantile(std::vector<double> values, double q);

}  // namespace drai::stats
