// drai/stats/normalizer.hpp
//
// Per-feature normalization — the `normalize` step every archetype in the
// paper shares (climate variables by mean/std, fusion shots, materials
// descriptors). A Normalizer is fit (streaming, mergeable across ranks),
// then applied to NDArrays or raw spans, and serializes with the dataset so
// inference uses the exact training statistics (reproducibility).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "ndarray/ndarray.hpp"
#include "stats/quantile.hpp"
#include "stats/running.hpp"

namespace drai::stats {

enum class NormKind : uint8_t {
  kZScore = 0,   ///< (x - mean) / std
  kMinMax = 1,   ///< (x - min) / (max - min) -> [0, 1]
  kRobust = 2,   ///< (x - median) / IQR
  kLog1pZ = 3,   ///< z-score of log1p(x); heavy-tailed positive data
};

std::string_view NormKindName(NormKind k);

/// Fit-then-apply normalizer over `n_features` independent features.
/// Feature j of a 2-D array [rows, features] is column j; for spans the
/// caller supplies the feature index.
class Normalizer {
 public:
  Normalizer(NormKind kind, size_t n_features);

  [[nodiscard]] NormKind kind() const { return kind_; }
  [[nodiscard]] size_t n_features() const { return features_.size(); }
  [[nodiscard]] bool fitted() const { return fitted_; }

  /// Absorb one observation of feature j.
  void Observe(size_t feature, double x);
  /// Absorb every row of a 2-D [rows, features] array.
  void ObserveMatrix(const NDArray& matrix);
  /// Merge the streaming state of another (identically configured)
  /// normalizer — the cross-rank reduction step.
  void Merge(const Normalizer& other);
  /// Freeze statistics; Apply* becomes legal.
  void Fit();

  /// Normalize a single value of feature j.
  [[nodiscard]] double Apply(size_t feature, double x) const;
  /// Invert (approximately exact for all kinds).
  [[nodiscard]] double Invert(size_t feature, double y) const;
  /// Normalize a 2-D [rows, features] array in place.
  void ApplyMatrix(NDArray& matrix) const;
  /// Normalize all elements of an array as one feature (feature 0) —
  /// climate fields normalize per-variable over the whole grid.
  void ApplyAll(NDArray& array, size_t feature = 0) const;

  /// Fitted statistics of feature j (mean/std for kZScore & kLog1pZ,
  /// min/max for kMinMax, median/iqr for kRobust).
  [[nodiscard]] double Center(size_t feature) const;
  [[nodiscard]] double Scale(size_t feature) const;

  void Serialize(ByteWriter& w) const;
  static Result<Normalizer> Deserialize(ByteReader& r);

  /// Wire round-trip of the *unfitted* streaming state, for shipping
  /// observations between ranks before a distributed merge+fit. Robust
  /// normalizers are not mergeable and return kFailedPrecondition.
  Status SerializeObservations(ByteWriter& w) const;
  static Result<Normalizer> DeserializeObservations(ByteReader& r);

 private:
  struct FeatureState {
    RunningStats stats;
    P2Quantile q25{0.25};
    P2Quantile q50{0.50};
    P2Quantile q75{0.75};
    double center = 0;
    double scale = 1;
  };

  void CheckFitted() const;
  void CheckFeature(size_t feature) const;

  NormKind kind_;
  std::vector<FeatureState> features_;
  bool fitted_ = false;
};

}  // namespace drai::stats
