#include "stats/running.hpp"

#include <cmath>

namespace drai::stats {

void RunningStats::Add(double x) {
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    nan_count_ += other.nan_count_;
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  nan_count_ += other.nan_count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::sample_variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Serialize(ByteWriter& w) const {
  w.PutU64(count_);
  w.PutU64(nan_count_);
  w.PutF64(mean_);
  w.PutF64(m2_);
  w.PutF64(min_);
  w.PutF64(max_);
}

Result<RunningStats> RunningStats::Deserialize(ByteReader& r) {
  RunningStats s;
  DRAI_RETURN_IF_ERROR(r.GetU64(s.count_));
  DRAI_RETURN_IF_ERROR(r.GetU64(s.nan_count_));
  DRAI_RETURN_IF_ERROR(r.GetF64(s.mean_));
  DRAI_RETURN_IF_ERROR(r.GetF64(s.m2_));
  DRAI_RETURN_IF_ERROR(r.GetF64(s.min_));
  DRAI_RETURN_IF_ERROR(r.GetF64(s.max_));
  return s;
}

}  // namespace drai::stats
