// drai/stats/running.hpp
//
// Single-pass streaming statistics. Normalization at scale cannot afford a
// second pass over terabytes, so drai fits normalizers with Welford's
// algorithm and merges partial results across SPMD ranks (the merge is the
// Chan et al. parallel update, which is exactly what an MPI reduction of
// per-rank moments needs).
#pragma once

#include <cstdint>
#include <limits>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace drai::stats {

/// Count / mean / variance / min / max in one pass, mergeable.
class RunningStats {
 public:
  /// Absorb one observation. NaN observations are counted separately and
  /// excluded from the moments — missing values must not poison the fit.
  void Add(double x);

  /// Merge another accumulator (parallel reduction step).
  void Merge(const RunningStats& other);

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t nan_count() const { return nan_count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Wire round-trip for persisting fit statistics alongside shards.
  void Serialize(ByteWriter& w) const;
  static Result<RunningStats> Deserialize(ByteReader& r);

 private:
  uint64_t count_ = 0;
  uint64_t nan_count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace drai::stats
