// drai/stats/imbalance.hpp
//
// Class-balance diagnostics — the materials archetype's headline readiness
// challenge ("class imbalance") and part of every quality report. All
// metrics are computed from a label histogram so they work for any integer
// label space.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace drai::stats {

/// Counts per class label.
using ClassCounts = std::map<int64_t, uint64_t>;

ClassCounts CountClasses(std::span<const int64_t> labels);

/// Shannon entropy of the label distribution in nats. Max = ln(K).
double LabelEntropy(const ClassCounts& counts);

/// Normalized entropy in [0, 1]: 1 = perfectly balanced, 0 = single class.
double BalanceScore(const ClassCounts& counts);

/// Gini impurity 1 - sum p_i^2.
double GiniImpurity(const ClassCounts& counts);

/// max count / min count (1 = balanced; inf-like large when a class nearly
/// vanishes). Returns 0 for empty input.
double ImbalanceRatio(const ClassCounts& counts);

/// exp(entropy) — the "effective number of classes".
double EffectiveClassCount(const ClassCounts& counts);

/// Inverse-frequency class weights normalized to mean 1 — what a trainer
/// multiplies into the loss to correct imbalance without resampling.
std::map<int64_t, double> InverseFrequencyWeights(const ClassCounts& counts);

}  // namespace drai::stats
