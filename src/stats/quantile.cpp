#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drai::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must be in (0,1)");
  }
  warmup_.reserve(5);
}

void P2Quantile::Add(double x) {
  if (std::isnan(x)) return;
  ++count_;
  if (warmup_.size() < 5) {
    warmup_.push_back(x);
    if (warmup_.size() == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) {
        heights_[i] = warmup_[static_cast<size_t>(i)];
        positions_[i] = i + 1;
      }
      // Standard P² desired positions {1, 1+2q, 1+4q, 3+2q, 5} and their
      // per-observation increments.
      desired_ = {1, 1 + 2 * q_, 1 + 4 * q_, 3 + 2 * q_, 5};
      increments_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
    }
    return;
  }

  // Find cell k such that heights[k] <= x < heights[k+1].
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    for (int i = 1; i < 4; ++i) {
      if (x >= heights_[i]) k = i;
    }
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double dp = positions_[i + 1] - positions_[i];
    const double dm = positions_[i - 1] - positions_[i];
    if ((d >= 1 && dp > 1) || (d <= -1 && dm < -1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) prediction.
      const double hp = heights_[i + 1] - heights_[i];
      const double hm = heights_[i - 1] - heights_[i];
      double candidate =
          heights_[i] + sign / (dp - dm) * ((sign - dm) * hp / dp +
                                            (dp - sign) * hm / dm);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Linear fallback keeps markers ordered.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (warmup_.size() < 5 && count_ <= 5) {
    std::vector<double> v = warmup_;
    return ExactQuantile(std::move(v), q_);
  }
  return heights_[2];
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::Add(double x) {
  if (std::isnan(x)) return;
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  size_t bin = static_cast<size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge
  ++counts_[bin];
}

double Histogram::BinCenter(size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("BinCenter");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::Quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("Histogram::Quantile: q in [0,1]");
  }
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      // Linear interpolation within the bin.
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("ExactQuantile: empty");
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("ExactQuantile: q in [0,1]");
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

}  // namespace drai::stats
