#include "stats/imbalance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace drai::stats {

ClassCounts CountClasses(std::span<const int64_t> labels) {
  ClassCounts counts;
  for (int64_t l : labels) ++counts[l];
  return counts;
}

namespace {
uint64_t TotalCount(const ClassCounts& counts) {
  uint64_t total = 0;
  for (const auto& [_, c] : counts) total += c;
  return total;
}
}  // namespace

double LabelEntropy(const ClassCounts& counts) {
  const uint64_t total = TotalCount(counts);
  if (total == 0) return 0.0;
  double h = 0;
  for (const auto& [_, c] : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

double BalanceScore(const ClassCounts& counts) {
  size_t k = 0;
  for (const auto& [_, c] : counts) {
    if (c > 0) ++k;
  }
  if (k <= 1) return k == 1 ? 0.0 : 0.0;
  return LabelEntropy(counts) / std::log(static_cast<double>(k));
}

double GiniImpurity(const ClassCounts& counts) {
  const uint64_t total = TotalCount(counts);
  if (total == 0) return 0.0;
  double sum_sq = 0;
  for (const auto& [_, c] : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double ImbalanceRatio(const ClassCounts& counts) {
  if (counts.empty()) return 0.0;
  uint64_t mn = UINT64_MAX, mx = 0;
  for (const auto& [_, c] : counts) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  if (mn == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(mx) / static_cast<double>(mn);
}

double EffectiveClassCount(const ClassCounts& counts) {
  if (TotalCount(counts) == 0) return 0.0;
  return std::exp(LabelEntropy(counts));
}

std::map<int64_t, double> InverseFrequencyWeights(const ClassCounts& counts) {
  std::map<int64_t, double> weights;
  const uint64_t total = TotalCount(counts);
  if (total == 0) return weights;
  double sum = 0;
  for (const auto& [label, c] : counts) {
    const double w = c > 0 ? static_cast<double>(total) / static_cast<double>(c)
                           : 0.0;
    weights[label] = w;
    sum += w;
  }
  // Normalize to mean 1 across classes.
  const double mean = sum / static_cast<double>(weights.size());
  if (mean > 0) {
    for (auto& [_, w] : weights) w /= mean;
  }
  return weights;
}

}  // namespace drai::stats
