#include "stats/normalizer.hpp"

#include <cmath>
#include <stdexcept>

namespace drai::stats {

std::string_view NormKindName(NormKind k) {
  switch (k) {
    case NormKind::kZScore: return "zscore";
    case NormKind::kMinMax: return "minmax";
    case NormKind::kRobust: return "robust";
    case NormKind::kLog1pZ: return "log1p-z";
  }
  return "?";
}

Normalizer::Normalizer(NormKind kind, size_t n_features) : kind_(kind) {
  if (n_features == 0) {
    throw std::invalid_argument("Normalizer: n_features must be > 0");
  }
  features_.resize(n_features);
}

void Normalizer::CheckFeature(size_t feature) const {
  if (feature >= features_.size()) {
    throw std::out_of_range("Normalizer: feature index out of range");
  }
}

void Normalizer::Observe(size_t feature, double x) {
  CheckFeature(feature);
  if (fitted_) {
    throw std::logic_error("Normalizer: Observe after Fit");
  }
  FeatureState& f = features_[feature];
  const double v = kind_ == NormKind::kLog1pZ ? std::log1p(std::max(x, -1.0 + 1e-12)) : x;
  f.stats.Add(v);
  if (kind_ == NormKind::kRobust) {
    f.q25.Add(v);
    f.q50.Add(v);
    f.q75.Add(v);
  }
}

void Normalizer::ObserveMatrix(const NDArray& matrix) {
  if (matrix.rank() != 2) {
    throw std::invalid_argument("ObserveMatrix: expected 2-D [rows, features]");
  }
  if (matrix.shape()[1] != features_.size()) {
    throw std::invalid_argument("ObserveMatrix: feature count mismatch");
  }
  const size_t rows = matrix.shape()[0];
  const size_t cols = matrix.shape()[1];
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      Observe(c, matrix.GetAsDouble(r * cols + c));
    }
  }
}

void Normalizer::Merge(const Normalizer& other) {
  if (other.kind_ != kind_ || other.features_.size() != features_.size()) {
    throw std::invalid_argument("Normalizer::Merge: configuration mismatch");
  }
  if (fitted_ || other.fitted_) {
    throw std::logic_error("Normalizer::Merge after Fit");
  }
  if (kind_ == NormKind::kRobust) {
    // P² markers do not merge exactly; robust fits must be single-stream.
    throw std::logic_error(
        "Normalizer::Merge: robust normalization is not mergeable; "
        "fit on one rank or use zscore");
  }
  for (size_t i = 0; i < features_.size(); ++i) {
    features_[i].stats.Merge(other.features_[i].stats);
  }
}

void Normalizer::Fit() {
  for (FeatureState& f : features_) {
    switch (kind_) {
      case NormKind::kZScore:
      case NormKind::kLog1pZ: {
        f.center = f.stats.mean();
        f.scale = f.stats.stddev();
        break;
      }
      case NormKind::kMinMax: {
        f.center = f.stats.count() ? f.stats.min() : 0.0;
        f.scale = f.stats.count() ? f.stats.max() - f.stats.min() : 1.0;
        break;
      }
      case NormKind::kRobust: {
        f.center = f.q50.Value();
        f.scale = f.q75.Value() - f.q25.Value();
        break;
      }
    }
    // Constant features normalize to zero rather than dividing by zero.
    if (!(f.scale > 0) || !std::isfinite(f.scale)) f.scale = 1.0;
  }
  fitted_ = true;
}

void Normalizer::CheckFitted() const {
  if (!fitted_) throw std::logic_error("Normalizer: Apply before Fit");
}

double Normalizer::Apply(size_t feature, double x) const {
  CheckFitted();
  CheckFeature(feature);
  const FeatureState& f = features_[feature];
  const double v = kind_ == NormKind::kLog1pZ
                       ? std::log1p(std::max(x, -1.0 + 1e-12))
                       : x;
  return (v - f.center) / f.scale;
}

double Normalizer::Invert(size_t feature, double y) const {
  CheckFitted();
  CheckFeature(feature);
  const FeatureState& f = features_[feature];
  const double v = y * f.scale + f.center;
  return kind_ == NormKind::kLog1pZ ? std::expm1(v) : v;
}

void Normalizer::ApplyMatrix(NDArray& matrix) const {
  CheckFitted();
  if (matrix.rank() != 2 || matrix.shape()[1] != features_.size()) {
    throw std::invalid_argument("ApplyMatrix: shape mismatch");
  }
  const size_t rows = matrix.shape()[0];
  const size_t cols = matrix.shape()[1];
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const size_t i = r * cols + c;
      matrix.SetFromDouble(i, Apply(c, matrix.GetAsDouble(i)));
    }
  }
}

void Normalizer::ApplyAll(NDArray& array, size_t feature) const {
  CheckFitted();
  CheckFeature(feature);
  const size_t n = array.numel();
  for (size_t i = 0; i < n; ++i) {
    array.SetFromDouble(i, Apply(feature, array.GetAsDouble(i)));
  }
}

double Normalizer::Center(size_t feature) const {
  CheckFitted();
  CheckFeature(feature);
  return features_[feature].center;
}

double Normalizer::Scale(size_t feature) const {
  CheckFitted();
  CheckFeature(feature);
  return features_[feature].scale;
}

Status Normalizer::SerializeObservations(ByteWriter& w) const {
  if (fitted_) {
    return FailedPrecondition("SerializeObservations: already fitted");
  }
  if (kind_ == NormKind::kRobust) {
    return FailedPrecondition(
        "SerializeObservations: robust state is not mergeable");
  }
  w.PutU8(static_cast<uint8_t>(kind_));
  w.PutVarU64(features_.size());
  for (const FeatureState& f : features_) {
    f.stats.Serialize(w);
  }
  return Status::Ok();
}

Result<Normalizer> Normalizer::DeserializeObservations(ByteReader& r) {
  uint8_t kind = 0;
  DRAI_RETURN_IF_ERROR(r.GetU8(kind));
  if (kind > static_cast<uint8_t>(NormKind::kLog1pZ) ||
      static_cast<NormKind>(kind) == NormKind::kRobust) {
    return DataLoss("Normalizer observations: bad kind");
  }
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  if (n == 0 || n > (1ull << 32)) {
    return DataLoss("Normalizer observations: bad feature count");
  }
  Normalizer out(static_cast<NormKind>(kind), static_cast<size_t>(n));
  for (size_t i = 0; i < n; ++i) {
    DRAI_ASSIGN_OR_RETURN(out.features_[i].stats,
                          RunningStats::Deserialize(r));
  }
  return out;
}

void Normalizer::Serialize(ByteWriter& w) const {
  CheckFitted();
  w.PutU8(static_cast<uint8_t>(kind_));
  w.PutVarU64(features_.size());
  for (const FeatureState& f : features_) {
    w.PutF64(f.center);
    w.PutF64(f.scale);
    f.stats.Serialize(w);
  }
}

Result<Normalizer> Normalizer::Deserialize(ByteReader& r) {
  uint8_t kind = 0;
  DRAI_RETURN_IF_ERROR(r.GetU8(kind));
  if (kind > static_cast<uint8_t>(NormKind::kLog1pZ)) {
    return DataLoss("Normalizer: bad kind byte");
  }
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  if (n == 0 || n > (1ull << 32)) return DataLoss("Normalizer: bad feature count");
  Normalizer out(static_cast<NormKind>(kind), static_cast<size_t>(n));
  for (size_t i = 0; i < n; ++i) {
    FeatureState& f = out.features_[i];
    DRAI_RETURN_IF_ERROR(r.GetF64(f.center));
    DRAI_RETURN_IF_ERROR(r.GetF64(f.scale));
    DRAI_ASSIGN_OR_RETURN(f.stats, RunningStats::Deserialize(r));
  }
  out.fitted_ = true;
  return out;
}

}  // namespace drai::stats
