// drai/shard/checkpoint.hpp
//
// On-disk checkpoint container: the format layer for pipeline stage
// checkpoint/resume. A checkpoint file is a RecIO stream (CRC-protected
// records, torn-write detection) whose header metadata carries the
// checkpoint identity (pipeline, run, plan fingerprint, stages done) and
// whose records are named opaque sections — the executor stores its bundle
// and provenance snapshots here without this layer knowing their types.
// Like every shard format, a reader rejects corruption as kDataLoss at the
// exact record that was damaged.
#pragma once

#include <map>
#include <span>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace drai::shard {

/// Identity of one checkpoint: which pipeline run it belongs to, the
/// structural fingerprint of the plan that produced it, and how many plan
/// stages the saved state has already absorbed.
struct CheckpointMeta {
  std::string pipeline;
  uint64_t run_index = 0;
  std::string plan_fingerprint;
  uint64_t stages_done = 0;
};

/// A decoded checkpoint: identity plus named opaque sections.
struct CheckpointFile {
  CheckpointMeta meta;
  std::map<std::string, Bytes> sections;
};

/// Serialize a checkpoint. Sections are written in ascending name order so
/// equal inputs produce byte-identical files.
Bytes EncodeCheckpoint(const CheckpointMeta& meta,
                       const std::map<std::string, Bytes>& sections);

/// Parse a checkpoint file. Corruption anywhere (header, meta, any
/// section's CRC) returns kDataLoss — a damaged checkpoint must never be
/// resumed from.
Result<CheckpointFile> DecodeCheckpoint(std::span<const std::byte> file);

}  // namespace drai::shard
