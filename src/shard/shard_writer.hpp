// drai/shard/shard_writer.hpp
//
// ShardWriter — the terminal `shard` stage of every pipeline: takes
// Examples, assigns each to a split by key hash, packs them into RecIO
// shard files of a target size, writes the files to a StripedStore, and
// finalizes a DatasetManifest. Write path is append-only; a crash before
// Finalize leaves no manifest, so partial datasets are never mistaken for
// complete ones.
#pragma once

#include <memory>

#include "container/recio.hpp"
#include "parallel/striped_store.hpp"
#include "shard/manifest.hpp"

namespace drai::shard {

struct ShardWriterConfig {
  std::string dataset_name = "dataset";
  std::string created_by = "drai";
  std::string directory = "/datasets/default";  ///< store path prefix
  uint64_t target_shard_bytes = 4 << 20;        ///< flush threshold
  uint64_t max_records_per_shard = 0;           ///< 0 = unlimited
  double train_frac = 0.8;
  double val_frac = 0.1;
  double test_frac = 0.1;
  uint64_t split_seed = 0;
  codec::Codec tensor_codec = codec::Codec::kNone;
  int stripe_count = 0;  ///< 0 = store default
};

class ShardWriter {
 public:
  /// The store must outlive the writer.
  ShardWriter(par::StripedStore& store, ShardWriterConfig config);

  /// Add one example; split chosen by key hash. Returns the split it went
  /// to. Schema is inferred from the first example and enforced afterwards.
  Result<Split> Add(const Example& example);

  /// Force an example into a specific split (for pre-split inputs).
  Status AddTo(Split split, const Example& example);

  /// Attach the serialized normalizer used upstream (stored in manifest).
  void SetNormalizerBlob(Bytes blob);
  /// Attach the provenance record hash (stored in manifest).
  void SetProvenanceHash(std::string hex);

  /// Flush open shards, write the manifest, return it.
  Result<DatasetManifest> Finalize();

  [[nodiscard]] uint64_t records_written() const { return records_written_; }

  /// Store path of the manifest for a dataset directory.
  static std::string ManifestPath(const std::string& directory);

 private:
  struct OpenShard {
    container::RecWriter rec;
    uint64_t records = 0;
  };

  Status CheckSchema(const Example& example);
  Status FlushShard(Split split);
  [[nodiscard]] std::string ShardPath(Split split, uint64_t index) const;

  par::StripedStore& store_;
  ShardWriterConfig config_;
  SplitAssigner assigner_;
  std::map<Split, OpenShard> open_;
  std::map<Split, std::vector<ShardInfo>> done_;
  std::vector<FeatureSpec> schema_;
  Bytes normalizer_blob_;
  std::string provenance_hash_;
  uint64_t records_written_ = 0;
  bool finalized_ = false;
};

}  // namespace drai::shard
