// drai/shard/example.hpp
//
// Example — the training-sample record stored in shards, analogous to
// tf.train.Example: a keyed bag of named tensors. The key is the sample's
// stable identity (shot id, tile id, structure id) and drives deterministic
// split assignment; features are what the model consumes.
#pragma once

#include <map>
#include <string>

#include "codec/codec.hpp"
#include "common/bytes.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::shard {

struct Example {
  std::string key;
  std::map<std::string, NDArray> features;

  /// Optional integer label stored under the conventional feature name
  /// "label" as a scalar i64 tensor.
  void SetLabel(int64_t label);
  [[nodiscard]] Result<int64_t> Label() const;

  [[nodiscard]] const NDArray* Find(const std::string& name) const;

  /// Total feature payload bytes (uncompressed).
  [[nodiscard]] size_t PayloadBytes() const;

  [[nodiscard]] Bytes Serialize(codec::Codec codec = codec::Codec::kNone) const;
  static Result<Example> Parse(std::span<const std::byte> bytes);
};

/// Dataset split identity.
enum class Split : uint8_t { kTrain = 0, kVal = 1, kTest = 2 };
std::string_view SplitName(Split s);
inline constexpr Split kAllSplits[] = {Split::kTrain, Split::kVal, Split::kTest};

/// Deterministic hash-based split assignment: the same key always lands in
/// the same split for a given seed, independent of arrival order and rank —
/// the reproducibility property the paper's level-5 "partitioned into
/// train/test/val" requires.
class SplitAssigner {
 public:
  /// Fractions must be non-negative and sum to (approximately) 1.
  SplitAssigner(double train_frac, double val_frac, double test_frac,
                uint64_t seed = 0);

  [[nodiscard]] Split Assign(std::string_view key) const;

 private:
  double train_frac_, val_frac_;
  uint64_t seed_;
};

}  // namespace drai::shard
