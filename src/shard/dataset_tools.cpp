#include "shard/dataset_tools.hpp"

namespace drai::shard {

namespace {

/// Does `shape` conform to `spec` (0 dims are wildcards)?
bool ShapeConforms(const Shape& shape, const Shape& spec) {
  if (shape.size() != spec.size()) return false;
  for (size_t d = 0; d < spec.size(); ++d) {
    if (spec[d] != 0 && shape[d] != spec[d]) return false;
  }
  return true;
}

}  // namespace

Result<VerifyReport> VerifyDataset(par::StripedStore& store,
                                   const std::string& directory) {
  DRAI_ASSIGN_OR_RETURN(ShardReader reader,
                        ShardReader::Open(store, directory));
  const DatasetManifest& manifest = reader.manifest();
  VerifyReport report;
  auto problem = [&report](std::string msg) {
    report.problems.push_back(std::move(msg));
  };

  for (Split split : kAllSplits) {
    auto it = manifest.shards.find(split);
    if (it == manifest.shards.end()) continue;
    for (size_t s = 0; s < it->second.size(); ++s) {
      const ShardInfo& info = it->second[s];
      ++report.shards_checked;
      const auto size = store.Size(info.file);
      if (!size.ok()) {
        problem("missing shard file: " + info.file);
        continue;
      }
      if (*size != info.bytes) {
        problem("size mismatch for " + info.file + ": manifest says " +
                std::to_string(info.bytes) + ", store has " +
                std::to_string(*size));
      }
      report.bytes_checked += *size;
      const auto examples = reader.ReadShard(split, s);
      if (!examples.ok()) {
        problem("unreadable shard " + info.file + ": " +
                examples.status().ToString());
        continue;
      }
      report.records_checked += examples->size();
      // ReadShard already checks counts; conform each example to the schema.
      for (const Example& ex : *examples) {
        if (ex.features.size() != manifest.schema.size()) {
          problem("example '" + ex.key + "' feature count differs from schema");
          continue;
        }
        size_t i = 0;
        for (const auto& [name, tensor] : ex.features) {
          const FeatureSpec& spec = manifest.schema[i++];
          if (name != spec.name || tensor.dtype() != spec.dtype ||
              !ShapeConforms(tensor.shape(), spec.shape)) {
            problem("example '" + ex.key + "' feature '" + name +
                    "' violates schema");
          }
        }
      }
    }
  }
  if (report.records_checked != manifest.TotalRecords()) {
    problem("record total mismatch: manifest says " +
            std::to_string(manifest.TotalRecords()) + ", shards hold " +
            std::to_string(report.records_checked));
  }
  return report;
}

Result<DatasetManifest> ReshardDataset(par::StripedStore& store,
                                       const std::string& src_directory,
                                       const std::string& dst_directory,
                                       const ReshardOptions& options) {
  if (src_directory == dst_directory) {
    return InvalidArgument("ReshardDataset: src and dst must differ");
  }
  DRAI_ASSIGN_OR_RETURN(ShardReader reader,
                        ShardReader::Open(store, src_directory));
  const DatasetManifest& src = reader.manifest();

  ShardWriterConfig config;
  config.dataset_name = src.dataset_name;
  config.created_by = src.created_by + " (resharded)";
  config.directory = dst_directory;
  config.split_seed = src.split_seed;
  config.target_shard_bytes = options.target_shard_bytes;
  config.tensor_codec = options.tensor_codec;
  config.stripe_count = options.stripe_count;
  ShardWriter writer(store, config);
  writer.SetNormalizerBlob(src.normalizer_blob);
  writer.SetProvenanceHash(src.provenance_hash);

  for (Split split : kAllSplits) {
    for (size_t s = 0; s < reader.NumShards(split); ++s) {
      DRAI_ASSIGN_OR_RETURN(std::vector<Example> examples,
                            reader.ReadShard(split, s));
      for (const Example& ex : examples) {
        DRAI_RETURN_IF_ERROR(writer.AddTo(split, ex));
      }
    }
  }
  return writer.Finalize();
}

}  // namespace drai::shard
