#include "shard/shard_writer.hpp"

#include <cstdio>

namespace drai::shard {

ShardWriter::ShardWriter(par::StripedStore& store, ShardWriterConfig config)
    : store_(store),
      config_(std::move(config)),
      assigner_(config_.train_frac, config_.val_frac, config_.test_frac,
                config_.split_seed) {}

std::string ShardWriter::ManifestPath(const std::string& directory) {
  return directory + "/manifest.dmf";
}

std::string ShardWriter::ShardPath(Split split, uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s-%05llu.rec",
                std::string(SplitName(split)).c_str(),
                static_cast<unsigned long long>(index));
  return config_.directory + "/" + buf;
}

Status ShardWriter::CheckSchema(const Example& example) {
  if (schema_.empty()) {
    for (const auto& [name, tensor] : example.features) {
      schema_.push_back({name, tensor.dtype(), tensor.shape()});
    }
    return Status::Ok();
  }
  if (example.features.size() != schema_.size()) {
    return InvalidArgument("example '" + example.key +
                           "' feature count differs from schema");
  }
  size_t i = 0;
  for (const auto& [name, tensor] : example.features) {
    FeatureSpec& spec = schema_[i++];
    if (name != spec.name) {
      return InvalidArgument("example '" + example.key + "' feature '" + name +
                             "' not in schema");
    }
    if (tensor.dtype() != spec.dtype || tensor.rank() != spec.shape.size()) {
      return InvalidArgument("example '" + example.key + "' feature '" + name +
                             "' rank/dtype differs from schema");
    }
    // Graph-like datasets have per-sample sizes (node/edge counts); a
    // dimension that varies is recorded as 0 ("dynamic") in the schema.
    for (size_t d = 0; d < spec.shape.size(); ++d) {
      if (spec.shape[d] != 0 && tensor.shape()[d] != spec.shape[d]) {
        spec.shape[d] = 0;
      }
    }
  }
  return Status::Ok();
}

Result<Split> ShardWriter::Add(const Example& example) {
  const Split split = assigner_.Assign(example.key);
  DRAI_RETURN_IF_ERROR(AddTo(split, example));
  return split;
}

Status ShardWriter::AddTo(Split split, const Example& example) {
  if (finalized_) return FailedPrecondition("ShardWriter already finalized");
  DRAI_RETURN_IF_ERROR(CheckSchema(example));
  auto it = open_.find(split);
  if (it == open_.end()) {
    it = open_.emplace(split, OpenShard{}).first;
  }
  OpenShard& shard = it->second;
  const Bytes payload = example.Serialize(config_.tensor_codec);
  shard.rec.Append(payload);
  ++shard.records;
  ++records_written_;
  const bool size_full = shard.rec.byte_size() >= config_.target_shard_bytes;
  const bool count_full = config_.max_records_per_shard > 0 &&
                          shard.records >= config_.max_records_per_shard;
  if (size_full || count_full) {
    DRAI_RETURN_IF_ERROR(FlushShard(split));
  }
  return Status::Ok();
}

Status ShardWriter::FlushShard(Split split) {
  auto it = open_.find(split);
  if (it == open_.end() || it->second.records == 0) return Status::Ok();
  OpenShard& shard = it->second;
  const uint64_t records = shard.records;
  const Bytes file = shard.rec.Finish();
  const std::string path = ShardPath(split, done_[split].size());
  DRAI_RETURN_IF_ERROR(store_.Create(path, config_.stripe_count));
  DRAI_RETURN_IF_ERROR(store_.Write(path, 0, file));
  done_[split].push_back({path, records, file.size()});
  open_.erase(it);
  return Status::Ok();
}

void ShardWriter::SetNormalizerBlob(Bytes blob) {
  normalizer_blob_ = std::move(blob);
}

void ShardWriter::SetProvenanceHash(std::string hex) {
  provenance_hash_ = std::move(hex);
}

Result<DatasetManifest> ShardWriter::Finalize() {
  if (finalized_) return FailedPrecondition("ShardWriter already finalized");
  for (Split s : kAllSplits) {
    DRAI_RETURN_IF_ERROR(FlushShard(s));
  }
  finalized_ = true;
  DatasetManifest m;
  m.dataset_name = config_.dataset_name;
  m.created_by = config_.created_by;
  m.split_seed = config_.split_seed;
  m.schema = schema_;
  m.shards = done_;
  m.normalizer_blob = normalizer_blob_;
  m.provenance_hash = provenance_hash_;
  const Bytes bytes = m.Serialize();
  const std::string path = ManifestPath(config_.directory);
  DRAI_RETURN_IF_ERROR(store_.Create(path, config_.stripe_count));
  DRAI_RETURN_IF_ERROR(store_.Write(path, 0, bytes));
  return m;
}

}  // namespace drai::shard
