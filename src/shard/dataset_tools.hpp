// drai/shard/dataset_tools.hpp
//
// Dataset maintenance operations a facility operator runs on finished
// datasets:
//  * VerifyDataset  — walk the manifest, re-read every shard, check record
//    counts, per-record CRCs (via RecReader) and schema conformance; the
//    integrity audit that must pass before a dataset is published.
//  * ReshardDataset — rewrite an existing dataset with a new target shard
//    size / codec without touching the split assignment (records keep
//    their split; only the file layout changes). The A2 ablation's answer,
//    operationalized.
#pragma once

#include "shard/shard_reader.hpp"
#include "shard/shard_writer.hpp"

namespace drai::shard {

struct VerifyReport {
  uint64_t shards_checked = 0;
  uint64_t records_checked = 0;
  uint64_t bytes_checked = 0;
  /// Human-readable problems; empty means the dataset verified clean.
  std::vector<std::string> problems;

  [[nodiscard]] bool ok() const { return problems.empty(); }
};

/// Full integrity audit of the dataset at `directory`. I/O or decode
/// failures become problems, not errors — the report always returns so an
/// operator sees every issue at once. Only a missing/corrupt manifest
/// fails outright.
Result<VerifyReport> VerifyDataset(par::StripedStore& store,
                                   const std::string& directory);

struct ReshardOptions {
  uint64_t target_shard_bytes = 4 << 20;
  codec::Codec tensor_codec = codec::Codec::kNone;
  int stripe_count = 0;
};

/// Rewrite `src_directory` into `dst_directory` with a new layout. Records
/// keep their original split (no re-assignment); the manifest's schema,
/// normalizer blob and provenance hash are carried over.
Result<DatasetManifest> ReshardDataset(par::StripedStore& store,
                                       const std::string& src_directory,
                                       const std::string& dst_directory,
                                       const ReshardOptions& options);

}  // namespace drai::shard
