#include "shard/manifest.hpp"

#include <cstring>

#include "common/hash.hpp"

namespace drai::shard {

namespace {
constexpr char kMagic[4] = {'D', 'M', 'F', '1'};
}

uint64_t DatasetManifest::TotalRecords(Split split) const {
  auto it = shards.find(split);
  if (it == shards.end()) return 0;
  uint64_t total = 0;
  for (const ShardInfo& s : it->second) total += s.records;
  return total;
}

uint64_t DatasetManifest::TotalRecords() const {
  uint64_t total = 0;
  for (Split s : kAllSplits) total += TotalRecords(s);
  return total;
}

uint64_t DatasetManifest::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [_, list] : shards) {
    for (const ShardInfo& s : list) total += s.bytes;
  }
  return total;
}

Bytes DatasetManifest::Serialize() const {
  ByteWriter w;
  w.PutRaw(kMagic, 4);
  w.PutU16(1);  // version
  w.PutString(dataset_name);
  w.PutString(created_by);
  w.PutU64(split_seed);
  w.PutVarU64(schema.size());
  for (const FeatureSpec& f : schema) {
    w.PutString(f.name);
    w.PutU8(static_cast<uint8_t>(f.dtype));
    w.PutVarU64(f.shape.size());
    for (size_t d : f.shape) w.PutVarU64(d);
  }
  w.PutVarU64(shards.size());
  for (const auto& [split, list] : shards) {
    w.PutU8(static_cast<uint8_t>(split));
    w.PutVarU64(list.size());
    for (const ShardInfo& s : list) {
      w.PutString(s.file);
      w.PutU64(s.records);
      w.PutU64(s.bytes);
    }
  }
  w.PutBlob(normalizer_blob);
  w.PutString(provenance_hash);
  w.PutU32(Crc32(w.bytes()));
  return w.Take();
}

Result<DatasetManifest> DatasetManifest::Parse(
    std::span<const std::byte> bytes) {
  if (bytes.size() < 10) return DataLoss("manifest: too small");
  ByteReader crc_reader(bytes.subspan(bytes.size() - 4));
  uint32_t stored_crc = 0;
  DRAI_RETURN_IF_ERROR(crc_reader.GetU32(stored_crc));
  if (Crc32(bytes.subspan(0, bytes.size() - 4)) != stored_crc) {
    return DataLoss("manifest: crc mismatch");
  }
  ByteReader r(bytes.subspan(0, bytes.size() - 4));
  char magic[4];
  DRAI_RETURN_IF_ERROR(r.GetRaw(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) return DataLoss("manifest: bad magic");
  uint16_t version = 0;
  DRAI_RETURN_IF_ERROR(r.GetU16(version));
  if (version != 1) return DataLoss("manifest: unsupported version");

  DatasetManifest m;
  DRAI_RETURN_IF_ERROR(r.GetString(m.dataset_name));
  DRAI_RETURN_IF_ERROR(r.GetString(m.created_by));
  DRAI_RETURN_IF_ERROR(r.GetU64(m.split_seed));
  uint64_t n_schema = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_schema));
  if (n_schema > (1ull << 16)) return DataLoss("manifest: implausible schema");
  m.schema.resize(n_schema);
  for (auto& f : m.schema) {
    DRAI_RETURN_IF_ERROR(r.GetString(f.name));
    uint8_t dtype = 0;
    DRAI_RETURN_IF_ERROR(r.GetU8(dtype));
    if (dtype > static_cast<uint8_t>(DType::kU8)) {
      return DataLoss("manifest: bad dtype");
    }
    f.dtype = static_cast<DType>(dtype);
    uint64_t rank = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(rank));
    if (rank > 16) return DataLoss("manifest: bad rank");
    f.shape.resize(rank);
    for (auto& d : f.shape) {
      uint64_t v = 0;
      DRAI_RETURN_IF_ERROR(r.GetVarU64(v));
      d = static_cast<size_t>(v);
    }
  }
  uint64_t n_splits = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n_splits));
  if (n_splits > 3) return DataLoss("manifest: too many splits");
  for (uint64_t i = 0; i < n_splits; ++i) {
    uint8_t split = 0;
    DRAI_RETURN_IF_ERROR(r.GetU8(split));
    if (split > static_cast<uint8_t>(Split::kTest)) {
      return DataLoss("manifest: bad split id");
    }
    uint64_t n_shards = 0;
    DRAI_RETURN_IF_ERROR(r.GetVarU64(n_shards));
    if (n_shards > (1ull << 24)) return DataLoss("manifest: implausible shards");
    std::vector<ShardInfo> list(n_shards);
    for (auto& s : list) {
      DRAI_RETURN_IF_ERROR(r.GetString(s.file));
      DRAI_RETURN_IF_ERROR(r.GetU64(s.records));
      DRAI_RETURN_IF_ERROR(r.GetU64(s.bytes));
    }
    m.shards[static_cast<Split>(split)] = std::move(list);
  }
  DRAI_RETURN_IF_ERROR(r.GetBlob(m.normalizer_blob));
  DRAI_RETURN_IF_ERROR(r.GetString(m.provenance_hash));
  if (!r.exhausted()) return DataLoss("manifest: trailing bytes");
  return m;
}

}  // namespace drai::shard
