// drai/shard/manifest.hpp
//
// DatasetManifest — the self-describing index of a sharded dataset: which
// shard files belong to which split, how many records each holds, the
// feature schema, and the serialized normalizer statistics used to produce
// it. The manifest is what makes a shard directory a *dataset* instead of
// a pile of files; loaders open it first and never glob.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "ndarray/dtype.hpp"
#include "shard/example.hpp"

namespace drai::shard {

/// One shard file's index entry.
struct ShardInfo {
  std::string file;      ///< store path
  uint64_t records = 0;
  uint64_t bytes = 0;
};

/// Feature schema entry (per named feature): dtype and per-sample shape.
struct FeatureSpec {
  std::string name;
  DType dtype = DType::kF32;
  Shape shape;  ///< per-sample shape (no batch dim)
};

struct DatasetManifest {
  std::string dataset_name;
  std::string created_by;  ///< pipeline identifier, for provenance
  uint64_t split_seed = 0;
  std::vector<FeatureSpec> schema;
  std::map<Split, std::vector<ShardInfo>> shards;
  Bytes normalizer_blob;   ///< serialized stats::Normalizer (may be empty)
  std::string provenance_hash;  ///< hex SHA-256 of the lineage record

  [[nodiscard]] uint64_t TotalRecords(Split split) const;
  [[nodiscard]] uint64_t TotalRecords() const;
  [[nodiscard]] uint64_t TotalBytes() const;

  [[nodiscard]] Bytes Serialize() const;
  static Result<DatasetManifest> Parse(std::span<const std::byte> bytes);
};

}  // namespace drai::shard
