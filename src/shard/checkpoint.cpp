#include "shard/checkpoint.hpp"

#include "container/recio.hpp"

namespace drai::shard {

namespace {

constexpr uint32_t kMetaVersion = 1;

Bytes EncodeMeta(const CheckpointMeta& meta) {
  ByteWriter w;
  w.PutU32(kMetaVersion);
  w.PutString(meta.pipeline);
  w.PutU64(meta.run_index);
  w.PutString(meta.plan_fingerprint);
  w.PutU64(meta.stages_done);
  return w.Take();
}

Result<CheckpointMeta> DecodeMeta(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  uint32_t version = 0;
  DRAI_RETURN_IF_ERROR(r.GetU32(version));
  if (version != kMetaVersion) {
    return DataLoss("checkpoint meta version " + std::to_string(version) +
                    " unsupported");
  }
  CheckpointMeta meta;
  DRAI_RETURN_IF_ERROR(r.GetString(meta.pipeline));
  DRAI_RETURN_IF_ERROR(r.GetU64(meta.run_index));
  DRAI_RETURN_IF_ERROR(r.GetString(meta.plan_fingerprint));
  DRAI_RETURN_IF_ERROR(r.GetU64(meta.stages_done));
  return meta;
}

}  // namespace

Bytes EncodeCheckpoint(const CheckpointMeta& meta,
                       const std::map<std::string, Bytes>& sections) {
  const Bytes meta_bytes = EncodeMeta(meta);
  container::RecWriter writer(meta_bytes);
  for (const auto& [name, payload] : sections) {  // std::map: ascending
    ByteWriter rec;
    rec.PutString(name);
    rec.PutBlob(payload);
    const Bytes record = rec.Take();
    writer.Append(std::span<const std::byte>(record));
  }
  return writer.Finish();
}

Result<CheckpointFile> DecodeCheckpoint(std::span<const std::byte> file) {
  DRAI_ASSIGN_OR_RETURN(container::RecReader reader,
                        container::RecReader::Open(file));
  CheckpointFile out;
  DRAI_ASSIGN_OR_RETURN(out.meta, DecodeMeta(reader.metadata()));
  for (;;) {
    DRAI_ASSIGN_OR_RETURN(std::optional<Bytes> record, reader.Next());
    if (!record.has_value()) break;
    ByteReader r(*record);
    std::string name;
    Bytes payload;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_RETURN_IF_ERROR(r.GetBlob(payload));
    out.sections[std::move(name)] = std::move(payload);
  }
  return out;
}

}  // namespace drai::shard
