#include "shard/shard_reader.hpp"

#include <algorithm>
#include <cstring>

#include "container/recio.hpp"
#include "shard/shard_writer.hpp"

namespace drai::shard {

Result<ShardReader> ShardReader::Open(par::StripedStore& store,
                                      const std::string& directory) {
  DRAI_ASSIGN_OR_RETURN(Bytes bytes,
                        store.ReadAll(ShardWriter::ManifestPath(directory)));
  DRAI_ASSIGN_OR_RETURN(DatasetManifest manifest,
                        DatasetManifest::Parse(bytes));
  return ShardReader(store, std::move(manifest));
}

size_t ShardReader::NumShards(Split split) const {
  auto it = manifest_.shards.find(split);
  return it == manifest_.shards.end() ? 0 : it->second.size();
}

Result<std::vector<Example>> ShardReader::ReadShard(Split split,
                                                    size_t shard_index) const {
  auto it = manifest_.shards.find(split);
  if (it == manifest_.shards.end() || shard_index >= it->second.size()) {
    return OutOfRange("shard index out of range");
  }
  const ShardInfo& info = it->second[shard_index];
  DRAI_ASSIGN_OR_RETURN(Bytes file, store_->ReadAll(info.file));
  DRAI_ASSIGN_OR_RETURN(container::RecReader rec,
                        container::RecReader::Open(file));
  std::vector<Example> out;
  out.reserve(info.records);
  for (;;) {
    DRAI_ASSIGN_OR_RETURN(std::optional<Bytes> payload, rec.Next());
    if (!payload.has_value()) break;
    DRAI_ASSIGN_OR_RETURN(Example ex, Example::Parse(*payload));
    out.push_back(std::move(ex));
  }
  if (out.size() != info.records) {
    return DataLoss("shard record count mismatch: " + info.file);
  }
  return out;
}

Result<std::vector<Example>> ShardReader::ReadAll(Split split) const {
  std::vector<Example> out;
  for (size_t i = 0; i < NumShards(split); ++i) {
    DRAI_ASSIGN_OR_RETURN(std::vector<Example> shard, ReadShard(split, i));
    for (auto& ex : shard) out.push_back(std::move(ex));
  }
  return out;
}

Result<Batch> Collate(std::span<const Example> examples) {
  Batch batch;
  if (examples.empty()) return batch;
  const Example& first = examples.front();
  for (const auto& [name, tensor] : first.features) {
    Shape batched = tensor.shape();
    batched.insert(batched.begin(), examples.size());
    batch.features[name] = NDArray::Zeros(batched, tensor.dtype());
  }
  for (size_t i = 0; i < examples.size(); ++i) {
    const Example& ex = examples[i];
    batch.keys.push_back(ex.key);
    if (ex.features.size() != first.features.size()) {
      return InvalidArgument("collate: inconsistent feature sets");
    }
    for (const auto& [name, tensor] : ex.features) {
      auto it = batch.features.find(name);
      if (it == batch.features.end()) {
        return InvalidArgument("collate: feature '" + name +
                               "' missing from first example");
      }
      NDArray& dst = it->second;
      if (tensor.shape() != first.features.at(name).shape() ||
          tensor.dtype() != first.features.at(name).dtype()) {
        return InvalidArgument("collate: feature '" + name +
                               "' shape/dtype mismatch at sample " + ex.key);
      }
      // Contiguous row copy into slot i.
      const NDArray contiguous =
          tensor.IsContiguous() ? tensor : tensor.AsContiguous();
      const size_t row_bytes = contiguous.nbytes();
      std::memcpy(dst.raw_bytes_mut().data() + i * row_bytes,
                  contiguous.raw_bytes().data(), row_bytes);
    }
  }
  return batch;
}

DataLoader::DataLoader(const ShardReader& reader, Split split,
                       DataLoaderOptions options)
    : reader_(&reader), split_(split), options_(options) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("DataLoader: batch_size must be > 0");
  }
  shard_order_.resize(reader.NumShards(split));
  for (size_t i = 0; i < shard_order_.size(); ++i) shard_order_[i] = i;
}

uint64_t DataLoader::RecordsPerEpoch() const {
  const uint64_t total = reader_->NumRecords(split_);
  if (!options_.drop_last) return total;
  return total - total % options_.batch_size;
}

void DataLoader::StartEpoch(uint64_t epoch) {
  epoch_ = epoch;
  epoch_active_ = true;
  buffer_.clear();
  inflight_.clear();
  next_shard_to_schedule_ = 0;
  epoch_rng_ = Rng(options_.seed ^ (epoch * 0x9E3779B97F4A7C15ull) ^ epoch);
  for (size_t i = 0; i < shard_order_.size(); ++i) shard_order_[i] = i;
  if (options_.shuffle) epoch_rng_.Shuffle(shard_order_);
  ScheduleFetches();
}

void DataLoader::ScheduleFetches() {
  const size_t want = std::max<size_t>(1, options_.prefetch_shards);
  while (inflight_.size() < want &&
         next_shard_to_schedule_ < shard_order_.size()) {
    const size_t shard_index = shard_order_[next_shard_to_schedule_++];
    const ShardReader* reader = reader_;
    const Split split = split_;
    // Promote the shard decode onto the worker pool; futures keep order.
    auto task = std::make_shared<
        std::packaged_task<Result<std::vector<Example>>()>>(
        [reader, split, shard_index] {
          return reader->ReadShard(split, shard_index);
        });
    inflight_.push_back(task->get_future());
    par::GlobalPool().Submit([task] { (*task)(); });
  }
}

Status DataLoader::EnsureBuffered() {
  // Keep at least one batch in the buffer while shards remain.
  while (buffer_.size() < options_.batch_size && !inflight_.empty()) {
    Result<std::vector<Example>> shard = inflight_.front().get();
    inflight_.pop_front();
    ScheduleFetches();
    if (!shard.ok()) return shard.status();
    std::vector<Example>& examples = shard.value();
    if (options_.shuffle) epoch_rng_.Shuffle(examples);
    for (auto& ex : examples) buffer_.push_back(std::move(ex));
  }
  return Status::Ok();
}

Result<std::optional<Batch>> DataLoader::Next() {
  if (!epoch_active_) {
    return FailedPrecondition("DataLoader: StartEpoch before Next");
  }
  DRAI_RETURN_IF_ERROR(EnsureBuffered());
  if (buffer_.empty()) {
    epoch_active_ = false;
    return std::optional<Batch>(std::nullopt);
  }
  const size_t take = std::min<size_t>(options_.batch_size, buffer_.size());
  if (take < options_.batch_size && options_.drop_last) {
    buffer_.clear();
    epoch_active_ = false;
    return std::optional<Batch>(std::nullopt);
  }
  std::vector<Example> examples;
  examples.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    examples.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  DRAI_ASSIGN_OR_RETURN(Batch batch, Collate(examples));
  return std::optional<Batch>(std::move(batch));
}

}  // namespace drai::shard
