#include "shard/example.hpp"

#include <cmath>

#include "common/hash.hpp"
#include "container/tensor_io.hpp"

namespace drai::shard {

void Example::SetLabel(int64_t label) {
  features["label"] = NDArray::FromVector<int64_t>({1}, {label});
}

Result<int64_t> Example::Label() const {
  const NDArray* l = Find("label");
  if (l == nullptr) return NotFound("example has no label feature");
  if (l->numel() != 1) return InvalidArgument("label is not scalar");
  return static_cast<int64_t>(l->GetAsDouble(0));
}

const NDArray* Example::Find(const std::string& name) const {
  auto it = features.find(name);
  return it == features.end() ? nullptr : &it->second;
}

size_t Example::PayloadBytes() const {
  size_t total = 0;
  for (const auto& [_, t] : features) total += t.nbytes();
  return total;
}

Bytes Example::Serialize(codec::Codec codec) const {
  ByteWriter w;
  w.PutString(key);
  w.PutVarU64(features.size());
  for (const auto& [name, tensor] : features) {
    w.PutString(name);
    container::WriteTensor(w, tensor, codec);
  }
  return w.Take();
}

Result<Example> Example::Parse(std::span<const std::byte> bytes) {
  Example ex;
  ByteReader r(bytes);
  DRAI_RETURN_IF_ERROR(r.GetString(ex.key));
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(r.GetVarU64(n));
  if (n > (1ull << 16)) return DataLoss("example: implausible feature count");
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    DRAI_RETURN_IF_ERROR(r.GetString(name));
    DRAI_ASSIGN_OR_RETURN(NDArray t, container::ReadTensor(r));
    ex.features[name] = std::move(t);
  }
  if (!r.exhausted()) return DataLoss("example: trailing bytes");
  return ex;
}

std::string_view SplitName(Split s) {
  switch (s) {
    case Split::kTrain: return "train";
    case Split::kVal: return "val";
    case Split::kTest: return "test";
  }
  return "?";
}

SplitAssigner::SplitAssigner(double train_frac, double val_frac,
                             double test_frac, uint64_t seed)
    : train_frac_(train_frac), val_frac_(val_frac), seed_(seed) {
  if (train_frac < 0 || val_frac < 0 || test_frac < 0) {
    throw std::invalid_argument("SplitAssigner: negative fraction");
  }
  const double sum = train_frac + val_frac + test_frac;
  if (std::fabs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument("SplitAssigner: fractions must sum to 1");
  }
}

Split SplitAssigner::Assign(std::string_view key) const {
  // FNV-1a's high bits are weakly mixed for short, similar keys; finalize
  // with a SplitMix64-style avalanche so the [0,1) mapping is unbiased.
  uint64_t h = Fnv1a64(key, seed_);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  // Map to [0, 1) with 53-bit precision.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < train_frac_) return Split::kTrain;
  if (u < train_frac_ + val_frac_) return Split::kVal;
  return Split::kTest;
}

}  // namespace drai::shard
