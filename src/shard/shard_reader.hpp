// drai/shard/shard_reader.hpp
//
// ShardReader opens a finalized dataset (manifest + shard files in a
// StripedStore) and exposes split-wise record access. DataLoader builds on
// it: shuffled multi-shard iteration with background prefetch and batch
// collation — the "efficient interface to GPU training pipelines" the
// paper's level 5 requires.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <optional>

#include "common/rng.hpp"
#include "parallel/striped_store.hpp"
#include "parallel/thread_pool.hpp"
#include "shard/manifest.hpp"

namespace drai::shard {

class ShardReader {
 public:
  /// Open the dataset rooted at `directory` in `store` (reads manifest).
  static Result<ShardReader> Open(par::StripedStore& store,
                                  const std::string& directory);

  [[nodiscard]] const DatasetManifest& manifest() const { return manifest_; }
  [[nodiscard]] uint64_t NumRecords(Split split) const {
    return manifest_.TotalRecords(split);
  }
  [[nodiscard]] size_t NumShards(Split split) const;

  /// Decode every example of one shard file.
  [[nodiscard]] Result<std::vector<Example>> ReadShard(Split split,
                                                       size_t shard_index) const;

  /// Decode every example of a split, shard order.
  [[nodiscard]] Result<std::vector<Example>> ReadAll(Split split) const;

 private:
  ShardReader(par::StripedStore& store, DatasetManifest manifest)
      : store_(&store), manifest_(std::move(manifest)) {}
  par::StripedStore* store_;
  DatasetManifest manifest_;
};

/// A collated batch: every feature stacked along a new leading dimension.
struct Batch {
  std::vector<std::string> keys;
  std::map<std::string, NDArray> features;  ///< shape = [batch, ...sample]
  [[nodiscard]] size_t size() const { return keys.size(); }
};

/// Stack examples (identical schemas) into a Batch.
Result<Batch> Collate(std::span<const Example> examples);

struct DataLoaderOptions {
  size_t batch_size = 32;
  bool shuffle = true;
  uint64_t seed = 0x5eed;
  bool drop_last = false;   ///< drop a trailing partial batch
  size_t prefetch_shards = 2;  ///< shards decoded ahead by the worker pool
};

/// Iterates one split in (optionally shuffled) batches. Shard order and
/// intra-shard order reshuffle per epoch deterministically from the seed —
/// epoch e of run A equals epoch e of run B.
class DataLoader {
 public:
  DataLoader(const ShardReader& reader, Split split, DataLoaderOptions options);

  /// Begin an epoch (0-based). Resets iteration state.
  void StartEpoch(uint64_t epoch);

  /// Next batch, or nullopt at epoch end. Decoding errors surface here.
  Result<std::optional<Batch>> Next();

  /// Records this loader will yield per epoch (after drop_last).
  [[nodiscard]] uint64_t RecordsPerEpoch() const;

 private:
  Status EnsureBuffered();
  void ScheduleFetches();

  const ShardReader* reader_;
  Split split_;
  DataLoaderOptions options_;
  std::vector<size_t> shard_order_;
  size_t next_shard_to_schedule_ = 0;
  std::deque<std::future<Result<std::vector<Example>>>> inflight_;
  std::deque<Example> buffer_;
  Rng epoch_rng_{0};
  uint64_t epoch_ = 0;
  bool epoch_active_ = false;
};

}  // namespace drai::shard
