#include "sequence/msa.hpp"

#include <algorithm>
#include <map>

namespace drai::sequence {

namespace {

/// Merge a newly aligned (center', other') pair into the growing MSA whose
/// first row is the current center alignment. Returns the new center row
/// and rewrites every existing row to match its gap pattern.
void MergeIntoMsa(std::string& center_row, std::vector<std::string>& rows,
                  const std::string& new_center, const std::string& new_other,
                  std::string& merged_other) {
  // Two views of the center: the one the MSA already has (center_row, with
  // gaps from earlier merges) and the pairwise one (new_center). Walk both
  // and emit the union gap pattern.
  std::string merged_center;
  std::vector<std::string> merged_rows(rows.size());
  merged_other.clear();
  size_t i = 0;  // into center_row
  size_t j = 0;  // into new_center
  while (i < center_row.size() || j < new_center.size()) {
    const bool old_gap = i < center_row.size() && center_row[i] == '-';
    const bool new_gap = j < new_center.size() && new_center[j] == '-';
    const bool old_done = i >= center_row.size();
    const bool new_done = j >= new_center.size();
    if (!old_done && old_gap && (new_done || !new_gap)) {
      // Gap only in the old alignment: keep the old column, pad the new
      // sequence with a gap.
      merged_center += '-';
      for (size_t r = 0; r < rows.size(); ++r) merged_rows[r] += rows[r][i];
      merged_other += '-';
      ++i;
    } else if (!new_done && new_gap && (old_done || !old_gap)) {
      // Gap only in the new pairwise alignment: open a column in the MSA.
      merged_center += '-';
      for (size_t r = 0; r < rows.size(); ++r) merged_rows[r] += '-';
      merged_other += new_other[j];
      ++j;
    } else {
      // Symbols (or gaps) agree: consume both.
      merged_center += old_done ? new_center[j] : center_row[i];
      for (size_t r = 0; r < rows.size(); ++r) {
        merged_rows[r] += old_done ? '-' : rows[r][i];
      }
      merged_other += new_done ? '-' : new_other[j];
      ++i;
      ++j;
    }
  }
  center_row = std::move(merged_center);
  rows = std::move(merged_rows);
}

}  // namespace

Result<MsaResult> CenterStarMsa(std::span<const std::string> sequences,
                                AlignScores scores) {
  if (sequences.size() < 2) {
    return InvalidArgument("CenterStarMsa: need at least 2 sequences");
  }
  for (const auto& s : sequences) {
    if (s.empty()) return InvalidArgument("CenterStarMsa: empty sequence");
  }
  const size_t n = sequences.size();

  // Pick the center: highest summed pairwise alignment score.
  std::vector<int64_t> total_score(n, 0);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      const int64_t s = GlobalAlign(sequences[a], sequences[b], scores).score;
      total_score[a] += s;
      total_score[b] += s;
    }
  }
  MsaResult result;
  result.center = static_cast<size_t>(
      std::max_element(total_score.begin(), total_score.end()) -
      total_score.begin());

  // Progressively merge every other sequence against the center.
  std::string center_row = sequences[result.center];
  std::vector<std::string> other_rows;   // aligned rows, input order sans center
  std::vector<size_t> other_index;       // original index per row
  for (size_t k = 0; k < n; ++k) {
    if (k == result.center) continue;
    const AlignmentResult pair =
        GlobalAlign(sequences[result.center], sequences[k], scores);
    std::string merged_other;
    MergeIntoMsa(center_row, other_rows, pair.aligned_a, pair.aligned_b,
                 merged_other);
    other_rows.push_back(std::move(merged_other));
    other_index.push_back(k);
  }

  // Assemble rows in input order.
  result.aligned.resize(n);
  result.aligned[result.center] = center_row;
  for (size_t r = 0; r < other_rows.size(); ++r) {
    result.aligned[other_index[r]] = other_rows[r];
  }
  // All rows must share the center's final length.
  for (auto& row : result.aligned) {
    if (row.size() < center_row.size()) {
      row.append(center_row.size() - row.size(), '-');
    }
  }

  // Conservation + identity.
  const size_t cols = center_row.size();
  result.conservation.resize(cols, 0.0);
  for (size_t c = 0; c < cols; ++c) {
    std::map<char, size_t> counts;
    for (const auto& row : result.aligned) {
      if (row[c] != '-') ++counts[row[c]];
    }
    size_t best = 0;
    for (const auto& [_, v] : counts) best = std::max(best, v);
    result.conservation[c] = static_cast<double>(best) / static_cast<double>(n);
  }
  double identity_sum = 0;
  size_t pairs = 0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      size_t same = 0;
      for (size_t c = 0; c < cols; ++c) {
        if (result.aligned[a][c] == result.aligned[b][c] &&
            result.aligned[a][c] != '-') {
          ++same;
        }
      }
      identity_sum += static_cast<double>(same) / static_cast<double>(cols);
      ++pairs;
    }
  }
  result.mean_identity = pairs ? identity_sum / static_cast<double>(pairs) : 1.0;
  return result;
}

std::string MsaConsensus(const MsaResult& msa) {
  if (msa.aligned.empty()) return "";
  const size_t cols = msa.aligned.front().size();
  std::string out(cols, '-');
  for (size_t c = 0; c < cols; ++c) {
    std::map<char, size_t> counts;
    for (const auto& row : msa.aligned) {
      if (row[c] != '-') ++counts[row[c]];
    }
    size_t best = 0;
    for (const auto& [symbol, v] : counts) {
      if (v > best) {
        best = v;
        out[c] = symbol;
      }
    }
  }
  return out;
}

Result<NDArray> MsaProfile(const MsaResult& msa, Alphabet alphabet) {
  if (msa.aligned.empty()) return InvalidArgument("MsaProfile: empty MSA");
  const size_t cols = msa.aligned.front().size();
  const size_t k = AlphabetSize(alphabet);
  NDArray profile = NDArray::Zeros({cols, k}, DType::kF32);
  float* p = profile.data<float>();
  for (size_t c = 0; c < cols; ++c) {
    for (const auto& row : msa.aligned) {
      const int idx = SymbolIndex(alphabet, row[c]);
      if (idx >= 0) p[c * k + static_cast<size_t>(idx)] += 1.0f;
    }
  }
  const float inv = 1.0f / static_cast<float>(msa.aligned.size());
  for (size_t i = 0; i < cols * k; ++i) p[i] *= inv;
  return profile;
}

}  // namespace drai::sequence
