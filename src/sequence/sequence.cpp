#include "sequence/sequence.hpp"

#include <algorithm>
#include <cctype>

namespace drai::sequence {

namespace {
constexpr std::string_view kDnaSymbols = "ACGT";
constexpr std::string_view kRnaSymbols = "ACGU";
constexpr std::string_view kProteinSymbols = "ACDEFGHIKLMNPQRSTVWY";

std::string_view Symbols(Alphabet a) {
  switch (a) {
    case Alphabet::kDna: return kDnaSymbols;
    case Alphabet::kRna: return kRnaSymbols;
    case Alphabet::kProtein: return kProteinSymbols;
  }
  return kDnaSymbols;
}

char UnknownSymbol(Alphabet a) {
  return a == Alphabet::kProtein ? 'X' : 'N';
}
}  // namespace

size_t AlphabetSize(Alphabet a) { return Symbols(a).size(); }

int SymbolIndex(Alphabet a, char c) {
  const char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  const std::string_view sym = Symbols(a);
  const size_t pos = sym.find(u);
  return pos == std::string_view::npos ? -1 : static_cast<int>(pos);
}

Result<double> UnknownFraction(Alphabet a, std::string_view seq) {
  if (seq.empty()) return InvalidArgument("empty sequence");
  size_t unknown = 0;
  for (char c : seq) {
    if (SymbolIndex(a, c) >= 0) continue;
    const char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (u != UnknownSymbol(a)) {
      return InvalidArgument(std::string("invalid symbol '") + c +
                             "' for alphabet");
    }
    ++unknown;
  }
  return static_cast<double>(unknown) / static_cast<double>(seq.size());
}

Result<NDArray> OneHot(Alphabet a, std::string_view seq) {
  DRAI_ASSIGN_OR_RETURN(double unknown_frac, UnknownFraction(a, seq));
  (void)unknown_frac;
  const size_t k = AlphabetSize(a);
  NDArray out = NDArray::Zeros({seq.size(), k}, DType::kF32);
  float* p = out.data<float>();
  for (size_t i = 0; i < seq.size(); ++i) {
    const int idx = SymbolIndex(a, seq[i]);
    if (idx >= 0) p[i * k + static_cast<size_t>(idx)] = 1.0f;
  }
  return out;
}

std::vector<std::string> Tile(std::string_view seq, size_t tile_len,
                              size_t stride, bool pad_last) {
  if (tile_len == 0 || stride == 0) {
    throw std::invalid_argument("Tile: tile_len and stride must be > 0");
  }
  std::vector<std::string> tiles;
  size_t i = 0;
  while (i < seq.size()) {
    if (i + tile_len <= seq.size()) {
      tiles.emplace_back(seq.substr(i, tile_len));
    } else {
      if (pad_last) {
        std::string last(seq.substr(i));
        last.resize(tile_len, 'N');
        tiles.push_back(std::move(last));
      }
      break;
    }
    i += stride;
  }
  return tiles;
}

KmerTokenizer::KmerTokenizer(Alphabet alphabet, size_t k)
    : alphabet_(alphabet), k_(k) {
  if (k == 0 || k > 12) {
    throw std::invalid_argument("KmerTokenizer: k must be in [1, 12]");
  }
  int64_t v = 1;
  for (size_t i = 0; i < k; ++i) v *= static_cast<int64_t>(AlphabetSize(alphabet));
  vocab_ = v + 1;  // + OOV
}

Result<std::vector<int64_t>> KmerTokenizer::Tokenize(
    std::string_view seq) const {
  if (seq.size() < k_) {
    return InvalidArgument("sequence shorter than k");
  }
  const int64_t base = static_cast<int64_t>(AlphabetSize(alphabet_));
  std::vector<int64_t> out;
  out.reserve(seq.size() - k_ + 1);
  for (size_t i = 0; i + k_ <= seq.size(); ++i) {
    int64_t id = 0;
    bool oov = false;
    for (size_t j = 0; j < k_; ++j) {
      const int idx = SymbolIndex(alphabet_, seq[i + j]);
      if (idx < 0) {
        oov = true;
        break;
      }
      id = id * base + idx;
    }
    out.push_back(oov ? oov_id() : id);
  }
  return out;
}

Result<std::string> KmerTokenizer::Detokenize(int64_t token) const {
  if (token < 0 || token >= vocab_ - 1) {
    return InvalidArgument("token out of range or OOV");
  }
  const int64_t base = static_cast<int64_t>(AlphabetSize(alphabet_));
  std::string out(k_, '?');
  for (size_t j = k_; j-- > 0;) {
    out[j] = Symbols(alphabet_)[static_cast<size_t>(token % base)];
    token /= base;
  }
  return out;
}

AlignmentResult GlobalAlign(std::string_view a, std::string_view b,
                            AlignScores scores) {
  const size_t n = a.size(), m = b.size();
  // DP matrix (n+1) x (m+1) of best scores; traceback via recompute.
  std::vector<int64_t> dp((n + 1) * (m + 1));
  auto at = [&](size_t i, size_t j) -> int64_t& { return dp[i * (m + 1) + j]; };
  for (size_t i = 0; i <= n; ++i) at(i, 0) = static_cast<int64_t>(i) * scores.gap;
  for (size_t j = 0; j <= m; ++j) at(0, j) = static_cast<int64_t>(j) * scores.gap;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int64_t diag =
          at(i - 1, j - 1) + (a[i - 1] == b[j - 1] ? scores.match : scores.mismatch);
      const int64_t up = at(i - 1, j) + scores.gap;
      const int64_t left = at(i, j - 1) + scores.gap;
      at(i, j) = std::max({diag, up, left});
    }
  }
  // Traceback.
  AlignmentResult res;
  res.score = at(n, m);
  size_t i = n, j = m;
  std::string ra, rb;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        at(i, j) == at(i - 1, j - 1) + (a[i - 1] == b[j - 1] ? scores.match
                                                             : scores.mismatch)) {
      ra.push_back(a[i - 1]);
      rb.push_back(b[j - 1]);
      --i;
      --j;
    } else if (i > 0 && at(i, j) == at(i - 1, j) + scores.gap) {
      ra.push_back(a[i - 1]);
      rb.push_back('-');
      --i;
    } else {
      ra.push_back('-');
      rb.push_back(b[j - 1]);
      --j;
    }
  }
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  size_t same = 0;
  for (size_t k = 0; k < ra.size(); ++k) {
    if (ra[k] == rb[k] && ra[k] != '-') ++same;
  }
  res.identity = ra.empty() ? 1.0
                            : static_cast<double>(same) /
                                  static_cast<double>(ra.size());
  res.aligned_a = std::move(ra);
  res.aligned_b = std::move(rb);
  return res;
}

double GcContent(std::string_view seq) {
  if (seq.empty()) return 0.0;
  size_t gc = 0, acgt = 0;
  for (char c : seq) {
    const char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (u == 'G' || u == 'C') {
      ++gc;
      ++acgt;
    } else if (u == 'A' || u == 'T' || u == 'U') {
      ++acgt;
    }
  }
  return acgt == 0 ? 0.0 : static_cast<double>(gc) / static_cast<double>(acgt);
}

Result<std::string> ReverseComplement(std::string_view seq) {
  std::string out(seq.size(), 'N');
  for (size_t i = 0; i < seq.size(); ++i) {
    const char c = static_cast<char>(
        std::toupper(static_cast<unsigned char>(seq[seq.size() - 1 - i])));
    switch (c) {
      case 'A': out[i] = 'T'; break;
      case 'T': out[i] = 'A'; break;
      case 'C': out[i] = 'G'; break;
      case 'G': out[i] = 'C'; break;
      case 'N': out[i] = 'N'; break;
      default:
        return InvalidArgument(std::string("ReverseComplement: bad symbol '") +
                               c + "'");
    }
  }
  return out;
}

}  // namespace drai::sequence
