// drai/sequence/sequence.hpp
//
// Sequence preprocessing — the bio archetype (§3.3): Enformer-style
// one-hot encoding and fixed-length tiling of DNA, k-mer tokenization for
// transformer vocabularies, and a Needleman–Wunsch aligner standing in for
// the MSA step of AlphaFold-style pipelines.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::sequence {

enum class Alphabet { kDna, kRna, kProtein };

/// Alphabet size (DNA/RNA: 4, protein: 20). The unknown symbol ('N'/'X')
/// encodes as all-zeros in one-hot and as its own token id in k-mers.
size_t AlphabetSize(Alphabet a);

/// Index of a symbol in its alphabet; -1 for unknown. Case-insensitive.
int SymbolIndex(Alphabet a, char c);

/// Validates that a sequence contains only alphabet symbols or the unknown
/// symbol; returns the fraction of unknowns.
Result<double> UnknownFraction(Alphabet a, std::string_view seq);

/// One-hot encode: [len, alphabet_size] f32. Unknown symbols become
/// all-zero rows (Enformer's convention for 'N').
Result<NDArray> OneHot(Alphabet a, std::string_view seq);

/// Cut a sequence into fixed-length tiles with the given stride. The final
/// partial tile is kept and right-padded with unknowns when `pad_last`.
std::vector<std::string> Tile(std::string_view seq, size_t tile_len,
                              size_t stride, bool pad_last = true);

/// k-mer tokenizer: maps each window of k symbols to an integer id in
/// [0, alphabet^k); windows containing unknowns map to the OOV id
/// alphabet^k. Ids fit int64.
class KmerTokenizer {
 public:
  KmerTokenizer(Alphabet alphabet, size_t k);

  [[nodiscard]] size_t k() const { return k_; }
  /// Vocabulary size including the OOV id.
  [[nodiscard]] int64_t vocab_size() const { return vocab_; }
  [[nodiscard]] int64_t oov_id() const { return vocab_ - 1; }

  /// Tokenize with stride 1 (overlapping k-mers): n-k+1 tokens.
  [[nodiscard]] Result<std::vector<int64_t>> Tokenize(std::string_view seq) const;
  /// Invert a (non-OOV) token back to its k-mer string.
  [[nodiscard]] Result<std::string> Detokenize(int64_t token) const;

 private:
  Alphabet alphabet_;
  size_t k_;
  int64_t vocab_;
};

/// Needleman–Wunsch global alignment (match/mismatch/gap scores).
struct AlignmentResult {
  std::string aligned_a;  ///< with '-' gaps
  std::string aligned_b;
  int64_t score = 0;
  /// Identical positions / alignment length.
  double identity = 0;
};

struct AlignScores {
  int64_t match = 2;
  int64_t mismatch = -1;
  int64_t gap = -2;
};

AlignmentResult GlobalAlign(std::string_view a, std::string_view b,
                            AlignScores scores = {});

/// GC fraction of a DNA sequence (quality metric).
double GcContent(std::string_view seq);

/// Reverse complement of a DNA sequence (augmentation for genomics).
Result<std::string> ReverseComplement(std::string_view seq);

}  // namespace drai::sequence
