// drai/sequence/msa.hpp
//
// Multiple sequence alignment — the AlphaFold-pipeline step §3.3 calls out
// ("a complex preprocessing pipeline involving multiple sequence
// alignment"). Implements the classic center-star heuristic: pick the
// sequence with the highest summed pairwise score as the center, align all
// others to it with Needleman–Wunsch, and merge gaps ("once a gap, always
// a gap"). 2-approximation of the optimal SP-score alignment; exactly the
// right fidelity for a preprocessing substrate.
#pragma once

#include "sequence/sequence.hpp"

namespace drai::sequence {

struct MsaResult {
  /// All sequences padded to one length with '-' gaps; row order matches
  /// the input order.
  std::vector<std::string> aligned;
  /// Index of the sequence chosen as the center.
  size_t center = 0;
  /// Per-column conservation: fraction of rows agreeing with the column's
  /// most frequent non-gap symbol (0 for all-gap columns).
  std::vector<double> conservation;
  /// Mean pairwise identity across all row pairs.
  double mean_identity = 0;
};

/// Align 2..N sequences. Fails on empty input or empty sequences.
Result<MsaResult> CenterStarMsa(std::span<const std::string> sequences,
                                AlignScores scores = {});

/// Column-wise consensus (most frequent non-gap symbol; '-' for all-gap).
std::string MsaConsensus(const MsaResult& msa);

/// Position-specific frequency matrix over the DNA alphabet:
/// [columns, 4] f32 with rows summing to <= 1 (gaps excluded) — the
/// "position-wise statistics" Enformer-style pipelines compute.
Result<NDArray> MsaProfile(const MsaResult& msa, Alphabet alphabet);

}  // namespace drai::sequence
