// drai/augment/augment.hpp
//
// Data augmentation and semi-supervised labeling (§2.1): when scientific
// datasets are under-sampled, pipelines synthesize variants (rotations,
// flips, noise), interpolate minority-class samples (SMOTE-style), and
// propagate labels from a model onto unlabeled data (pseudo-labeling).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "ndarray/ndarray.hpp"

namespace drai::augment {

// ---- spatial field augmentation (2-D [h, w] or [c, h, w]) --------------

/// Rotate by 90° * k counter-clockwise (k in {0,1,2,3}).
Result<NDArray> Rotate90(const NDArray& field, int k);
/// Mirror along the horizontal (axis=0) or vertical (axis=1) spatial axis.
Result<NDArray> Flip(const NDArray& field, int axis);
/// Additive Gaussian noise with stddev = `relative_sigma` * field stddev.
Result<NDArray> AddNoise(const NDArray& field, double relative_sigma, Rng& rng);
/// Random crop of (ch, cw) then resize back by nearest-neighbor.
Result<NDArray> RandomCropResize(const NDArray& field, size_t ch, size_t cw,
                                 Rng& rng);

// ---- feature-space synthesis --------------------------------------------

/// SMOTE-style synthesis: for each requested synthetic sample, pick a random
/// minority row and interpolate toward one of its k nearest minority
/// neighbors. `features` is [n, f]; `minority_rows` index into it.
Result<NDArray> SmoteSynthesize(const NDArray& features,
                                std::span<const size_t> minority_rows,
                                size_t n_synthetic, size_t k_neighbors,
                                Rng& rng);

/// MixUp: convex combinations of sample pairs (and their one-hot-ish
/// labels). Given [n, f] features and per-sample labels, emits
/// `n_synthetic` rows x' = w*x_i + (1-w)*x_j with w ~ Beta(alpha, alpha)
/// (approximated via sorted uniforms), plus soft labels (label_i weight w).
struct MixupResult {
  NDArray features;                 ///< [n_synthetic, f]
  std::vector<int64_t> label_a;     ///< dominant label per row
  std::vector<int64_t> label_b;
  std::vector<double> weight_a;     ///< mixing weight of label_a
};
Result<MixupResult> Mixup(const NDArray& features,
                          std::span<const int64_t> labels, size_t n_synthetic,
                          double alpha, Rng& rng);

/// Time-series window augmentation: amplitude scaling + time jitter.
/// Input [n, channels, window]; each output window is a random input
/// window scaled by Uniform(1-s, 1+s) per channel and circularly shifted
/// by up to `max_shift` samples.
Result<NDArray> JitterWindows(const NDArray& windows, size_t n_synthetic,
                              double amplitude_scale, size_t max_shift,
                              Rng& rng);

// ---- pseudo-labeling ------------------------------------------------------

/// A classifier hook: returns (predicted label, confidence in [0,1]) for a
/// feature row.
using Classifier =
    std::function<std::pair<int64_t, double>(std::span<const double>)>;

struct PseudoLabelOptions {
  double confidence_threshold = 0.9;
  size_t max_rounds = 5;
  /// Stop when a round adopts fewer than this many new labels.
  size_t min_adopted_per_round = 1;
};

struct PseudoLabelResult {
  /// Final labels; -1 where still unlabeled.
  std::vector<int64_t> labels;
  size_t rounds_run = 0;
  size_t total_adopted = 0;
};

/// Iterative self-training driver: `train` fits a classifier on the
/// currently labeled rows, then high-confidence predictions on unlabeled
/// rows are adopted; repeat. `features` is [n, f]; `initial_labels` uses
/// -1 for unlabeled.
using TrainFn = std::function<Classifier(
    const NDArray& features, std::span<const int64_t> labels)>;

Result<PseudoLabelResult> PseudoLabel(const NDArray& features,
                                      std::span<const int64_t> initial_labels,
                                      const TrainFn& train,
                                      const PseudoLabelOptions& options = {});

}  // namespace drai::augment
