#include "augment/augment.hpp"

#include <algorithm>
#include <cmath>

#include "ndarray/kernels.hpp"

namespace drai::augment {

namespace {

/// Normalize [h,w] or [c,h,w] to a contiguous [c,h,w] array; remembers
/// whether to squeeze the channel on the way out.
Result<NDArray> ToChw(const NDArray& field, bool& squeeze) {
  NDArray input = field.IsContiguous() ? field : field.AsContiguous();
  if (input.rank() == 2) {
    squeeze = true;
    return input.Reshape({1, input.shape()[0], input.shape()[1]});
  }
  if (input.rank() == 3) {
    squeeze = false;
    return input;
  }
  return InvalidArgument("augment: field rank must be 2 or 3");
}

NDArray MaybeSqueeze(NDArray chw, bool squeeze) {
  if (!squeeze) return chw;
  return chw.Reshape({chw.shape()[1], chw.shape()[2]});
}

}  // namespace

Result<NDArray> Rotate90(const NDArray& field, int k) {
  bool squeeze = false;
  DRAI_ASSIGN_OR_RETURN(NDArray in, ToChw(field, squeeze));
  k = ((k % 4) + 4) % 4;
  const size_t c = in.shape()[0], h = in.shape()[1], w = in.shape()[2];
  const size_t oh = (k % 2 == 0) ? h : w;
  const size_t ow = (k % 2 == 0) ? w : h;
  NDArray out = NDArray::Zeros({c, oh, ow}, in.dtype());
  for (size_t ci = 0; ci < c; ++ci) {
    for (size_t y = 0; y < h; ++y) {
      for (size_t x = 0; x < w; ++x) {
        size_t ny = 0, nx = 0;
        switch (k) {
          case 0: ny = y; nx = x; break;
          case 1: ny = w - 1 - x; nx = y; break;          // 90° CCW
          case 2: ny = h - 1 - y; nx = w - 1 - x; break;  // 180°
          case 3: ny = x; nx = h - 1 - y; break;          // 270° CCW
        }
        out.SetFromDouble((ci * oh + ny) * ow + nx,
                          in.GetAsDouble((ci * h + y) * w + x));
      }
    }
  }
  return MaybeSqueeze(std::move(out), squeeze);
}

Result<NDArray> Flip(const NDArray& field, int axis) {
  if (axis != 0 && axis != 1) {
    return InvalidArgument("Flip: axis must be 0 or 1");
  }
  bool squeeze = false;
  DRAI_ASSIGN_OR_RETURN(NDArray in, ToChw(field, squeeze));
  const size_t c = in.shape()[0], h = in.shape()[1], w = in.shape()[2];
  NDArray out = NDArray::Zeros({c, h, w}, in.dtype());
  for (size_t ci = 0; ci < c; ++ci) {
    for (size_t y = 0; y < h; ++y) {
      for (size_t x = 0; x < w; ++x) {
        const size_t ny = axis == 0 ? h - 1 - y : y;
        const size_t nx = axis == 1 ? w - 1 - x : x;
        out.SetFromDouble((ci * h + ny) * w + nx,
                          in.GetAsDouble((ci * h + y) * w + x));
      }
    }
  }
  return MaybeSqueeze(std::move(out), squeeze);
}

Result<NDArray> AddNoise(const NDArray& field, double relative_sigma,
                         Rng& rng) {
  if (relative_sigma < 0) {
    return InvalidArgument("AddNoise: negative sigma");
  }
  if (!IsFloating(field.dtype())) {
    return InvalidArgument("AddNoise: floating dtypes only");
  }
  NDArray out = field.AsContiguous();
  const double sigma = std::sqrt(Variance(out)) * relative_sigma;
  const size_t n = out.numel();
  for (size_t i = 0; i < n; ++i) {
    out.SetFromDouble(i, out.GetAsDouble(i) + rng.Normal(0, sigma));
  }
  return out;
}

Result<NDArray> RandomCropResize(const NDArray& field, size_t ch, size_t cw,
                                 Rng& rng) {
  bool squeeze = false;
  DRAI_ASSIGN_OR_RETURN(NDArray in, ToChw(field, squeeze));
  const size_t c = in.shape()[0], h = in.shape()[1], w = in.shape()[2];
  if (ch == 0 || cw == 0 || ch > h || cw > w) {
    return InvalidArgument("RandomCropResize: bad crop size");
  }
  const size_t y0 = static_cast<size_t>(rng.UniformU64(h - ch + 1));
  const size_t x0 = static_cast<size_t>(rng.UniformU64(w - cw + 1));
  NDArray out = NDArray::Zeros({c, h, w}, in.dtype());
  for (size_t ci = 0; ci < c; ++ci) {
    for (size_t y = 0; y < h; ++y) {
      for (size_t x = 0; x < w; ++x) {
        // Nearest-neighbor resize from the crop back to (h, w).
        const size_t sy = y0 + (y * ch) / h;
        const size_t sx = x0 + (x * cw) / w;
        out.SetFromDouble((ci * h + y) * w + x,
                          in.GetAsDouble((ci * h + sy) * w + sx));
      }
    }
  }
  return MaybeSqueeze(std::move(out), squeeze);
}

Result<NDArray> SmoteSynthesize(const NDArray& features,
                                std::span<const size_t> minority_rows,
                                size_t n_synthetic, size_t k_neighbors,
                                Rng& rng) {
  if (features.rank() != 2) {
    return InvalidArgument("SmoteSynthesize: features must be [n, f]");
  }
  if (minority_rows.size() < 2) {
    return InvalidArgument("SmoteSynthesize: need >= 2 minority samples");
  }
  const size_t f = features.shape()[1];
  const size_t n_rows = features.shape()[0];
  for (size_t r : minority_rows) {
    if (r >= n_rows) return OutOfRange("SmoteSynthesize: row out of range");
  }
  k_neighbors = std::min(k_neighbors, minority_rows.size() - 1);
  if (k_neighbors == 0) k_neighbors = 1;

  // Precompute pairwise distances among minority rows (m is small by
  // definition of minority).
  const size_t m = minority_rows.size();
  std::vector<std::vector<std::pair<double, size_t>>> neighbors(m);
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      if (a == b) continue;
      double d2 = 0;
      for (size_t j = 0; j < f; ++j) {
        const double da = features.GetAsDouble(minority_rows[a] * f + j) -
                          features.GetAsDouble(minority_rows[b] * f + j);
        d2 += da * da;
      }
      neighbors[a].emplace_back(d2, b);
    }
    std::sort(neighbors[a].begin(), neighbors[a].end());
    neighbors[a].resize(k_neighbors);
  }

  NDArray out = NDArray::Zeros({n_synthetic, f}, features.dtype());
  for (size_t s = 0; s < n_synthetic; ++s) {
    const size_t a = static_cast<size_t>(rng.UniformU64(m));
    const size_t b = neighbors[a][rng.UniformU64(neighbors[a].size())].second;
    const double lambda = rng.UniformDouble();
    for (size_t j = 0; j < f; ++j) {
      const double va = features.GetAsDouble(minority_rows[a] * f + j);
      const double vb = features.GetAsDouble(minority_rows[b] * f + j);
      out.SetFromDouble(s * f + j, va + lambda * (vb - va));
    }
  }
  return out;
}

Result<MixupResult> Mixup(const NDArray& features,
                          std::span<const int64_t> labels, size_t n_synthetic,
                          double alpha, Rng& rng) {
  if (features.rank() != 2) {
    return InvalidArgument("Mixup: features must be [n, f]");
  }
  const size_t n = features.shape()[0];
  const size_t f = features.shape()[1];
  if (labels.size() != n) return InvalidArgument("Mixup: label count mismatch");
  if (n < 2) return InvalidArgument("Mixup: need >= 2 samples");
  if (alpha <= 0) return InvalidArgument("Mixup: alpha must be > 0");

  MixupResult out;
  out.features = NDArray::Zeros({n_synthetic, f}, features.dtype());
  out.label_a.resize(n_synthetic);
  out.label_b.resize(n_synthetic);
  out.weight_a.resize(n_synthetic);
  for (size_t s = 0; s < n_synthetic; ++s) {
    const size_t i = static_cast<size_t>(rng.UniformU64(n));
    size_t j = static_cast<size_t>(rng.UniformU64(n - 1));
    if (j >= i) ++j;
    // Beta(alpha, alpha) via the Johnk generator (valid for alpha <= 1 and
    // acceptable for the small alphas mixup uses; for alpha >= 1 the
    // distribution flattens toward uniform, which Uniform covers).
    double w;
    if (alpha >= 1.0) {
      w = rng.UniformDouble();
    } else {
      for (;;) {
        const double u = std::pow(rng.UniformDouble(), 1.0 / alpha);
        const double v = std::pow(rng.UniformDouble(), 1.0 / alpha);
        if (u + v <= 1.0 && u + v > 0) {
          w = u / (u + v);
          break;
        }
      }
    }
    if (w < 0.5) w = 1.0 - w;  // keep label_a dominant
    for (size_t c = 0; c < f; ++c) {
      const double mixed = w * features.GetAsDouble(i * f + c) +
                           (1.0 - w) * features.GetAsDouble(j * f + c);
      out.features.SetFromDouble(s * f + c, mixed);
    }
    out.label_a[s] = labels[i];
    out.label_b[s] = labels[j];
    out.weight_a[s] = w;
  }
  return out;
}

Result<NDArray> JitterWindows(const NDArray& windows, size_t n_synthetic,
                              double amplitude_scale, size_t max_shift,
                              Rng& rng) {
  if (windows.rank() != 3) {
    return InvalidArgument("JitterWindows: expected [n, channels, window]");
  }
  if (amplitude_scale < 0 || amplitude_scale >= 1) {
    return InvalidArgument("JitterWindows: scale must be in [0, 1)");
  }
  const size_t n = windows.shape()[0];
  const size_t channels = windows.shape()[1];
  const size_t window = windows.shape()[2];
  if (n == 0) return InvalidArgument("JitterWindows: no windows");
  if (max_shift >= window) {
    return InvalidArgument("JitterWindows: shift >= window");
  }
  NDArray out = NDArray::Zeros({n_synthetic, channels, window},
                               windows.dtype());
  for (size_t s = 0; s < n_synthetic; ++s) {
    const size_t src = static_cast<size_t>(rng.UniformU64(n));
    const size_t shift =
        max_shift == 0 ? 0 : static_cast<size_t>(rng.UniformU64(max_shift + 1));
    for (size_t c = 0; c < channels; ++c) {
      const double scale =
          rng.Uniform(1.0 - amplitude_scale, 1.0 + amplitude_scale);
      for (size_t k = 0; k < window; ++k) {
        const size_t from = (k + shift) % window;
        out.SetFromDouble(
            (s * channels + c) * window + k,
            scale * windows.GetAsDouble((src * channels + c) * window + from));
      }
    }
  }
  return out;
}

Result<PseudoLabelResult> PseudoLabel(const NDArray& features,
                                      std::span<const int64_t> initial_labels,
                                      const TrainFn& train,
                                      const PseudoLabelOptions& options) {
  if (features.rank() != 2) {
    return InvalidArgument("PseudoLabel: features must be [n, f]");
  }
  const size_t n = features.shape()[0];
  const size_t f = features.shape()[1];
  if (initial_labels.size() != n) {
    return InvalidArgument("PseudoLabel: label count mismatch");
  }
  PseudoLabelResult result;
  result.labels.assign(initial_labels.begin(), initial_labels.end());

  size_t labeled = 0;
  for (int64_t l : result.labels) {
    if (l >= 0) ++labeled;
  }
  if (labeled == 0) {
    return FailedPrecondition("PseudoLabel: no seed labels");
  }

  std::vector<double> row(f);
  for (size_t round = 0; round < options.max_rounds; ++round) {
    const Classifier clf = train(features, result.labels);
    size_t adopted = 0;
    for (size_t i = 0; i < n; ++i) {
      if (result.labels[i] >= 0) continue;
      for (size_t j = 0; j < f; ++j) {
        row[j] = features.GetAsDouble(i * f + j);
      }
      const auto [label, confidence] = clf(row);
      if (confidence >= options.confidence_threshold && label >= 0) {
        result.labels[i] = label;
        ++adopted;
      }
    }
    result.total_adopted += adopted;
    result.rounds_run = round + 1;
    if (adopted < options.min_adopted_per_round) break;
  }
  return result;
}

}  // namespace drai::augment
