// drai/graph/structure.hpp
//
// Crystal structures and periodic neighbor search — the materials archetype
// (§3.4): parse simulation outputs, build the neighbor graph under periodic
// boundary conditions, and encode it for GNN training (HydraGNN/OMat24
// style).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace drai::graph {

using Vec3 = std::array<double, 3>;
using Mat3 = std::array<Vec3, 3>;  ///< rows are lattice vectors a, b, c

/// A periodic crystal: lattice, fractional coordinates, atomic numbers.
struct Structure {
  std::string id;
  Mat3 lattice{};
  std::vector<Vec3> frac_coords;   ///< in [0, 1)^3
  std::vector<int> atomic_numbers; ///< Z per site
  double energy_per_atom = 0;      ///< DFT-like label
  int space_group_class = 0;       ///< coarse class label for balance tests

  [[nodiscard]] size_t NumAtoms() const { return frac_coords.size(); }
  [[nodiscard]] Status Validate() const;
  /// Cartesian position of site i (fractional -> lattice frame).
  [[nodiscard]] Vec3 Cartesian(size_t i) const;
  /// Cell volume |a . (b x c)|.
  [[nodiscard]] double Volume() const;
};

/// One directed edge of the neighbor graph.
struct Neighbor {
  uint32_t src = 0;
  uint32_t dst = 0;
  double distance = 0;
  std::array<int8_t, 3> image{};  ///< periodic image offset of dst
};

/// All pairs within `cutoff` under periodic boundary conditions. The image
/// search range is derived from the cell geometry, so cutoffs larger than
/// the cell are handled correctly (multiple images of the same pair).
/// Self-pairs appear only through non-zero images.
Result<std::vector<Neighbor>> BuildNeighborList(const Structure& s,
                                                double cutoff);

/// Mean number of neighbors per atom (quality metric: too-small cutoffs
/// under-connect the graph).
double MeanDegree(const std::vector<Neighbor>& edges, size_t num_atoms);

}  // namespace drai::graph
