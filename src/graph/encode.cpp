#include "graph/encode.hpp"

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace drai::graph {

namespace {

// Coarse periodic-table coordinates for feature purposes. Period/group from
// Z by noble-gas boundaries; electronegativity proxy rises across a period.
void PeriodGroup(int z, int& period, int& group) {
  static const int kNoble[] = {0, 2, 10, 18, 36, 54, 86, 118};
  period = 1;
  for (int p = 1; p <= 7; ++p) {
    if (z > kNoble[p - 1] && z <= kNoble[p]) {
      period = p;
      break;
    }
  }
  group = z - kNoble[period - 1];
}

}  // namespace

Result<GraphSample> EncodeGraph(const Structure& s,
                                const GraphEncodeOptions& options) {
  DRAI_ASSIGN_OR_RETURN(std::vector<Neighbor> edges,
                        BuildNeighborList(s, options.cutoff));
  GraphSample g;
  g.id = s.id;
  g.label = s.energy_per_atom;
  g.class_label = s.space_group_class;

  const size_t n = s.NumAtoms();
  const size_t nf = options.include_period_group ? 4 : 1;
  g.node_features = NDArray::Zeros({n, nf}, DType::kF32);
  float* node = g.node_features.data<float>();
  for (size_t i = 0; i < n; ++i) {
    const int z = s.atomic_numbers[i];
    node[i * nf + 0] = static_cast<float>(z) / 118.0f;
    if (options.include_period_group) {
      int period = 0, group = 0;
      PeriodGroup(z, period, group);
      node[i * nf + 1] = static_cast<float>(group) / 32.0f;  // EN proxy
      node[i * nf + 2] = static_cast<float>(period) / 7.0f;
      node[i * nf + 3] = static_cast<float>(group) / 32.0f;
    }
  }

  const size_t e = edges.size();
  const size_t fe = options.include_inverse_distance ? 2 : 1;
  g.edge_index = NDArray::Zeros({2, e}, DType::kI64);
  g.edge_features = NDArray::Zeros({e, fe}, DType::kF32);
  int64_t* idx = g.edge_index.data<int64_t>();
  float* ef = g.edge_features.data<float>();
  for (size_t k = 0; k < e; ++k) {
    idx[k] = edges[k].src;
    idx[e + k] = edges[k].dst;
    ef[k * fe + 0] = static_cast<float>(edges[k].distance);
    if (options.include_inverse_distance) {
      ef[k * fe + 1] = static_cast<float>(1.0 / std::max(edges[k].distance, 1e-6));
    }
  }
  return g;
}

shard::Example ToExample(const GraphSample& g) {
  shard::Example ex;
  ex.key = g.id;
  ex.features["nodes"] = g.node_features;
  ex.features["edge_index"] = g.edge_index;
  ex.features["edges"] = g.edge_features;
  ex.features["energy"] = NDArray::FromVector<double>({1}, {g.label});
  ex.SetLabel(g.class_label);
  return ex;
}

Result<GraphSample> FromExample(const shard::Example& ex) {
  GraphSample g;
  g.id = ex.key;
  const NDArray* nodes = ex.Find("nodes");
  const NDArray* edge_index = ex.Find("edge_index");
  const NDArray* edges = ex.Find("edges");
  const NDArray* energy = ex.Find("energy");
  if (!nodes || !edge_index || !edges || !energy) {
    return DataLoss("graph example missing features");
  }
  g.node_features = *nodes;
  g.edge_index = *edge_index;
  g.edge_features = *edges;
  g.label = energy->GetAsDouble(0);
  DRAI_ASSIGN_OR_RETURN(int64_t cls, ex.Label());
  g.class_label = static_cast<int>(cls);
  return g;
}

std::vector<size_t> RebalanceIndices(std::span<const int> class_labels,
                                     RebalanceStrategy strategy,
                                     uint64_t seed) {
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < class_labels.size(); ++i) {
    by_class[class_labels[i]].push_back(i);
  }
  if (by_class.empty()) return {};
  size_t mn = SIZE_MAX, mx = 0;
  for (const auto& [_, v] : by_class) {
    mn = std::min(mn, v.size());
    mx = std::max(mx, v.size());
  }
  Rng rng(seed);
  std::vector<size_t> out;
  for (auto& [cls, members] : by_class) {
    (void)cls;
    if (strategy == RebalanceStrategy::kOversample) {
      // All originals plus random repeats up to the majority count.
      out.insert(out.end(), members.begin(), members.end());
      for (size_t i = members.size(); i < mx; ++i) {
        out.push_back(members[rng.UniformU64(members.size())]);
      }
    } else {
      rng.Shuffle(members);
      out.insert(out.end(), members.begin(),
                 members.begin() + static_cast<ptrdiff_t>(mn));
    }
  }
  rng.Shuffle(out);
  return out;
}

}  // namespace drai::graph
