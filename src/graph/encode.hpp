// drai/graph/encode.hpp
//
// Graph encoding for GNN training: a Structure plus its neighbor list
// becomes a GraphSample — node features, COO edge index, edge features —
// which converts directly to a shard::Example. This is the `encode` step
// of the materials pipeline (parse -> normalize -> encode -> shard).
#pragma once

#include "graph/structure.hpp"
#include "ndarray/ndarray.hpp"
#include "shard/example.hpp"

namespace drai::graph {

struct GraphEncodeOptions {
  double cutoff = 5.0;
  /// Node features: [Z/Zmax, electroneg-proxy, period, group] per atom.
  bool include_period_group = true;
  /// Edge features: [distance, 1/distance].
  bool include_inverse_distance = true;
};

/// Encoded graph, ready for batching.
struct GraphSample {
  std::string id;
  NDArray node_features;  ///< [N, F] f32
  NDArray edge_index;     ///< [2, E] i64 (src row 0, dst row 1)
  NDArray edge_features;  ///< [E, Fe] f32
  double label = 0;       ///< energy per atom
  int class_label = 0;

  [[nodiscard]] size_t NumNodes() const { return node_features.shape()[0]; }
  [[nodiscard]] size_t NumEdges() const { return edge_index.shape()[1]; }
};

/// Encode one structure.
Result<GraphSample> EncodeGraph(const Structure& s,
                                const GraphEncodeOptions& options = {});

/// Lower to a shard::Example (features: "nodes", "edge_index", "edges",
/// "energy", "label").
shard::Example ToExample(const GraphSample& g);

/// Reconstruct from an Example (inverse of ToExample).
Result<GraphSample> FromExample(const shard::Example& ex);

/// Class-rebalancing plans for imbalanced structure datasets.
enum class RebalanceStrategy {
  kOversample,  ///< replicate minority-class indices up to the majority count
  kUndersample, ///< subsample majority classes down to the minority count
};

/// Returns sample indices implementing the strategy. Deterministic given
/// the seed; preserves at least one instance of every class.
std::vector<size_t> RebalanceIndices(std::span<const int> class_labels,
                                     RebalanceStrategy strategy, uint64_t seed);

}  // namespace drai::graph
