#include "graph/structure.hpp"

#include <algorithm>
#include <cmath>

namespace drai::graph {

namespace {
Vec3 Cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}
double Dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}
double Norm(const Vec3& a) { return std::sqrt(Dot(a, a)); }
}  // namespace

Status Structure::Validate() const {
  if (frac_coords.size() != atomic_numbers.size()) {
    return InvalidArgument("structure '" + id +
                           "': coords/atomic_numbers length mismatch");
  }
  if (frac_coords.empty()) {
    return InvalidArgument("structure '" + id + "': no atoms");
  }
  if (Volume() <= 1e-9) {
    return InvalidArgument("structure '" + id + "': degenerate lattice");
  }
  for (int z : atomic_numbers) {
    if (z < 1 || z > 118) {
      return InvalidArgument("structure '" + id + "': bad atomic number");
    }
  }
  return Status::Ok();
}

Vec3 Structure::Cartesian(size_t i) const {
  const Vec3& f = frac_coords[i];
  Vec3 out{};
  for (int d = 0; d < 3; ++d) {
    out[static_cast<size_t>(d)] = f[0] * lattice[0][static_cast<size_t>(d)] +
                                  f[1] * lattice[1][static_cast<size_t>(d)] +
                                  f[2] * lattice[2][static_cast<size_t>(d)];
  }
  return out;
}

double Structure::Volume() const {
  return std::fabs(Dot(lattice[0], Cross(lattice[1], lattice[2])));
}

Result<std::vector<Neighbor>> BuildNeighborList(const Structure& s,
                                                double cutoff) {
  DRAI_RETURN_IF_ERROR(s.Validate());
  if (cutoff <= 0) return InvalidArgument("cutoff must be > 0");

  // How many images along each lattice direction can contain a neighbor:
  // distance between parallel cell faces is V / |cross of the other two|.
  const double volume = s.Volume();
  std::array<int, 3> reach{};
  for (int d = 0; d < 3; ++d) {
    const Vec3& u = s.lattice[static_cast<size_t>((d + 1) % 3)];
    const Vec3& v = s.lattice[static_cast<size_t>((d + 2) % 3)];
    const double face = Norm(Cross(u, v));
    const double spacing = volume / face;
    reach[static_cast<size_t>(d)] =
        static_cast<int>(std::ceil(cutoff / spacing));
  }

  const size_t n = s.NumAtoms();
  std::vector<Vec3> cart(n);
  for (size_t i = 0; i < n; ++i) cart[i] = s.Cartesian(i);

  std::vector<Neighbor> edges;
  const double cutoff_sq = cutoff * cutoff;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      for (int ia = -reach[0]; ia <= reach[0]; ++ia) {
        for (int ib = -reach[1]; ib <= reach[1]; ++ib) {
          for (int ic = -reach[2]; ic <= reach[2]; ++ic) {
            if (i == j && ia == 0 && ib == 0 && ic == 0) continue;
            Vec3 shifted{};
            for (int d = 0; d < 3; ++d) {
              shifted[static_cast<size_t>(d)] =
                  cart[j][static_cast<size_t>(d)] +
                  ia * s.lattice[0][static_cast<size_t>(d)] +
                  ib * s.lattice[1][static_cast<size_t>(d)] +
                  ic * s.lattice[2][static_cast<size_t>(d)];
            }
            const double dx = shifted[0] - cart[i][0];
            const double dy = shifted[1] - cart[i][1];
            const double dz = shifted[2] - cart[i][2];
            const double d2 = dx * dx + dy * dy + dz * dz;
            if (d2 <= cutoff_sq) {
              edges.push_back({static_cast<uint32_t>(i),
                               static_cast<uint32_t>(j), std::sqrt(d2),
                               {static_cast<int8_t>(ia),
                                static_cast<int8_t>(ib),
                                static_cast<int8_t>(ic)}});
            }
          }
        }
      }
    }
  }
  return edges;
}

double MeanDegree(const std::vector<Neighbor>& edges, size_t num_atoms) {
  if (num_atoms == 0) return 0.0;
  return static_cast<double>(edges.size()) / static_cast<double>(num_atoms);
}

}  // namespace drai::graph
