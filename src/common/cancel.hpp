// drai/common/cancel.hpp
//
// Cooperative cancellation. A CancelToken is a cheap, copyable handle to a
// shared cancellation state; copies observe the same flag. Cancellation is
// cooperative: nothing is preempted — long-running code polls `Cancelled()`
// (stage bodies via `StageContext::Cancelled()`, injected hangs via
// `SleepUnlessCancelled`) and unwinds with kDeadlineExceeded. A token can
// also carry a Deadline, after which it reads as cancelled without anyone
// calling Cancel().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "common/timer.hpp"

namespace drai {

/// Shared cooperative cancellation flag with a reason and optional deadline.
/// Copying is cheap (shared_ptr); all copies see the same state. Thread-safe.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Trip the flag. The first caller's reason wins; later calls are no-ops.
  void Cancel(const std::string& reason) const {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->reason = reason;
    state_->cancelled.store(true, std::memory_order_release);
  }

  /// Arm (or replace) a deadline; the token reads as cancelled once it
  /// passes. Stored as steady-clock nanos so polling stays lock-free.
  void SetDeadline(const Deadline& deadline) const {
    state_->deadline_ns.store(
        deadline.infinite() ? kNoDeadline
                            : deadline.when().time_since_epoch().count(),
        std::memory_order_release);
  }

  /// True once Cancel() was called or the armed deadline passed. Lock-free;
  /// safe to poll at record granularity inside stage bodies.
  [[nodiscard]] bool Cancelled() const {
    if (state_->cancelled.load(std::memory_order_acquire)) return true;
    int64_t ns = state_->deadline_ns.load(std::memory_order_acquire);
    return ns != kNoDeadline &&
           Deadline::Clock::now().time_since_epoch().count() >= ns;
  }

  /// The reason passed to Cancel(), or "" when only a deadline expired.
  [[nodiscard]] std::string reason() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->reason;
  }

  /// kDeadlineExceeded carrying the cancellation reason — what a polling
  /// stage body should return after observing Cancelled().
  [[nodiscard]] Status AsStatus() const {
    std::string why = reason();
    return DeadlineExceeded(why.empty() ? "deadline exceeded" : why);
  }

  /// Tokens sharing state compare equal — used to tell "same attempt".
  friend bool operator==(const CancelToken& a, const CancelToken& b) {
    return a.state_ == b.state_;
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MIN;
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int64_t> deadline_ns{kNoDeadline};
    std::mutex mu;      // guards reason
    std::string reason;
  };
  std::shared_ptr<State> state_;
};

/// Sleep for ~`ms`, waking early if `token` trips. Returns false when the
/// sleep was cut short by cancellation. Used by fault injection to model a
/// hang that a watchdog can still cancel.
bool SleepUnlessCancelled(double ms, const CancelToken& token);

}  // namespace drai
