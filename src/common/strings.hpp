// drai/common/strings.hpp
//
// Small string utilities shared across modules (CSV-ish parsing in ingest,
// report formatting in benches, path handling in containers).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace drai {

/// Split on a single-character delimiter. Empty fields are preserved:
/// Split("a,,b", ',') == {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Join pieces with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// "1.50 GiB", "312.0 KiB", "87 B" — benches report volumes in these units.
std::string HumanBytes(uint64_t bytes);

/// "1.23 s", "45.6 ms", "789 us".
std::string HumanDuration(double seconds);

/// printf-style double with fixed precision, without iostream state leaks.
std::string FormatDouble(double v, int precision = 3);

/// Strict parse helpers; return false on malformed input (no partial reads).
bool ParseInt64(std::string_view s, int64_t& out);
bool ParseDouble(std::string_view s, double& out);

/// Normalize a `/`-separated container path: collapses duplicate slashes,
/// removes trailing slash, ensures a single leading slash. "" -> "/".
std::string NormalizePath(std::string_view path);

/// Split a normalized container path into components ("/a/b" -> {"a","b"}).
std::vector<std::string> PathComponents(std::string_view path);

}  // namespace drai
