#include "common/status.hpp"

namespace drai {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::OrDie() const {
  if (!ok()) throw std::runtime_error(ToString());
}

Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

}  // namespace drai
