#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace drai {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[drai %s] %s\n", LevelTag(level), msg.c_str());
}

}  // namespace drai
