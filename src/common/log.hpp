// drai/common/log.hpp
//
// Minimal leveled logger. Pipelines log stage transitions at kInfo; the
// privacy audit trail uses its own structured log (privacy/audit.hpp), not
// this one. Thread-safe via a single mutex — logging is not on hot paths.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace drai {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Default kWarn so
/// tests and benches stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit a single message (adds level tag and newline).
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

/// Stream-style collector: destructor emits. Used by the DRAI_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DRAI_LOG(level) ::drai::internal::LogLine(::drai::LogLevel::level)

}  // namespace drai
