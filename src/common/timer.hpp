// drai/common/timer.hpp
//
// Wall-clock timing for pipeline stage metrics and benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace drai {

/// Steady-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Elapsed seconds since construction or last Reset.
  [[nodiscard]] double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point on the steady clock by which an operation must finish. Monotonic,
/// so wall-clock adjustments cannot fire or defer it. Default-constructed
/// deadlines are infinite (never expire), which lets "no deadline" flow
/// through wait paths without a separate sentinel.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Non-positive budgets mean infinite
  /// (callers pass 0 for "unbounded").
  static Deadline AfterMs(double ms) {
    Deadline d;
    if (ms > 0) {
      d.infinite_ = false;
      d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(ms));
    }
    return d;
  }

  static Deadline After(double seconds) { return AfterMs(seconds * 1e3); }

  [[nodiscard]] bool infinite() const { return infinite_; }
  [[nodiscard]] bool expired() const {
    return !infinite_ && Clock::now() >= when_;
  }

  /// Seconds left before expiry; +inf when infinite, clamped at 0 once past.
  [[nodiscard]] double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    double left = std::chrono::duration<double>(when_ - Clock::now()).count();
    return left > 0 ? left : 0;
  }

  /// The expiry instant. Only meaningful when !infinite().
  [[nodiscard]] Clock::time_point when() const { return when_; }

 private:
  bool infinite_ = true;
  Clock::time_point when_{};
};

/// Accumulates named timing buckets — the Figure-1 bench uses this to report
/// the per-stage "where does curation time go" breakdown.
class StageClock {
 public:
  /// Add `seconds` to bucket `name`.
  void Add(const std::string& name, double seconds) {
    buckets_[name] += seconds;
  }
  [[nodiscard]] double Total() const {
    double t = 0;
    for (const auto& [_, v] : buckets_) t += v;
    return t;
  }
  [[nodiscard]] const std::map<std::string, double>& buckets() const {
    return buckets_;
  }

 private:
  std::map<std::string, double> buckets_;
};

}  // namespace drai
