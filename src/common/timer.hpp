// drai/common/timer.hpp
//
// Wall-clock timing for pipeline stage metrics and benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace drai {

/// Steady-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Elapsed seconds since construction or last Reset.
  [[nodiscard]] double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named timing buckets — the Figure-1 bench uses this to report
/// the per-stage "where does curation time go" breakdown.
class StageClock {
 public:
  /// Add `seconds` to bucket `name`.
  void Add(const std::string& name, double seconds) {
    buckets_[name] += seconds;
  }
  [[nodiscard]] double Total() const {
    double t = 0;
    for (const auto& [_, v] : buckets_) t += v;
    return t;
  }
  [[nodiscard]] const std::map<std::string, double>& buckets() const {
    return buckets_;
  }

 private:
  std::map<std::string, double> buckets_;
};

}  // namespace drai
