#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace drai {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  if (n == 0) throw std::invalid_argument("UniformU64: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("UniformInt: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("Exponential: rate must be > 0");
  double u;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

uint64_t Rng::Poisson(double lambda) {
  if (lambda < 0) throw std::invalid_argument("Poisson: lambda must be >= 0");
  if (lambda == 0) return 0;
  if (lambda > 64) {
    // Normal approximation with continuity correction; adequate for workload
    // generation where lambda is a sample count.
    const double v = Normal(lambda, std::sqrt(lambda));
    return v <= 0 ? 0 : static_cast<uint64_t>(v + 0.5);
  }
  const double l = std::exp(-lambda);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= UniformDouble();
  } while (p > l);
  return k - 1;
}

size_t Rng::Categorical(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("Categorical: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("Categorical: all-zero weights");
  double x = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge
}

Rng Rng::Split() { return Rng(NextU64()); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) throw std::invalid_argument("sample k > n");
  // Partial Fisher–Yates over an index vector; O(n) memory, fine for the
  // dataset sizes drai handles in-memory.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + UniformU64(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace drai
