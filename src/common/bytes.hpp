// drai/common/bytes.hpp
//
// Little-endian byte serialization used by every drai on-disk format.
// ByteWriter appends primitives to a growable buffer; ByteReader consumes a
// span of untrusted bytes and reports truncation via Status rather than UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace drai {

using Bytes = std::vector<std::byte>;

/// Appends little-endian primitives, varints and length-prefixed blobs to an
/// internal buffer. All drai containers serialize through this class so the
/// wire format is uniform and host-endianness independent.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI8(int8_t v) { PutU8(static_cast<uint8_t>(v)); }
  void PutI16(int16_t v) { PutLE(static_cast<uint16_t>(v)); }
  void PutI32(int32_t v) { PutLE(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }

  void PutF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }

  /// Unsigned LEB128.
  void PutVarU64(uint64_t v);
  /// Zigzag-encoded signed LEB128.
  void PutVarI64(int64_t v);

  /// Raw bytes, no length prefix.
  void PutRaw(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Varint length prefix followed by the string bytes.
  void PutString(std::string_view s) {
    PutVarU64(s.size());
    PutRaw(s.data(), s.size());
  }
  /// Varint length prefix followed by the blob bytes.
  void PutBlob(std::span<const std::byte> data) {
    PutVarU64(data.size());
    PutRaw(data);
  }

  [[nodiscard]] size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> bytes() const { return buf_; }

  /// Overwrite 4 bytes at `offset` (used for patching placeholder lengths
  /// and CRCs after a section is complete).
  void PatchU32(size_t offset, uint32_t v);
  void PatchU64(size_t offset, uint64_t v);

  /// Moves the buffer out; the writer is empty afterwards.
  Bytes Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }
  Bytes buf_;
};

/// Consumes a non-owning span of bytes. Every getter checks remaining size
/// and returns kDataLoss on truncation — decoders never read past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size(); }

  Status GetU8(uint8_t& out);
  Status GetU16(uint16_t& out) { return GetLE(out); }
  Status GetU32(uint32_t& out) { return GetLE(out); }
  Status GetU64(uint64_t& out) { return GetLE(out); }
  Status GetI8(int8_t& out);
  Status GetI16(int16_t& out);
  Status GetI32(int32_t& out);
  Status GetI64(int64_t& out);
  Status GetF32(float& out);
  Status GetF64(double& out);
  Status GetVarU64(uint64_t& out);
  Status GetVarI64(int64_t& out);

  /// Reads exactly n bytes into out.
  Status GetRaw(void* out, size_t n);
  /// Returns a subspan view of n bytes (no copy) and advances.
  Status GetSpan(size_t n, std::span<const std::byte>& out);
  /// Varint-prefixed string.
  Status GetString(std::string& out);
  /// Varint-prefixed blob (copied).
  Status GetBlob(Bytes& out);

  /// Skip n bytes.
  Status Skip(size_t n);
  /// Absolute seek.
  Status Seek(size_t pos);

 private:
  template <typename T>
  Status GetLE(T& out) {
    if (remaining() < sizeof(T)) {
      return DataLoss("byte stream truncated");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    out = v;
    pos_ += sizeof(T);
    return Status::Ok();
  }
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

/// Convenience conversions between string-ish data and Bytes.
Bytes ToBytes(std::string_view s);
std::string BytesToString(std::span<const std::byte> b);

}  // namespace drai
