// drai/common/status.hpp
//
// Error model for the drai library.
//
// Construction errors (programmer misuse: bad shapes, invalid arguments to
// in-memory transforms) throw std::invalid_argument / std::out_of_range.
// Fallible runtime paths (file I/O, decoding untrusted bytes, resource
// limits) return Status or Result<T> so callers can recover, following the
// Core Guidelines split between preconditions and runtime failures.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace drai {

/// Coarse error category. Mirrors the classic absl/grpc canonical codes but
/// restricted to what a data pipeline actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something structurally wrong
  kNotFound,          ///< file / key / dataset missing
  kAlreadyExists,     ///< create-exclusive target already present
  kOutOfRange,        ///< index / offset beyond bounds
  kDataLoss,          ///< corrupt bytes: bad magic, CRC mismatch, truncation
  kFailedPrecondition,///< object not in the right state for the call
  kUnimplemented,     ///< feature intentionally not supported
  kInternal,          ///< invariant violation inside drai itself
  kResourceExhausted, ///< quota/limit hit (e.g. simulated storage full)
  kPermissionDenied,  ///< governance/privacy policy refused the operation
  kUnavailable,       ///< transient fault (I/O timeout, node loss) — retry may succeed
  kDeadlineExceeded,  ///< deadline passed or attempt cancelled — retry may beat it
};

/// Human-readable name of a status code ("OK", "DATA_LOSS", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic status: a code plus a message. OK statuses are cheap.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Transient-failure classification: true for codes where re-running the
  /// same operation can plausibly succeed (kUnavailable: I/O timeouts and
  /// node faults; kResourceExhausted: quota pressure that may clear;
  /// kDeadlineExceeded: the attempt was slow or stuck, a fresh attempt may
  /// finish in time). Deterministic-input failures (kDataLoss,
  /// kInvalidArgument, kInternal, ...) are permanent: a retry would fail
  /// identically.
  [[nodiscard]] bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "DATA_LOSS: shard 3 crc mismatch".
  [[nodiscard]] std::string ToString() const;

  /// Throws std::runtime_error if not ok. For callers (tests, examples)
  /// that have no recovery strategy.
  void OrDie() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Shorthand constructors, e.g. `return InvalidArgument("bad shape");`.
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status OutOfRange(std::string msg);
Status DataLoss(std::string msg);
Status FailedPrecondition(std::string msg);
Status Unimplemented(std::string msg);
Status Internal(std::string msg);
Status ResourceExhausted(std::string msg);
Status PermissionDenied(std::string msg);
Status Unavailable(std::string msg);
Status DeadlineExceeded(std::string msg);

/// Result<T>: either a value or a non-OK Status. A minimal StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value — enables `return value;` in functions returning
  /// Result<T>.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      throw std::invalid_argument("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

  /// Access the value. Throws std::runtime_error when holding an error.
  T& value() & {
    EnsureOk();
    return std::get<T>(data_);
  }
  const T& value() const& {
    EnsureOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(data_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

  /// Value or a fallback when holding an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      throw std::runtime_error("Result error: " +
                               std::get<Status>(data_).ToString());
    }
  }
  std::variant<T, Status> data_;
};

/// Propagate a non-OK Status from an expression producing Status.
#define DRAI_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::drai::Status drai_status_ = (expr);     \
    if (!drai_status_.ok()) return drai_status_; \
  } while (false)

/// Assign from a Result<T>, propagating the error status on failure.
/// Usage: DRAI_ASSIGN_OR_RETURN(auto v, MakeThing());
#define DRAI_ASSIGN_OR_RETURN(decl, expr)                    \
  auto DRAI_CONCAT_(drai_result_, __LINE__) = (expr);        \
  if (!DRAI_CONCAT_(drai_result_, __LINE__).ok())            \
    return DRAI_CONCAT_(drai_result_, __LINE__).status();    \
  decl = std::move(DRAI_CONCAT_(drai_result_, __LINE__)).value()

#define DRAI_CONCAT_INNER_(a, b) a##b
#define DRAI_CONCAT_(a, b) DRAI_CONCAT_INNER_(a, b)

}  // namespace drai
