// drai/common/hash.hpp
//
// Hashing used across drai:
//  * FNV-1a 64   — fast non-cryptographic hashing (split assignment, maps)
//  * CRC-32      — on-disk integrity for every container format
//  * SHA-256     — provenance content hashes (from-scratch implementation)
//  * HMAC-SHA256 — keyed pseudonymization of PHI/PII identifiers
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace drai {

/// FNV-1a 64-bit over arbitrary bytes. Deterministic across platforms;
/// used for hash-based train/val/test splitting so splits are reproducible.
uint64_t Fnv1a64(std::span<const std::byte> data, uint64_t seed = 0);
uint64_t Fnv1a64(std::string_view s, uint64_t seed = 0);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
uint32_t Crc32(std::span<const std::byte> data, uint32_t seed = 0);
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// 32-byte SHA-256 digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256. Provenance records hash multi-gigabyte artifacts in
/// streaming fashion, so the context is update-based.
class Sha256 {
 public:
  Sha256();
  /// Absorb more input.
  void Update(std::span<const std::byte> data);
  void Update(std::string_view s);
  /// Finalize and return the digest. The context must not be reused after.
  Sha256Digest Finish();

  /// One-shot helpers.
  static Sha256Digest Hash(std::span<const std::byte> data);
  static Sha256Digest Hash(std::string_view s);

 private:
  void ProcessBlock(const uint8_t* block);
  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  uint64_t total_bytes_ = 0;
  size_t buffered_ = 0;
  bool finished_ = false;
};

/// Lowercase hex encoding of a digest (64 chars).
std::string DigestToHex(const Sha256Digest& d);

/// HMAC-SHA256(key, message). Used by privacy::Pseudonymizer so the same
/// identifier maps to the same stable token under a given project key while
/// remaining infeasible to invert without the key.
Sha256Digest HmacSha256(std::string_view key, std::string_view message);

}  // namespace drai
