// drai/common/rng.hpp
//
// Deterministic, platform-independent random number generation.
//
// All synthetic workloads, splits and augmentations draw from Xoshiro256**
// seeded via SplitMix64, so every experiment in EXPERIMENTS.md reproduces
// bit-for-bit across machines (std::mt19937 distributions are not portable
// across standard libraries; these are).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace drai {

/// SplitMix64 — used to expand a single u64 seed into xoshiro state and to
/// derive independent child seeds (`Split`).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next();

 private:
  uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64 random bits.
  uint64_t NextU64();
  /// Uniform in [0, n). n must be > 0.
  uint64_t UniformU64(uint64_t n);
  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double UniformDouble();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Standard normal via Box–Muller (cached second deviate).
  double Normal();
  /// Normal with given mean and stddev.
  double Normal(double mean, double stddev);
  /// Bernoulli with probability p.
  bool Bernoulli(double p);
  /// Exponential with given rate (lambda).
  double Exponential(double rate);
  /// Poisson-distributed count (Knuth for small lambda, normal approx above 64).
  uint64_t Poisson(double lambda);
  /// Sample an index from unnormalized non-negative weights.
  size_t Categorical(std::span<const double> weights);

  /// Derive an independent child generator (stable given call order).
  Rng Split();

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = UniformU64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn from [0, n) (reservoir when k << n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0;
  bool has_cached_normal_ = false;
};

}  // namespace drai
