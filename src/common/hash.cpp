#include "common/hash.hpp"

#include <stdexcept>

#include <cstring>

namespace drai {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// CRC-32 table generated at first use.
const uint32_t* CrcTable() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr std::array<uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

uint64_t Fnv1a64(std::span<const std::byte> data, uint64_t seed) {
  uint64_t h = kFnvOffset ^ seed;
  for (std::byte b : data) {
    h ^= static_cast<uint64_t>(static_cast<uint8_t>(b));
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view s, uint64_t seed) {
  return Fnv1a64(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(s.data()),
                                 s.size()),
      seed);
}

uint32_t Crc32(std::span<const std::byte> data, uint32_t seed) {
  const uint32_t* t = CrcTable();
  uint32_t c = seed ^ 0xffffffffu;
  for (std::byte b : data) {
    c = t[(c ^ static_cast<uint8_t>(b)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  return Crc32(
      std::span<const std::byte>(static_cast<const std::byte*>(data), n),
      seed);
}

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::ProcessBlock(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d;
  state_[4] += e; state_[5] += f; state_[6] += g; state_[7] += h;
}

void Sha256::Update(std::span<const std::byte> data) {
  if (finished_) throw std::logic_error("Sha256 reused after Finish");
  total_bytes_ += data.size();
  size_t i = 0;
  // Fill a partially-buffered block first.
  if (buffered_ > 0) {
    while (buffered_ < 64 && i < data.size()) {
      buffer_[buffered_++] = static_cast<uint8_t>(data[i++]);
    }
    if (buffered_ == 64) {
      ProcessBlock(buffer_.data());
      buffered_ = 0;
    }
  }
  // Whole blocks straight from the input.
  while (data.size() - i >= 64) {
    ProcessBlock(reinterpret_cast<const uint8_t*>(data.data() + i));
    i += 64;
  }
  // Stash the tail.
  while (i < data.size()) {
    buffer_[buffered_++] = static_cast<uint8_t>(data[i++]);
  }
}

void Sha256::Update(std::string_view s) {
  Update(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size()));
}

Sha256Digest Sha256::Finish() {
  if (finished_) throw std::logic_error("Sha256 reused after Finish");
  finished_ = true;
  const uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80, zeros, 8-byte big-endian bit length.
  buffer_[buffered_++] = 0x80;
  if (buffered_ > 56) {
    while (buffered_ < 64) buffer_[buffered_++] = 0;
    ProcessBlock(buffer_.data());
    buffered_ = 0;
  }
  while (buffered_ < 56) buffer_[buffered_++] = 0;
  for (int i = 7; i >= 0; --i) {
    buffer_[buffered_++] = static_cast<uint8_t>((bit_len >> (8 * i)) & 0xff);
  }
  ProcessBlock(buffer_.data());

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha256Digest Sha256::Hash(std::span<const std::byte> data) {
  Sha256 ctx;
  ctx.Update(data);
  return ctx.Finish();
}

Sha256Digest Sha256::Hash(std::string_view s) {
  Sha256 ctx;
  ctx.Update(s);
  return ctx.Finish();
}

std::string DigestToHex(const Sha256Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

Sha256Digest HmacSha256(std::string_view key, std::string_view message) {
  std::array<uint8_t, 64> k{};
  if (key.size() > 64) {
    const Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(ipad.data()), ipad.size()));
  inner.Update(message);
  const Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(opad.data()), opad.size()));
  outer.Update(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(inner_digest.data()),
      inner_digest.size()));
  return outer.Finish();
}

}  // namespace drai
