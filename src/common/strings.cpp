#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace drai {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  if (bytes < 1024) return std::to_string(bytes) + " B";
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string HumanDuration(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

bool ParseInt64(std::string_view s, int64_t& out) {
  s = Trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double& out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 11+; use it directly.
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string NormalizePath(std::string_view path) {
  std::string out = "/";
  for (const auto& comp : Split(path, '/')) {
    if (comp.empty()) continue;
    if (out.back() != '/') out += '/';
    out += comp;
  }
  return out;
}

std::vector<std::string> PathComponents(std::string_view path) {
  std::vector<std::string> out;
  for (const auto& comp : Split(path, '/')) {
    if (!comp.empty()) out.push_back(comp);
  }
  return out;
}

}  // namespace drai
