#include "common/cancel.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace drai {

bool SleepUnlessCancelled(double ms, const CancelToken& token) {
  // Chunked sleep so a cancel lands within ~2ms regardless of total length.
  Deadline end = Deadline::AfterMs(ms);
  while (!end.expired()) {
    if (token.Cancelled()) return false;
    double left_ms = end.RemainingSeconds() * 1e3;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(left_ms, 2.0)));
  }
  return !token.Cancelled();
}

}  // namespace drai
