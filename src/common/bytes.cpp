#include "common/bytes.hpp"

namespace drai {

void ByteWriter::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutVarI64(int64_t v) {
  // Zigzag: maps small-magnitude signed values to small unsigned values.
  const uint64_t u = (static_cast<uint64_t>(v) << 1) ^
                     static_cast<uint64_t>(v >> 63);
  PutVarU64(u);
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  if (offset + 4 > buf_.size()) {
    throw std::out_of_range("ByteWriter::PatchU32 past end");
  }
  for (size_t i = 0; i < 4; ++i) {
    buf_[offset + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

void ByteWriter::PatchU64(size_t offset, uint64_t v) {
  if (offset + 8 > buf_.size()) {
    throw std::out_of_range("ByteWriter::PatchU64 past end");
  }
  for (size_t i = 0; i < 8; ++i) {
    buf_[offset + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

Status ByteReader::GetU8(uint8_t& out) {
  if (remaining() < 1) return DataLoss("byte stream truncated");
  out = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status ByteReader::GetI8(int8_t& out) {
  uint8_t u = 0;
  DRAI_RETURN_IF_ERROR(GetU8(u));
  out = static_cast<int8_t>(u);
  return Status::Ok();
}

Status ByteReader::GetI16(int16_t& out) {
  uint16_t u = 0;
  DRAI_RETURN_IF_ERROR(GetU16(u));
  out = static_cast<int16_t>(u);
  return Status::Ok();
}

Status ByteReader::GetI32(int32_t& out) {
  uint32_t u = 0;
  DRAI_RETURN_IF_ERROR(GetU32(u));
  out = static_cast<int32_t>(u);
  return Status::Ok();
}

Status ByteReader::GetI64(int64_t& out) {
  uint64_t u = 0;
  DRAI_RETURN_IF_ERROR(GetU64(u));
  out = static_cast<int64_t>(u);
  return Status::Ok();
}

Status ByteReader::GetF32(float& out) {
  uint32_t bits = 0;
  DRAI_RETURN_IF_ERROR(GetU32(bits));
  std::memcpy(&out, &bits, sizeof(out));
  return Status::Ok();
}

Status ByteReader::GetF64(double& out) {
  uint64_t bits = 0;
  DRAI_RETURN_IF_ERROR(GetU64(bits));
  std::memcpy(&out, &bits, sizeof(out));
  return Status::Ok();
}

Status ByteReader::GetVarU64(uint64_t& out) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) return DataLoss("varint overflows 64 bits");
    uint8_t b = 0;
    DRAI_RETURN_IF_ERROR(GetU8(b));
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  out = v;
  return Status::Ok();
}

Status ByteReader::GetVarI64(int64_t& out) {
  uint64_t u = 0;
  DRAI_RETURN_IF_ERROR(GetVarU64(u));
  out = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  return Status::Ok();
}

Status ByteReader::GetRaw(void* out, size_t n) {
  if (remaining() < n) return DataLoss("byte stream truncated");
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::GetSpan(size_t n, std::span<const std::byte>& out) {
  if (remaining() < n) return DataLoss("byte stream truncated");
  out = data_.subspan(pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::GetString(std::string& out) {
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(GetVarU64(n));
  if (remaining() < n) return DataLoss("string truncated");
  out.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::GetBlob(Bytes& out) {
  uint64_t n = 0;
  DRAI_RETURN_IF_ERROR(GetVarU64(n));
  if (remaining() < n) return DataLoss("blob truncated");
  out.assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
             data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return DataLoss("skip past end of stream");
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::Seek(size_t pos) {
  if (pos > data_.size()) return OutOfRange("seek past end of stream");
  pos_ = pos;
  return Status::Ok();
}

Bytes ToBytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Bytes(p, p + s.size());
}

std::string BytesToString(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace drai
