// Tests for the SDF hierarchical container: groups, attributes, chunked
// datasets, partial reads, corruption detection.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "container/sdf.hpp"

namespace drai::container {
namespace {

NDArray MakeRamp(Shape shape, DType dtype = DType::kF32) {
  NDArray a = NDArray::Zeros(shape, dtype);
  for (size_t i = 0; i < a.numel(); ++i) {
    a.SetFromDouble(i, static_cast<double>(i) * 0.25);
  }
  return a;
}

TEST(Sdf, GroupTreeAndAttrs) {
  SdfFile f;
  f.root().SetAttr("title", AttrValue::String("cmip6 subset"));
  SdfGroup& vars = f.ResolveOrCreate("/vars/t2m");
  vars.SetAttr("units", AttrValue::String("K"));
  vars.SetAttr("level", AttrValue::Int(2));
  vars.SetAttr("scale", AttrValue::Double(0.5));
  vars.SetAttr("bounds", AttrValue::DoubleVec({-90, 90}));

  ASSERT_NE(f.Resolve("/vars"), nullptr);
  ASSERT_NE(f.Resolve("/vars/t2m"), nullptr);
  EXPECT_EQ(f.Resolve("/vars/zzz"), nullptr);
  EXPECT_EQ(f.Resolve("/vars/t2m")->GetAttr("units")->s, "K");
  EXPECT_EQ(f.Resolve("/vars/t2m")->GetAttr("level")->i, 2);
  EXPECT_EQ(f.Resolve("/vars/t2m")->GetAttr("bounds")->vec.size(), 2u);
}

TEST(Sdf, DatasetRoundTripAllDtypes) {
  for (const DType dtype : {DType::kF16, DType::kF32, DType::kF64, DType::kI8,
                            DType::kI16, DType::kI32, DType::kI64, DType::kU8}) {
    SdfFile f;
    f.root().PutDataset("d", MakeRamp({4, 5}, dtype));
    const Bytes bytes = f.Serialize();
    const auto back = SdfFile::Parse(bytes);
    ASSERT_TRUE(back.ok()) << DTypeName(dtype);
    const auto data = back->root().ReadDataset("d");
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->dtype(), dtype);
    EXPECT_EQ(data->shape(), (Shape{4, 5}));
    for (size_t i = 0; i < data->numel(); ++i) {
      // f16/i8/u8 quantize the ramp; compare via the same cast.
      NDArray expect = MakeRamp({4, 5}, dtype);
      EXPECT_EQ(data->GetAsDouble(i), expect.GetAsDouble(i));
    }
  }
}

class SdfChunking : public ::testing::TestWithParam<size_t> {};

TEST_P(SdfChunking, ChunkedRoundTripAndPartialReads) {
  const size_t chunk_rows = GetParam();
  const NDArray data = MakeRamp({23, 7}, DType::kF64);
  SdfDatasetOptions options;
  options.chunk_rows = chunk_rows;
  options.codec = codec::Codec::kXorF64;
  SdfFile f;
  f.root().PutDataset("d", data, options);

  const Bytes bytes = f.Serialize();
  const auto back = SdfFile::Parse(bytes);
  ASSERT_TRUE(back.ok());
  const SdfDataset* ds = back->root().FindDataset("d");
  ASSERT_NE(ds, nullptr);
  const size_t expected_chunks =
      chunk_rows == 0 ? 1 : (23 + chunk_rows - 1) / chunk_rows;
  EXPECT_EQ(ds->num_chunks(), expected_chunks);

  // Full read.
  const auto full = ds->Read();
  ASSERT_TRUE(full.ok());
  for (size_t i = 0; i < data.numel(); ++i) {
    EXPECT_EQ(full->GetAsDouble(i), data.GetAsDouble(i));
  }
  // Partial reads at awkward boundaries.
  for (const auto& [lo, hi] : std::vector<std::pair<size_t, size_t>>{
           {0, 1}, {5, 9}, {22, 23}, {0, 23}, {7, 7}}) {
    const auto rows = ds->ReadRows(lo, hi);
    ASSERT_TRUE(rows.ok()) << lo << ":" << hi;
    EXPECT_EQ(rows->shape()[0], hi - lo);
    for (size_t r = lo; r < hi; ++r) {
      for (size_t c = 0; c < 7; ++c) {
        EXPECT_EQ(rows->GetAsDouble((r - lo) * 7 + c),
                  data.GetAsDouble(r * 7 + c));
      }
    }
  }
  EXPECT_FALSE(ds->ReadRows(5, 30).ok());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, SdfChunking,
                         ::testing::Values(0, 1, 4, 8, 23, 100));

TEST(Sdf, CompressionReducesStoredBytes) {
  // Smooth data + XOR codec: stored < raw.
  NDArray smooth = NDArray::Zeros({256, 64}, DType::kF64);
  for (size_t i = 0; i < smooth.numel(); ++i) {
    smooth.SetFromDouble(i, 1000.0 + 0.001 * static_cast<double>(i));
  }
  SdfDatasetOptions with_codec;
  with_codec.codec = codec::Codec::kXorF64;
  SdfFile f;
  f.root().PutDataset("raw", smooth);
  f.root().PutDataset("packed", smooth, with_codec);
  EXPECT_LT(f.root().FindDataset("packed")->stored_bytes(),
            f.root().FindDataset("raw")->stored_bytes());
}

TEST(Sdf, NestedGroupsSurviveRoundTrip) {
  SdfFile f;
  f.ResolveOrCreate("/a/b/c").SetAttr("deep", AttrValue::Int(1));
  f.ResolveOrCreate("/a/d").PutDataset("x", MakeRamp({3}));
  const auto back = SdfFile::Parse(f.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Resolve("/a/b/c")->GetAttr("deep")->i, 1);
  EXPECT_TRUE(back->Resolve("/a/d")->ReadDataset("x").ok());
}

TEST(Sdf, FileCrcDetectsCorruption) {
  SdfFile f;
  f.root().PutDataset("d", MakeRamp({16, 16}));
  Bytes bytes = f.Serialize();
  bytes[bytes.size() / 3] ^= std::byte{0x01};
  EXPECT_EQ(SdfFile::Parse(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(Sdf, BadMagicRejected) {
  Bytes junk = ToBytes("not an sdf file at all........");
  EXPECT_EQ(SdfFile::Parse(junk).status().code(), StatusCode::kDataLoss);
}

TEST(Sdf, TruncatedFileRejected) {
  SdfFile f;
  f.root().PutDataset("d", MakeRamp({8, 8}));
  Bytes bytes = f.Serialize();
  bytes.resize(bytes.size() - 10);
  EXPECT_FALSE(SdfFile::Parse(bytes).ok());
}

TEST(Sdf, EmptyFileRoundTrips) {
  SdfFile f;
  const auto back = SdfFile::Parse(f.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->root().datasets().empty());
  EXPECT_TRUE(back->root().children().empty());
}

TEST(Sdf, ZeroRowDataset) {
  SdfFile f;
  f.root().PutDataset("empty", NDArray::Zeros({0, 4}, DType::kF32));
  const auto back = SdfFile::Parse(f.Serialize());
  ASSERT_TRUE(back.ok());
  const auto data = back->root().ReadDataset("empty");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->shape(), (Shape{0, 4}));
}

TEST(Sdf, MissingDatasetIsNotFound) {
  SdfFile f;
  EXPECT_EQ(f.root().ReadDataset("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(Sdf, DatasetStoredFromView) {
  // Non-contiguous views are materialized on write.
  NDArray base = MakeRamp({6, 4}, DType::kF64);
  SdfFile f;
  f.root().PutDataset("t", base.Transpose());
  const auto data = f.root().ReadDataset("t");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->shape(), (Shape{4, 6}));
  EXPECT_EQ(data->GetAsDouble(1), base.GetAsDouble(4));  // t[0,1] == base[1,0]
}

}  // namespace
}  // namespace drai::container
