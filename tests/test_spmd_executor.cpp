// Tests for the backend-agnostic executor: the SPMD backend must produce
// byte-identical pipelines to the thread backend at any world size, the
// partition scatter/gather transport must cover every partition exactly
// once, and the StageContext partial-reduction API must deliver partials
// to the AfterMerge hook in ascending partition order on either backend.
#include <gtest/gtest.h>

#include <memory>

#include "common/bytes.hpp"
#include "core/backend.hpp"
#include "core/pipeline.hpp"
#include "parallel/communicator.hpp"

namespace drai::core {
namespace {

// ---- scatter/gather transport ----------------------------------------------

TEST(ScatterAssignment, CoversEveryPartitionExactlyOnce) {
  for (int world : {1, 2, 3, 5, 8}) {
    std::vector<int> owner(11, -1);
    par::RunSpmd(world, [&](par::Communicator& comm) {
      const auto mine = par::ScatterAssignment(comm, 11, /*root=*/0);
      for (uint64_t p : mine) owner[p] = comm.rank();  // disjoint writes
    });
    for (size_t p = 0; p < owner.size(); ++p) {
      ASSERT_GE(owner[p], 0) << "partition " << p << " unassigned at world "
                             << world;
      EXPECT_EQ(owner[p], static_cast<int>(p % static_cast<size_t>(world)));
    }
  }
}

TEST(ScatterAssignment, MorRanksThanPartitionsLeavesTailIdle) {
  std::vector<size_t> counts(4, 0);
  par::RunSpmd(4, [&](par::Communicator& comm) {
    counts[comm.rank()] = par::ScatterAssignment(comm, 2, 0).size();
  });
  EXPECT_EQ(counts, (std::vector<size_t>{1, 1, 0, 0}));
}

TEST(GatherByIndex, RootSeesAscendingIndexOrder) {
  par::RunSpmd(3, [&](par::Communicator& comm) {
    // Each rank contributes its block-cyclic partitions out of order.
    std::vector<std::pair<uint64_t, Bytes>> local;
    for (uint64_t p = 7; p-- > 0;) {
      if (p % 3 == static_cast<uint64_t>(comm.rank())) {
        ByteWriter w;
        w.PutU64(p * 10);
        local.emplace_back(p, w.Take());
      }
    }
    const auto gathered = par::GatherByIndex(comm, local, /*root=*/0);
    if (comm.rank() != 0) {
      EXPECT_TRUE(gathered.empty());
      return;
    }
    ASSERT_EQ(gathered.size(), 7u);
    for (uint64_t p = 0; p < 7; ++p) {
      EXPECT_EQ(gathered[p].first, p);
      ByteReader r(gathered[p].second);
      uint64_t payload = 0;
      ASSERT_TRUE(r.GetU64(payload).ok());
      EXPECT_EQ(payload, p * 10);
    }
  });
}

TEST(GatherByIndex, DuplicateIndexThrows) {
  EXPECT_THROW(
      par::RunSpmd(2,
                   [&](par::Communicator& comm) {
                     // Both ranks claim partition 0.
                     std::vector<std::pair<uint64_t, Bytes>> local;
                     local.emplace_back(0, Bytes{});
                     par::GatherByIndex(comm, local, 0);
                   }),
      std::invalid_argument);
}

TEST(SpmdBackend, MapRunsEveryPartitionAndUnpacksOnRoot) {
  SpmdBackend backend(3);
  std::vector<int> ran(10, 0);
  std::vector<uint64_t> unpacked(10, 0);
  PartitionTask task;
  task.n_parts = 10;
  task.run = [&](size_t p) { ran[p] = 1; };  // disjoint writes
  task.pack = [&](size_t p) {
    ByteWriter w;
    w.PutU64(p + 1);
    return w.Take();
  };
  task.unpack = [&](size_t p, const Bytes& payload) {
    ByteReader r(payload);
    ASSERT_TRUE(r.GetU64(unpacked[p]).ok());
  };
  backend.Map(task);
  for (size_t p = 0; p < 10; ++p) {
    EXPECT_EQ(ran[p], 1) << p;
    EXPECT_EQ(unpacked[p], p + 1) << p;
  }
}

// ---- backend-identical pipelines --------------------------------------------

/// A partition-parallel pipeline whose output depends on stage RNG, params,
/// counts, and an emitted reduction partial — everything that must be
/// backend and worker-count independent.
struct RunArtifacts {
  std::string provenance_hash;
  std::vector<std::string> example_keys;
  std::vector<int64_t> example_labels;
  uint64_t reduced = 0;
  PipelineReport report;
};

RunArtifacts RunBackendPipeline(Backend backend, size_t workers) {
  PipelineOptions options;
  options.backend = backend;
  options.threads = workers;
  options.seed = 4321;
  Pipeline p("backend-determinism", options);

  p.Add("make", StageKind::kIngest,
        [](DataBundle& bundle, StageContext&) -> Status {
          for (size_t i = 0; i < 20; ++i) {
            shard::Example ex;
            ex.key = "e" + std::to_string(100 + i);
            ex.SetLabel(0);
            bundle.examples.push_back(std::move(ex));
          }
          return Status::Ok();
        });

  auto reduced = std::make_shared<uint64_t>(0);
  ParallelSpec spec;
  spec.axis = PartitionAxis::kExamples;
  spec.grain = 4;
  p.Add("jitter", StageKind::kTransform, ExecutionHint::kRecordParallel,
        /*before=*/nullptr,
        [](DataBundle& bundle, StageContext& ctx) -> Status {
          uint64_t sum = 0;
          for (auto& ex : bundle.examples) {
            ex.SetLabel(static_cast<int64_t>(ctx.rng().NextU64() % 97));
            sum += static_cast<uint64_t>(ex.Label().value());
          }
          ctx.NoteCount("touched", bundle.examples.size());
          ByteWriter w;
          w.PutU64(sum);
          ctx.EmitPartial("label-sum", w.Take());
          return Status::Ok();
        },
        /*after=*/
        [reduced](DataBundle&, StageContext& ctx) -> Status {
          for (const Bytes& blob : ctx.Partials("label-sum")) {
            ByteReader r(blob);
            uint64_t sum = 0;
            DRAI_RETURN_IF_ERROR(r.GetU64(sum));
            *reduced += sum;
          }
          return Status::Ok();
        },
        spec);

  RunArtifacts out;
  DataBundle bundle;
  out.report = p.Run(bundle);
  for (const auto& ex : bundle.examples) {
    out.example_keys.push_back(ex.key);
    out.example_labels.push_back(ex.Label().value());
  }
  out.reduced = *reduced;
  out.provenance_hash = p.provenance().RecordHash();
  return out;
}

TEST(SpmdExecutor, OutputIdenticalToThreadBackendAtEveryWorldSize) {
  const RunArtifacts baseline = RunBackendPipeline(Backend::kThread, 1);
  ASSERT_TRUE(baseline.report.ok);
  EXPECT_GT(baseline.reduced, 0u);
  for (size_t world : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const RunArtifacts spmd = RunBackendPipeline(Backend::kSpmd, world);
    ASSERT_TRUE(spmd.report.ok) << world;
    EXPECT_EQ(spmd.example_keys, baseline.example_keys) << world;
    EXPECT_EQ(spmd.example_labels, baseline.example_labels) << world;
    EXPECT_EQ(spmd.reduced, baseline.reduced) << world;
    EXPECT_EQ(spmd.provenance_hash, baseline.provenance_hash) << world;
  }
}

TEST(SpmdExecutor, ProvenanceParamsAreBackendInvariant) {
  // The backend is an execution detail, not data lineage: provenance must
  // not mention it, or thread and SPMD record hashes could never match.
  PipelineOptions options;
  options.backend = Backend::kSpmd;
  options.threads = 2;
  Pipeline p("prov-backend", options);
  p.Add("make", StageKind::kIngest,
        [](DataBundle& bundle, StageContext&) -> Status {
          bundle.examples.resize(6);
          return Status::Ok();
        });
  ParallelSpec spec;
  spec.axis = PartitionAxis::kExamples;
  spec.grain = 2;
  p.Add("touch", StageKind::kTransform, ExecutionHint::kPartitionParallel,
        [](DataBundle&, StageContext&) { return Status::Ok(); }, spec);
  DataBundle bundle;
  ASSERT_TRUE(p.Run(bundle).ok);
  const auto& activities = p.provenance().activities();
  ASSERT_EQ(activities.size(), 2u);
  EXPECT_EQ(activities[1].params.count("backend"), 0u);
  EXPECT_EQ(activities[1].params.at("hint"), "partition_parallel");
}

TEST(ExecutionBackend, FactoryAndNames) {
  EXPECT_EQ(BackendName(Backend::kThread), "thread");
  EXPECT_EQ(BackendName(Backend::kSpmd), "spmd");
  const auto thread = MakeBackend(Backend::kThread, 3);
  EXPECT_EQ(thread->name(), "thread");
  EXPECT_EQ(thread->concurrency(), 3u);
  const auto spmd = MakeBackend(Backend::kSpmd, 5);
  EXPECT_EQ(spmd->name(), "spmd");
  EXPECT_EQ(spmd->concurrency(), 5u);
}

// ---- partial-reduction API ---------------------------------------------------

TEST(SpmdExecutor, PartialsArriveInAscendingPartitionOrder) {
  for (Backend backend : {Backend::kThread, Backend::kSpmd}) {
    PipelineOptions options;
    options.backend = backend;
    options.threads = 3;
    Pipeline p("partial-order", options);
    p.Add("make", StageKind::kIngest,
          [](DataBundle& bundle, StageContext&) -> Status {
            bundle.examples.resize(14);
            return Status::Ok();
          });
    auto seen = std::make_shared<std::vector<uint64_t>>();
    ParallelSpec spec;
    spec.axis = PartitionAxis::kExamples;
    spec.grain = 2;  // 7 partitions
    p.Add("emit", StageKind::kTransform, ExecutionHint::kRecordParallel,
          /*before=*/nullptr,
          [](DataBundle&, StageContext& ctx) -> Status {
            ByteWriter w;
            w.PutU64(ctx.partition().index);
            ctx.EmitPartial("who", w.Take());
            ctx.NoteCount("parts", 1);
            return Status::Ok();
          },
          /*after=*/
          [seen](DataBundle&, StageContext& ctx) -> Status {
            for (const Bytes& blob : ctx.Partials("who")) {
              ByteReader r(blob);
              uint64_t index = 0;
              DRAI_RETURN_IF_ERROR(r.GetU64(index));
              seen->push_back(index);
            }
            EXPECT_EQ(ctx.MergedCount("parts"), 7u);
            EXPECT_EQ(ctx.MergedCount("absent"), 0u);
            return Status::Ok();
          },
          spec);
    DataBundle bundle;
    ASSERT_TRUE(p.Run(bundle).ok) << BackendName(backend);
    EXPECT_EQ(*seen, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 6}))
        << BackendName(backend);
  }
}

TEST(StageContext, PartialsEmptyOutsideAfterHook) {
  StageContext ctx(Rng(1), nullptr);
  EXPECT_TRUE(ctx.Partials("anything").empty());
  EXPECT_EQ(ctx.MergedCount("anything"), 0u);
  ctx.EmitPartial("k", Bytes{std::byte{1}});
  EXPECT_EQ(ctx.TakePartials().size(), 1u);
  EXPECT_TRUE(ctx.TakePartials().empty());  // moved out
}

// ---- SPMD error paths --------------------------------------------------------

TEST(SpmdExecutor, PartitionErrorSurfacesByLowestIndex) {
  PipelineOptions options;
  options.backend = Backend::kSpmd;
  options.threads = 4;
  options.fail_fast = false;
  Pipeline p("spmd-errors", options);
  p.Add("make", StageKind::kIngest,
        [](DataBundle& bundle, StageContext&) -> Status {
          bundle.examples.resize(8);
          return Status::Ok();
        });
  ParallelSpec spec;
  spec.axis = PartitionAxis::kExamples;
  spec.grain = 2;  // 4 partitions
  p.Add("fail-some", StageKind::kTransform, ExecutionHint::kPartitionParallel,
        [](DataBundle&, StageContext& ctx) -> Status {
          const size_t index = ctx.partition().index;
          if (index == 1) return DataLoss("partition 1");
          if (index == 3) return Internal("partition 3");
          return Status::Ok();
        },
        spec);
  DataBundle bundle;
  const PipelineReport report = p.Run(bundle);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.error.code(), StatusCode::kDataLoss);
  // Every partition's slice still merged back on rank 0.
  EXPECT_EQ(bundle.examples.size(), 8u);
}

TEST(SpmdExecutor, StageExceptionBecomesStatusNotCrash) {
  PipelineOptions options;
  options.backend = Backend::kSpmd;
  options.threads = 2;
  Pipeline p("spmd-throw", options);
  p.Add("make", StageKind::kIngest,
        [](DataBundle& bundle, StageContext&) -> Status {
          bundle.examples.resize(4);
          return Status::Ok();
        });
  ParallelSpec spec;
  spec.axis = PartitionAxis::kExamples;
  spec.grain = 2;
  p.Add("boom", StageKind::kTransform, ExecutionHint::kPartitionParallel,
        [](DataBundle&, StageContext& ctx) -> Status {
          if (ctx.partition().index == 0) throw std::runtime_error("kaboom");
          return Status::Ok();
        },
        spec);
  DataBundle bundle;
  const PipelineReport report = p.Run(bundle);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.error.code(), StatusCode::kInternal);
  EXPECT_NE(report.error.message().find("kaboom"), std::string::npos);
}

TEST(SpmdExecutor, WorldLargerThanPartitionCountStillCoversAll) {
  // 8 ranks, 2 partitions: six ranks idle through the collectives without
  // deadlocking, and every partition still merges back.
  PipelineOptions options;
  options.backend = Backend::kSpmd;
  options.threads = 8;
  options.seed = 4321;
  Pipeline p("wide-world", options);
  p.Add("make", StageKind::kIngest,
        [](DataBundle& bundle, StageContext&) -> Status {
          bundle.examples.resize(4);
          return Status::Ok();
        });
  ParallelSpec spec;
  spec.axis = PartitionAxis::kExamples;
  spec.grain = 2;  // 2 partitions << 8 ranks
  p.Add("touch", StageKind::kTransform, ExecutionHint::kPartitionParallel,
        [](DataBundle& bundle, StageContext& ctx) -> Status {
          ctx.NoteCount("seen", bundle.examples.size());
          return Status::Ok();
        },
        spec);
  DataBundle bundle;
  ASSERT_TRUE(p.Run(bundle).ok);
  EXPECT_EQ(bundle.examples.size(), 4u);
}

TEST(SpmdExecutor, QuarantineDropsSamePartitionOnEveryRankCount) {
  // A partition whose attempts exhaust under a quarantine policy must be
  // dropped identically for any rank world size — the ranks agree on the
  // quarantine set through a collective before merging.
  auto run = [](size_t ranks) {
    PipelineOptions options;
    options.backend = Backend::kSpmd;
    options.threads = ranks;
    FaultSite site;
    site.stage = "mark";
    site.partition = 1;
    site.fail_attempts = 10;
    options.faults.sites.push_back(site);
    Pipeline p("spmd-quarantine", options);

    ParallelSpec spec;
    spec.axis = PartitionAxis::kExamples;
    spec.grain = 2;
    p.Add("seed", StageKind::kIngest,
          [](DataBundle& bundle, StageContext&) -> Status {
            for (size_t i = 0; i < 8; ++i) {
              shard::Example ex;
              ex.key = "e" + std::to_string(i);
              bundle.examples.push_back(std::move(ex));
            }
            return Status::Ok();
          });
    p.Add("mark", StageKind::kPreprocess, ExecutionHint::kRecordParallel,
          [](DataBundle& bundle, StageContext&) -> Status {
            for (auto& ex : bundle.examples) ex.key += "!";
            return Status::Ok();
          },
          spec);
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.quarantine = true;
    p.WithRetry(retry);

    DataBundle bundle;
    const PipelineReport report = p.Run(bundle);
    EXPECT_TRUE(report.ok) << report.error.ToString();
    EXPECT_EQ(report.quarantined.size(), 1u);
    return bundle.Serialize();
  };
  const Bytes two = run(2);
  EXPECT_EQ(two, run(3));
  EXPECT_EQ(two, run(5));
  // Examples 2 and 3 (partition 1) are gone on every world size.
  auto parsed = DataBundle::Parse(two);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->examples.size(), 6u);
  EXPECT_EQ(parsed->examples[0].key, "e0!");
  EXPECT_EQ(parsed->examples[2].key, "e4!");
}

}  // namespace
}  // namespace drai::core
