// Tests for drai/timeseries: validation, despiking, gap filling,
// resampling, alignment, windowing, features.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "timeseries/signal.hpp"

namespace drai::timeseries {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Signal MakeSine(const std::string& name, double rate_hz, double duration,
                double freq, double amp = 1.0, double t0 = 0.0) {
  Signal s;
  s.name = name;
  for (double t = t0; t < duration; t += 1.0 / rate_hz) {
    s.t.push_back(t);
    s.v.push_back(amp * std::sin(2 * M_PI * freq * t));
  }
  return s;
}

TEST(Signal, ValidateCatchesProblems) {
  Signal s;
  s.name = "x";
  s.t = {0, 1, 1};  // not strictly increasing
  s.v = {1, 2, 3};
  EXPECT_FALSE(s.Validate().ok());
  s.t = {0, 1};
  EXPECT_FALSE(s.Validate().ok());  // length mismatch
  s.v = {1, 2};
  EXPECT_TRUE(s.Validate().ok());
}

TEST(Signal, MissingFraction) {
  Signal s;
  s.v = {1, kNaN, 3, kNaN};
  s.t = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(s.MissingFraction(), 0.5);
}

// ---- despike -----------------------------------------------------------------

TEST(Despike, RemovesGrossOutliersOnly) {
  Rng rng(1);
  Signal s = MakeSine("ip", 100, 2.0, 1.0);
  // Plant three gross spikes.
  s.v[20] = 1e6;
  s.v[100] = -1e6;
  s.v[150] = 5e5;
  const size_t replaced = Despike(s, 6.0);
  EXPECT_EQ(replaced, 3u);
  EXPECT_TRUE(std::isnan(s.v[20]));
  EXPECT_TRUE(std::isnan(s.v[100]));
  // Ordinary samples untouched.
  EXPECT_FALSE(std::isnan(s.v[50]));
}

TEST(Despike, ConstantSignalUntouched) {
  Signal s;
  for (int i = 0; i < 50; ++i) {
    s.t.push_back(i);
    s.v.push_back(7.0);
  }
  EXPECT_EQ(Despike(s), 0u);
}

TEST(Despike, TooShortSignalIgnored) {
  Signal s;
  s.t = {0, 1};
  s.v = {1, 1e9};
  EXPECT_EQ(Despike(s), 0u);
}

// ---- gap fill -----------------------------------------------------------------

TEST(FillGaps, LinearInterpolatesShortRuns) {
  Signal s;
  s.t = {0, 1, 2, 3, 4};
  s.v = {0, kNaN, kNaN, 3, 4};
  const size_t filled = FillGaps(s, 4);
  EXPECT_EQ(filled, 2u);
  EXPECT_DOUBLE_EQ(s.v[1], 1.0);
  EXPECT_DOUBLE_EQ(s.v[2], 2.0);
}

TEST(FillGaps, LongRunsAndEdgesStayMissing) {
  Signal s;
  s.t = {0, 1, 2, 3, 4, 5};
  s.v = {kNaN, 1, kNaN, kNaN, kNaN, 5};
  const size_t filled = FillGaps(s, 2);  // run of 3 > max_gap 2
  EXPECT_EQ(filled, 0u);
  EXPECT_TRUE(std::isnan(s.v[0]));  // leading edge never filled
  EXPECT_TRUE(std::isnan(s.v[3]));
}

// ---- resample -----------------------------------------------------------------

TEST(Resample, LinearHitsExactAtSamplePoints) {
  Signal s;
  s.t = {0.0, 1.0, 2.0};
  s.v = {0.0, 10.0, 20.0};
  const auto out = ResampleUniform(s, 0.0, 0.5, 5);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0], 0.0);
  EXPECT_DOUBLE_EQ((*out)[1], 5.0);
  EXPECT_DOUBLE_EQ((*out)[2], 10.0);
  EXPECT_DOUBLE_EQ((*out)[4], 20.0);
}

TEST(Resample, OutsideSpanIsNaN) {
  Signal s;
  s.t = {1.0, 2.0};
  s.v = {5.0, 6.0};
  const auto out = ResampleUniform(s, 0.0, 1.0, 4);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isnan((*out)[0]));
  EXPECT_DOUBLE_EQ((*out)[1], 5.0);
  EXPECT_TRUE(std::isnan((*out)[3]));
}

TEST(Resample, NearestAndPrevious) {
  Signal s;
  s.t = {0.0, 1.0};
  s.v = {0.0, 10.0};
  const auto nearest = ResampleUniform(s, 0.0, 0.4, 3, Interp::kNearest);
  EXPECT_DOUBLE_EQ((*nearest)[1], 0.0);   // t=0.4 -> closer to 0
  EXPECT_DOUBLE_EQ((*nearest)[2], 10.0);  // t=0.8 -> closer to 1
  const auto previous = ResampleUniform(s, 0.0, 0.8, 2, Interp::kPrevious);
  EXPECT_DOUBLE_EQ((*previous)[1], 0.0);  // t=0.8 -> previous sample is t=0
}

TEST(Resample, SineReconstructionAccurate) {
  const Signal s = MakeSine("x", 500, 1.0, 3.0);
  const auto out = ResampleUniform(s, 0.1, 0.001, 800);
  ASSERT_TRUE(out.ok());
  for (size_t k = 0; k < out->size(); ++k) {
    const double t = 0.1 + static_cast<double>(k) * 0.001;
    if (t > s.t.back()) break;
    EXPECT_NEAR((*out)[k], std::sin(2 * M_PI * 3.0 * t), 0.01);
  }
}

TEST(Resample, RejectsBadDt) {
  Signal s;
  s.t = {0.0};
  s.v = {1.0};
  EXPECT_FALSE(ResampleUniform(s, 0, 0, 4).ok());
}

// ---- alignment ------------------------------------------------------------------

TEST(Align, ChannelsShareTheIntersectionClock) {
  std::vector<Signal> channels;
  channels.push_back(MakeSine("a", 100, 2.0, 1.0));           // [0, 2)
  channels.push_back(MakeSine("b", 73, 1.5, 2.0, 1.0, 0.3));  // [0.3, 1.5)
  const auto frame = AlignChannels(channels, 0.01);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->n_channels(), 2u);
  EXPECT_NEAR(frame->t0, 0.3, 1e-9);
  EXPECT_EQ(frame->channel_names[1], "b");
  // Every aligned sample of both channels lies inside both spans -> finite.
  const double* data = frame->data.data<double>();
  for (size_t c = 0; c < 2; ++c) {
    for (size_t k = 0; k < frame->n_samples(); ++k) {
      EXPECT_TRUE(std::isfinite(data[c * frame->n_samples() + k]))
          << c << "," << k;
    }
  }
}

TEST(Align, DisjointSpansFail) {
  std::vector<Signal> channels;
  channels.push_back(MakeSine("a", 100, 1.0, 1.0));            // [0, 1)
  channels.push_back(MakeSine("b", 100, 3.0, 1.0, 1.0, 2.0));  // [2, 3)
  EXPECT_EQ(AlignChannels(channels, 0.01).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Align, EmptyInputRejected) {
  EXPECT_FALSE(AlignChannels({}, 0.01).ok());
}

// ---- windows -------------------------------------------------------------------

TEST(SlidingWindows, CountAndContent) {
  AlignedFrame frame;
  frame.t0 = 0;
  frame.dt = 1;
  frame.channel_names = {"c0"};
  frame.data = NDArray::Zeros({1, 10}, DType::kF64);
  for (size_t i = 0; i < 10; ++i) {
    frame.data.SetFromDouble(i, static_cast<double>(i));
  }
  const auto windows = SlidingWindows(frame, 4, 2);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->shape(), (Shape{4, 1, 4}));
  EXPECT_EQ(windows->GetAsDouble(4), 2.0);  // second window starts at t=2
}

TEST(SlidingWindows, DropsWindowsWithNaN) {
  AlignedFrame frame;
  frame.channel_names = {"c0"};
  frame.data = NDArray::Zeros({1, 8}, DType::kF64);
  frame.data.SetFromDouble(3, kNaN);
  const auto kept = SlidingWindows(frame, 4, 4, /*drop_missing=*/true);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->shape()[0], 1u);  // first window (0-3) has the NaN
  const auto all = SlidingWindows(frame, 4, 4, /*drop_missing=*/false);
  EXPECT_EQ(all->shape()[0], 2u);
}

TEST(SlidingWindows, FrameShorterThanWindowFails) {
  AlignedFrame frame;
  frame.channel_names = {"c0"};
  frame.data = NDArray::Zeros({1, 3}, DType::kF64);
  EXPECT_FALSE(SlidingWindows(frame, 4, 1).ok());
}

// ---- features --------------------------------------------------------------------

TEST(WindowFeatures, KnownValues) {
  // One window, one channel: [0, 1, 2, 3] with dt=1.
  NDArray windows = NDArray::Zeros({1, 1, 4}, DType::kF64);
  for (size_t i = 0; i < 4; ++i) {
    windows.SetFromDouble(i, static_cast<double>(i));
  }
  const auto features = WindowFeatures(windows, 1.0);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->shape(), (Shape{1, kFeaturesPerChannel}));
  EXPECT_DOUBLE_EQ(features->GetAsDouble(0), 1.5);                  // mean
  EXPECT_NEAR(features->GetAsDouble(1), std::sqrt(1.25), 1e-12);    // std
  EXPECT_DOUBLE_EQ(features->GetAsDouble(2), 0.0);                  // min
  EXPECT_DOUBLE_EQ(features->GetAsDouble(3), 3.0);                  // max
  EXPECT_DOUBLE_EQ(features->GetAsDouble(4), 1.0);                  // mean |dv|
  EXPECT_DOUBLE_EQ(features->GetAsDouble(5), 1.0);                  // max |dv|
}

TEST(WindowFeatures, DerivativeScalesWithDt) {
  NDArray windows = NDArray::Zeros({1, 1, 4}, DType::kF64);
  for (size_t i = 0; i < 4; ++i) {
    windows.SetFromDouble(i, static_cast<double>(i));
  }
  const auto coarse = WindowFeatures(windows, 1.0);
  const auto fine = WindowFeatures(windows, 0.1);
  EXPECT_NEAR(fine->GetAsDouble(5), coarse->GetAsDouble(5) * 10.0, 1e-9);
}

TEST(WindowFeatures, RejectsBadShape) {
  EXPECT_FALSE(WindowFeatures(NDArray::Zeros({4, 4}), 1.0).ok());
  EXPECT_FALSE(WindowFeatures(NDArray::Zeros({1, 1, 1}), 1.0).ok());
}

}  // namespace
}  // namespace drai::timeseries
