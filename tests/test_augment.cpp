// Tests for drai/augment: spatial transforms, noise, SMOTE, pseudo-labeling.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "augment/augment.hpp"
#include "ml/models.hpp"
#include "ndarray/kernels.hpp"

namespace drai::augment {
namespace {

NDArray Ramp(Shape shape) {
  NDArray a = NDArray::Zeros(shape, DType::kF64);
  for (size_t i = 0; i < a.numel(); ++i) {
    a.SetFromDouble(i, static_cast<double>(i));
  }
  return a;
}

bool SameValues(const NDArray& a, const NDArray& b) {
  if (a.shape() != b.shape()) return false;
  for (size_t i = 0; i < a.numel(); ++i) {
    if (a.GetAsDouble(i) != b.GetAsDouble(i)) return false;
  }
  return true;
}

// ---- rotations / flips -------------------------------------------------------

TEST(Rotate90, FourRotationsAreIdentity) {
  const NDArray field = Ramp({5, 7});
  NDArray current = field;
  for (int i = 0; i < 4; ++i) {
    current = Rotate90(current, 1).value();
  }
  EXPECT_TRUE(SameValues(current, field));
}

TEST(Rotate90, KnownSmallCase) {
  // [[0, 1], [2, 3]] rotated 90° CCW -> [[1, 3], [0, 2]].
  const NDArray field = Ramp({2, 2});
  const auto r = Rotate90(field, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetAsDouble(0), 1.0);
  EXPECT_EQ(r->GetAsDouble(1), 3.0);
  EXPECT_EQ(r->GetAsDouble(2), 0.0);
  EXPECT_EQ(r->GetAsDouble(3), 2.0);
}

TEST(Rotate90, RectangularSwapsDims) {
  const auto r = Rotate90(Ramp({3, 5}), 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->shape(), (Shape{5, 3}));
  EXPECT_EQ(Rotate90(Ramp({3, 5}), 2)->shape(), (Shape{3, 5}));
}

TEST(Rotate90, NegativeAndLargeKNormalized) {
  const NDArray field = Ramp({4, 4});
  EXPECT_TRUE(SameValues(*Rotate90(field, -1), *Rotate90(field, 3)));
  EXPECT_TRUE(SameValues(*Rotate90(field, 5), *Rotate90(field, 1)));
}

TEST(Rotate90, MultiChannelRotatesEachPlane) {
  const NDArray field = Ramp({2, 2, 2});
  const auto r = Rotate90(field, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->shape(), (Shape{2, 2, 2}));
  // 180°: channel 0 reverses within itself.
  EXPECT_EQ(r->GetAsDouble(0), 3.0);
  EXPECT_EQ(r->GetAsDouble(4), 7.0);  // channel 1 stays in channel 1
}

TEST(Flip, Involution) {
  const NDArray field = Ramp({4, 6});
  for (int axis : {0, 1}) {
    const auto once = Flip(field, axis).value();
    const auto twice = Flip(once, axis).value();
    EXPECT_TRUE(SameValues(twice, field)) << "axis " << axis;
    EXPECT_FALSE(SameValues(once, field));
  }
  EXPECT_FALSE(Flip(field, 2).ok());
}

TEST(Flip, KnownSmallCase) {
  const NDArray field = Ramp({2, 2});
  const auto v = Flip(field, 0).value();  // rows swap
  EXPECT_EQ(v.GetAsDouble(0), 2.0);
  const auto h = Flip(field, 1).value();  // cols swap
  EXPECT_EQ(h.GetAsDouble(0), 1.0);
}

// ---- noise & crop ------------------------------------------------------------

TEST(AddNoise, StatisticsScaleWithSigma) {
  Rng rng(3);
  NDArray field = NDArray::Zeros({64, 64}, DType::kF64);
  for (size_t i = 0; i < field.numel(); ++i) {
    field.SetFromDouble(i, rng.Normal(100, 5));
  }
  Rng noise_rng(4);
  const auto noisy = AddNoise(field, 0.5, noise_rng);
  ASSERT_TRUE(noisy.ok());
  const double added_std = RmsDiff(field, *noisy);
  EXPECT_NEAR(added_std, 2.5, 0.3);  // 0.5 * field std (5)
  // Zero sigma is identity.
  Rng rng2(5);
  EXPECT_TRUE(SameValues(*AddNoise(field, 0.0, rng2), field));
}

TEST(AddNoise, RejectsBadInput) {
  Rng rng(1);
  EXPECT_FALSE(AddNoise(NDArray::Zeros({4}, DType::kI32), 0.1, rng).ok());
  EXPECT_FALSE(AddNoise(NDArray::Zeros({4}), -1.0, rng).ok());
}

TEST(RandomCropResize, PreservesShapeAndValueSet) {
  Rng rng(6);
  const NDArray field = Ramp({8, 8});
  const auto out = RandomCropResize(field, 4, 4, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{8, 8}));
  // Every output value existed in the input (nearest-neighbor resize).
  std::set<double> input_values;
  for (size_t i = 0; i < field.numel(); ++i) {
    input_values.insert(field.GetAsDouble(i));
  }
  for (size_t i = 0; i < out->numel(); ++i) {
    EXPECT_TRUE(input_values.count(out->GetAsDouble(i)));
  }
  EXPECT_FALSE(RandomCropResize(field, 0, 4, rng).ok());
  EXPECT_FALSE(RandomCropResize(field, 9, 4, rng).ok());
}

// ---- SMOTE -----------------------------------------------------------------

TEST(Smote, SynthesizesOnSegmentsBetweenMinorityNeighbors) {
  // Minority points on a line: synthetics must stay on that line segment.
  NDArray features = NDArray::Zeros({10, 2}, DType::kF64);
  std::vector<size_t> minority;
  for (size_t i = 0; i < 5; ++i) {
    features.SetFromDouble(i * 2, static_cast<double>(i));      // x = i
    features.SetFromDouble(i * 2 + 1, 2.0 * static_cast<double>(i));  // y = 2x
    minority.push_back(i);
  }
  // Majority rows far away (must not be used).
  for (size_t i = 5; i < 10; ++i) {
    features.SetFromDouble(i * 2, 1000.0);
    features.SetFromDouble(i * 2 + 1, -1000.0);
  }
  Rng rng(8);
  const auto synth = SmoteSynthesize(features, minority, 50, 2, rng);
  ASSERT_TRUE(synth.ok());
  EXPECT_EQ(synth->shape(), (Shape{50, 2}));
  for (size_t s = 0; s < 50; ++s) {
    const double x = synth->GetAsDouble(s * 2);
    const double y = synth->GetAsDouble(s * 2 + 1);
    EXPECT_NEAR(y, 2.0 * x, 1e-9);  // on the minority manifold
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 4.0);
  }
}

TEST(Smote, RejectsDegenerateInput) {
  Rng rng(1);
  NDArray f = NDArray::Zeros({4, 2}, DType::kF64);
  EXPECT_FALSE(SmoteSynthesize(f, std::vector<size_t>{0}, 5, 3, rng).ok());
  EXPECT_FALSE(
      SmoteSynthesize(f, std::vector<size_t>{0, 9}, 5, 3, rng).ok());
  EXPECT_FALSE(SmoteSynthesize(NDArray::Zeros({4}), std::vector<size_t>{0, 1},
                               5, 3, rng)
                   .ok());
}

// ---- pseudo-labeling -----------------------------------------------------------

TEST(PseudoLabel, PropagatesLabelsThroughClusters) {
  // Two well-separated clusters; only one seed label per cluster.
  Rng rng(10);
  const size_t n = 60;
  NDArray features = NDArray::Zeros({n, 2}, DType::kF64);
  std::vector<int64_t> labels(n, -1);
  for (size_t i = 0; i < n; ++i) {
    const bool right = i >= n / 2;
    features.SetFromDouble(i * 2, (right ? 10.0 : 0.0) + rng.Normal(0, 0.5));
    features.SetFromDouble(i * 2 + 1, rng.Normal(0, 0.5));
  }
  labels[0] = 0;
  labels[n / 2] = 1;

  TrainFn train = [](const NDArray& x, std::span<const int64_t> y) {
    auto knn = std::make_shared<ml::KnnClassifier>(1);
    knn->Fit(x, y).status().OrDie();
    return Classifier(
        [knn](std::span<const double> row) { return knn->Predict(row); });
  };
  PseudoLabelOptions options;
  options.confidence_threshold = 0.9;
  options.max_rounds = 3;
  const auto result = PseudoLabel(features, labels, train, options);
  ASSERT_TRUE(result.ok());
  // Everything gets labeled, and correctly by cluster.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(result->labels[i], i < n / 2 ? 0 : 1) << i;
  }
  EXPECT_EQ(result->total_adopted, n - 2);
  EXPECT_GE(result->rounds_run, 1u);
}

TEST(PseudoLabel, NoSeedsFails) {
  NDArray features = NDArray::Zeros({4, 1}, DType::kF64);
  std::vector<int64_t> labels(4, -1);
  TrainFn train = [](const NDArray&, std::span<const int64_t>) {
    return Classifier(
        [](std::span<const double>) { return std::make_pair<int64_t>(0, 1.0); });
  };
  EXPECT_EQ(PseudoLabel(features, labels, train).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PseudoLabel, LowConfidencePredictionsNotAdopted) {
  NDArray features = NDArray::Zeros({4, 1}, DType::kF64);
  std::vector<int64_t> labels = {0, -1, -1, -1};
  TrainFn train = [](const NDArray&, std::span<const int64_t>) {
    return Classifier([](std::span<const double>) {
      return std::make_pair<int64_t, double>(1, 0.4);  // below threshold
    });
  };
  PseudoLabelOptions options;
  options.confidence_threshold = 0.9;
  const auto result = PseudoLabel(features, labels, train, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_adopted, 0u);
  EXPECT_EQ(result->labels[1], -1);
}

}  // namespace
}  // namespace drai::augment
