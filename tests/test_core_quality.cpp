// Tests for the quality report and datasheet generation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/datasheet.hpp"
#include "core/quality.hpp"

namespace drai::core {
namespace {

shard::Example MakeExample(const std::string& key, double value,
                           int64_t label) {
  shard::Example ex;
  ex.key = key;
  ex.features["x"] = NDArray::Full({4}, value, DType::kF64);
  ex.SetLabel(label);
  return ex;
}

TEST(Quality, CleanDatasetScoresHigh) {
  std::vector<shard::Example> examples;
  for (int i = 0; i < 40; ++i) {
    examples.push_back(MakeExample("k" + std::to_string(i), i * 0.5, i % 2));
  }
  const QualityReport report = AssessQuality(examples);
  EXPECT_EQ(report.n_examples, 40u);
  EXPECT_EQ(report.duplicate_keys, 0u);
  EXPECT_EQ(report.duplicate_payloads, 0u);
  EXPECT_DOUBLE_EQ(report.MissingFraction(), 0.0);
  EXPECT_DOUBLE_EQ(report.labeled_fraction, 1.0);
  EXPECT_NEAR(report.BalanceScore(), 1.0, 1e-9);
  EXPECT_GT(report.OverallScore(), 0.95);
  EXPECT_FALSE(report.ToText().empty());
}

TEST(Quality, DetectsDuplicates) {
  std::vector<shard::Example> examples;
  examples.push_back(MakeExample("a", 1.0, 0));
  examples.push_back(MakeExample("a", 2.0, 0));   // duplicate key
  examples.push_back(MakeExample("b", 1.0, 0));   // duplicate payload of #0
  const QualityReport report = AssessQuality(examples);
  EXPECT_EQ(report.duplicate_keys, 1u);
  // Payload duplicates: example 1 has value 2.0+label0? No — payload 2.0
  // differs; example 2's feature bytes match example 0's.
  EXPECT_GE(report.duplicate_payloads, 1u);
}

TEST(Quality, CountsMissingness) {
  std::vector<shard::Example> examples;
  shard::Example ex = MakeExample("a", 1.0, 0);
  ex.features["x"].SetFromDouble(0, std::numeric_limits<double>::quiet_NaN());
  ex.features["x"].SetFromDouble(1, std::numeric_limits<double>::quiet_NaN());
  examples.push_back(ex);
  examples.push_back(MakeExample("b", 2.0, 1));
  const QualityReport report = AssessQuality(examples);
  EXPECT_DOUBLE_EQ(report.MissingFraction(), 2.0 / 8.0);
  EXPECT_LT(report.OverallScore(), 0.95);
}

TEST(Quality, ImbalancePenalizesScore) {
  std::vector<shard::Example> balanced, skewed;
  for (int i = 0; i < 40; ++i) {
    balanced.push_back(MakeExample("b" + std::to_string(i), i, i % 2));
    skewed.push_back(MakeExample("s" + std::to_string(i), i, i < 38 ? 0 : 1));
  }
  EXPECT_GT(AssessQuality(balanced).OverallScore(),
            AssessQuality(skewed).OverallScore());
}

TEST(Quality, EmptyInput) {
  const QualityReport report = AssessQuality({});
  EXPECT_EQ(report.n_examples, 0u);
  EXPECT_DOUBLE_EQ(report.OverallScore(), 0.0);
}

TEST(Quality, PerFeatureStats) {
  std::vector<shard::Example> examples;
  for (int i = 0; i < 10; ++i) {
    examples.push_back(MakeExample("k" + std::to_string(i), i, 0));
  }
  const QualityReport report = AssessQuality(examples);
  const FeatureQuality& fx = report.features.at("x");
  EXPECT_EQ(fx.total_elements, 40u);
  EXPECT_DOUBLE_EQ(fx.stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(fx.stats.max(), 9.0);
  EXPECT_NEAR(fx.stats.mean(), 4.5, 1e-12);
}

// ---- datasheet ------------------------------------------------------------------

TEST(Datasheet, RendersAllSections) {
  shard::DatasetManifest manifest;
  manifest.dataset_name = "demo";
  manifest.created_by = "drai-test";
  manifest.schema.push_back({"x", DType::kF32, {4}});
  manifest.shards[shard::Split::kTrain] = {{"/d/train-00000.rec", 10, 500}};

  std::vector<shard::Example> examples;
  for (int i = 0; i < 10; ++i) {
    examples.push_back(MakeExample("k" + std::to_string(i), i, i % 2));
  }
  const QualityReport quality = AssessQuality(examples);

  DatasetState state;
  state.acquired = true;
  const ReadinessAssessment readiness = Assess(state);

  Datasheet sheet =
      MakeDatasheet("demo", manifest, quality, readiness, "deadbeef");
  sheet.motivation = "Benchmark demo dataset.";
  sheet.restrictions = "None (synthetic).";
  const std::string md = sheet.ToMarkdown();
  EXPECT_NE(md.find("# Data card: demo"), std::string::npos);
  EXPECT_NE(md.find("## Motivation"), std::string::npos);
  EXPECT_NE(md.find("Benchmark demo dataset."), std::string::npos);
  EXPECT_NE(md.find("## Schema"), std::string::npos);
  EXPECT_NE(md.find("`x`: f32 [4]"), std::string::npos);
  EXPECT_NE(md.find("## Quality"), std::string::npos);
  EXPECT_NE(md.find("## Readiness"), std::string::npos);
  EXPECT_NE(md.find("1-raw"), std::string::npos);
  EXPECT_NE(md.find("deadbeef"), std::string::npos);
  // Empty narrative sections are omitted.
  EXPECT_EQ(md.find("## Composition"), std::string::npos);
}

}  // namespace
}  // namespace drai::core
