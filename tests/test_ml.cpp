// Tests for drai/ml: models learn what they should, metrics are correct,
// and the shard-fed trainer closes the readiness loop.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/models.hpp"
#include "ml/trainer.hpp"
#include "shard/shard_writer.hpp"

namespace drai::ml {
namespace {

// ---- LinearRegressor -----------------------------------------------------

TEST(LinearRegressor, RecoversPlane) {
  // y = 2*x0 - 3*x1 + 1
  Rng rng(1);
  const size_t n = 400;
  NDArray x = NDArray::Zeros({n, 2}, DType::kF64);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    x.SetFromDouble(i * 2, a);
    x.SetFromDouble(i * 2 + 1, b);
    y[i] = 2 * a - 3 * b + 1;
  }
  LinearRegressor model;
  SgdOptions options;
  options.learning_rate = 0.1;
  options.epochs = 200;
  const auto history = model.Fit(x, y, options);
  ASSERT_TRUE(history.ok());
  EXPECT_LT(history->back(), 1e-4);
  EXPECT_LT(history->back(), history->front());  // loss decreased
  EXPECT_NEAR(model.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -3.0, 0.05);
  EXPECT_NEAR(model.bias(), 1.0, 0.05);
  EXPECT_NEAR(model.Predict(std::vector<double>{1.0, 1.0}), 0.0, 0.1);
}

TEST(LinearRegressor, PartialFitWarmStarts) {
  Rng rng(2);
  const size_t n = 200;
  NDArray x = NDArray::Zeros({n, 1}, DType::kF64);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(-1, 1);
    x.SetFromDouble(i, a);
    y[i] = 5 * a;
  }
  LinearRegressor model;
  SgdOptions step;
  step.learning_rate = 0.2;
  double prev = 1e300;
  for (int pass = 0; pass < 30; ++pass) {
    step.seed = static_cast<uint64_t>(pass);
    const auto loss = model.PartialFit(x, y, step);
    ASSERT_TRUE(loss.ok());
    prev = *loss;
  }
  EXPECT_LT(prev, 1e-3);  // converged across partial fits (no resets)
}

TEST(LinearRegressor, RejectsBadShapes) {
  LinearRegressor model;
  EXPECT_FALSE(model.Fit(NDArray::Zeros({4}), std::vector<double>(4)).ok());
  EXPECT_FALSE(
      model.Fit(NDArray::Zeros({4, 2}), std::vector<double>(3)).ok());
}

// ---- SoftmaxClassifier -------------------------------------------------------

TEST(SoftmaxClassifier, SeparatesGaussianBlobs) {
  Rng rng(3);
  const size_t per = 150;
  NDArray x = NDArray::Zeros({3 * per, 2}, DType::kF64);
  std::vector<int64_t> y(3 * per);
  const double centers[3][2] = {{0, 0}, {6, 0}, {0, 6}};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per; ++i) {
      const size_t row = c * per + i;
      x.SetFromDouble(row * 2, centers[c][0] + rng.Normal(0, 0.7));
      x.SetFromDouble(row * 2 + 1, centers[c][1] + rng.Normal(0, 0.7));
      y[row] = static_cast<int64_t>(c);
    }
  }
  SoftmaxClassifier model(3);
  SgdOptions options;
  options.learning_rate = 0.3;
  options.epochs = 60;
  const auto history = model.Fit(x, y, options);
  ASSERT_TRUE(history.ok());
  EXPECT_GT(model.Evaluate(x, y).value(), 0.97);
  // Probabilities are a distribution.
  const auto p = model.PredictProba(std::vector<double>{6.0, 0.0});
  double sum = 0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(model.Predict(std::vector<double>{6.0, 0.0}), 1);
}

TEST(SoftmaxClassifier, ClassWeightsShiftMinorityRecall) {
  // 95/5 imbalance: weighting the minority class must raise its recall.
  Rng rng(4);
  const size_t n0 = 380, n1 = 20;
  NDArray x = NDArray::Zeros({n0 + n1, 1}, DType::kF64);
  std::vector<int64_t> y(n0 + n1);
  for (size_t i = 0; i < n0; ++i) {
    x.SetFromDouble(i, rng.Normal(0, 1));
    y[i] = 0;
  }
  for (size_t i = n0; i < n0 + n1; ++i) {
    x.SetFromDouble(i, rng.Normal(1.5, 1));  // overlapping minority
    y[i] = 1;
  }
  auto minority_recall = [&](std::span<const double> weights) {
    SoftmaxClassifier model(2);
    SgdOptions options;
    options.learning_rate = 0.5;
    options.epochs = 80;
    options.seed = 9;
    model.Fit(x, y, options, weights).value();
    size_t hit = 0;
    for (size_t i = n0; i < n0 + n1; ++i) {
      if (model.Predict(std::vector<double>{x.GetAsDouble(i)}) == 1) ++hit;
    }
    return static_cast<double>(hit) / static_cast<double>(n1);
  };
  const double unweighted = minority_recall({});
  const std::vector<double> w = {0.2, 1.8};
  const double weighted = minority_recall(w);
  EXPECT_GT(weighted, unweighted);
}

TEST(SoftmaxClassifier, ValidatesLabels) {
  SoftmaxClassifier model(2);
  NDArray x = NDArray::Zeros({2, 1}, DType::kF64);
  EXPECT_FALSE(model.Fit(x, std::vector<int64_t>{0, 5}).ok());
  EXPECT_FALSE(model.Fit(x, std::vector<int64_t>{0, -1}).ok());
  EXPECT_THROW(SoftmaxClassifier(1), std::invalid_argument);
}

// ---- MlpRegressor -----------------------------------------------------------

TEST(MlpRegressor, FitsNonlinearFunction) {
  // y = sin(2x): a linear model cannot do better than ~0.5 MSE on [-pi, pi].
  Rng rng(5);
  const size_t n = 400;
  NDArray x = NDArray::Zeros({n, 1}, DType::kF64);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(-M_PI, M_PI);
    x.SetFromDouble(i, a);
    y[i] = std::sin(2 * a);
  }
  MlpRegressor mlp(16);
  SgdOptions options;
  options.learning_rate = 0.02;
  options.epochs = 120;
  const auto history = mlp.Fit(x, y, options);
  ASSERT_TRUE(history.ok());
  const double mlp_mse = mlp.Evaluate(x, y).value();

  LinearRegressor linear;
  SgdOptions lin_options;
  lin_options.learning_rate = 0.05;
  lin_options.epochs = 100;
  linear.Fit(x, y, lin_options).value();
  const double linear_mse = linear.Evaluate(x, y).value();

  EXPECT_LT(mlp_mse, 0.1);
  EXPECT_LT(mlp_mse * 2, linear_mse);  // clearly beats the linear baseline
}

// ---- KnnClassifier ------------------------------------------------------------

TEST(KnnClassifier, MajorityVoteWithConfidence) {
  NDArray x = NDArray::FromVector<double>({5, 1}, {0, 0.1, 0.2, 10, 10.1});
  const std::vector<int64_t> y = {0, 0, 0, 1, 1};
  KnnClassifier knn(3);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  const auto [label0, conf0] = knn.Predict(std::vector<double>{0.05});
  EXPECT_EQ(label0, 0);
  EXPECT_DOUBLE_EQ(conf0, 1.0);
  const auto [label1, conf1] = knn.Predict(std::vector<double>{9.5});
  EXPECT_EQ(label1, 1);
  EXPECT_NEAR(conf1, 2.0 / 3.0, 1e-12);
}

TEST(KnnClassifier, SkipsUnlabeledRows) {
  NDArray x = NDArray::FromVector<double>({3, 1}, {0, 5, 10});
  const std::vector<int64_t> y = {0, -1, 1};
  KnnClassifier knn(1);
  EXPECT_EQ(knn.Fit(x, y).value(), 2u);  // only labeled rows stored
  EXPECT_EQ(knn.Predict(std::vector<double>{6.0}).first, 1);
}

TEST(KnnClassifier, AllUnlabeledFails) {
  NDArray x = NDArray::Zeros({2, 1}, DType::kF64);
  EXPECT_EQ(KnnClassifier(1).Fit(x, std::vector<int64_t>{-1, -1})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// ---- metrics ---------------------------------------------------------------------

TEST(Metrics, RegressionBasics) {
  const std::vector<double> pred = {1, 2, 3};
  const std::vector<double> truth = {1, 2, 5};
  EXPECT_NEAR(MeanSquaredError(pred, truth), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(MeanAbsoluteError(pred, truth), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(R2Score(truth, truth), 1.0);
  EXPECT_LT(R2Score(pred, truth), 1.0);
}

TEST(Metrics, ClassificationBasics) {
  const std::vector<int64_t> pred = {0, 1, 1, 0};
  const std::vector<int64_t> truth = {0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Accuracy(pred, truth), 0.75);
  const auto cm = ConfusionMatrix(pred, truth, 2);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ((*cm)[0][0], 2);  // truth 0, pred 0
  EXPECT_EQ((*cm)[0][1], 1);  // truth 0, pred 1
  EXPECT_EQ((*cm)[1][1], 1);
  const auto f1 = MacroF1(pred, truth, 2);
  ASSERT_TRUE(f1.ok());
  EXPECT_GT(*f1, 0.5);
  EXPECT_LT(*f1, 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(truth, truth, 2).value(), 1.0);
}

TEST(Metrics, ValidatesInput) {
  EXPECT_THROW(Accuracy(std::vector<int64_t>{1}, std::vector<int64_t>{1, 2}),
               std::invalid_argument);
  EXPECT_FALSE(ConfusionMatrix(std::vector<int64_t>{5},
                               std::vector<int64_t>{0}, 2)
                   .ok());
}

// ---- shard-fed trainer ---------------------------------------------------------

TEST(Trainer, LearnsFromShardsEndToEnd) {
  // Build a sharded linear dataset, then train *only* through the loader.
  par::StripedStore store;
  shard::ShardWriterConfig config;
  config.directory = "/ds/train";
  config.target_shard_bytes = 2000;
  config.split_seed = 3;
  shard::ShardWriter writer(store, config);
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    shard::Example ex;
    ex.key = "s" + std::to_string(i);
    const float a = static_cast<float>(rng.Uniform(-1, 1));
    const float b = static_cast<float>(rng.Uniform(-1, 1));
    ex.features["x"] = NDArray::FromVector<float>({2}, {a, b});
    ex.features["y"] =
        NDArray::FromVector<float>({1}, {3.0f * a - 2.0f * b + 0.5f});
    writer.Add(ex).value();
  }
  writer.Finalize().value();

  const auto reader = shard::ShardReader::Open(store, "/ds/train");
  ASSERT_TRUE(reader.ok());
  LinearRegressor model;
  TrainFromShardsOptions options;
  options.feature_name = "x";
  options.target_name = "y";
  options.epochs = 30;
  options.sgd.learning_rate = 0.1;
  options.sgd.batch_size = 16;
  const auto report = TrainRegressorFromShards(*reader, options, model);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->samples_seen, 0u);
  EXPECT_LT(report->epoch_train_loss.back(),
            report->epoch_train_loss.front());
  EXPECT_LT(report->val_mse, 0.05);
  EXPECT_GT(report->val_r2, 0.95);
  EXPECT_NEAR(model.weights()[0], 3.0, 0.2);
  EXPECT_NEAR(model.weights()[1], -2.0, 0.2);
}

}  // namespace
}  // namespace drai::ml
