// Integration tests: every Table-1 archetype pipeline runs end to end on
// its synthetic workload, reaches full AI-readiness (level 5), produces a
// readable sharded dataset, and — the operational definition of level 5 —
// trains a model.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "domains/bio.hpp"
#include "domains/climate.hpp"
#include "domains/fusion.hpp"
#include "domains/materials.hpp"
#include "graph/encode.hpp"
#include "ml/models.hpp"
#include "ml/trainer.hpp"
#include "privacy/tabular.hpp"
#include "shard/shard_reader.hpp"

namespace drai::domains {
namespace {

void ExpectLevel5(const ArchetypeResult& r, const char* domain) {
  EXPECT_EQ(r.readiness.overall, core::ReadinessLevel::kAiReady)
      << domain << " blocking: "
      << (r.readiness.blocking.empty() ? "none" : r.readiness.blocking[0]);
  EXPECT_TRUE(r.report.ok);
  EXPECT_GT(r.manifest.TotalRecords(), 0u);
  EXPECT_FALSE(r.provenance_hash.empty());
  EXPECT_EQ(r.report.stages.size(), 5u);  // the canonical five stages
}

// ---- climate ----------------------------------------------------------------

TEST(ClimateArchetype, EndToEndLevel5) {
  par::StripedStore store;
  ClimateArchetypeConfig config;
  config.workload.n_times = 4;
  config.workload.n_lat = 24;
  config.workload.n_lon = 48;
  config.workload.missing_prob = 0.01;
  config.target_lat = 16;
  config.target_lon = 32;
  config.patch = 8;
  const auto result = RunClimateArchetype(store, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectLevel5(*result, "climate");
  // 4 times x (16/8)*(32/8) patches = 32 examples.
  EXPECT_EQ(result->manifest.TotalRecords(), 4u * 2 * 4);
  // Normalizer persisted in the manifest.
  EXPECT_FALSE(result->manifest.normalizer_blob.empty());

  // Every example decodes; features are normalized (z-score-ish range).
  const auto reader = shard::ShardReader::Open(store, config.dataset_dir);
  ASSERT_TRUE(reader.ok());
  const auto examples = reader->ReadAll(shard::Split::kTrain);
  ASSERT_TRUE(examples.ok());
  ASSERT_FALSE(examples->empty());
  for (const auto& ex : *examples) {
    const NDArray* x = ex.Find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->shape(),
              (Shape{config.workload.variables.size(), 8, 8}));
    for (size_t i = 0; i < x->numel(); ++i) {
      EXPECT_LT(std::fabs(x->GetAsDouble(i)), 10.0);  // normalized
      EXPECT_FALSE(std::isnan(x->GetAsDouble(i)));    // missing data filled
    }
  }
}

TEST(ClimateArchetype, ConservativeRegridAlsoWorks) {
  par::StripedStore store;
  ClimateArchetypeConfig config;
  config.workload.n_times = 2;
  config.workload.n_lat = 16;
  config.workload.n_lon = 32;
  config.regrid = grid::RegridMethod::kConservative;
  config.target_lat = 8;
  config.target_lon = 16;
  config.patch = 4;
  const auto result = RunClimateArchetype(store, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectLevel5(*result, "climate-conservative");
}

TEST(ClimateArchetype, TrainsFromShards) {
  par::StripedStore store;
  ClimateArchetypeConfig config;
  config.workload.n_times = 8;
  config.workload.n_lat = 24;
  config.workload.n_lon = 48;
  config.target_lat = 16;
  config.target_lon = 32;
  config.patch = 4;
  RunClimateArchetype(store, config).value();
  const auto reader = shard::ShardReader::Open(store, config.dataset_dir);
  ASSERT_TRUE(reader.ok());
  ml::LinearRegressor model;
  ml::TrainFromShardsOptions options;
  options.epochs = 10;
  options.sgd.learning_rate = 0.05;
  const auto report = ml::TrainRegressorFromShards(*reader, options, model);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Target is the patch mean of the features: linearly learnable.
  EXPECT_GT(report->val_r2, 0.9);
}

// ---- fusion -----------------------------------------------------------------

TEST(FusionArchetype, EndToEndLevel5WithPseudoLabels) {
  par::StripedStore store;
  FusionArchetypeConfig config;
  config.workload.n_shots = 24;
  config.workload.unlabeled_fraction = 0.2;
  const auto result = RunFusionArchetype(store, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectLevel5(*result, "fusion");
  // Pseudo-labeling pushed labeled fraction to ~1.
  EXPECT_GE(result->state.label_fraction, 0.95);
}

TEST(FusionArchetype, ShotsNeverStraddleSplits) {
  par::StripedStore store;
  FusionArchetypeConfig config;
  config.workload.n_shots = 30;
  const auto result = RunFusionArchetype(store, config);
  ASSERT_TRUE(result.ok());
  const auto reader = shard::ShardReader::Open(store, config.dataset_dir);
  ASSERT_TRUE(reader.ok());
  std::map<std::string, std::set<shard::Split>> shot_splits;
  for (shard::Split s : shard::kAllSplits) {
    const auto examples = reader->ReadAll(s);
    ASSERT_TRUE(examples.ok());
    for (const auto& ex : *examples) {
      shot_splits[ex.key.substr(0, ex.key.find('#'))].insert(s);
    }
  }
  for (const auto& [shot, splits] : shot_splits) {
    EXPECT_EQ(splits.size(), 1u) << "shot " << shot << " leaked across splits";
  }
}

TEST(FusionArchetype, DisruptionClassifierLearnsFromShards) {
  par::StripedStore store;
  FusionArchetypeConfig config;
  config.workload.n_shots = 40;
  config.workload.disruption_prob = 0.5;
  config.workload.seed = 2024;
  const auto result = RunFusionArchetype(store, config);
  ASSERT_TRUE(result.ok());
  const auto reader = shard::ShardReader::Open(store, config.dataset_dir);
  ASSERT_TRUE(reader.ok());
  const auto train = reader->ReadAll(shard::Split::kTrain);
  ASSERT_TRUE(train.ok());
  ASSERT_GT(train->size(), 50u);

  const size_t nf = train->front().Find("x")->numel();
  NDArray x = NDArray::Zeros({train->size(), nf}, DType::kF64);
  std::vector<int64_t> y(train->size());
  for (size_t i = 0; i < train->size(); ++i) {
    const NDArray* features = (*train)[i].Find("x");
    for (size_t j = 0; j < nf; ++j) {
      x.SetFromDouble(i * nf + j, features->GetAsDouble(j));
    }
    y[i] = (*train)[i].Label().value();
  }
  ml::SoftmaxClassifier clf(2);
  ml::SgdOptions options;
  options.learning_rate = 0.3;
  options.epochs = 40;
  clf.Fit(x, y, options).value();
  // Windows carry the precursor signature: clearly better than chance.
  EXPECT_GT(clf.Evaluate(x, y).value(), 0.7);
}

// ---- bio -------------------------------------------------------------------

TEST(BioArchetype, EndToEndLevel5WithPrivacy) {
  par::StripedStore store;
  BioArchetypeConfig config;
  config.workload.n_subjects = 120;
  config.workload.unlabeled_fraction = 0.0;
  config.k_anonymity = 4;
  const auto result = RunBioArchetype(store, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectLevel5(*result, "bio");
  // Audit log verifies and recorded the privacy battery.
  EXPECT_TRUE(result->audit.Verify().ok());
  EXPECT_GE(result->audit.size(), 5u);
  EXPECT_GE(result->k_report.k_achieved, config.k_anonymity);
}

TEST(BioArchetype, NoPhiReachesShards) {
  par::StripedStore store;
  BioArchetypeConfig config;
  config.workload.n_subjects = 80;
  const auto result = RunBioArchetype(store, config);
  ASSERT_TRUE(result.ok());
  const auto reader = shard::ShardReader::Open(store, config.dataset_dir);
  ASSERT_TRUE(reader.ok());
  for (shard::Split s : shard::kAllSplits) {
    const auto examples = reader->ReadAll(s);
    ASSERT_TRUE(examples.ok());
    for (const auto& ex : *examples) {
      // Keys are pseudonymized tokens, not subject ids or names.
      EXPECT_EQ(ex.key.rfind("anon-", 0), 0u) << ex.key;
      EXPECT_EQ(ex.key.find("SUBJ"), std::string::npos);
    }
  }
}

TEST(BioArchetype, MotifLabelLearnableAfterPrivacy) {
  // De-identification must not destroy the learnable signal (GC content /
  // composition features correlate with the planted motif's bases).
  par::StripedStore store;
  BioArchetypeConfig config;
  config.workload.n_subjects = 200;
  config.workload.seed = 99;
  const auto result = RunBioArchetype(store, config);
  ASSERT_TRUE(result.ok());
  const auto reader = shard::ShardReader::Open(store, config.dataset_dir);
  const auto train = reader->ReadAll(shard::Split::kTrain);
  ASSERT_TRUE(train.ok());
  size_t labeled = 0;
  for (const auto& ex : *train) {
    if (ex.Label().value() >= 0) ++labeled;
  }
  EXPECT_GT(labeled, train->size() / 2);
}

// ---- materials -----------------------------------------------------------------

TEST(MaterialsArchetype, EndToEndLevel5WithRebalancing) {
  par::StripedStore store;
  MaterialsArchetypeConfig config;
  config.workload.n_structures = 60;
  const auto result = RunMaterialsArchetype(store, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectLevel5(*result, "materials");
  // Rebalancing flattened the class skew.
  EXPECT_GT(result->imbalance_before, 2.0);
  EXPECT_LT(result->imbalance_after, 1.01);
}

TEST(MaterialsArchetype, GraphsDecodeFromShards) {
  par::StripedStore store;
  MaterialsArchetypeConfig config;
  config.workload.n_structures = 30;
  config.rebalance = false;
  const auto result = RunMaterialsArchetype(store, config);
  ASSERT_TRUE(result.ok());
  const auto reader = shard::ShardReader::Open(store, config.dataset_dir);
  ASSERT_TRUE(reader.ok());
  size_t graphs = 0;
  for (shard::Split s : shard::kAllSplits) {
    const auto examples = reader->ReadAll(s);
    ASSERT_TRUE(examples.ok());
    for (const auto& ex : *examples) {
      const auto g = graph::FromExample(ex);
      ASSERT_TRUE(g.ok());
      EXPECT_GT(g->NumNodes(), 0u);
      EXPECT_EQ(g->edge_index.shape()[0], 2u);
      ++graphs;
    }
  }
  EXPECT_EQ(graphs, 30u);
}

TEST(MaterialsArchetype, UndersampleStrategy) {
  par::StripedStore store;
  MaterialsArchetypeConfig config;
  config.workload.n_structures = 60;
  config.strategy = graph::RebalanceStrategy::kUndersample;
  const auto result = RunMaterialsArchetype(store, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->manifest.TotalRecords(), 60u);  // shrank
  EXPECT_LT(result->imbalance_after, 1.01);
}

// ---- cross-domain: Table 1's shape ------------------------------------------

TEST(AllArchetypes, ShareTheCanonicalStageSequence) {
  par::StripedStore store;
  ClimateArchetypeConfig cc;
  cc.workload.n_times = 2;
  cc.workload.n_lat = 16;
  cc.workload.n_lon = 32;
  cc.target_lat = 8;
  cc.target_lon = 16;
  cc.patch = 4;
  FusionArchetypeConfig fc;
  fc.workload.n_shots = 6;
  BioArchetypeConfig bc;
  bc.workload.n_subjects = 60;
  MaterialsArchetypeConfig mc;
  mc.workload.n_structures = 20;

  std::vector<core::PipelineReport> reports;
  reports.push_back(RunClimateArchetype(store, cc)->report);
  reports.push_back(RunFusionArchetype(store, fc)->report);
  reports.push_back(RunBioArchetype(store, bc)->report);
  reports.push_back(RunMaterialsArchetype(store, mc)->report);
  for (const auto& report : reports) {
    ASSERT_EQ(report.stages.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(report.stages[i].kind, core::kAllStageKinds[i]);
    }
  }
}

}  // namespace
}  // namespace drai::domains
